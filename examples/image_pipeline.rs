//! Image/AR pipeline scenario: a phone camera pipeline alternates
//! data-parallel frames (particle-filter tracking + stencil smoothing)
//! with task-parallel scene analysis (connected components on a region
//! graph). big.VLITTLE serves both phases well; the fixed-function
//! alternatives each lose one phase.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use big_vlittle::sim::{simulate, SimParams, SystemKind};
use big_vlittle::workloads::{apps, graph, Scale};

fn main() -> Result<(), String> {
    let scale = Scale::default_eval();
    let params = SimParams::default();
    let phases = [
        ("track (particlefilter)", apps::particlefilter::build(scale)),
        ("smooth (jacobi2d)", apps::jacobi2d::build(scale)),
        ("segment (components)", graph::components::build(scale)),
    ];

    println!("per-frame pipeline time (µs):\n");
    println!(
        "{:<24} {:>10} {:>10} {:>10}",
        "phase", "1bIV-4L", "1bDV", "1b-4VL"
    );
    let mut totals = [0f64; 3];
    for (name, w) in phases {
        let mut row = [0f64; 3];
        for (i, kind) in [SystemKind::BIv4L, SystemKind::BDv, SystemKind::B4Vl]
            .into_iter()
            .enumerate()
        {
            let r = simulate(kind, &w, &params)?;
            row[i] = r.wall_ns / 1000.0;
            totals[i] += row[i];
        }
        println!(
            "{:<24} {:>10.1} {:>10.1} {:>10.1}",
            name, row[0], row[1], row[2]
        );
    }
    println!(
        "{:<24} {:>10.1} {:>10.1} {:>10.1}",
        "TOTAL", totals[0], totals[1], totals[2]
    );
    println!(
        "\nframe rate at 1 GHz: 1bIV-4L {:.0} fps, 1bDV {:.0} fps, 1b-4VL {:.0} fps",
        1.0e9 / (totals[0] * 1000.0),
        1.0e9 / (totals[1] * 1000.0),
        1.0e9 / (totals[2] * 1000.0),
    );
    Ok(())
}
