//! Quickstart: run one kernel on the big.VLITTLE system and two
//! baselines, print speedups and the lane-cycle breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use big_vlittle::cores::types::StallKind;
use big_vlittle::sim::{simulate, SimParams, SystemKind};
use big_vlittle::workloads::{kernels::saxpy, Scale};

fn main() -> Result<(), String> {
    let workload = saxpy::build(Scale::default_eval());
    let params = SimParams::default();

    println!("saxpy, {} elements\n", Scale::default_eval().n);
    let base = simulate(SystemKind::L1, &workload, &params)?;
    println!(
        "{:>8}: {:>10.1} µs  (baseline)",
        "1L",
        base.wall_ns / 1000.0
    );

    for kind in [SystemKind::BIv, SystemKind::BDv, SystemKind::B4Vl] {
        let r = simulate(kind, &workload, &params)?;
        println!(
            "{:>8}: {:>10.1} µs  ({:.2}x over 1L)",
            kind.label(),
            r.wall_ns / 1000.0,
            r.speedup_over(&base)
        );
        if kind == SystemKind::B4Vl {
            println!("\nVLITTLE lane cycle breakdown:");
            let total: u64 = StallKind::ALL.iter().map(|&k| r.lane_total(k)).sum();
            for k in StallKind::ALL {
                println!(
                    "  {:>8}: {:5.1}%",
                    k.label(),
                    100.0 * r.lane_total(k) as f64 / total.max(1) as f64
                );
            }
        }
    }
    Ok(())
}
