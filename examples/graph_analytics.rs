//! Graph-analytics scenario: the task-parallel side of the paper's
//! argument. A decoupled vector engine cannot help BFS or PageRank — only
//! its big core runs them — while big.VLITTLE's little cores stay
//! available as ordinary task workers with zero reconfiguration overhead.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use big_vlittle::sim::{simulate, SimParams, SystemKind};
use big_vlittle::workloads::{graph, Scale};

fn main() -> Result<(), String> {
    let scale = Scale::default_eval();
    let params = SimParams::default();

    println!(
        "R-MAT graph, {} vertices, avg degree {}\n",
        scale.vertices, scale.degree
    );
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "workload", "1bDV (µs)", "1b-4VL (µs)", "advantage"
    );

    for w in [
        graph::bfs::build(scale),
        graph::pagerank::build(scale),
        graph::components::build(scale),
        graph::tc::build(scale),
    ] {
        // 1bDV: the big core alone — a vector engine is dead weight here.
        let dv = simulate(SystemKind::BDv, &w, &params)?;
        // 1b-4VL in scalar mode: all five cores execute tasks.
        let vl = simulate(SystemKind::B4Vl, &w, &params)?;
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>9.2}x",
            w.name,
            dv.wall_ns / 1000.0,
            vl.wall_ns / 1000.0,
            dv.wall_ns / vl.wall_ns
        );
    }
    println!("\n(the paper's Figure 4 reports 1.7x for this advantage)");
    Ok(())
}
