//! DVFS scenario (paper Section VII): sweep the big/little frequency grid
//! for big.VLITTLE on one kernel and print the time/power landscape with
//! its Pareto frontier — the "slow the big core, boost the littles" trade.
//!
//! ```sh
//! cargo run --release --example dvfs_explorer
//! ```

use big_vlittle::power::{pareto_frontier, PerfPowerPoint, SystemPower, BIG_LEVELS, LITTLE_LEVELS};
use big_vlittle::sim::{simulate, SimParams, SystemKind};
use big_vlittle::workloads::{kernels::vvadd, Scale};

fn main() -> Result<(), String> {
    let workload = vvadd::build(Scale::default_eval());
    let mut points = Vec::new();

    println!("vvadd on 1b-4VL across the V/F grid:\n");
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "big", "little", "time (µs)", "power (W)"
    );
    for b in BIG_LEVELS {
        for l in LITTLE_LEVELS {
            let mut params = SimParams::default();
            params.clocks.big_ghz = b.ghz;
            params.clocks.little_ghz = l.ghz;
            let r = simulate(SystemKind::B4Vl, &workload, &params)?;
            let power = SystemPower::BigPlusLittles(4).watts(b, l);
            println!(
                "{:>10} {:>10} {:>12.1} {:>10.3}",
                b.name,
                l.name,
                r.wall_ns / 1000.0,
                power
            );
            points.push(PerfPowerPoint {
                label: format!("({},{})", b.name, l.name),
                time: r.wall_ns,
                power,
            });
        }
    }

    println!("\nPareto frontier (fastest at each power budget):");
    for p in pareto_frontier(&points) {
        println!(
            "  {:>10}: {:>9.1} µs at {:.3} W",
            p.label,
            p.time / 1000.0,
            p.power
        );
    }
    println!("\n(the paper finds boosting the littles while slowing the big is Pareto-optimal)");
    Ok(())
}
