//! Genomics scenario: batch Smith-Waterman alignment — the paper's
//! motivating on-device DNA-analysis workload. Compares the scalar
//! big-core run against the anti-diagonal-vectorized run on the VLITTLE
//! engine and shows where the cycles go.
//!
//! ```sh
//! cargo run --release --example genomics
//! ```

use big_vlittle::sim::{simulate, SimParams, SystemKind};
use big_vlittle::workloads::{apps::sw, Scale};

fn main() -> Result<(), String> {
    let scale = Scale::default_eval();
    let workload = sw::build(scale);
    let params = SimParams::default();

    println!(
        "Smith-Waterman: 4 query chunks x {} bp against a {} bp reference\n",
        scale.dim * 4,
        scale.dim * 4
    );

    let scalar_big = simulate(SystemKind::B1, &workload, &params)?;
    println!(
        "1b     (scalar DP):           {:>9.1} µs",
        scalar_big.wall_ns / 1000.0
    );

    let tasks = simulate(SystemKind::B4L, &workload, &params)?;
    let rt = tasks.runtime.expect("task run");
    println!(
        "1b-4L  (chunk tasks):         {:>9.1} µs  ({} tasks, {} steals)",
        tasks.wall_ns / 1000.0,
        rt.tasks_run,
        rt.steals
    );

    let vlittle = simulate(SystemKind::B4Vl, &workload, &params)?;
    println!(
        "1b-4VL (anti-diagonal RVV):   {:>9.1} µs  ({:.2}x over 1b)",
        vlittle.wall_ns / 1000.0,
        scalar_big.wall_ns / vlittle.wall_ns
    );

    println!(
        "\nmemory traffic (data requests): 1b = {}, 1b-4VL = {}",
        scalar_big.mem.data_reqs, vlittle.mem.data_reqs
    );
    Ok(())
}
