#![warn(missing_docs)]
//! # bvl-snap — versioned deterministic checkpoint encoding
//!
//! The checkpoint layer underneath `bvl_sim`'s `SysState` (DESIGN.md
//! §4.11). Every ticked component of the simulator serializes its mutable
//! state through the [`Snap`] trait into a flat byte stream, and the
//! top-level blob is framed with a magic number, a format version and a
//! checksum so that a stale or corrupted checkpoint fails with a typed
//! [`SnapError`] instead of a panic or a silently wrong restore.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — the same state must encode to the same bytes,
//!    always. Writers must not iterate unordered containers directly
//!    (sort first); there is no floating-point canonicalization because
//!    the simulator state machine is integer-only (wall time is derived
//!    at the end of a run, never stored).
//! 2. **Saving cannot fail** — [`Snap::save`] is infallible by
//!    construction; only [`Snap::load`] returns a `Result`, because only
//!    a load confronts untrusted bytes.
//! 3. **No foreign dependencies** — the vendored `serde` subset is
//!    serialize-only, so this crate hand-rolls a little-endian binary
//!    codec instead. It has zero dependencies and every simulator crate
//!    can implement [`Snap`] for its own types without orphan-rule
//!    friction.
//!
//! The framing (magic `BVLS`, version, payload, FNV-1a checksum) lives in
//! [`frame`] / [`unframe`]; `bvl_sim::SysState` is a framed blob plus a
//! parsed header.

use std::collections::VecDeque;
use std::fmt;

/// Current checkpoint format version. Bump on ANY encoding change — a
/// restore across versions is a [`SnapError::VersionMismatch`], never a
/// best-effort decode.
pub const SNAP_VERSION: u32 = 1;

/// Leading magic bytes of a framed checkpoint blob.
pub const SNAP_MAGIC: [u8; 4] = *b"BVLS";

/// Typed failure modes of checkpoint decoding.
///
/// Every variant is a *diagnosis*: corrupted input must map to one of
/// these, never to a panic (the proptest corruption suite in
/// `crates/snap/tests` enforces this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The reader ran out of bytes mid-field.
    UnexpectedEof {
        /// Byte offset at which the read was attempted.
        at: usize,
        /// Bytes the field needed.
        wanted: usize,
        /// Bytes left in the buffer.
        have: usize,
    },
    /// The blob does not start with [`SNAP_MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The blob was written by a different format version.
    VersionMismatch {
        /// Version recorded in the blob.
        found: u32,
        /// Version this build understands ([`SNAP_VERSION`]).
        expected: u32,
    },
    /// The payload checksum does not match — bytes were corrupted.
    ChecksumMismatch {
        /// Checksum recorded in the blob.
        found: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// An enum discriminant tag is out of range for its type.
    BadTag {
        /// Type being decoded.
        ty: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A decoded value is structurally impossible (bad length, index out
    /// of range, fingerprint mismatch, …).
    Corrupt {
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { at, wanted, have } => write!(
                f,
                "unexpected end of checkpoint at byte {at}: wanted {wanted} bytes, {have} left"
            ),
            SnapError::BadMagic { found } => {
                write!(f, "not a checkpoint blob (magic {found:02x?})")
            }
            SnapError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found}, this build reads version {expected}"
            ),
            SnapError::ChecksumMismatch { found, computed } => write!(
                f,
                "checkpoint checksum mismatch (recorded {found:#018x}, computed {computed:#018x})"
            ),
            SnapError::BadTag { ty, tag } => {
                write!(f, "invalid discriminant {tag} while decoding {ty}")
            }
            SnapError::Corrupt { what } => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a over `bytes` — the frame checksum (also used by the sweep
/// harness for cache keys; the constants are the standard 64-bit ones).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian byte sink for [`Snap::save`].
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the raw (unframed) payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the format is 64-bit regardless of
    /// host width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader for [`Snap::load`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Reads from the raw (unframed) payload `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Errors unless every byte was consumed — trailing garbage means the
    /// blob does not encode what the caller thinks it does.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::Corrupt {
                what: format!("{} trailing bytes after decode", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof {
                at: self.pos,
                wanted: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt {
            what: format!("usize value {v} exceeds host width"),
        })
    }

    /// Reads a bool; any byte other than 0/1 is [`SnapError::BadTag`].
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::BadTag {
                ty: "bool",
                tag: u64::from(t),
            }),
        }
    }

    /// Reads a collection length written by [`SnapWriter::usize`],
    /// rejecting lengths that could not possibly fit in the remaining
    /// bytes (each element needs ≥ `min_elem_bytes`). This bounds
    /// allocation on corrupt input — a flipped length byte must not turn
    /// into a multi-gigabyte `Vec::with_capacity`.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.usize()?;
        let floor = min_elem_bytes.max(1);
        if n > self.remaining() / floor {
            return Err(SnapError::Corrupt {
                what: format!(
                    "length {n} impossible with {} bytes remaining",
                    self.remaining()
                ),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Corrupt {
            what: "string is not UTF-8".into(),
        })
    }
}

/// Deterministic binary snapshot encoding for one type.
///
/// `save` must write exactly what `load` reads, in the same order, and
/// `load(save(x)) == x` for every reachable state (the restore-equivalence
/// suite checks this transitively through the whole simulator). Saving is
/// infallible; loading reports corruption through [`SnapError`].
pub trait Snap: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes one value from `r`.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! snap_prim {
    ($ty:ty, $wm:ident, $rm:ident) => {
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.$wm(*self);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$rm()
            }
        }
    };
}

snap_prim!(u8, u8, u8);
snap_prim!(u16, u16, u16);
snap_prim!(u32, u32, u32);
snap_prim!(u64, u64, u64);
snap_prim!(i64, i64, i64);
snap_prim!(usize, usize, usize);
snap_prim!(bool, bool, bool);

impl Snap for i32 {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(*self as u32);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.u32()? as i32)
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.str(self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.str()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            t => Err(SnapError::BadTag {
                ty: "Option",
                tag: u64::from(t),
            }),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len(1)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len(1)?;
        let mut v = VecDeque::with_capacity(n);
        for _ in 0..n {
            v.push_back(T::load(r)?);
        }
        Ok(v)
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        // Decode into a Vec first: arrays have no fallible collect.
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::load(r)?);
        }
        v.try_into().map_err(|_| SnapError::Corrupt {
            what: "array length mismatch".into(),
        })
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap, D: Snap> Snap for (A, B, C, D) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
        self.3.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?, D::load(r)?))
    }
}

/// Implements [`Snap`] for a struct by saving/loading its named fields in
/// declaration order. The struct must be constructible from those fields
/// alone (use it from the defining module for private fields):
///
/// ```
/// # use bvl_snap::{snap_struct, Snap, SnapWriter, SnapReader};
/// struct Point { x: u64, y: u64 }
/// snap_struct!(Point { x, y });
/// ```
#[macro_export]
macro_rules! snap_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Snap for $ty {
            fn save(&self, w: &mut $crate::SnapWriter) {
                $($crate::Snap::save(&self.$field, w);)+
            }
            fn load(r: &mut $crate::SnapReader<'_>) -> Result<Self, $crate::SnapError> {
                Ok($ty { $($field: $crate::Snap::load(r)?),+ })
            }
        }
    };
}

/// Frames a raw payload: magic, version, payload length, payload, FNV-1a
/// checksum over everything before the checksum.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates a framed blob and returns its payload slice.
///
/// Checks, in order: magic, version, length, checksum — so the error
/// names the outermost problem (a truncated v2 blob reports the version,
/// not the truncation).
pub fn unframe(blob: &[u8]) -> Result<&[u8], SnapError> {
    let mut r = SnapReader::new(blob);
    let magic = r.take(4)?;
    if magic != SNAP_MAGIC {
        return Err(SnapError::BadMagic {
            found: magic.try_into().expect("len 4"),
        });
    }
    let version = r.u32()?;
    if version != SNAP_VERSION {
        return Err(SnapError::VersionMismatch {
            found: version,
            expected: SNAP_VERSION,
        });
    }
    let len = r.usize()?;
    if r.remaining() != len + 8 {
        return Err(SnapError::Corrupt {
            what: format!(
                "payload length {len} + 8-byte checksum != {} remaining bytes",
                r.remaining()
            ),
        });
    }
    let payload = r.take(len)?;
    let recorded = r.u64()?;
    let computed = fnv1a(&blob[..blob.len() - 8]);
    if recorded != computed {
        return Err(SnapError::ChecksumMismatch {
            found: recorded,
            computed,
        });
    }
    Ok(payload)
}

/// Convenience: saves one [`Snap`] value into a framed blob.
pub fn to_framed<T: Snap>(value: &T) -> Vec<u8> {
    let mut w = SnapWriter::new();
    value.save(&mut w);
    frame(&w.into_bytes())
}

/// Convenience: validates a framed blob and decodes one [`Snap`] value,
/// requiring the payload to be fully consumed.
pub fn from_framed<T: Snap>(blob: &[u8]) -> Result<T, SnapError> {
    let payload = unframe(blob)?;
    let mut r = SnapReader::new(payload);
    let v = T::load(&mut r)?;
    r.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        0xABu8.save(&mut w);
        0xBEEFu16.save(&mut w);
        0xDEAD_BEEFu32.save(&mut w);
        u64::MAX.save(&mut w);
        (-42i64).save(&mut w);
        true.save(&mut w);
        usize::MAX.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(u8::load(&mut r).unwrap(), 0xAB);
        assert_eq!(u16::load(&mut r).unwrap(), 0xBEEF);
        assert_eq!(u32::load(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::load(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::load(&mut r).unwrap(), -42);
        assert!(bool::load(&mut r).unwrap());
        assert_eq!(usize::load(&mut r).unwrap(), usize::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        type T = (Vec<u32>, Option<u64>, VecDeque<(u8, bool)>, [u64; 3]);
        let v: T = (
            vec![1, 2, 3],
            Some(99),
            VecDeque::from([(1, true), (2, false)]),
            [7, 8, 9],
        );
        let blob = to_framed(&v);
        let back: T = from_framed(&blob).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn snap_struct_macro_round_trips_private_fields() {
        #[derive(Debug, PartialEq)]
        struct S {
            a: u64,
            b: Vec<u8>,
            c: Option<bool>,
        }
        snap_struct!(S { a, b, c });
        let s = S {
            a: 5,
            b: vec![1, 2],
            c: Some(false),
        };
        let blob = to_framed(&s);
        assert_eq!(from_framed::<S>(&blob).unwrap(), s);
    }

    #[test]
    fn truncation_is_typed_eof() {
        let blob = to_framed(&vec![1u64, 2, 3]);
        for cut in 0..blob.len() {
            let err = from_framed::<Vec<u64>>(&blob[..cut]).unwrap_err();
            // Any prefix must fail loudly with *some* typed error.
            match err {
                SnapError::UnexpectedEof { .. }
                | SnapError::BadMagic { .. }
                | SnapError::VersionMismatch { .. }
                | SnapError::Corrupt { .. }
                | SnapError::ChecksumMismatch { .. } => {}
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut blob = to_framed(&7u64);
        blob[0] ^= 0xFF;
        assert!(matches!(
            from_framed::<u64>(&blob),
            Err(SnapError::BadMagic { .. })
        ));
    }

    #[test]
    fn version_mismatch_detected() {
        let mut blob = to_framed(&7u64);
        blob[4] = SNAP_VERSION as u8 + 1;
        assert_eq!(
            from_framed::<u64>(&blob),
            Err(SnapError::VersionMismatch {
                found: SNAP_VERSION + 1,
                expected: SNAP_VERSION
            })
        );
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let blob = to_framed(&vec![1u64, 2, 3]);
        // Flip one bit in every payload byte position in turn.
        for i in 16..blob.len() - 8 {
            let mut bad = blob.clone();
            bad[i] ^= 0x01;
            assert!(
                matches!(
                    from_framed::<Vec<u64>>(&bad),
                    Err(SnapError::ChecksumMismatch { .. })
                ),
                "flip at {i} not caught"
            );
        }
    }

    #[test]
    fn absurd_length_rejected_without_allocation() {
        // A payload claiming a 2^60-element vector must be rejected by the
        // remaining-bytes guard, not die trying to allocate.
        let mut w = SnapWriter::new();
        w.u64(1 << 60);
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload);
        assert!(matches!(
            Vec::<u64>::load(&mut r),
            Err(SnapError::Corrupt { .. })
        ));
    }

    #[test]
    fn bool_rejects_junk() {
        let payload = [7u8];
        let mut r = SnapReader::new(&payload);
        assert_eq!(
            bool::load(&mut r),
            Err(SnapError::BadTag { ty: "bool", tag: 7 })
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = SnapWriter::new();
        5u64.save(&mut w);
        0u8.save(&mut w);
        let blob = frame(&w.into_bytes());
        assert!(matches!(
            from_framed::<u64>(&blob),
            Err(SnapError::Corrupt { .. })
        ));
    }

    #[test]
    fn errors_display_cleanly() {
        let e = SnapError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains("version 9"));
    }
}
