//! Checkpoint-restore equivalence suite: the headline guarantee of the
//! checkpoint subsystem, in the same spirit as the tick-skip suite in
//! `crates/sim/tests/skip_equivalence.rs`.
//!
//! For every system kind, workload, and skip mode, a checkpoint taken at
//! any mid-run cycle and restored into a **fresh** system must run to a
//! completion that is *byte-identical* to the straight-through run: the
//! full [`RunResult`] (every counter, the exact `wall_ns` bits, the
//! unified stats snapshot), the final architectural state (register
//! files, memory image, drain certificates), and the cumulative
//! [`SkipStats`].
//!
//! Checkpoints cross the serialized form on the way — `to_bytes` →
//! `from_bytes` — so the suite proves the *blob* round-trips, not merely
//! the in-memory structure.

use bvl_sim::{
    simulate_resumable, simulate_with_state, FinalState, RunResult, SimParams, SkipStats, SysState,
    SystemKind,
};
use bvl_workloads::{kernels, Scale, Workload};
use std::path::PathBuf;

/// On an equivalence failure, persists the offending checkpoint blob
/// under `target/tmp/checkpoint-failures/` (CI uploads the directory as
/// an artifact) and returns the path for the panic message.
fn dump_offending_blob(blob: &[u8], kind: SystemKind, workload: &str, cycle: u64) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("checkpoint-failures");
    std::fs::create_dir_all(&dir).expect("create failure-blob dir");
    let path = dir.join(format!("{kind}_{workload}_cycle{cycle}.snap"));
    std::fs::write(&path, blob).expect("write failure blob");
    path
}

/// Cadence chosen so even the shortest tiny-scale run crosses several
/// checkpoint boundaries.
const CADENCE: u64 = 300;

fn workloads() -> Vec<Workload> {
    let s = Scale::tiny();
    // vvadd is memory-bound; mmult is compute-bound with reuse — between
    // them every engine datapath and the task path get exercised.
    vec![kernels::vvadd::build(s), kernels::mmult::build(s)]
}

fn params(no_skip: bool) -> SimParams {
    SimParams {
        no_skip,
        ..SimParams::default()
    }
}

/// Straight-through run, also collecting every checkpoint on the cadence.
fn run_collecting(
    kind: SystemKind,
    w: &Workload,
    no_skip: bool,
) -> (RunResult, SkipStats, FinalState, Vec<SysState>) {
    let mut p = params(no_skip);
    p.checkpoint_every = CADENCE;
    let mut ckpts = Vec::new();
    let (r, s, f) = simulate_resumable(kind, w, &p, None, &mut |c| ckpts.push(c.clone()))
        .unwrap_or_else(|e| panic!("{} on {kind} (no_skip={no_skip}): {e}", w.name));
    (r, s, f, ckpts)
}

/// Picks a spread of restore points: the earliest, a middle, and the
/// latest checkpoint (deduplicated when the run was short).
fn restore_points(ckpts: &[SysState]) -> Vec<&SysState> {
    let mut idx = vec![0, ckpts.len() / 2, ckpts.len() - 1];
    idx.dedup();
    idx.into_iter().map(|i| &ckpts[i]).collect()
}

#[test]
fn restore_matches_straight_through_on_every_system() {
    let workloads = workloads();
    let mut restores = 0u64;
    for kind in SystemKind::ALL {
        for w in &workloads {
            for no_skip in [false, true] {
                // The baseline run takes no checkpoints at all.
                let (base_r, base_s, base_f) = simulate_with_state(kind, w, &params(no_skip))
                    .unwrap_or_else(|e| panic!("{} on {kind}: {e}", w.name));
                let (ck_r, ck_s, ck_f, ckpts) = run_collecting(kind, w, no_skip);

                // Merely taking checkpoints must not perturb anything.
                assert_eq!(base_r, ck_r, "checkpointing changed {kind}/{}", w.name);
                assert_eq!(base_s, ck_s, "checkpointing changed skip stats");
                assert_eq!(base_f, ck_f, "checkpointing changed final state");
                assert!(
                    !ckpts.is_empty(),
                    "{kind}/{} finished before the first checkpoint — lower CADENCE",
                    w.name
                );

                for state in restore_points(&ckpts) {
                    // Round-trip through the serialized blob.
                    let blob = state.to_bytes();
                    let decoded = SysState::from_bytes(&blob).unwrap_or_else(|e| {
                        panic!("{kind}/{}: blob failed to decode: {e}", w.name)
                    });
                    assert_eq!(decoded.kind(), kind);
                    assert_eq!(decoded.uncore_cycle(), state.uncore_cycle());

                    // Restore into a fresh system and run to completion.
                    let (r, s, f) =
                        simulate_resumable(kind, w, &params(no_skip), Some(&decoded), &mut |_| {})
                            .unwrap_or_else(|e| {
                                panic!(
                                    "{} on {kind} resumed at cycle {} (no_skip={no_skip}): {e}",
                                    w.name,
                                    state.uncore_cycle()
                                )
                            });

                    let at = state.uncore_cycle();
                    // Byte-level: the debug rendering comparison covers
                    // exact float bits and every stats-snapshot path.
                    let diverged = if base_r != r {
                        Some("result")
                    } else if format!("{base_r:?}") != format!("{r:?}") {
                        Some("debug rendering")
                    } else if base_s != s {
                        Some("skip stats")
                    } else if base_f != f {
                        Some("final architectural state")
                    } else {
                        None
                    };
                    if let Some(what) = diverged {
                        let path = dump_offending_blob(&blob, kind, w.name, at);
                        panic!(
                            "{what} diverged after restore at cycle {at} on {kind}/{} \
                             (no_skip={no_skip}); offending checkpoint saved to {}",
                            w.name,
                            path.display()
                        );
                    }
                    restores += 1;
                }
            }
        }
    }
    assert!(
        restores >= SystemKind::ALL.len() as u64 * 2 * 2,
        "suite exercised too few restores ({restores})"
    );
}
