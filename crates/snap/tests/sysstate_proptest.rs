//! Property tests on the [`SysState`] wire format.
//!
//! Checkpoints come from *real* simulations of seeded difftest programs
//! (the same generator the fuzzing campaign uses), so the blobs exercise
//! every component codec. Properties:
//!
//! 1. **Round-trip**: `to_bytes` → `from_bytes` reproduces the checkpoint
//!    exactly, and resuming from the decoded copy finishes the run with
//!    results byte-identical to the straight-through run.
//! 2. **Corruption safety**: truncating the blob at any byte boundary, or
//!    flipping any single byte, makes `from_bytes` (or the subsequent
//!    restore) fail with a typed error — it never panics and never
//!    silently restores the wrong state.

use bvl_difftest::{difftest_workload, generate};
use bvl_sim::{simulate_resumable, simulate_with_state, SimParams, SysState, SystemKind};
use proptest::prelude::*;

/// Builds a checkpoint plus its straight-through reference by running a
/// seeded difftest program on one system. Returns `None` when the run
/// finishes before the first checkpoint boundary.
fn checkpoint_for_seed(seed: u64, kind: SystemKind) -> Option<(SysState, bvl_workloads::Workload)> {
    let dt = generate(seed);
    let program = dt.assemble().ok()?;
    let serial = program.label("serial")?;
    let vector = program.label("vector")?;
    let workload = difftest_workload(&program, serial, vector);
    let params = SimParams {
        checkpoint_every: 200,
        max_uncore_cycles: 20_000_000,
        ..SimParams::default()
    };
    let mut first = None;
    simulate_resumable(kind, &workload, &params, None, &mut |s| {
        first.get_or_insert_with(|| s.clone());
    })
    .ok()?;
    let state = first?;
    // Re-wrap the workload: `Workload` is not Clone (it owns a checker
    // closure), so rebuild it from the same program for the caller.
    Some((state, difftest_workload(&program, serial, vector)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Round-trip plus resume: the decoded blob is the checkpoint, and
    /// finishing from it matches the straight-through run exactly.
    #[test]
    fn roundtrip_and_resume(seed in 0u64..64, system in 0usize..7) {
        let kind = SystemKind::ALL[system];
        let Some((state, workload)) = checkpoint_for_seed(seed, kind) else {
            // Program too short to checkpoint (or untestable) — vacuous.
            return Ok(());
        };
        let blob = state.to_bytes();
        let decoded = SysState::from_bytes(&blob).expect("framed blob decodes");
        prop_assert_eq!(&decoded, &state, "decode is not the identity");

        let params = SimParams {
            max_uncore_cycles: 20_000_000,
            ..SimParams::default()
        };
        let base = simulate_with_state(kind, &workload, &params).expect("straight run");
        let resumed = simulate_resumable(kind, &workload, &params, Some(&decoded), &mut |_| {})
            .expect("resumed run");
        prop_assert_eq!(base, resumed, "resume diverged on seed {} / {}", seed, kind);
    }

    /// Truncation at any boundary is a typed error, never a panic.
    #[test]
    fn truncation_never_panics(seed in 0u64..64, cut_frac in 0.0f64..1.0) {
        let Some((state, _)) = checkpoint_for_seed(seed, SystemKind::B1) else {
            return Ok(());
        };
        let blob = state.to_bytes();
        let cut = ((blob.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < blob.len());
        let err = SysState::from_bytes(&blob[..cut]).expect_err("truncated blob must fail");
        // The error is typed and printable — that is the whole contract.
        let _ = err.to_string();
    }

    /// A single flipped byte anywhere in the blob is caught — by the
    /// checksum before decoding, or by a shape check during restore. The
    /// corrupted blob never yields a successful resume with wrong state.
    #[test]
    fn bitflip_never_restores_silently(seed in 0u64..16, pos_frac in 0.0f64..1.0) {
        let Some((state, workload)) = checkpoint_for_seed(seed, SystemKind::B1) else {
            return Ok(());
        };
        let mut blob = state.to_bytes();
        let pos = ((blob.len() as f64) * pos_frac) as usize % blob.len();
        blob[pos] ^= 0x40;
        match SysState::from_bytes(&blob) {
            Err(e) => {
                let _ = e.to_string(); // typed, printable
            }
            Ok(decoded) => {
                // Flip landed in the (length-checked) body copy without
                // tripping the checksum — impossible for FNV-1a over the
                // whole frame, but keep the belt-and-braces check: the
                // restore itself must reject it.
                let params = SimParams {
                    max_uncore_cycles: 20_000_000,
                    ..SimParams::default()
                };
                let r = simulate_resumable(
                    SystemKind::B1, &workload, &params, Some(&decoded), &mut |_| {},
                );
                prop_assert!(r.is_err(), "corrupted checkpoint restored silently");
            }
        }
    }
}
