//! The parallel sweep engine: thread-scoped fan-out plus a memoized run
//! cache for every figure/table experiment.
//!
//! Every paper artifact is a (system × workload × params) matrix of
//! independent [`bvl_sim::simulate`] calls. This module executes such a
//! matrix on `std::thread::scope` workers pulling from a shared work queue
//! (`--jobs N`, default = available parallelism) and returns results in
//! deterministic matrix order regardless of completion order, so the JSON
//! an experiment writes is byte-identical at any worker count.
//!
//! Layered on top is a memoized run cache keyed by
//! `(system, workload-key, params-hash)`:
//!
//! * points repeated inside one matrix simulate once (first occurrence
//!   wins; later ones clone the result);
//! * points shared *between* figures (fig04/05/06 all measure the same
//!   `1L`/`1bIV-4L`/`1bDV`/`1b-4VL` runs) simulate once per process when
//!   the binaries share an [`ExpOpts`] — which is exactly what the
//!   `run_all` binary does;
//! * with `--persist-cache`, results are also written under
//!   `<out>/cache/` as JSON and reused by later invocations;
//! * `--no-cache` forces a cold run: every unique point simulates fresh
//!   and nothing is read from or written to either cache layer;
//! * with `--checkpoint-every N`, every in-flight point periodically
//!   writes a whole-system checkpoint under `<cache_dir>/ckpt/` (deleted
//!   when the point completes), and `--resume` restarts interrupted
//!   points from their last checkpoint instead of cycle 0. Resumed
//!   results are byte-identical by the restore-equivalence contract but
//!   are deliberately *not* persisted to the disk cache — only
//!   straight-through runs populate it.
//!
//! The workload key must identify the workload *instance*, not just its
//! kernel: the same name built at a different scale (or, for synthetic
//! microbenchmarks, with different generation knobs) is a different point.
//! [`SweepJob::new`] derives `"{name}@{scale}"`; [`SweepJob::keyed`]
//! accepts an explicit key for custom-built workloads.

use crate::ExpOpts;
use bvl_obs::StatsSnapshot;
use bvl_sim::{
    simulate_traced, simulate_with_stats_resumable, RunResult, SimParams, SysState, SystemKind,
};
use bvl_workloads::Workload;
use serde::Serialize;
use std::collections::HashMap;
use std::fs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One point of a sweep matrix: run `workload` on `system` under `params`.
pub struct SweepJob {
    /// System composition to simulate.
    pub system: SystemKind,
    /// Prebuilt workload, shared across jobs and worker threads.
    pub workload: Arc<Workload>,
    /// Cache identity of the workload instance (name plus everything that
    /// went into building it — scale, generation knobs).
    pub workload_key: String,
    /// Simulation parameters for this point.
    pub params: SimParams,
}

impl SweepJob {
    /// A job for a standard suite workload built at the named scale.
    pub fn new(
        system: SystemKind,
        workload: &Arc<Workload>,
        scale_name: &str,
        params: SimParams,
    ) -> Self {
        let workload_key = format!("{}@{}", workload.name, scale_name);
        SweepJob::keyed(system, workload, workload_key, params)
    }

    /// A job with an explicit workload key, for workloads built outside
    /// the standard suites (custom scales, synthetic microbenchmarks).
    pub fn keyed(
        system: SystemKind,
        workload: &Arc<Workload>,
        workload_key: impl Into<String>,
        params: SimParams,
    ) -> Self {
        SweepJob {
            system,
            workload: Arc::clone(workload),
            workload_key: workload_key.into(),
            params,
        }
    }

    /// The memo/disk cache key of this point:
    /// `"{system}__{workload_key}__{params-hash}"`. The params hash is
    /// FNV-1a over the exhaustive `Debug` rendering of [`SimParams`],
    /// which covers every knob the figures sweep (clocks, engine
    /// geometry, queue depths, cycle caps).
    pub fn cache_key(&self) -> String {
        cache_key_for(self.system, &self.workload_key, &self.params)
    }
}

/// The cache key for a (system, workload-instance, params) point; see
/// [`SweepJob::cache_key`].
///
/// The checkpoint cadence and the trace flag are zeroed before hashing:
/// both are pure observability knobs whose on/off state leaves results
/// byte-identical (the restore-equivalence and tracing contracts), so a
/// checkpointed or traced run must *reuse* the cache entry of its plain
/// twin, not fork a parallel one.
fn cache_key_for(system: SystemKind, workload_key: &str, params: &SimParams) -> String {
    let mut p = params.clone();
    p.checkpoint_every = 0;
    p.trace = false;
    format!(
        "{}__{}__{:016x}",
        system.label(),
        workload_key,
        fnv1a(format!("{p:?}").as_bytes())
    )
}

/// FNV-1a over `bytes` (64-bit).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The in-memory memo layer: completed runs keyed by
/// [`SweepJob::cache_key`]. Cloning shares the underlying map, so every
/// experiment run from one [`ExpOpts`] (e.g. all figures under `run_all`)
/// sees every other experiment's results.
#[derive(Clone, Default)]
pub struct SweepCache {
    inner: Arc<Mutex<HashMap<String, RunResult>>>,
}

impl SweepCache {
    /// An empty cache.
    pub fn new() -> Self {
        SweepCache::default()
    }

    /// Number of memoized runs.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no runs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, key: &str) -> Option<RunResult> {
        self.inner.lock().expect("cache lock").get(key).cloned()
    }

    fn insert(&self, key: String, result: RunResult) {
        self.inner.lock().expect("cache lock").insert(key, result);
    }
}

/// Aggregate simulator-throughput counters for the `simulate` calls a
/// process has actually executed (cache hits cost no simulation and are
/// not counted).
///
/// "Cycles" here are clock-domain *edges*: every uncore/big/little cycle
/// the naive loop would process counts once, whether the skip engine ran
/// it or batch-skipped it — so Mcycles/s is comparable across skip-on and
/// `--no-skip` runs of the same points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Throughput {
    /// Number of `simulate` calls executed.
    pub runs: u64,
    /// Clock-domain edges processed cycle-by-cycle.
    pub edges_run: u64,
    /// Clock-domain edges batch-skipped by the quiescence engine.
    pub edges_skipped: u64,
    /// Host seconds spent inside `simulate`, summed over worker threads.
    pub sim_thread_secs: f64,
}

impl Throughput {
    /// Total simulated clock-domain edges (run + skipped).
    pub fn sim_cycles(&self) -> u64 {
        self.edges_run + self.edges_skipped
    }

    /// Fraction of edges the skip engine batch-advanced over, in percent.
    pub fn skipped_pct(&self) -> f64 {
        if self.sim_cycles() == 0 {
            0.0
        } else {
            100.0 * self.edges_skipped as f64 / self.sim_cycles() as f64
        }
    }

    /// Simulated Mcycles per host second of `secs` (callers pass wall
    /// time for aggregate throughput, or [`Throughput::sim_thread_secs`]
    /// for per-worker throughput).
    pub fn mcycles_per_sec(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            0.0
        } else {
            self.sim_cycles() as f64 / 1e6 / secs
        }
    }

    /// The counters accumulated since `earlier` (a prior snapshot).
    pub fn since(&self, earlier: &Throughput) -> Throughput {
        Throughput {
            runs: self.runs - earlier.runs,
            edges_run: self.edges_run - earlier.edges_run,
            edges_skipped: self.edges_skipped - earlier.edges_skipped,
            sim_thread_secs: self.sim_thread_secs - earlier.sim_thread_secs,
        }
    }
}

/// Shared [`Throughput`] accumulator; clones share the counters, so every
/// sweep run through one [`ExpOpts`] reports into the same totals.
#[derive(Clone, Default)]
pub struct ThroughputTracker {
    inner: Arc<Mutex<Throughput>>,
}

impl ThroughputTracker {
    /// A zeroed tracker.
    pub fn new() -> Self {
        ThroughputTracker::default()
    }

    /// The counters so far.
    pub fn snapshot(&self) -> Throughput {
        *self.inner.lock().expect("throughput lock")
    }

    fn record(&self, stats: bvl_sim::SkipStats, secs: f64) {
        let mut t = self.inner.lock().expect("throughput lock");
        t.runs += 1;
        t.edges_run += stats.edges_run;
        t.edges_skipped += stats.edges_skipped;
        t.sim_thread_secs += secs;
    }
}

/// The number of worker threads to default `--jobs` to.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over `items` on `jobs` scoped worker threads sharing one work
/// queue, returning results in item order regardless of completion order.
/// With `jobs <= 1` (or one item) this degrades to a plain serial loop.
/// A panic inside `f` propagates to the caller when the scope joins.
///
/// This is the generic fan-out under [`run_sweep`]; experiments whose unit
/// of work is not a `simulate` call (golden-model characterization,
/// custom-geometry engine runs) use it directly.
pub fn run_parallel<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Executes a sweep matrix and returns one checked [`RunResult`] per job,
/// in job order.
///
/// Duplicate points (same cache key) simulate once; cached points (from
/// earlier sweeps through the same [`ExpOpts`], or from `<out>/cache/`
/// when persistence is on) do not simulate at all. Simulation failures
/// panic with the workload/system context, matching
/// [`run_checked`](crate::run_checked).
pub fn run_sweep(jobs: &[SweepJob], opts: &ExpOpts) -> Vec<RunResult> {
    // `--no-skip` applies to every point of every sweep. It changes the
    // cache key (the params hash covers `no_skip`), so naive-loop runs
    // never reuse — or pollute — skip-on cache entries, even though the
    // results are identical by the skip-equivalence contract.
    let params: Vec<SimParams> = jobs
        .iter()
        .map(|j| {
            let mut p = j.params.clone();
            p.no_skip |= opts.no_skip;
            // `--checkpoint-every` arms every point; the cadence is
            // excluded from the cache key (see `cache_key_for`), so this
            // cannot fork or miss existing cache entries.
            if opts.checkpoint_every > 0 {
                p.checkpoint_every = opts.checkpoint_every;
            }
            p
        })
        .collect();
    let keys: Vec<String> = jobs
        .iter()
        .zip(&params)
        .map(|(j, p)| cache_key_for(j.system, &j.workload_key, p))
        .collect();

    // Dedup to first occurrences: `unique[slot]` is a job index, and every
    // job maps to the slot that computes (or fetched) its result.
    let mut key_to_slot: HashMap<&str, usize> = HashMap::new();
    let mut unique: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        key_to_slot.entry(key).or_insert_with(|| {
            unique.push(i);
            unique.len() - 1
        });
    }

    // Resolve what the cache layers already know.
    let mut slot_results: Vec<Option<RunResult>> = Vec::with_capacity(unique.len());
    for &ji in &unique {
        let mut hit = None;
        if opts.use_cache {
            hit = opts.cache.get(&keys[ji]);
            if hit.is_none() && opts.persist_cache {
                hit = load_cached(&opts.cache_dir, &keys[ji]);
                if let Some(ref r) = hit {
                    opts.cache.insert(keys[ji].clone(), r.clone());
                }
            }
        }
        slot_results.push(hit);
    }

    // Fan the misses out across the workers.
    let misses: Vec<usize> = (0..unique.len())
        .filter(|&s| slot_results[s].is_none())
        .collect();
    let computed = run_parallel(&misses, opts.jobs, |&slot| {
        let start = Instant::now();
        let (result, stats, resumed) = run_point(
            &jobs[unique[slot]],
            &params[unique[slot]],
            &keys[unique[slot]],
            opts,
        );
        opts.throughput.record(stats, start.elapsed().as_secs_f64());
        (result, resumed)
    });
    for (&slot, (result, resumed)) in misses.iter().zip(computed) {
        let key = &keys[unique[slot]];
        if opts.use_cache {
            opts.cache.insert(key.clone(), result.clone());
            // A checkpoint-restored run is byte-identical by contract,
            // but the persisted cache stays a record of straight-through
            // runs only — the conservative half of that contract. The
            // point simulates in full on the next cold invocation.
            if opts.persist_cache && !resumed {
                store_cached(&opts.cache_dir, key, &result);
            }
        }
        slot_results[slot] = Some(result);
    }

    // `--trace-out`: re-run the first point of the first sweep with event
    // tracing on and write the Chrome trace_event JSON. Tracing does not
    // perturb results (the traced RunResult is discarded; the
    // skip-equivalence/determinism contracts make it identical anyway),
    // so this rides outside the cache entirely.
    if let Some(path) = opts.take_trace_out() {
        if let Some(job) = jobs.first() {
            let (_, log) = simulate_traced(job.system, &job.workload, &params[0])
                .unwrap_or_else(|e| panic!("{} on {}: {e}", job.workload_key, job.system.label()));
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                fs::create_dir_all(dir).expect("create trace-out dir");
            }
            fs::write(&path, log.to_chrome_json())
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            eprintln!(
                "wrote {} ({} events, {} dropped) — load in chrome://tracing or Perfetto",
                path.display(),
                log.len(),
                log.dropped()
            );
        }
    }

    // Reassemble in matrix order.
    keys.iter()
        .map(|key| {
            slot_results[key_to_slot[key.as_str()]]
                .clone()
                .expect("every slot resolved")
        })
        .collect()
}

/// Simulates one deduplicated sweep point, writing periodic checkpoints
/// when the cadence is armed and — under `--resume` — restarting from a
/// leftover checkpoint instead of cycle 0. Returns the result, the run's
/// skip counters, and whether the run actually resumed.
///
/// An unresumable checkpoint (undecodable, or fingerprint-mismatched
/// because the parameters changed since the interrupt) is reported and
/// ignored: the point restarts from cycle 0 rather than failing the
/// sweep.
fn run_point(
    job: &SweepJob,
    params: &SimParams,
    key: &str,
    opts: &ExpOpts,
) -> (RunResult, bvl_sim::SkipStats, bool) {
    let ckpt = ckpt_path(&opts.cache_dir, key);
    let mut save = |state: &SysState| store_checkpoint(&ckpt, state);

    if opts.resume {
        if let Some(state) = load_checkpoint(&ckpt) {
            match simulate_with_stats_resumable(
                job.system,
                &job.workload,
                params,
                Some(&state),
                &mut save,
            ) {
                Ok((r, s)) => {
                    let _ = fs::remove_file(&ckpt);
                    return (r, s, true);
                }
                Err(e) => eprintln!(
                    "{key}: checkpoint at cycle {} not resumable ({e}); \
                     restarting from cycle 0",
                    state.uncore_cycle()
                ),
            }
        }
    }
    match simulate_with_stats_resumable(job.system, &job.workload, params, None, &mut save) {
        Ok((r, s)) => {
            let _ = fs::remove_file(&ckpt);
            (r, s, false)
        }
        Err(e) => panic!("{} on {}: {e}", job.workload_key, job.system.label()),
    }
}

// --- disk persistence -----------------------------------------------------
//
// One JSON file per cache key under `<cache_dir>/`. The encoding is
// hand-rolled against `serde_json::Value` (rather than deriving
// serializers across bvl-core/mem/runtime) so the cache format stays a
// concern of this crate alone. Unreadable or stale-shaped files are
// treated as misses.

use bvl_core::types::CoreStats;
use bvl_mem::MemStats;
use bvl_runtime::RuntimeStats;
use serde_json::Value;
use std::path::{Path, PathBuf};

fn cache_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.json"))
}

/// Where a point's in-flight checkpoint lives: `<cache_dir>/ckpt/<key>.snap`.
/// Kept in a subdirectory so result JSONs and checkpoint blobs cannot
/// collide, and so `--resume` can tell "completed" (JSON present) from
/// "interrupted" (blob present) at a glance.
fn ckpt_path(dir: &Path, key: &str) -> PathBuf {
    dir.join("ckpt").join(format!("{key}.snap"))
}

/// Writes a checkpoint blob via tmp-file + rename, so an interrupt
/// mid-write never leaves a torn blob at the path `--resume` reads. (A
/// torn blob would still be rejected by the frame checksum — the rename
/// keeps the window empty, not merely survivable.)
fn store_checkpoint(path: &Path, state: &SysState) {
    let dir = path.parent().expect("checkpoint path has a parent");
    fs::create_dir_all(dir).expect("create checkpoint dir");
    let tmp = path.with_extension("snap.tmp");
    fs::write(&tmp, state.to_bytes()).unwrap_or_else(|e| panic!("write {}: {e}", tmp.display()));
    fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename {}: {e}", path.display()));
}

/// Loads a checkpoint blob if present and decodable; anything else — no
/// file, torn bytes, a version from an older simulator — is a miss, not
/// an error (the point just restarts from cycle 0).
fn load_checkpoint(path: &Path) -> Option<SysState> {
    let bytes = fs::read(path).ok()?;
    match SysState::from_bytes(&bytes) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("{}: ignoring undecodable checkpoint ({e})", path.display());
            None
        }
    }
}

fn load_cached(dir: &Path, key: &str) -> Option<RunResult> {
    let text = fs::read_to_string(cache_path(dir, key)).ok()?;
    run_result_from_value(&serde_json::from_str(&text).ok()?)
}

fn store_cached(dir: &Path, key: &str, result: &RunResult) {
    fs::create_dir_all(dir).expect("create cache dir");
    let path = cache_path(dir, key);
    fs::write(
        &path,
        serde_json::to_string_pretty(&run_result_to_value(result)).expect("encode"),
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn core_stats_to_value(c: &CoreStats) -> Value {
    map(vec![
        ("cycles", Value::U64(c.cycles)),
        ("retired", Value::U64(c.retired)),
        ("fetch_groups", Value::U64(c.fetch_groups)),
        (
            "breakdown",
            Value::Seq(c.breakdown.iter().map(|&x| Value::U64(x)).collect()),
        ),
        ("branches", Value::U64(c.branches)),
        ("mispredicts", Value::U64(c.mispredicts)),
    ])
}

fn core_stats_from_value(v: &Value) -> Option<CoreStats> {
    let breakdown_list = v.get("breakdown")?.as_array()?;
    let mut breakdown = [0u64; 7];
    if breakdown_list.len() != breakdown.len() {
        return None;
    }
    for (slot, item) in breakdown.iter_mut().zip(breakdown_list) {
        *slot = item.as_u64()?;
    }
    Some(CoreStats {
        cycles: v.get("cycles")?.as_u64()?,
        retired: v.get("retired")?.as_u64()?,
        fetch_groups: v.get("fetch_groups")?.as_u64()?,
        breakdown,
        branches: v.get("branches")?.as_u64()?,
        mispredicts: v.get("mispredicts")?.as_u64()?,
    })
}

fn mem_stats_to_value(m: &MemStats) -> Value {
    map(vec![
        ("ifetch_reqs", Value::U64(m.ifetch_reqs)),
        ("data_reqs", Value::U64(m.data_reqs)),
        ("l2_reqs", Value::U64(m.l2_reqs)),
        ("dve_reqs", Value::U64(m.dve_reqs)),
        ("vmu_reqs", Value::U64(m.vmu_reqs)),
        ("coherence_msgs", Value::U64(m.coherence_msgs)),
        ("line_migrations", Value::U64(m.line_migrations)),
    ])
}

fn mem_stats_from_value(v: &Value) -> Option<MemStats> {
    Some(MemStats {
        ifetch_reqs: v.get("ifetch_reqs")?.as_u64()?,
        data_reqs: v.get("data_reqs")?.as_u64()?,
        l2_reqs: v.get("l2_reqs")?.as_u64()?,
        dve_reqs: v.get("dve_reqs")?.as_u64()?,
        vmu_reqs: v.get("vmu_reqs")?.as_u64()?,
        coherence_msgs: v.get("coherence_msgs")?.as_u64()?,
        line_migrations: v.get("line_migrations")?.as_u64()?,
    })
}

fn runtime_stats_to_value(r: &RuntimeStats) -> Value {
    map(vec![
        ("tasks_run", Value::U64(r.tasks_run)),
        ("steals", Value::U64(r.steals)),
        ("failed_steals", Value::U64(r.failed_steals)),
        ("overhead_cycles", Value::U64(r.overhead_cycles)),
    ])
}

fn runtime_stats_from_value(v: &Value) -> Option<RuntimeStats> {
    Some(RuntimeStats {
        tasks_run: v.get("tasks_run")?.as_u64()?,
        steals: v.get("steals")?.as_u64()?,
        failed_steals: v.get("failed_steals")?.as_u64()?,
        overhead_cycles: v.get("overhead_cycles")?.as_u64()?,
    })
}

fn opt_to_value(v: Option<Value>) -> Value {
    v.unwrap_or(Value::Null)
}

fn snapshot_to_value(s: &StatsSnapshot) -> Value {
    Value::Seq(
        s.iter()
            .map(|(p, v)| Value::Seq(vec![Value::Str(p.to_string()), Value::U64(v)]))
            .collect(),
    )
}

fn snapshot_from_value(v: &Value) -> Option<StatsSnapshot> {
    let entries = v
        .as_array()?
        .iter()
        .map(|pair| {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            Some((pair[0].as_str()?.to_string(), pair[1].as_u64()?))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(StatsSnapshot::from_entries(entries))
}

fn run_result_to_value(r: &RunResult) -> Value {
    map(vec![
        ("wall_ns", Value::F64(r.wall_ns)),
        ("uncore_cycles", Value::U64(r.uncore_cycles)),
        ("big", opt_to_value(r.big.as_ref().map(core_stats_to_value))),
        (
            "littles",
            Value::Seq(r.littles.iter().map(core_stats_to_value).collect()),
        ),
        (
            "lanes",
            Value::Seq(r.lanes.iter().map(core_stats_to_value).collect()),
        ),
        ("fetch_groups", Value::U64(r.fetch_groups)),
        ("mem", mem_stats_to_value(&r.mem)),
        (
            "runtime",
            opt_to_value(r.runtime.as_ref().map(runtime_stats_to_value)),
        ),
        ("stats", snapshot_to_value(&r.stats)),
    ])
}

fn run_result_from_value(v: &Value) -> Option<RunResult> {
    let opt_core = |v: &Value| -> Option<Option<CoreStats>> {
        if v.is_null() {
            Some(None)
        } else {
            core_stats_from_value(v).map(Some)
        }
    };
    let core_list = |v: &Value| -> Option<Vec<CoreStats>> {
        v.as_array()?.iter().map(core_stats_from_value).collect()
    };
    Some(RunResult {
        wall_ns: v.get("wall_ns")?.as_f64()?,
        uncore_cycles: v.get("uncore_cycles")?.as_u64()?,
        big: opt_core(v.get("big")?)?,
        littles: core_list(v.get("littles")?)?,
        lanes: core_list(v.get("lanes")?)?,
        fetch_groups: v.get("fetch_groups")?.as_u64()?,
        mem: mem_stats_from_value(v.get("mem")?)?,
        runtime: if v.get("runtime")?.is_null() {
            None
        } else {
            Some(runtime_stats_from_value(v.get("runtime")?)?)
        },
        // Files from before the stats snapshot existed lack this entry and
        // decode as misses, which re-simulates — exactly right.
        stats: snapshot_from_value(v.get("stats")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> RunResult {
        RunResult {
            wall_ns: 1234.5,
            uncore_cycles: 42,
            big: Some(CoreStats {
                cycles: 10,
                retired: 9,
                fetch_groups: 3,
                breakdown: [1, 2, 3, 4, 0, 0, 0],
                branches: 2,
                mispredicts: 1,
            }),
            littles: vec![CoreStats::default(); 2],
            lanes: vec![],
            fetch_groups: 7,
            mem: MemStats {
                ifetch_reqs: 1,
                data_reqs: 2,
                l2_reqs: 3,
                dve_reqs: 6,
                vmu_reqs: 7,
                coherence_msgs: 4,
                line_migrations: 5,
            },
            runtime: Some(RuntimeStats {
                tasks_run: 8,
                steals: 1,
                failed_steals: 0,
                overhead_cycles: 99,
            }),
            stats: StatsSnapshot::from_entries(vec![
                ("sys.clock.uncore".into(), 42),
                ("sys.big.l1d.misses".into(), 11),
            ]),
        }
    }

    #[test]
    fn run_result_round_trips_through_json() {
        let r = sample_result();
        let text = serde_json::to_string_pretty(&run_result_to_value(&r)).unwrap();
        let back = run_result_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn run_result_none_fields_round_trip() {
        let r = RunResult::default();
        let text = serde_json::to_string_pretty(&run_result_to_value(&r)).unwrap();
        let back = run_result_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn run_parallel_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = run_parallel(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_serial_matches_parallel() {
        let items: Vec<u64> = (0..37).collect();
        assert_eq!(
            run_parallel(&items, 1, |&x| x * x),
            run_parallel(&items, 6, |&x| x * x)
        );
    }

    #[test]
    fn no_skip_opt_rekeys_but_results_match() {
        let w = Arc::new(bvl_workloads::kernels::vvadd::build(
            bvl_workloads::Scale::tiny(),
        ));
        let jobs = [SweepJob::new(
            SystemKind::L1,
            &w,
            "tiny",
            SimParams::default(),
        )];
        let mut opts = ExpOpts::for_scale("tiny", std::env::temp_dir()).with_jobs(1);
        let skip_on = run_sweep(&jobs, &opts);
        opts.no_skip = true;
        // The flag changes the cache key, so this re-simulates naively
        // rather than replaying the memoized skip-on result.
        let naive = run_sweep(&jobs, &opts);
        assert_eq!(skip_on, naive);
        let t = opts.throughput.snapshot();
        assert_eq!(t.runs, 2);
        assert!(t.edges_skipped > 0, "skip-on run never skipped");
        assert!(t.edges_run > t.edges_skipped);
        assert_eq!(t.since(&t), Throughput::default());
    }

    #[test]
    fn cache_key_ignores_observability_knobs() {
        let w = Arc::new(bvl_workloads::kernels::vvadd::build(
            bvl_workloads::Scale::tiny(),
        ));
        let plain = SweepJob::new(SystemKind::B4Vl, &w, "tiny", SimParams::default());
        let observed = SimParams {
            checkpoint_every: 512,
            trace: true,
            ..SimParams::default()
        };
        let armed = SweepJob::new(SystemKind::B4Vl, &w, "tiny", observed);
        assert_eq!(
            plain.cache_key(),
            armed.cache_key(),
            "checkpoint cadence and tracing leave results byte-identical, \
             so they must not fork the cache"
        );
    }

    #[test]
    fn cache_keys_distinguish_params() {
        let w = Arc::new(bvl_workloads::kernels::vvadd::build(
            bvl_workloads::Scale::tiny(),
        ));
        let a = SweepJob::new(SystemKind::B4Vl, &w, "tiny", SimParams::default());
        let mut fast = SimParams::default();
        fast.clocks.big_ghz = 2.0;
        let b = SweepJob::new(SystemKind::B4Vl, &w, "tiny", fast);
        assert_ne!(a.cache_key(), b.cache_key());
        let c = SweepJob::new(SystemKind::BDv, &w, "tiny", SimParams::default());
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
