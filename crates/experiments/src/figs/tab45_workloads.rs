//! Tables IV & V — workload characterization: dynamic instruction
//! counts, vectorized-operation fraction (VOp), memory behaviour. Runs
//! each workload functionally on the golden machine at the VLITTLE
//! vector length.
//!
//! Golden-model runs are not `bvl_sim::simulate` points, so they fan out
//! through [`crate::sweep::run_parallel`] instead of the cached matrix.

use crate::sweep::run_parallel;
use crate::{print_table, ExpOpts};
use bvl_isa::exec::Machine;
use bvl_workloads::{all_data_parallel, all_task_parallel, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Characterization {
    workload: String,
    class: String,
    scalar_dyn_instrs: u64,
    vector_dyn_instrs: u64,
    vector_elem_ops: u64,
    vop_fraction: f64,
    scalar_mem_ops: u64,
    vector_mem_instrs: u64,
    branches: u64,
    tasks: usize,
}

fn characterize(w: &Workload) -> Characterization {
    // Vectorized entry when available (Table V's VOp), scalar otherwise.
    let entry = w.vector_entry.unwrap_or(w.serial_entry);
    let mut m = Machine::new(w.mem.fork(), 512);
    m.set_pc(entry);
    m.run(&w.program, 2_000_000_000).expect("workload runs");
    (w.check)(m.mem()).expect("reference check");
    let c = m.counters();
    Characterization {
        workload: w.name.to_string(),
        class: format!("{:?}", w.class),
        scalar_dyn_instrs: c.instrs - c.vector_instrs,
        vector_dyn_instrs: c.vector_instrs,
        vector_elem_ops: c.vector_elem_ops,
        vop_fraction: c.vectorized_fraction(),
        scalar_mem_ops: c.scalar_mem_ops,
        vector_mem_instrs: c.vector_mem_instrs,
        branches: c.branches,
        tasks: w.total_tasks(),
    }
}

/// Regenerates Tables IV & V at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let workloads: Vec<Workload> = all_data_parallel(opts.scale)
        .into_iter()
        .chain(all_task_parallel(opts.scale))
        .collect();
    let out = run_parallel(&workloads, opts.jobs, characterize);

    println!(
        "\n## Tables IV & V (workload characterization, scale = {})\n",
        opts.scale_name
    );
    let mut rows = Vec::new();
    for c in &out {
        rows.push(vec![
            c.workload.clone(),
            c.class.clone(),
            c.scalar_dyn_instrs.to_string(),
            c.vector_dyn_instrs.to_string(),
            c.vector_elem_ops.to_string(),
            format!("{:.0}%", 100.0 * c.vop_fraction),
            c.scalar_mem_ops.to_string(),
            c.vector_mem_instrs.to_string(),
            c.tasks.to_string(),
        ]);
    }
    print_table(
        &[
            "workload",
            "class",
            "scalar instrs",
            "vector instrs",
            "vector elem ops",
            "VOp",
            "scalar mem",
            "vector mem",
            "tasks",
        ],
        &rows,
    );
    opts.save_json("tab45_workloads", &out);
}
