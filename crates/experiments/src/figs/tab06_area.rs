//! Table VI — post-synthesis-seeded area model: 4L vs 4VL bill of
//! materials, overhead percentages, and the Ara-referenced 1bDV estimate.
//! Pure arithmetic — no simulation, nothing to fan out.

use crate::{print_table, ExpOpts};
use bvl_area::{
    cluster_4l, cluster_4vl, dve_estimate_kge, four_ariane_with_l1_kge, vlittle_overhead,
    LittleCoreRtl,
};

/// Regenerates Table VI.
pub fn run(opts: &ExpOpts) {
    println!("\n## Table VI (area model, 12nm post-synthesis component areas)\n");
    let mut rows = Vec::new();
    for rtl in [LittleCoreRtl::Simple, LittleCoreRtl::Ariane] {
        let l4 = cluster_4l(rtl);
        let vl4 = cluster_4vl(rtl);
        for c in &vl4.components {
            rows.push(vec![
                format!("{rtl:?}"),
                c.name.to_string(),
                format!("{:.1}", c.area_kum2),
                format!("x{}", c.count),
            ]);
        }
        rows.push(vec![
            format!("{rtl:?}"),
            "TOTAL 4L".into(),
            format!("{:.1}", l4.total_kum2),
            "".into(),
        ]);
        rows.push(vec![
            format!("{rtl:?}"),
            "TOTAL 4VL".into(),
            format!("{:.1}", vl4.total_kum2),
            "".into(),
        ]);
        rows.push(vec![
            format!("{rtl:?}"),
            "4VL vs 4L overhead".into(),
            format!("{:.1}%", 100.0 * vlittle_overhead(rtl)),
            "".into(),
        ]);
    }
    print_table(
        &["little core", "component", "area (kum^2)", "count"],
        &rows,
    );

    println!("\n### 1bDV first-order estimate (Section VI)\n");
    print_table(
        &["quantity", "kGE"],
        &[
            vec![
                "8x64b-lane Ara (= 16x32b DVE)".into(),
                format!("{:.0}", dve_estimate_kge()),
            ],
            vec![
                "4x Ariane + L1s".into(),
                format!("{:.0}", four_ariane_with_l1_kge()),
            ],
        ],
    );
    opts.save_json(
        "tab06_area",
        &(
            cluster_4vl(LittleCoreRtl::Simple),
            cluster_4l(LittleCoreRtl::Simple),
        ),
    );
}
