//! Figure 8 — performance impact of the VMU's load/store data-queue
//! sizes (the repurposed L1I SRAM capacity) on `1b-4VL`.

use crate::sweep::{run_sweep, SweepJob};
use crate::{fmt2, print_table, ExpOpts};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{all_data_parallel, Workload};
use serde::Serialize;
use std::sync::Arc;

const SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

#[derive(Serialize)]
struct SweepPoint {
    workload: String,
    queue_lines: usize,
    wall_ns: f64,
}

/// Regenerates Figure 8 at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let workloads: Vec<Arc<Workload>> = all_data_parallel(opts.scale)
        .into_iter()
        .map(Arc::new)
        .collect();
    let jobs: Vec<SweepJob> = workloads
        .iter()
        .flat_map(|w| {
            SIZES.into_iter().map(|size| {
                let mut params = SimParams::default();
                params.engine.vmu.load_data_slots = size;
                params.engine.vmu.store_data_slots = size;
                SweepJob::new(SystemKind::B4Vl, w, &opts.scale_name, params)
            })
        })
        .collect();
    let results = run_sweep(&jobs, opts);

    println!(
        "\n## Figure 8 (VMU data-queue sweep on 1b-4VL, time normalized to {} lines, scale = {})\n",
        SIZES[0], opts.scale_name
    );
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let mut row = vec![w.name.to_string()];
        let mut base = None;
        for (si, size) in SIZES.into_iter().enumerate() {
            let r = &results[wi * SIZES.len() + si];
            let b = *base.get_or_insert(r.wall_ns);
            row.push(fmt2(r.wall_ns / b));
            out.push(SweepPoint {
                workload: w.name.to_string(),
                queue_lines: size,
                wall_ns: r.wall_ns,
            });
        }
        rows.push(row);
    }
    let size_labels: Vec<String> = SIZES.iter().map(|s| format!("{s} lines")).collect();
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(size_labels.iter().map(String::as_str))
        .collect();
    print_table(&headers, &rows);
    opts.save_json("fig08_lsq_sweep", &out);
}
