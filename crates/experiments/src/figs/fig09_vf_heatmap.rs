//! Figure 9 — performance of `1bIV-4L` and `1b-4VL` at every (big,
//! little) voltage/frequency combination, reported as speedup over `1L`
//! at 1 GHz.

use crate::sweep::{run_sweep, SweepJob};
use crate::{fmt2, print_table, ExpOpts};
use bvl_power::{BIG_LEVELS, LITTLE_LEVELS};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{all_data_parallel, Workload};
use serde::Serialize;
use std::sync::Arc;

const SYSTEMS: [SystemKind; 2] = [SystemKind::BIv4L, SystemKind::B4Vl];

#[derive(Serialize)]
struct HeatCell {
    workload: String,
    system: String,
    big_level: &'static str,
    little_level: &'static str,
    speedup_over_1l: f64,
}

/// Regenerates Figure 9 at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let workloads: Vec<Arc<Workload>> = all_data_parallel(opts.scale)
        .into_iter()
        .map(Arc::new)
        .collect();

    // One matrix: per workload, the 1L@1GHz baseline then the full
    // (system × big × little) grid, consumed back in the same order.
    let mut jobs = Vec::new();
    for w in &workloads {
        jobs.push(SweepJob::new(
            SystemKind::L1,
            w,
            &opts.scale_name,
            SimParams::default(),
        ));
        for kind in SYSTEMS {
            for b in BIG_LEVELS {
                for l in LITTLE_LEVELS {
                    let mut params = SimParams::default();
                    params.clocks.big_ghz = b.ghz;
                    params.clocks.little_ghz = l.ghz;
                    jobs.push(SweepJob::new(kind, w, &opts.scale_name, params));
                }
            }
        }
    }
    let results = run_sweep(&jobs, opts);
    let mut results = results.iter();

    let mut out = Vec::new();
    for w in &workloads {
        let base = results.next().expect("baseline run");
        for kind in SYSTEMS {
            println!(
                "\n## Figure 9: {} on {} (speedup over 1L@1GHz, scale = {})\n",
                w.name,
                kind.label(),
                opts.scale_name
            );
            let mut rows = Vec::new();
            for b in BIG_LEVELS {
                let mut row = vec![b.name.to_string()];
                for l in LITTLE_LEVELS {
                    let r = results.next().expect("grid run");
                    let speedup = base.wall_ns / r.wall_ns;
                    row.push(fmt2(speedup));
                    out.push(HeatCell {
                        workload: w.name.to_string(),
                        system: kind.label().to_string(),
                        big_level: b.name,
                        little_level: l.name,
                        speedup_over_1l: speedup,
                    });
                }
                rows.push(row);
            }
            let headers: Vec<&str> = std::iter::once("big \\ little")
                .chain(LITTLE_LEVELS.iter().map(|l| l.name))
                .collect();
            print_table(&headers, &rows);
        }
    }
    opts.save_json("fig09_vf_heatmap", &out);
}
