//! Ablation — VXU topology: the paper's area-efficient unidirectional
//! ring versus an idealized crossbar (section III-D calls the crossbar
//! the lower-latency, higher-area alternative). Measured on the
//! cross-element-heavy workloads (reductions/permutations).

use crate::sweep::{run_sweep, SweepJob};
use crate::{fmt2, print_table, ExpOpts};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::apps::{lavamd, particlefilter};
use bvl_workloads::kernels::saxpy;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    workload: String,
    ring_ns: f64,
    crossbar_ns: f64,
    crossbar_speedup: f64,
}

/// Regenerates the VXU-topology ablation at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let workloads = [
        Arc::new(lavamd::build(opts.scale)), // vfredosum per particle
        Arc::new(particlefilter::build(opts.scale)), // vfredmax + vfirst
        Arc::new(saxpy::build(opts.scale)),  // control: no cross-element ops
    ];
    let mut crossbar = SimParams::default();
    crossbar.engine.vxu.crossbar = true;
    let jobs: Vec<SweepJob> = workloads
        .iter()
        .flat_map(|w| {
            [SimParams::default(), crossbar.clone()]
                .into_iter()
                .map(|params| SweepJob::new(SystemKind::B4Vl, w, &opts.scale_name, params))
        })
        .collect();
    let results = run_sweep(&jobs, opts);

    let mut out = Vec::new();
    let mut rows = Vec::new();
    println!(
        "\n## Ablation: VXU ring vs idealized crossbar (1b-4VL, scale = {})\n",
        opts.scale_name
    );
    for (wi, w) in workloads.iter().enumerate() {
        let (ring, xbar) = (&results[wi * 2], &results[wi * 2 + 1]);
        let speedup = ring.wall_ns / xbar.wall_ns;
        rows.push(vec![
            w.name.to_string(),
            format!("{:.0}", ring.wall_ns),
            format!("{:.0}", xbar.wall_ns),
            fmt2(speedup),
        ]);
        out.push(Row {
            workload: w.name.to_string(),
            ring_ns: ring.wall_ns,
            crossbar_ns: xbar.wall_ns,
            crossbar_speedup: speedup,
        });
    }
    print_table(
        &["workload", "ring (ns)", "crossbar (ns)", "crossbar speedup"],
        &rows,
    );
    opts.save_json("abl_vxu_topology", &out);
}
