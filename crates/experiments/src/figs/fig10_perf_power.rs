//! Figure 10 — execution time vs estimated average power of `1b-4VL`
//! over the V/F grid, with the Pareto frontier marked.

use crate::sweep::{run_sweep, SweepJob};
use crate::{print_table, ExpOpts};
use bvl_power::{pareto_frontier, PerfPowerPoint, SystemPower, BIG_LEVELS, LITTLE_LEVELS};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{all_data_parallel, Workload};
use std::sync::Arc;

/// Regenerates Figure 10 at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let workloads: Vec<Arc<Workload>> = all_data_parallel(opts.scale)
        .into_iter()
        .map(Arc::new)
        .collect();
    let mut jobs = Vec::new();
    for w in &workloads {
        for b in BIG_LEVELS {
            for l in LITTLE_LEVELS {
                let mut params = SimParams::default();
                params.clocks.big_ghz = b.ghz;
                params.clocks.little_ghz = l.ghz;
                jobs.push(SweepJob::new(SystemKind::B4Vl, w, &opts.scale_name, params));
            }
        }
    }
    let results = run_sweep(&jobs, opts);
    let mut results = results.iter();

    let mut all_points = Vec::new();
    for w in &workloads {
        println!(
            "\n## Figure 10: 1b-4VL time/power for {} (scale = {})\n",
            w.name, opts.scale_name
        );
        let mut points = Vec::new();
        for b in BIG_LEVELS {
            for l in LITTLE_LEVELS {
                let r = results.next().expect("grid run");
                points.push(PerfPowerPoint {
                    label: format!("{} ({},{})", w.name, b.name, l.name),
                    time: r.wall_ns,
                    power: SystemPower::BigPlusLittles(4).watts(b, l),
                });
            }
        }
        let frontier = pareto_frontier(&points);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.0}", p.time),
                    format!("{:.3}", p.power),
                    format!("{:.1}", p.energy() / 1000.0),
                    if frontier.contains(p) {
                        "*".into()
                    } else {
                        "".into()
                    },
                ]
            })
            .collect();
        print_table(
            &["config", "time (ns)", "power (W)", "energy (µJ)", "pareto"],
            &rows,
        );
        all_points.extend(points);
    }
    opts.save_json("fig10_perf_power", &all_points);
}
