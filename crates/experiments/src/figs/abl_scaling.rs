//! Future-work exploration (paper Section IX: "scalability of
//! big.VLITTLE architectures beyond the scope of mobile SoCs"): scale the
//! VLITTLE cluster to 2, 4 and 8 little cores and measure how the engine's
//! hardware vector length and bank count track performance.
//!
//! The custom-geometry engine runs here are not expressible as
//! `bvl_sim::simulate` points, so they fan out through
//! [`crate::sweep::run_parallel`] instead of the cached sweep matrix.

use crate::sweep::run_parallel;
use crate::{fmt2, print_table, ExpOpts};
use bvl_core::big::{BigCore, BigParams};
use bvl_core::fetch::TEXT_BASE;
use bvl_core::types::VectorEngine;
use bvl_mem::{HierConfig, MemHierarchy, SharedMem};
use bvl_vengine::regmap::RegMap;
use bvl_vengine::{EngineParams, VLittleEngine};
use bvl_workloads::{all_data_parallel, Workload};
use serde::Serialize;
use std::sync::Arc;

const LANES: [u8; 3] = [2, 4, 8];

#[derive(Serialize)]
struct ScalePoint {
    workload: String,
    lanes: u8,
    vlen_bits: u32,
    cycles: u64,
}

/// Runs a workload's vectorized entry on a custom-width VLITTLE cluster.
fn run_vlittle(w: &Workload, lanes: u8) -> u64 {
    let shared = SharedMem::new(w.mem.fork());
    let mut hier = MemHierarchy::new(HierConfig::with_little(lanes as usize));
    hier.set_vector_mode(true);
    let params = EngineParams {
        regmap: RegMap {
            cores: lanes,
            chimes: 2,
            packed: true,
        },
        ..EngineParams::paper_default()
    };
    let mut engine = VLittleEngine::new(params, hier.line_bytes());
    let mut big = BigCore::new(
        shared.clone(),
        Arc::clone(&w.program),
        TEXT_BASE,
        hier.line_bytes(),
        engine.vlen_bits(),
        BigParams::default(),
    );
    big.assign(w.vector_entry.expect("vectorized"));
    for t in 0..400_000_000u64 {
        hier.tick(t);
        engine.tick(t, &mut hier);
        big.tick(t, &mut hier, Some(&mut engine));
        if big.done() && engine.idle() {
            shared
                .with(|m| (w.check)(m))
                .unwrap_or_else(|e| panic!("{} x{}: {e}", w.name, lanes));
            return t;
        }
    }
    panic!("{} on {}-lane VLITTLE did not finish", w.name, lanes);
}

/// Regenerates the cluster-scaling ablation at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let workloads: Vec<Arc<Workload>> = all_data_parallel(opts.scale)
        .into_iter()
        .map(Arc::new)
        .collect();
    let points: Vec<(&Arc<Workload>, u8)> = workloads
        .iter()
        .flat_map(|w| LANES.into_iter().map(move |lanes| (w, lanes)))
        .collect();
    let cycles = run_parallel(&points, opts.jobs, |&(w, lanes)| run_vlittle(w, lanes));

    println!(
        "\n## Ablation: VLITTLE cluster scaling (speedup over 2 lanes, scale = {})\n",
        opts.scale_name
    );
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let runs = &cycles[wi * LANES.len()..(wi + 1) * LANES.len()];
        let base = runs[0]; // 2 lanes
        let mut row = vec![w.name.to_string()];
        for (li, lanes) in LANES.into_iter().enumerate() {
            row.push(fmt2(base as f64 / runs[li] as f64));
            out.push(ScalePoint {
                workload: w.name.to_string(),
                lanes,
                vlen_bits: u32::from(lanes) * 128,
                cycles: runs[li],
            });
        }
        rows.push(row);
    }
    print_table(
        &[
            "workload",
            "2 lanes (256b)",
            "4 lanes (512b)",
            "8 lanes (1024b)",
        ],
        &rows,
    );
    opts.save_json("abl_scaling", &out);
}
