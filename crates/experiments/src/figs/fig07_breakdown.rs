//! Figure 7 — average execution-time breakdown of the four little cores
//! in `1b-4VL` under three configurations: `1c` (one chime, no packing),
//! `1c+sw` (one chime, packed), `2c+sw` (two chimes, packed).

use crate::sweep::{run_sweep, SweepJob};
use crate::{print_table, ExpOpts};
use bvl_core::types::StallKind;
use bvl_sim::{SimParams, SystemKind};
use bvl_vengine::regmap::RegMap;
use bvl_workloads::{all_data_parallel, Workload};
use serde::Serialize;
use std::sync::Arc;

/// The three engine configurations of Figure 7.
pub const CONFIGS: [&str; 3] = ["1c", "1c+sw", "2c+sw"];

/// One (workload, config) bar of Figure 7.
#[derive(Serialize)]
pub struct BreakdownRow {
    /// Workload name.
    pub workload: String,
    /// Engine configuration label (one of [`CONFIGS`]).
    pub config: &'static str,
    /// Denominator: total cycles summed over every lane and category.
    /// Skipped-window accounting is already folded into the per-lane
    /// breakdowns (the `breakdown` conservation law pins `Σ breakdown ==
    /// cycles` per lane), so this equals `Σ lanes' cycles` exactly.
    pub total_lane_cycles: u64,
    /// `(category label, fraction of total)` in [`StallKind::ALL`] order.
    pub breakdown: Vec<(String, f64)>,
}

fn regmap(name: &str) -> RegMap {
    match name {
        "1c" => RegMap {
            cores: 4,
            chimes: 1,
            packed: false,
        },
        "1c+sw" => RegMap {
            cores: 4,
            chimes: 1,
            packed: true,
        },
        "2c+sw" => RegMap::paper_default(),
        _ => unreachable!(),
    }
}

/// Computes every Figure 7 row at `opts`' scale (workload-major,
/// [`CONFIGS`]-minor) — the testable core of [`run`].
pub fn breakdown_rows(opts: &ExpOpts) -> Vec<BreakdownRow> {
    let workloads: Vec<Arc<Workload>> = all_data_parallel(opts.scale)
        .into_iter()
        .map(Arc::new)
        .collect();
    let jobs: Vec<SweepJob> = workloads
        .iter()
        .flat_map(|w| {
            CONFIGS.into_iter().map(|cfg_name| {
                let mut params = SimParams::default();
                params.engine.regmap = regmap(cfg_name);
                SweepJob::new(SystemKind::B4Vl, w, &opts.scale_name, params)
            })
        })
        .collect();
    let results = run_sweep(&jobs, opts);

    let mut out = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        for (ci, cfg_name) in CONFIGS.into_iter().enumerate() {
            let r = &results[wi * CONFIGS.len() + ci];
            let total: u64 = StallKind::ALL.iter().map(|&k| r.lane_total(k)).sum();
            let breakdown = StallKind::ALL
                .iter()
                .map(|&k| {
                    let frac = r.lane_total(k) as f64 / total.max(1) as f64;
                    (k.label().to_string(), frac)
                })
                .collect();
            out.push(BreakdownRow {
                workload: w.name.to_string(),
                config: cfg_name,
                total_lane_cycles: total,
                breakdown,
            });
        }
    }
    out
}

/// Regenerates Figure 7 at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let out = breakdown_rows(opts);

    println!(
        "\n## Figure 7 (1b-4VL lane breakdown, scale = {})\n",
        opts.scale_name
    );
    let headers: Vec<&str> = std::iter::once("workload / config")
        .chain(StallKind::ALL.iter().map(|k| k.label()))
        .chain(std::iter::once("lane cycles"))
        .collect();
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|b| {
            std::iter::once(format!("{} {}", b.workload, b.config))
                .chain(
                    b.breakdown
                        .iter()
                        .map(|(_, f)| format!("{:.1}%", 100.0 * f)),
                )
                .chain(std::iter::once(b.total_lane_cycles.to_string()))
                .collect()
        })
        .collect();
    print_table(&headers, &rows);
    opts.save_json("fig07_breakdown", &out);
}
