//! Ablation — VMIU index coalescing (section III-E: "the VMIU tries to
//! coalesce a number of consecutive indices into a single cache-line
//! request"). Measured on a synthetic gather microbenchmark whose index
//! vector has configurable locality, since the paper-suite kernels are
//! unit/constant-stride.

use crate::sweep::{run_sweep, SweepJob};
use crate::{fmt2, print_table, ExpOpts};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{Phase, Scale, Workload, WorkloadClass};
use serde::Serialize;
use std::sync::Arc;

const LOCALITIES: [u64; 2] = [1, 4];
const COALESCE: [u32; 2] = [1, 4];

/// Builds a gather kernel: `out[i] = table[idx[i]]` with indices that are
/// `locality`-way clustered (locality 4 = groups of 4 consecutive table
/// slots — exactly what the VMIU can coalesce into one line request).
fn build_gather(scale: Scale, locality: u64) -> Workload {
    let n = scale.n.max(1024);
    let table: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    // Byte-offset indices: clustered runs of `locality` consecutive
    // elements starting at deterministic pseudo-random positions.
    let mut idx = Vec::with_capacity(n as usize);
    let mut seed = scale.seed | 1;
    while idx.len() < n as usize {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let base = (seed >> 33) % (n - locality);
        for k in 0..locality {
            idx.push(((base + k) * 4) as u32);
        }
    }
    idx.truncate(n as usize);

    let mut mem = SimMemory::default();
    let table_b = mem.alloc_u32(&table);
    let idx_b = mem.alloc_u32(&idx);
    let out_b = mem.alloc(n * 4, 64);

    let expect: Vec<u32> = idx.iter().map(|&off| table[(off / 4) as usize]).collect();

    let (start, end, vl) = (XReg::new(10), XReg::new(11), XReg::new(14));
    let (t0, t1) = (XReg::new(15), XReg::new(16));
    let (b0, b1, b2) = (XReg::new(23), XReg::new(24), XReg::new(25));
    let mut a = Assembler::new();
    a.label("vector");
    a.li(start, 0);
    a.li(end, n as i64);
    a.li(b0, idx_b as i64);
    a.li(b1, table_b as i64);
    a.li(b2, out_b as i64);
    a.sub(t1, end, start);
    a.label("strip");
    a.vsetvli(vl, t1, Sew::E32);
    a.vle(VReg::new(1), b0); // byte offsets
    a.vluxei(VReg::new(2), b1, VReg::new(1)); // gather
    a.vse(VReg::new(2), b2);
    a.slli(t0, vl, 2);
    a.add(b0, b0, t0);
    a.add(b2, b2, t0);
    a.sub(t1, t1, vl);
    a.bne(t1, XReg::ZERO, "strip");
    a.vmfence();
    a.halt();

    let program = Arc::new(a.assemble().expect("gather assembles"));
    let entry = program.label("vector").expect("label");
    Workload {
        name: "gather",
        class: WorkloadClass::DataParallelKernel,
        serial_entry: entry, // unused: this is a vector-only microbench
        vector_entry: Some(entry),
        program,
        mem,
        phases: vec![Phase::new(Vec::new())],
        check: Box::new(move |m| {
            let got = m.read_u32_array(out_b, expect.len());
            if got == expect {
                Ok(())
            } else {
                Err("gather mismatch".into())
            }
        }),
    }
}

#[derive(Serialize)]
struct Row {
    locality: u64,
    coalesce: u32,
    wall_ns: f64,
    line_reqs: u64,
}

/// Regenerates the VMIU-coalescing ablation at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let mut jobs = Vec::new();
    for locality in LOCALITIES {
        // Same kernel name, different index vector — the key carries the
        // locality so the variants do not collide in the cache.
        let w = Arc::new(build_gather(opts.scale, locality));
        let key = format!("gather-loc{locality}@{}", opts.scale_name);
        for coalesce in COALESCE {
            let mut params = SimParams::default();
            params.engine.vmu.coalesce = coalesce;
            jobs.push(SweepJob::keyed(SystemKind::B4Vl, &w, key.clone(), params));
        }
    }
    let results = run_sweep(&jobs, opts);
    let mut results = results.iter();

    let mut rows = Vec::new();
    let mut out = Vec::new();
    println!(
        "\n## Ablation: VMIU index coalescing on 1b-4VL (gather microbenchmark, scale = {})\n",
        opts.scale_name
    );
    for locality in LOCALITIES {
        for coalesce in COALESCE {
            let r = results.next().expect("matrix run");
            rows.push(vec![
                locality.to_string(),
                coalesce.to_string(),
                format!("{:.0}", r.wall_ns),
                r.stat("sys.mem.data_reqs").to_string(),
                fmt2(r.stat("sys.mem.data_reqs") as f64 / opts.scale.n.max(1024) as f64),
            ]);
            out.push(Row {
                locality,
                coalesce,
                wall_ns: r.wall_ns,
                line_reqs: r.stat("sys.mem.data_reqs"),
            });
        }
    }
    print_table(
        &[
            "index locality",
            "coalesce",
            "time (ns)",
            "line reqs",
            "reqs/elem",
        ],
        &rows,
    );
    opts.save_json("abl_vmu_coalesce", &out);
}
