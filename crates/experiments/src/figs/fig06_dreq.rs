//! Figure 6 — data requests entering the memory system, normalized to
//! `1bDV`.

use crate::sweep::{run_sweep, SweepJob};
use crate::{fmt2, print_table, ExpOpts, Measurement};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{all_data_parallel, Workload};
use std::sync::Arc;

const SYSTEMS: [SystemKind; 3] = [SystemKind::BIv4L, SystemKind::BDv, SystemKind::B4Vl];

/// Regenerates Figure 6 at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let params = SimParams::default();
    let workloads: Vec<Arc<Workload>> = all_data_parallel(opts.scale)
        .into_iter()
        .map(Arc::new)
        .collect();
    let jobs: Vec<SweepJob> = workloads
        .iter()
        .flat_map(|w| {
            SYSTEMS
                .into_iter()
                .map(|kind| SweepJob::new(kind, w, &opts.scale_name, params.clone()))
        })
        .collect();
    let results = run_sweep(&jobs, opts);

    let mut rows = Vec::new();
    let mut measurements = Vec::new();
    println!(
        "\n## Figure 6 (data requests, normalized to 1bDV, scale = {})\n",
        opts.scale_name
    );
    for (wi, w) in workloads.iter().enumerate() {
        let runs = &results[wi * SYSTEMS.len()..(wi + 1) * SYSTEMS.len()];
        for (i, kind) in SYSTEMS.into_iter().enumerate() {
            measurements.push(Measurement::of(w.name, kind, &runs[i]));
        }
        let base = runs[1].stat("sys.mem.data_reqs").max(1) as f64; // 1bDV
        let mut row = vec![w.name.to_string()];
        for r in runs {
            row.push(fmt2(r.stat("sys.mem.data_reqs") as f64 / base));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(SYSTEMS.iter().map(|k| k.label()))
        .collect();
    print_table(&headers, &rows);
    opts.save_json("fig06_dreq", &measurements);
}
