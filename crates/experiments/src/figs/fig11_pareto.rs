//! Figure 11 — execution time vs estimated power for all four multi-core
//! designs across the V/F grid, with per-design Pareto frontiers. The
//! headline claims: `1b-4VL` owns the low-power (<1 W) region and
//! approaches `1bDV` in the high-power region.

use crate::sweep::{run_sweep, SweepJob};
use crate::{print_table, ExpOpts};
use bvl_power::{pareto_frontier, PerfPowerPoint, SystemPower, BIG_LEVELS, LITTLE_LEVELS};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{all_data_parallel, Workload};
use serde::Serialize;
use std::sync::Arc;

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::B4L,
    SystemKind::BIv4L,
    SystemKind::BDv,
    SystemKind::B4Vl,
];

#[derive(Serialize)]
struct DesignPoints {
    workload: String,
    system: String,
    points: Vec<PerfPowerPoint>,
    frontier: Vec<PerfPowerPoint>,
}

fn power_model(kind: SystemKind) -> SystemPower {
    match kind {
        SystemKind::B4L | SystemKind::BIv4L | SystemKind::B4Vl => SystemPower::BigPlusLittles(4),
        SystemKind::BDv => SystemPower::BigPlusDve,
        SystemKind::B1 | SystemKind::BIv => SystemPower::OneBig,
        SystemKind::L1 => SystemPower::OneLittle,
    }
}

/// The grid cells evaluated for `kind`: the DVE follows the big clock, so
/// little levels do not apply to systems without a little cluster.
fn grid(kind: SystemKind) -> Vec<(bvl_power::VfLevel, bvl_power::VfLevel)> {
    let mut cells = Vec::new();
    for b in BIG_LEVELS {
        for l in LITTLE_LEVELS {
            if kind == SystemKind::BDv && l.name != "l0" {
                continue;
            }
            cells.push((b, l));
        }
    }
    cells
}

/// Regenerates Figure 11 at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let workloads: Vec<Arc<Workload>> = all_data_parallel(opts.scale)
        .into_iter()
        .map(Arc::new)
        .collect();
    let mut jobs = Vec::new();
    for w in &workloads {
        for kind in SYSTEMS {
            for (b, l) in grid(kind) {
                let mut params = SimParams::default();
                params.clocks.big_ghz = b.ghz;
                params.clocks.little_ghz = l.ghz;
                jobs.push(SweepJob::new(kind, w, &opts.scale_name, params));
            }
        }
    }
    let results = run_sweep(&jobs, opts);
    let mut results = results.iter();

    let mut out = Vec::new();
    for w in &workloads {
        println!(
            "\n## Figure 11: Pareto frontiers for {} (scale = {})\n",
            w.name, opts.scale_name
        );
        let mut rows = Vec::new();
        for kind in SYSTEMS {
            let mut points = Vec::new();
            for (b, l) in grid(kind) {
                let r = results.next().expect("grid run");
                points.push(PerfPowerPoint {
                    label: format!("{} ({},{})", kind.label(), b.name, l.name),
                    time: r.wall_ns,
                    power: power_model(kind).watts(b, l),
                });
            }
            let frontier = pareto_frontier(&points);
            for p in &frontier {
                rows.push(vec![
                    p.label.clone(),
                    format!("{:.0}", p.time),
                    format!("{:.3}", p.power),
                ]);
            }
            out.push(DesignPoints {
                workload: w.name.to_string(),
                system: kind.label().to_string(),
                points,
                frontier,
            });
        }
        print_table(&["frontier point", "time (ns)", "power (W)"], &rows);
    }
    opts.save_json("fig11_pareto", &out);
}
