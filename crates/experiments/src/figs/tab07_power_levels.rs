//! Table VII — the voltage/frequency levels and average per-core power
//! used by the Section VII design-space exploration. Pure table dump —
//! no simulation, nothing to fan out.

use crate::{print_table, ExpOpts};
use bvl_power::{BIG_LEVELS, DVE_POWER_RATIO, LITTLE_LEVELS};

/// Regenerates Table VII.
pub fn run(opts: &ExpOpts) {
    println!("\n## Table VII (V/F levels; see bvl-power docs for the reconstruction note)\n");
    let mut rows = Vec::new();
    for l in BIG_LEVELS {
        rows.push(vec![
            "big".into(),
            l.name.into(),
            format!("{:.1}", l.ghz),
            format!("{:.3}", l.watts),
        ]);
    }
    for l in LITTLE_LEVELS {
        rows.push(vec![
            "little".into(),
            l.name.into(),
            format!("{:.1}", l.ghz),
            format!("{:.3}", l.watts),
        ]);
    }
    print_table(&["cluster", "level", "GHz", "avg W/core"], &rows);
    println!("\nDVE power ratio over its control core (Tarantula): {DVE_POWER_RATIO}");
    opts.save_json(
        "tab07_power_levels",
        &(BIG_LEVELS.to_vec(), LITTLE_LEVELS.to_vec()),
    );
}
