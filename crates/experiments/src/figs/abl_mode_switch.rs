//! Ablation — mode-switch break-even (paper Section III-B): switching
//! into vector mode costs ~500 cycles (context save + pipeline flush), so
//! the OS should only reconfigure for large enough vector regions. This
//! experiment sweeps the region size (elements of `saxpy`) and compares
//! reconfiguring into the VLITTLE engine against simply running the
//! region as scalar tasks on the unreconfigured `1b-4L` cluster.

use crate::sweep::{run_sweep, SweepJob};
use crate::{fmt2, print_table, ExpOpts};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::kernels::saxpy;
use bvl_workloads::Scale;
use serde::Serialize;
use std::sync::Arc;

const SYSTEMS: [SystemKind; 3] = [SystemKind::B4Vl, SystemKind::B4L, SystemKind::B1];

#[derive(Serialize)]
struct Point {
    elements: u64,
    vlittle_ns: f64,
    tasks_ns: f64,
    big_scalar_ns: f64,
    switch_wins: bool,
}

/// Regenerates the mode-switch break-even ablation at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let sizes: Vec<u64> = (7..=14).map(|exp| 1u64 << exp).collect();
    let mut jobs = Vec::new();
    for &n in &sizes {
        // Custom region size: the key must carry `n`, not just the scale
        // name, since each point is a differently built workload.
        let w = Arc::new(saxpy::build(Scale { n, ..opts.scale }));
        let key = format!("saxpy-n{n}@{}", opts.scale_name);
        for kind in SYSTEMS {
            jobs.push(SweepJob::keyed(kind, &w, key.clone(), SimParams::default()));
        }
    }
    let results = run_sweep(&jobs, opts);

    let mut out = Vec::new();
    let mut rows = Vec::new();
    println!("\n## Ablation: when is reconfiguring into VLITTLE worth 500 cycles? (saxpy)\n");
    for (i, &n) in sizes.iter().enumerate() {
        let runs = &results[i * SYSTEMS.len()..(i + 1) * SYSTEMS.len()];
        let (vlittle, tasks, big) = (&runs[0], &runs[1], &runs[2]);
        let best_unswitched = tasks.wall_ns.min(big.wall_ns);
        let wins = vlittle.wall_ns < best_unswitched;
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", vlittle.wall_ns),
            format!("{:.0}", tasks.wall_ns),
            format!("{:.0}", big.wall_ns),
            fmt2(best_unswitched / vlittle.wall_ns),
            if wins {
                "switch".into()
            } else {
                "stay scalar".into()
            },
        ]);
        out.push(Point {
            elements: n,
            vlittle_ns: vlittle.wall_ns,
            tasks_ns: tasks.wall_ns,
            big_scalar_ns: big.wall_ns,
            switch_wins: wins,
        });
    }
    print_table(
        &[
            "elements",
            "1b-4VL (ns)",
            "1b-4L tasks (ns)",
            "1b scalar (ns)",
            "switch speedup",
            "OS decision",
        ],
        &rows,
    );
    println!("\n(region-entry penalty: 500 little-cluster cycles, paper Section IV-A)");
    opts.save_json("abl_mode_switch", &out);
}
