//! Figure 4 — speedup over `1L` for every system, task-parallel and
//! data-parallel suites.

use crate::sweep::{run_sweep, SweepJob};
use crate::{fmt2, geomean, print_table, ExpOpts, Measurement};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{all_data_parallel, all_task_parallel, Workload};
use std::sync::Arc;

/// Regenerates Figure 4 at `opts`' scale.
pub fn run(opts: &ExpOpts) {
    let params = SimParams::default();
    let mut measurements = Vec::new();

    for (suite, workloads) in [
        ("task-parallel", all_task_parallel(opts.scale)),
        ("data-parallel", all_data_parallel(opts.scale)),
    ] {
        let workloads: Vec<Arc<Workload>> = workloads.into_iter().map(Arc::new).collect();
        let jobs: Vec<SweepJob> = workloads
            .iter()
            .flat_map(|w| {
                SystemKind::ALL
                    .into_iter()
                    .map(|kind| SweepJob::new(kind, w, &opts.scale_name, params.clone()))
            })
            .collect();
        let results = run_sweep(&jobs, opts);

        println!("\n## Figure 4 ({suite}, scale = {})\n", opts.scale_name);
        let mut rows = Vec::new();
        let mut per_system_speedups: Vec<Vec<f64>> = vec![Vec::new(); SystemKind::ALL.len()];
        for (wi, w) in workloads.iter().enumerate() {
            let runs = &results[wi * SystemKind::ALL.len()..(wi + 1) * SystemKind::ALL.len()];
            let base = &runs[0]; // `1L` is first in `SystemKind::ALL`
            let mut row = vec![w.name.to_string()];
            for (i, kind) in SystemKind::ALL.into_iter().enumerate() {
                let speedup = base.wall_ns / runs[i].wall_ns;
                per_system_speedups[i].push(speedup);
                row.push(fmt2(speedup));
                measurements.push(Measurement::of(w.name, kind, &runs[i]));
            }
            rows.push(row);
        }
        let mut gm = vec!["geomean".to_string()];
        for s in &per_system_speedups {
            gm.push(fmt2(geomean(s)));
        }
        rows.push(gm);
        let headers: Vec<&str> = std::iter::once("workload")
            .chain(SystemKind::ALL.iter().map(|k| k.label()))
            .collect();
        print_table(&headers, &rows);
    }

    opts.save_json("fig04_speedup", &measurements);
}
