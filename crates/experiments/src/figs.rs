//! One module per paper artifact, each exposing `run(&ExpOpts)`.
//!
//! The experiment binaries are thin wrappers over these functions so the
//! `run_all` binary can regenerate every artifact in-process, sharing one
//! [`crate::sweep::SweepCache`] — points common to several figures
//! (fig04/05/06 measure the same `1L`/`1bIV-4L`/`1bDV`/`1b-4VL` runs)
//! then simulate exactly once.
//!
//! Every module builds its full job matrix up front, fans it out through
//! [`crate::sweep::run_sweep`] (or [`crate::sweep::run_parallel`] where
//! the unit of work is not a `simulate` call), and does all printing and
//! accumulation afterwards in deterministic matrix order — output is
//! byte-identical at any `--jobs` count.

pub mod abl_mode_switch;
pub mod abl_scaling;
pub mod abl_vmu_coalesce;
pub mod abl_vxu_topology;
pub mod fig04_speedup;
pub mod fig05_ifetch;
pub mod fig06_dreq;
pub mod fig07_breakdown;
pub mod fig08_lsq_sweep;
pub mod fig09_vf_heatmap;
pub mod fig10_perf_power;
pub mod fig11_pareto;
pub mod tab06_area;
pub mod tab07_power_levels;
pub mod tab45_workloads;
