#![warn(missing_docs)]
//! # bvl-experiments — regenerating the paper's figures and tables
//!
//! One binary per evaluation artifact (DESIGN.md's per-experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig04_speedup` | Figure 4 — speedup over 1L, all systems |
//! | `fig05_ifetch` | Figure 5 — instruction-fetch requests, normalized to 1bDV |
//! | `fig06_dreq` | Figure 6 — data requests, normalized to 1bDV |
//! | `fig07_breakdown` | Figure 7 — 1b-4VL lane execution-time breakdown (1c / 1c+sw / 2c+sw) |
//! | `fig08_lsq_sweep` | Figure 8 — VMU load/store data-queue size sweep |
//! | `fig09_vf_heatmap` | Figure 9 — V/F-level performance heatmaps |
//! | `fig10_perf_power` | Figure 10 — 1b-4VL time/power scatter |
//! | `fig11_pareto` | Figure 11 — time/power Pareto frontiers, all designs |
//! | `tab45_workloads` | Tables IV & V — workload characterization |
//! | `tab06_area` | Table VI — area model |
//! | `tab07_power_levels` | Table VII — V/F levels |
//! | `abl_vxu_topology` | Ablation — VXU ring vs idealized crossbar |
//! | `abl_vmu_coalesce` | Ablation — VMIU index coalescing on/off |
//! | `difftest` | Differential fuzzing — random RVV programs vs the architectural oracle on all systems |
//!
//! Every binary accepts `--scale tiny|default|large` and `--out <dir>`
//! (default `results/`), prints the figure's rows as a markdown table, and
//! writes the raw numbers as JSON so EXPERIMENTS.md is regenerable.

pub mod figs;
pub mod sweep;

use bvl_sim::{RunResult, SimParams, SystemKind};
use bvl_workloads::{Scale, Workload};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use sweep::SweepCache;

/// Command-line options shared by all experiment binaries.
#[derive(Clone)]
pub struct ExpOpts {
    /// Input-size scale.
    pub scale: Scale,
    /// Scale name (for output labelling).
    pub scale_name: String,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
    /// Worker threads for [`sweep::run_sweep`]/[`sweep::run_parallel`]
    /// (`--jobs N`; default = available parallelism; 1 = serial).
    pub jobs: usize,
    /// Whether the memoized run cache is consulted at all. `--no-cache`
    /// clears it, forcing every unique point to simulate fresh.
    pub use_cache: bool,
    /// Whether runs are also persisted to (and reloaded from)
    /// [`ExpOpts::cache_dir`] as JSON (`--persist-cache`).
    pub persist_cache: bool,
    /// On-disk cache location (default `<out>/cache`, `--cache-dir DIR`).
    pub cache_dir: PathBuf,
    /// Force the naive cycle-by-cycle simulation loop for every run
    /// (`--no-skip`): sets [`SimParams::no_skip`] on each sweep point.
    /// Results are bit-identical either way; this exists for A/B timing
    /// and for auditing the quiescence-skip engine in the field.
    pub no_skip: bool,
    /// Emit a whole-system checkpoint every this-many uncore cycles on
    /// every sweep point (`--checkpoint-every N`; 0 disables). Checkpoints
    /// are persisted under `<cache_dir>/ckpt/` and deleted once their
    /// point completes, so after an interrupt only in-flight points have
    /// one on disk. Taking checkpoints never changes results (the
    /// restore-equivalence contract) and never changes cache keys.
    pub checkpoint_every: u64,
    /// Resume an interrupted invocation (`--resume`): completed points
    /// replay from the persisted cache (0 simulate calls), and points
    /// with a leftover checkpoint under `<cache_dir>/ckpt/` restart from
    /// it instead of cycle 0. Implies `use_cache` and `persist_cache`.
    pub resume: bool,
    /// Where to write a Chrome `trace_event` JSON of one traced run
    /// (`--trace-out PATH`): the first sweep through this `ExpOpts`
    /// re-runs its first point with event tracing on and writes the log
    /// there (loadable in `chrome://tracing` / Perfetto). Consumed
    /// once — clones share the slot, so exactly one trace is written per
    /// process however many sweeps run.
    pub trace_out: Arc<Mutex<Option<PathBuf>>>,
    /// The in-memory memo layer, shared by every sweep run through this
    /// `ExpOpts` (clones share the same map).
    pub cache: SweepCache,
    /// Simulator-throughput counters (runs, simulated edges, skip rate,
    /// host seconds), accumulated by every sweep run through this
    /// `ExpOpts` — clones share the same counters.
    pub throughput: sweep::ThroughputTracker,
}

impl ExpOpts {
    /// Options for the named scale with everything else defaulted — the
    /// programmatic entry point used by tests, benches and `run_all`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown scale name.
    pub fn for_scale(scale_name: &str, out_dir: PathBuf) -> Self {
        let scale = match scale_name {
            "tiny" => Scale::tiny(),
            "default" => Scale::default_eval(),
            "large" => Scale::large(),
            other => panic!("unknown scale `{other}`"),
        };
        let cache_dir = out_dir.join("cache");
        ExpOpts {
            scale,
            scale_name: scale_name.to_string(),
            out_dir,
            jobs: sweep::default_jobs(),
            use_cache: true,
            persist_cache: false,
            cache_dir,
            no_skip: false,
            checkpoint_every: 0,
            resume: false,
            trace_out: Arc::new(Mutex::new(None)),
            cache: SweepCache::new(),
            throughput: sweep::ThroughputTracker::new(),
        }
    }

    /// Takes the pending `--trace-out` destination, if any (consuming it
    /// so only the first sweep of the process writes a trace).
    pub fn take_trace_out(&self) -> Option<PathBuf> {
        self.trace_out.lock().expect("trace_out lock").take()
    }

    /// Returns `self` with the worker count replaced (builder-style, for
    /// tests and benches).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Parses `--scale`, `--out`, `--jobs`, `--no-cache`,
    /// `--persist-cache`, `--cache-dir`, `--no-skip`,
    /// `--checkpoint-every`, `--resume` and `--trace-out` from
    /// `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with usage help) on unknown arguments.
    pub fn from_args() -> Self {
        let mut scale_name = "default".to_string();
        let mut out_dir = PathBuf::from("results");
        let mut jobs = sweep::default_jobs();
        let mut use_cache = true;
        let mut persist_cache = false;
        let mut cache_dir = None;
        let mut no_skip = false;
        let mut checkpoint_every = 0u64;
        let mut resume = false;
        let mut trace_out = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    scale_name = args.next().expect("--scale needs a value");
                }
                "--out" => {
                    out_dir = PathBuf::from(args.next().expect("--out needs a value"));
                }
                "--jobs" => {
                    jobs = args
                        .next()
                        .expect("--jobs needs a value")
                        .parse::<usize>()
                        .expect("--jobs needs a positive integer")
                        .max(1);
                }
                "--no-cache" => use_cache = false,
                "--persist-cache" => persist_cache = true,
                "--no-skip" => no_skip = true,
                "--checkpoint-every" => {
                    checkpoint_every = args
                        .next()
                        .expect("--checkpoint-every needs a value")
                        .parse::<u64>()
                        .expect("--checkpoint-every needs an uncore-cycle count");
                }
                "--resume" => resume = true,
                "--cache-dir" => {
                    cache_dir = Some(PathBuf::from(
                        args.next().expect("--cache-dir needs a value"),
                    ));
                }
                "--trace-out" => {
                    trace_out = Some(PathBuf::from(
                        args.next().expect("--trace-out needs a value"),
                    ));
                }
                other => panic!(
                    "unknown argument `{other}` (use --scale tiny|default|large, --out DIR, \
                     --jobs N, --no-cache, --persist-cache, --cache-dir DIR, --no-skip, \
                     --checkpoint-every N, --resume, --trace-out PATH)"
                ),
            }
        }
        let mut opts = ExpOpts::for_scale(&scale_name, out_dir);
        opts.jobs = jobs;
        opts.use_cache = use_cache;
        opts.persist_cache = persist_cache;
        opts.no_skip = no_skip;
        opts.checkpoint_every = checkpoint_every;
        opts.resume = resume;
        if opts.resume {
            // Resuming is meaningless without the persisted cache layers.
            opts.use_cache = true;
            opts.persist_cache = true;
        }
        if let Some(dir) = cache_dir {
            opts.cache_dir = dir;
        }
        *opts.trace_out.lock().expect("trace_out lock") = trace_out;
        opts
    }

    /// Writes `value` as pretty JSON to `<out>/<name>.<scale>.json`.
    ///
    /// The scale is part of the filename so `--scale tiny` runs do not
    /// clobber default-scale results.
    pub fn save_json<T: Serialize>(&self, name: &str, value: &T) {
        fs::create_dir_all(&self.out_dir).expect("create output dir");
        let path = self
            .out_dir
            .join(format!("{name}.{}.json", self.scale_name));
        fs::write(
            &path,
            serde_json::to_string_pretty(value).expect("serialize"),
        )
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

/// A named experiment entry point, as listed in [`ARTIFACTS`].
pub type Artifact = (&'static str, fn(&ExpOpts));

/// Every evaluation artifact, in EXPERIMENTS.md order — the worklist the
/// `run_all` binary iterates over. Public so the resume integration test
/// can drive prefixes of the same list an interrupted invocation ran.
pub const ARTIFACTS: [Artifact; 15] = [
    ("fig04_speedup", figs::fig04_speedup::run),
    ("fig05_ifetch", figs::fig05_ifetch::run),
    ("fig06_dreq", figs::fig06_dreq::run),
    ("fig07_breakdown", figs::fig07_breakdown::run),
    ("fig08_lsq_sweep", figs::fig08_lsq_sweep::run),
    ("fig09_vf_heatmap", figs::fig09_vf_heatmap::run),
    ("fig10_perf_power", figs::fig10_perf_power::run),
    ("fig11_pareto", figs::fig11_pareto::run),
    ("tab45_workloads", figs::tab45_workloads::run),
    ("tab06_area", figs::tab06_area::run),
    ("tab07_power_levels", figs::tab07_power_levels::run),
    ("abl_vxu_topology", figs::abl_vxu_topology::run),
    ("abl_vmu_coalesce", figs::abl_vmu_coalesce::run),
    ("abl_mode_switch", figs::abl_mode_switch::run),
    ("abl_scaling", figs::abl_scaling::run),
];

/// Runs one workload on one system, panicking with context on failure
/// (every simulated run is checked against the workload's reference).
pub fn run_checked(kind: SystemKind, w: &Workload, params: &SimParams) -> RunResult {
    bvl_sim::simulate(kind, w, params)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, kind.label()))
}

/// Prints a markdown table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a ratio to two decimals.
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// One (workload, system) measurement for JSON output.
#[derive(Clone, Debug, Serialize)]
pub struct Measurement {
    /// Workload name.
    pub workload: String,
    /// System label.
    pub system: String,
    /// Wall time, ns.
    pub wall_ns: f64,
    /// Fetch groups (L1I reads).
    pub fetch_groups: u64,
    /// Data requests into the L1 level.
    pub data_reqs: u64,
}

impl Measurement {
    /// Captures the interesting fields of a run, reading from the unified
    /// stats snapshot (`sys.fetch_groups`, `sys.mem.data_reqs`).
    pub fn of(workload: &str, system: SystemKind, r: &RunResult) -> Self {
        Measurement {
            workload: workload.to_string(),
            system: system.label().to_string(),
            wall_ns: r.wall_ns,
            fetch_groups: r.stat("sys.fetch_groups"),
            data_reqs: r.stat("sys.mem.data_reqs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn fmt2_rounds() {
        assert_eq!(fmt2(1.234), "1.23");
    }
}
