//! Differential-fuzzing campaign driver.
//!
//! Generates `--runs` random RVV programs (seeded by `--seed`, so a
//! campaign is exactly reproducible), fans them across `--jobs` worker
//! threads with [`bvl_experiments::sweep::run_parallel`], and checks each
//! against the architectural oracle on every system via
//! [`bvl_difftest::check_program`]. On the first divergence the program
//! is delta-debugged to a 1-minimal reproducer and printed in the
//! corpus `.s` format, ready to commit under `crates/difftest/corpus/`.
//!
//! Flags:
//!
//! - `--runs N` — number of programs to test (default 100)
//! - `--seed S` — campaign seed (default 0)
//! - `--jobs J` — worker threads (default: available parallelism)
//! - `--emit DIR` — also write every generated program to `DIR` as
//!   `seed_<seed>.s` (corpus curation)
//!
//! Exit status: 0 = all passed, 1 = divergence found, 2 = a generated
//! program was invalid (generator bug).

use bvl_difftest::{
    check_program, generate, mix_seed, replay_divergence_tail, shrink, DiffResult, ReplayCache,
};
use bvl_experiments::sweep::{default_jobs, run_parallel};
use std::cell::RefCell;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut runs: u64 = 100;
    let mut seed: u64 = 0;
    let mut jobs = default_jobs();
    let mut emit: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--runs" => runs = value("--runs").parse().expect("--runs N"),
            "--seed" => seed = value("--seed").parse().expect("--seed S"),
            "--jobs" => jobs = value("--jobs").parse().expect("--jobs J"),
            "--emit" => emit = Some(PathBuf::from(value("--emit"))),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: difftest [--runs N] [--seed S] [--jobs J] [--emit DIR]");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(dir) = &emit {
        std::fs::create_dir_all(dir).expect("create --emit dir");
    }

    let indices: Vec<u64> = (0..runs).collect();
    let results = run_parallel(&indices, jobs, |&i| {
        let s = mix_seed(seed, i);
        let prog = generate(s);
        if let Some(dir) = &emit {
            std::fs::write(dir.join(format!("seed_{s:016x}.s")), prog.render())
                .expect("write emitted program");
        }
        (s, check_program(&prog))
    });

    let mut passed = 0u64;
    for (s, result) in &results {
        match result {
            DiffResult::Pass => passed += 1,
            DiffResult::Invalid(why) => {
                eprintln!("seed {s:#018x}: INVALID program ({why})");
                eprintln!("the generator emitted an untestable program — this is a bug");
                return ExitCode::from(2);
            }
            DiffResult::Diverged(d) => {
                eprintln!("seed {s:#018x}: DIVERGENCE on {d}");
                eprintln!("shrinking to a minimal reproducer...");
                let full = generate(*s);
                // `shrink` takes a `&dyn Fn` predicate, so the memo
                // cache rides along in a RefCell.
                let cache = RefCell::new(ReplayCache::new());
                let minimal = shrink(&full, &|p| cache.borrow_mut().still_diverges(p));
                let cache = cache.into_inner();
                let outcome = check_program(&minimal);
                eprintln!(
                    "minimal reproducer ({} of {} lines, {outcome:?}; \
                     {} candidate checks memoized, {} simulated):",
                    minimal.lines.len(),
                    full.lines.len(),
                    cache.hits,
                    cache.misses
                );
                eprintln!("{}", minimal.render());
                if let DiffResult::Diverged(min_d) = &outcome {
                    match replay_divergence_tail(&minimal, min_d.system) {
                        Ok(tr) => eprintln!(
                            "tail replay: checkpoint at cycle {} replays the final {} of \
                             {} cycles byte-identically ({} byte blob)",
                            tr.checkpoint.uncore_cycle(),
                            tr.replayed_cycles,
                            tr.total_cycles,
                            tr.checkpoint.to_bytes().len()
                        ),
                        Err(why) => eprintln!("tail replay unavailable: {why}"),
                    }
                }
                eprintln!("commit it under crates/difftest/corpus/ once fixed");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "difftest: {passed}/{runs} programs passed on all 7 systems (seed {seed}, jobs {jobs})"
    );
    ExitCode::SUCCESS
}
