//! Figure 8 — performance impact of the VMU's load/store data-queue
//! sizes (the repurposed L1I SRAM capacity) on `1b-4VL`.

use bvl_experiments::{fmt2, print_table, run_checked, ExpOpts};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::all_data_parallel;
use serde::Serialize;

const SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

#[derive(Serialize)]
struct SweepPoint {
    workload: String,
    queue_lines: usize,
    wall_ns: f64,
}

fn main() {
    let opts = ExpOpts::from_args();
    let mut out = Vec::new();

    println!(
        "\n## Figure 8 (VMU data-queue sweep on 1b-4VL, time normalized to {} lines, scale = {})\n",
        SIZES[0], opts.scale_name
    );
    let mut rows = Vec::new();
    for w in all_data_parallel(opts.scale) {
        let mut row = vec![w.name.to_string()];
        let mut base = None;
        for &size in &SIZES {
            let mut params = SimParams::default();
            params.engine.vmu.load_data_slots = size;
            params.engine.vmu.store_data_slots = size;
            let r = run_checked(SystemKind::B4Vl, &w, &params);
            let b = *base.get_or_insert(r.wall_ns);
            row.push(fmt2(r.wall_ns / b));
            out.push(SweepPoint {
                workload: w.name.to_string(),
                queue_lines: size,
                wall_ns: r.wall_ns,
            });
        }
        rows.push(row);
    }
    let size_labels: Vec<String> = SIZES.iter().map(|s| format!("{s} lines")).collect();
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(size_labels.iter().map(String::as_str))
        .collect();
    print_table(&headers, &rows);
    opts.save_json("fig08_lsq_sweep", &out);
}
