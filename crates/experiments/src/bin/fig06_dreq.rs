//! Figure 6 — data requests entering the memory system, normalized to
//! `1bDV`.

use bvl_experiments::{fmt2, print_table, run_checked, ExpOpts, Measurement};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::all_data_parallel;

const SYSTEMS: [SystemKind; 3] = [SystemKind::BIv4L, SystemKind::BDv, SystemKind::B4Vl];

fn main() {
    let opts = ExpOpts::from_args();
    let params = SimParams::default();
    let mut rows = Vec::new();
    let mut measurements = Vec::new();

    println!("\n## Figure 6 (data requests, normalized to 1bDV, scale = {})\n", opts.scale_name);
    for w in all_data_parallel(opts.scale) {
        let runs: Vec<_> = SYSTEMS
            .into_iter()
            .map(|k| {
                let r = run_checked(k, &w, &params);
                measurements.push(Measurement::of(w.name, k, &r));
                r
            })
            .collect();
        let base = runs[1].mem.data_reqs.max(1) as f64; // 1bDV
        let mut row = vec![w.name.to_string()];
        for r in &runs {
            row.push(fmt2(r.mem.data_reqs as f64 / base));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(SYSTEMS.iter().map(|k| k.label()))
        .collect();
    print_table(&headers, &rows);
    opts.save_json("fig06_dreq", &measurements);
}
