//! Figure 11 — execution time vs estimated power for all four multi-core
//! designs across the V/F grid, with per-design Pareto frontiers. The
//! headline claims: `1b-4VL` owns the low-power (<1 W) region and
//! approaches `1bDV` in the high-power region.

use bvl_experiments::{print_table, run_checked, ExpOpts};
use bvl_power::{pareto_frontier, PerfPowerPoint, SystemPower, BIG_LEVELS, LITTLE_LEVELS};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::all_data_parallel;
use serde::Serialize;

#[derive(Serialize)]
struct DesignPoints {
    workload: String,
    system: String,
    points: Vec<PerfPowerPoint>,
    frontier: Vec<PerfPowerPoint>,
}

fn power_model(kind: SystemKind) -> SystemPower {
    match kind {
        SystemKind::B4L | SystemKind::BIv4L | SystemKind::B4Vl => SystemPower::BigPlusLittles(4),
        SystemKind::BDv => SystemPower::BigPlusDve,
        SystemKind::B1 | SystemKind::BIv => SystemPower::OneBig,
        SystemKind::L1 => SystemPower::OneLittle,
    }
}

fn main() {
    let opts = ExpOpts::from_args();
    let systems = [
        SystemKind::B4L,
        SystemKind::BIv4L,
        SystemKind::BDv,
        SystemKind::B4Vl,
    ];
    let mut out = Vec::new();

    for w in all_data_parallel(opts.scale) {
        println!("\n## Figure 11: Pareto frontiers for {} (scale = {})\n", w.name, opts.scale_name);
        let mut rows = Vec::new();
        for kind in systems {
            let mut points = Vec::new();
            for b in BIG_LEVELS {
                for l in LITTLE_LEVELS {
                    // The DVE follows the big clock; little levels do not
                    // apply to systems without a little cluster.
                    if kind == SystemKind::BDv && l.name != "l0" {
                        continue;
                    }
                    let mut params = SimParams::default();
                    params.clocks.big_ghz = b.ghz;
                    params.clocks.little_ghz = l.ghz;
                    let r = run_checked(kind, &w, &params);
                    points.push(PerfPowerPoint {
                        label: format!("{} ({},{})", kind.label(), b.name, l.name),
                        time: r.wall_ns,
                        power: power_model(kind).watts(b, l),
                    });
                }
            }
            let frontier = pareto_frontier(&points);
            for p in &frontier {
                rows.push(vec![
                    p.label.clone(),
                    format!("{:.0}", p.time),
                    format!("{:.3}", p.power),
                ]);
            }
            out.push(DesignPoints {
                workload: w.name.to_string(),
                system: kind.label().to_string(),
                points,
                frontier,
            });
        }
        print_table(&["frontier point", "time (ns)", "power (W)"], &rows);
    }
    opts.save_json("fig11_pareto", &out);
}
