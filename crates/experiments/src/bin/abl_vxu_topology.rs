//! Ablation — VXU topology: the paper's area-efficient unidirectional
//! ring versus an idealized crossbar (section III-D calls the crossbar
//! the lower-latency, higher-area alternative). Measured on the
//! cross-element-heavy workloads (reductions/permutations).

use bvl_experiments::{fmt2, print_table, run_checked, ExpOpts};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::apps::{lavamd, particlefilter};
use bvl_workloads::kernels::saxpy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    ring_ns: f64,
    crossbar_ns: f64,
    crossbar_speedup: f64,
}

fn main() {
    let opts = ExpOpts::from_args();
    let workloads = vec![
        lavamd::build(opts.scale),         // vfredosum per particle
        particlefilter::build(opts.scale), // vfredmax + vfirst
        saxpy::build(opts.scale),          // control: no cross-element ops
    ];
    let mut out = Vec::new();
    let mut rows = Vec::new();

    println!("\n## Ablation: VXU ring vs idealized crossbar (1b-4VL, scale = {})\n", opts.scale_name);
    for w in workloads {
        let ring = run_checked(SystemKind::B4Vl, &w, &SimParams::default());
        let mut xp = SimParams::default();
        xp.engine.vxu.crossbar = true;
        let xbar = run_checked(SystemKind::B4Vl, &w, &xp);
        let speedup = ring.wall_ns / xbar.wall_ns;
        rows.push(vec![
            w.name.to_string(),
            format!("{:.0}", ring.wall_ns),
            format!("{:.0}", xbar.wall_ns),
            fmt2(speedup),
        ]);
        out.push(Row {
            workload: w.name.to_string(),
            ring_ns: ring.wall_ns,
            crossbar_ns: xbar.wall_ns,
            crossbar_speedup: speedup,
        });
    }
    print_table(&["workload", "ring (ns)", "crossbar (ns)", "crossbar speedup"], &rows);
    opts.save_json("abl_vxu_topology", &out);
}
