//! Thin wrapper over [`bvl_experiments::figs::abl_vmu_coalesce`]; see that module for
//! the experiment itself. Shared flags: `--scale`, `--out`, `--jobs`,
//! `--no-cache`, `--persist-cache`, `--cache-dir`.

fn main() {
    let opts = bvl_experiments::ExpOpts::from_args();
    bvl_experiments::figs::abl_vmu_coalesce::run(&opts);
}
