//! Figure 9 — performance of `1bIV-4L` and `1b-4VL` at every (big,
//! little) voltage/frequency combination, reported as speedup over `1L`
//! at 1 GHz.

use bvl_experiments::{fmt2, print_table, run_checked, ExpOpts};
use bvl_power::{BIG_LEVELS, LITTLE_LEVELS};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::all_data_parallel;
use serde::Serialize;

#[derive(Serialize)]
struct HeatCell {
    workload: String,
    system: String,
    big_level: &'static str,
    little_level: &'static str,
    speedup_over_1l: f64,
}

fn main() {
    let opts = ExpOpts::from_args();
    let mut out = Vec::new();

    for w in all_data_parallel(opts.scale) {
        let base = run_checked(SystemKind::L1, &w, &SimParams::default());
        for kind in [SystemKind::BIv4L, SystemKind::B4Vl] {
            println!(
                "\n## Figure 9: {} on {} (speedup over 1L@1GHz, scale = {})\n",
                w.name,
                kind.label(),
                opts.scale_name
            );
            let mut rows = Vec::new();
            for b in BIG_LEVELS {
                let mut row = vec![b.name.to_string()];
                for l in LITTLE_LEVELS {
                    let mut params = SimParams::default();
                    params.clocks.big_ghz = b.ghz;
                    params.clocks.little_ghz = l.ghz;
                    let r = run_checked(kind, &w, &params);
                    let speedup = base.wall_ns / r.wall_ns;
                    row.push(fmt2(speedup));
                    out.push(HeatCell {
                        workload: w.name.to_string(),
                        system: kind.label().to_string(),
                        big_level: b.name,
                        little_level: l.name,
                        speedup_over_1l: speedup,
                    });
                }
                rows.push(row);
            }
            let headers: Vec<&str> = std::iter::once("big \\ little")
                .chain(LITTLE_LEVELS.iter().map(|l| l.name))
                .collect();
            print_table(&headers, &rows);
        }
    }
    opts.save_json("fig09_vf_heatmap", &out);
}
