//! Regenerates every figure, table and ablation with one command,
//! printing a per-artifact timing/throughput summary at the end and
//! persisting it as JSON next to the results.
//!
//! All artifacts run in-process through one shared
//! [`bvl_experiments::sweep::SweepCache`], so simulation points common to
//! several figures (fig04/05/06 share the `1L`/`1bIV-4L`/`1bDV`/`1b-4VL`
//! default-parameter runs) simulate exactly once.
//!
//! ```sh
//! cargo run --release -p bvl-experiments --bin run_all -- --scale tiny --jobs 8
//! ```
//!
//! An interrupted invocation is resumable: `--persist-cache
//! --checkpoint-every N` makes every point write its result (and, while
//! in flight, a periodic whole-system checkpoint) under `<out>/cache/`;
//! re-running with `--resume` replays completed points from disk with 0
//! simulate calls and restarts interrupted points from their last
//! checkpoint instead of cycle 0.
//!
//! The summary reports, per artifact: host wall seconds, simulate calls
//! executed (cache hits excluded), simulated clock-domain cycles,
//! aggregate Mcycles/s, and the fraction of cycles the quiescence engine
//! batch-skipped (zero under `--no-skip`).

use bvl_experiments::sweep::Throughput;
use bvl_experiments::{print_table, ExpOpts, ARTIFACTS};
use serde::Serialize;
use std::time::Instant;

/// One artifact's timing/throughput record (JSON row).
#[derive(Serialize)]
struct ArtifactTiming {
    artifact: String,
    /// Wall-clock seconds for the whole artifact (including cache hits,
    /// table printing and JSON writes).
    host_secs: f64,
    /// Simulate calls actually executed for this artifact.
    sim_runs: u64,
    /// Simulated clock-domain cycles (run + skipped edges).
    sim_cycles: u64,
    /// Cycles batch-skipped by the quiescence engine.
    cycles_skipped: u64,
    /// `cycles_skipped` as a percentage of `sim_cycles`.
    skipped_pct: f64,
    /// Aggregate simulated Mcycles per wall second.
    mcycles_per_sec: f64,
    /// Seconds inside `simulate`, summed over worker threads.
    sim_thread_secs: f64,
}

impl ArtifactTiming {
    fn of(name: &str, host_secs: f64, t: Throughput) -> Self {
        ArtifactTiming {
            artifact: name.to_string(),
            host_secs,
            sim_runs: t.runs,
            sim_cycles: t.sim_cycles(),
            cycles_skipped: t.edges_skipped,
            skipped_pct: t.skipped_pct(),
            mcycles_per_sec: t.mcycles_per_sec(host_secs),
            sim_thread_secs: t.sim_thread_secs,
        }
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.artifact.clone(),
            format!("{:.2}", self.host_secs),
            self.sim_runs.to_string(),
            format!("{:.1}", self.sim_cycles as f64 / 1e6),
            format!("{:.1}", self.mcycles_per_sec),
            format!("{:.1}", self.skipped_pct),
        ]
    }
}

/// The whole summary, persisted as `run_all_timing.<scale>.json`.
#[derive(Serialize)]
struct TimingSummary {
    scale: String,
    jobs: usize,
    no_skip: bool,
    artifacts: Vec<ArtifactTiming>,
    total: ArtifactTiming,
    memoized_points: usize,
}

fn main() {
    let opts = ExpOpts::from_args();
    let total_start = Instant::now();
    let mut artifacts = Vec::new();
    for (name, run) in ARTIFACTS {
        let before = opts.throughput.snapshot();
        let start = Instant::now();
        run(&opts);
        let secs = start.elapsed().as_secs_f64();
        artifacts.push(ArtifactTiming::of(
            name,
            secs,
            opts.throughput.snapshot().since(&before),
        ));
    }
    let total = ArtifactTiming::of(
        "TOTAL",
        total_start.elapsed().as_secs_f64(),
        opts.throughput.snapshot(),
    );

    println!(
        "\n## run_all timing summary (scale = {}, jobs = {}{})\n",
        opts.scale_name,
        opts.jobs,
        if opts.no_skip { ", no-skip" } else { "" }
    );
    let rows: Vec<Vec<String>> = artifacts
        .iter()
        .chain(std::iter::once(&total))
        .map(ArtifactTiming::row)
        .collect();
    print_table(
        &[
            "artifact",
            "seconds",
            "runs",
            "Mcycles",
            "Mcyc/s",
            "% skipped",
        ],
        &rows,
    );
    println!(
        "\n{} simulation points memoized across artifacts",
        opts.cache.len()
    );

    let summary = TimingSummary {
        scale: opts.scale_name.clone(),
        jobs: opts.jobs,
        no_skip: opts.no_skip,
        artifacts,
        total,
        memoized_points: opts.cache.len(),
    };
    opts.save_json("run_all_timing", &summary);
}
