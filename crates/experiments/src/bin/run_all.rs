//! Regenerates every figure, table and ablation with one command,
//! printing a per-artifact timing summary at the end.
//!
//! All artifacts run in-process through one shared
//! [`bvl_experiments::sweep::SweepCache`], so simulation points common to
//! several figures (fig04/05/06 share the `1L`/`1bIV-4L`/`1bDV`/`1b-4VL`
//! default-parameter runs) simulate exactly once.
//!
//! ```sh
//! cargo run --release -p bvl-experiments --bin run_all -- --scale tiny --jobs 8
//! ```

use bvl_experiments::{figs, print_table, ExpOpts};
use std::time::Instant;

/// A named experiment entry point.
type Artifact = (&'static str, fn(&ExpOpts));

/// Every artifact, in EXPERIMENTS.md order.
const ARTIFACTS: [Artifact; 15] = [
    ("fig04_speedup", figs::fig04_speedup::run),
    ("fig05_ifetch", figs::fig05_ifetch::run),
    ("fig06_dreq", figs::fig06_dreq::run),
    ("fig07_breakdown", figs::fig07_breakdown::run),
    ("fig08_lsq_sweep", figs::fig08_lsq_sweep::run),
    ("fig09_vf_heatmap", figs::fig09_vf_heatmap::run),
    ("fig10_perf_power", figs::fig10_perf_power::run),
    ("fig11_pareto", figs::fig11_pareto::run),
    ("tab45_workloads", figs::tab45_workloads::run),
    ("tab06_area", figs::tab06_area::run),
    ("tab07_power_levels", figs::tab07_power_levels::run),
    ("abl_vxu_topology", figs::abl_vxu_topology::run),
    ("abl_vmu_coalesce", figs::abl_vmu_coalesce::run),
    ("abl_mode_switch", figs::abl_mode_switch::run),
    ("abl_scaling", figs::abl_scaling::run),
];

fn main() {
    let opts = ExpOpts::from_args();
    let total_start = Instant::now();
    let mut timings = Vec::new();
    for (name, run) in ARTIFACTS {
        let start = Instant::now();
        run(&opts);
        timings.push((name, start.elapsed()));
    }
    let total = total_start.elapsed();

    println!(
        "\n## run_all timing summary (scale = {}, jobs = {})\n",
        opts.scale_name, opts.jobs
    );
    let rows: Vec<Vec<String>> = timings
        .iter()
        .map(|(name, t)| vec![name.to_string(), format!("{:.2}", t.as_secs_f64())])
        .chain(std::iter::once(vec![
            "TOTAL".to_string(),
            format!("{:.2}", total.as_secs_f64()),
        ]))
        .collect();
    print_table(&["artifact", "seconds"], &rows);
    println!(
        "\n{} simulation points memoized across artifacts",
        opts.cache.len()
    );
}
