//! Developer tool: disassembles a workload's program, with binary
//! encodings where the instruction fits the 32-bit formats — an
//! `objdump`-style view of what the in-library "compiler" emitted.
//!
//! ```sh
//! cargo run --release -p bvl-experiments --bin dump_program -- --scale tiny 2>/dev/null | head
//! ```
//!
//! Accepts the common `--scale` flag; dumps every workload, with entry
//! points and per-label markers.

use bvl_experiments::ExpOpts;
use bvl_isa::encode::encode;
use bvl_workloads::{all_data_parallel, all_task_parallel};

fn main() {
    let opts = ExpOpts::from_args();
    for w in all_data_parallel(opts.scale)
        .into_iter()
        .chain(all_task_parallel(opts.scale))
    {
        println!("\n==== {} ({} instructions) ====", w.name, w.program.len());
        println!(
            "serial entry @{}; vector entry {:?}; {} tasks in {} phases",
            w.serial_entry,
            w.vector_entry,
            w.total_tasks(),
            w.phases.len()
        );
        for (pc, instr) in w.program.iter().enumerate() {
            let word = match encode(instr, pc as u32) {
                Ok(word) => format!("{word:08x}"),
                Err(_) => "........".to_string(), // immediate exceeds field
            };
            println!("{pc:6}: {word}  {instr}");
        }
    }
}
