//! Figure 4 — speedup over `1L` for every system, task-parallel and
//! data-parallel suites.

use bvl_experiments::{fmt2, geomean, print_table, run_checked, ExpOpts, Measurement};
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{all_data_parallel, all_task_parallel};

fn main() {
    let opts = ExpOpts::from_args();
    let params = SimParams::default();
    let mut measurements = Vec::new();

    for (suite, workloads) in [
        ("task-parallel", all_task_parallel(opts.scale)),
        ("data-parallel", all_data_parallel(opts.scale)),
    ] {
        println!("\n## Figure 4 ({suite}, scale = {})\n", opts.scale_name);
        let mut rows = Vec::new();
        let mut per_system_speedups: Vec<Vec<f64>> = vec![Vec::new(); SystemKind::ALL.len()];
        for w in &workloads {
            let base = run_checked(SystemKind::L1, w, &params);
            let mut row = vec![w.name.to_string()];
            for (i, kind) in SystemKind::ALL.into_iter().enumerate() {
                let r = if kind == SystemKind::L1 {
                    base.clone()
                } else {
                    run_checked(kind, w, &params)
                };
                let speedup = base.wall_ns / r.wall_ns;
                per_system_speedups[i].push(speedup);
                row.push(fmt2(speedup));
                measurements.push(Measurement::of(w.name, kind, &r));
            }
            rows.push(row);
        }
        let mut gm = vec!["geomean".to_string()];
        for s in &per_system_speedups {
            gm.push(fmt2(geomean(s)));
        }
        rows.push(gm);
        let headers: Vec<&str> = std::iter::once("workload")
            .chain(SystemKind::ALL.iter().map(|k| k.label()))
            .collect();
        print_table(&headers, &rows);
    }

    opts.save_json("fig04_speedup", &measurements);
}
