//! Integration tests for the parallel sweep harness: simulation
//! determinism, parallel-vs-serial equivalence, cache behaviour, and the
//! headline acceptance check — `fig04_speedup --scale tiny` produces
//! byte-identical JSON at `--jobs 1` and `--jobs 8`.

use bvl_experiments::sweep::{run_sweep, SweepCache, SweepJob};
use bvl_experiments::{figs, ExpOpts};
use bvl_sim::{simulate, SimParams, SystemKind};
use bvl_workloads::kernels::{saxpy, vvadd};
use bvl_workloads::{Scale, Workload};
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// A unique scratch directory; removed by `Scratch::drop`.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bvl-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn tiny_opts(out_dir: PathBuf, jobs: usize) -> ExpOpts {
    ExpOpts::for_scale("tiny", out_dir).with_jobs(jobs)
}

/// A small but non-trivial matrix: two kernels across four systems.
fn small_matrix() -> Vec<SweepJob> {
    let workloads: Vec<Arc<Workload>> = vec![
        Arc::new(vvadd::build(Scale::tiny())),
        Arc::new(saxpy::build(Scale::tiny())),
    ];
    let systems = [
        SystemKind::L1,
        SystemKind::B1,
        SystemKind::BDv,
        SystemKind::B4Vl,
    ];
    workloads
        .iter()
        .flat_map(|w| {
            systems
                .into_iter()
                .map(|kind| SweepJob::new(kind, w, "tiny", SimParams::default()))
        })
        .collect()
}

#[test]
fn simulate_is_deterministic() {
    let w = vvadd::build(Scale::tiny());
    let params = SimParams::default();
    for kind in [SystemKind::L1, SystemKind::B4Vl] {
        let a = simulate(kind, &w, &params).expect("first run");
        let b = simulate(kind, &w, &params).expect("second run");
        assert_eq!(a, b, "two identical simulate calls diverged on {kind}");
    }
}

#[test]
fn parallel_sweep_matches_serial_sweep() {
    let scratch = Scratch::new("eq");
    let jobs = small_matrix();
    let serial = run_sweep(&jobs, &tiny_opts(scratch.path(), 1));
    let parallel = run_sweep(&jobs, &tiny_opts(scratch.path(), 8));
    assert_eq!(serial.len(), jobs.len());
    assert_eq!(
        serial, parallel,
        "--jobs 1 and --jobs 8 measurements differ"
    );
}

#[test]
fn sweep_memoizes_repeated_points() {
    let scratch = Scratch::new("memo");
    let opts = tiny_opts(scratch.path(), 2);
    let jobs = small_matrix();
    let first = run_sweep(&jobs, &opts);
    assert_eq!(opts.cache.len(), jobs.len());

    // Same matrix again through the same opts: served entirely from the
    // memo (the cache does not grow) and identical.
    let second = run_sweep(&jobs, &opts);
    assert_eq!(opts.cache.len(), jobs.len());
    assert_eq!(first, second);

    // A matrix with internal duplicates memoizes to its unique points.
    let w = Arc::new(vvadd::build(Scale::tiny()));
    let dup: Vec<SweepJob> = (0..5)
        .map(|_| SweepJob::new(SystemKind::B1, &w, "tiny-dup", SimParams::default()))
        .collect();
    let results = run_sweep(&dup, &opts);
    assert_eq!(opts.cache.len(), jobs.len() + 1);
    assert!(results.windows(2).all(|p| p[0] == p[1]));
}

#[test]
fn no_cache_forces_cold_runs() {
    let scratch = Scratch::new("cold");
    let mut opts = tiny_opts(scratch.path(), 2);
    opts.use_cache = false;
    let jobs = small_matrix();
    let first = run_sweep(&jobs, &opts);
    assert!(
        opts.cache.is_empty(),
        "--no-cache must not populate the memo"
    );
    assert_eq!(first, run_sweep(&jobs, &opts));
}

#[test]
fn persisted_cache_round_trips_across_invocations() {
    let scratch = Scratch::new("disk");
    let mut opts = tiny_opts(scratch.path(), 2);
    opts.persist_cache = true;
    let jobs = small_matrix();
    let first = run_sweep(&jobs, &opts);
    let files = fs::read_dir(&opts.cache_dir).expect("cache dir").count();
    assert_eq!(files, jobs.len(), "one cache file per unique point");

    // A fresh ExpOpts (empty memo) with the same cache dir reloads every
    // point from disk without growing the file set.
    let mut cold = tiny_opts(scratch.path(), 2);
    cold.persist_cache = true;
    assert!(cold.cache.is_empty());
    let second = run_sweep(&jobs, &cold);
    assert_eq!(
        first, second,
        "disk-cached results differ from computed ones"
    );
    assert_eq!(cold.cache.len(), jobs.len());
}

#[test]
fn fig04_tiny_json_is_byte_identical_across_job_counts() {
    let serial_dir = Scratch::new("fig04-serial");
    let parallel_dir = Scratch::new("fig04-parallel");
    figs::fig04_speedup::run(&tiny_opts(serial_dir.path(), 1));
    figs::fig04_speedup::run(&tiny_opts(parallel_dir.path(), 8));
    let serial = fs::read(serial_dir.path().join("fig04_speedup.tiny.json")).expect("serial JSON");
    let parallel =
        fs::read(parallel_dir.path().join("fig04_speedup.tiny.json")).expect("parallel JSON");
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "fig04 JSON differs between --jobs 1 and --jobs 8"
    );
}

#[test]
fn sweep_cache_is_shared_across_clones() {
    let cache = SweepCache::new();
    let clone = cache.clone();
    let scratch = Scratch::new("share");
    let mut opts = tiny_opts(scratch.path(), 1);
    opts.cache = clone;
    let w = Arc::new(vvadd::build(Scale::tiny()));
    let jobs = vec![SweepJob::new(
        SystemKind::B1,
        &w,
        "tiny",
        SimParams::default(),
    )];
    run_sweep(&jobs, &opts);
    assert_eq!(cache.len(), 1, "clones must share one underlying memo map");
}
