//! Kill-and-restart contract of `run_all --resume`, exercised in-process:
//! a fresh `ExpOpts` per phase is exactly what a new process gets (empty
//! memo cache, zeroed throughput counters), so interrupting a run and
//! restarting the binary is modeled by dropping one options value and
//! building another against the same output directory.
//!
//! Three guarantees are pinned here:
//!
//! 1. Resuming after an interrupt produces final artifact JSONs
//!    byte-identical to an uninterrupted run, and completed artifacts
//!    replay with **0 simulate calls**.
//! 2. A point interrupted mid-run restarts from its last on-disk
//!    checkpoint — simulating only the tail — and its (byte-identical)
//!    result is *not* written to the persisted cache, which records
//!    straight-through runs only.
//! 3. The `--trace-out` re-run never touches the persisted cache
//!    (regression for the cache-pollution class of bugs).

use bvl_experiments::sweep::{run_sweep, SweepJob};
use bvl_experiments::{ExpOpts, ARTIFACTS};
use bvl_sim::{simulate_with_stats_resumable, SimParams, SysState, SystemKind};
use bvl_workloads::{kernels, Scale};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// Fresh per-test scratch dir (removed on entry so reruns start cold).
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `dir` (recursively), name → bytes. Missing dir = empty.
fn dir_contents(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries {
            let path = entry.expect("read_dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = path
                    .strip_prefix(dir)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(name, fs::read(&path).expect("read file"));
            }
        }
    }
    out
}

/// A resumable options value against `out`, as `--resume` would build it.
fn resumable_opts(out: &Path) -> ExpOpts {
    let mut opts = ExpOpts::for_scale("tiny", out.to_path_buf());
    opts.persist_cache = true;
    opts.resume = true;
    opts
}

#[test]
fn interrupted_run_all_resumes_byte_identically_with_zero_runs_for_done_artifacts() {
    // fig04 simulates both workload suites on all systems; fig05 reuses a
    // subset of the same points — together they cover both the "all from
    // disk" and the "partially from disk" resume shapes.
    let subset = &ARTIFACTS[..2];
    let interrupted = scratch("runall");
    let baseline = scratch("runall-base");

    // Phase A: the interrupted invocation — completes fig04, then "dies".
    {
        let opts = resumable_opts(&interrupted);
        subset[0].1(&opts);
    }

    // Phase B: `run_all --resume` in a fresh process re-runs the whole
    // artifact list against the same directory.
    {
        let opts = resumable_opts(&interrupted);
        for (i, (name, run)) in subset.iter().enumerate() {
            let before = opts.throughput.snapshot();
            run(&opts);
            let ran = opts.throughput.snapshot().since(&before).runs;
            if i == 0 {
                assert_eq!(
                    ran, 0,
                    "{name} completed before the interrupt, yet the resumed \
                     invocation simulated {ran} points instead of replaying the cache"
                );
            }
        }
    }

    // Phase C: the uninterrupted reference run, no caching involved.
    {
        let opts = ExpOpts::for_scale("tiny", baseline.clone());
        for (_, run) in subset {
            run(&opts);
        }
    }

    for (name, _) in subset {
        let file = format!("{name}.tiny.json");
        let resumed = fs::read(interrupted.join(&file))
            .unwrap_or_else(|e| panic!("resumed artifact {file}: {e}"));
        let straight = fs::read(baseline.join(&file))
            .unwrap_or_else(|e| panic!("baseline artifact {file}: {e}"));
        assert_eq!(
            resumed, straight,
            "{file} differs between the resumed and the uninterrupted run"
        );
    }

    fs::remove_dir_all(&interrupted).expect("cleanup");
    fs::remove_dir_all(&baseline).expect("cleanup");
}

#[test]
fn mid_run_checkpoint_resumes_the_tail_and_is_not_persisted() {
    let out = scratch("midrun");
    let w = Arc::new(kernels::mmult::build(Scale::tiny()));
    let job = || SweepJob::new(SystemKind::B4Vl, &w, "tiny", SimParams::default());
    let key = job().cache_key();

    // Fabricate the interrupt: run the point directly with a checkpoint
    // cadence, keep the last checkpoint, and plant it where `--resume`
    // looks — exactly the state a killed invocation leaves behind.
    let cadenced = SimParams {
        checkpoint_every: 200,
        ..SimParams::default()
    };
    let mut last: Option<SysState> = None;
    let (straight, straight_skip) =
        simulate_with_stats_resumable(SystemKind::B4Vl, &w, &cadenced, None, &mut |s| {
            last = Some(s.clone())
        })
        .expect("straight run");
    let planted = last.expect("run crossed no checkpoint boundary — lower the cadence");
    let ckpt = out.join("cache").join("ckpt").join(format!("{key}.snap"));
    fs::create_dir_all(ckpt.parent().unwrap()).expect("create ckpt dir");
    fs::write(&ckpt, planted.to_bytes()).expect("plant checkpoint");

    let opts = resumable_opts(&out).with_jobs(1);
    let results = run_sweep(&[job()], &opts);
    assert_eq!(results[0], straight, "resumed result diverged");

    // Only the tail simulated: the resumed run's edge total must come in
    // strictly under the straight-through run's.
    let t = opts.throughput.snapshot();
    assert_eq!(t.runs, 1);
    let full_edges = straight_skip.edges_run + straight_skip.edges_skipped;
    assert!(
        t.sim_cycles() < full_edges,
        "resumed run processed {} edges, straight-through {full_edges} — \
         it restarted from cycle 0 instead of the checkpoint at cycle {}",
        t.sim_cycles(),
        planted.uncore_cycle()
    );

    // The consumed checkpoint is gone, and the resumed result was NOT
    // persisted — results/cache records straight-through runs only.
    assert!(!ckpt.exists(), "consumed checkpoint still on disk");
    assert!(
        !opts.cache_dir.join(format!("{key}.json")).exists(),
        "checkpoint-restored run leaked into the persisted memo cache"
    );

    // A later cold invocation finds no checkpoint and no JSON: it
    // simulates straight through and only then persists.
    let opts2 = resumable_opts(&out).with_jobs(1);
    let again = run_sweep(&[job()], &opts2);
    assert_eq!(again[0], straight);
    assert_eq!(opts2.throughput.snapshot().sim_cycles(), full_edges);
    assert!(opts2.cache_dir.join(format!("{key}.json")).exists());

    fs::remove_dir_all(&out).expect("cleanup");
}

#[test]
fn traced_rerun_leaves_the_persisted_cache_untouched() {
    let out = scratch("traceout");
    let w = Arc::new(kernels::vvadd::build(Scale::tiny()));
    let job = || SweepJob::new(SystemKind::BIv, &w, "tiny", SimParams::default());

    // Populate the persisted cache with the point's straight-through run.
    let mut opts = ExpOpts::for_scale("tiny", out.clone()).with_jobs(1);
    opts.persist_cache = true;
    // Arm the checkpoint cadence too: the traced re-run must not write
    // checkpoint blobs either (it has no resume path to consume them).
    opts.checkpoint_every = 200;
    let first = run_sweep(&[job()], &opts);
    let before = dir_contents(&opts.cache_dir);
    assert!(!before.is_empty(), "persist-cache run wrote nothing");

    // Re-sweep the same point with `--trace-out` armed: the point itself
    // is a cache hit, and the traced re-run happens on top.
    let trace_path = out.join("trace.json");
    *opts.trace_out.lock().unwrap() = Some(trace_path.clone());
    let second = run_sweep(&[job()], &opts);
    assert_eq!(first, second);
    assert!(trace_path.exists(), "traced re-run never wrote its trace");
    assert_eq!(
        opts.throughput.snapshot().runs,
        1,
        "the traced re-run must not count as a simulate call"
    );

    let after = dir_contents(&opts.cache_dir);
    assert_eq!(
        before,
        after,
        "the traced re-run modified the persisted cache under {}",
        opts.cache_dir.display()
    );

    fs::remove_dir_all(&out).expect("cleanup");
}
