//! Figure 7 invariants: the breakdown fractions of every (workload,
//! config) bar partition the denominator — they sum to 1.0 ± ε — and the
//! denominator itself is exactly the lanes' total cycle count from the
//! stats snapshot (skipped-window accounting included).

use bvl_core::types::StallKind;
use bvl_experiments::figs::fig07_breakdown::{breakdown_rows, CONFIGS};
use bvl_experiments::ExpOpts;
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::Scale;

#[test]
fn breakdown_fractions_sum_to_one_for_every_workload_and_config() {
    let opts = ExpOpts::for_scale("tiny", std::env::temp_dir());
    let rows = breakdown_rows(&opts);
    assert!(!rows.is_empty());
    assert_eq!(rows.len() % CONFIGS.len(), 0);
    for row in &rows {
        assert!(
            row.total_lane_cycles > 0,
            "{} {}: lanes never ran",
            row.workload,
            row.config
        );
        assert_eq!(row.breakdown.len(), StallKind::ALL.len());
        let sum: f64 = row.breakdown.iter().map(|(_, f)| f).sum();
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{} {}: fractions sum to {sum}, not 1.0",
            row.workload,
            row.config
        );
    }
}

#[test]
fn breakdown_denominator_equals_lane_cycles_from_snapshot() {
    let w = bvl_workloads::kernels::vvadd::build(Scale::tiny());
    let r = bvl_sim::simulate(SystemKind::B4Vl, &w, &SimParams::default()).expect("vvadd");
    let total: u64 = StallKind::ALL.iter().map(|&k| r.lane_total(k)).sum();
    assert!(total > 0);
    assert_eq!(total, r.stats.sum_matching("sys.lane", ".cycles"));
}
