//! `--no-skip` cache-identity contract: the flag re-keys every sweep
//! point (so naive-loop runs never replay memoized skip-on results), yet
//! the persisted JSON artifacts are byte-identical — the on-disk proof
//! of the skip-equivalence guarantee.

use bvl_experiments::sweep::{run_sweep, SweepJob};
use bvl_experiments::ExpOpts;
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::{kernels, Scale};
use std::fs;
use std::sync::Arc;

#[test]
fn no_skip_rekeys_cache_but_persists_identical_json() {
    let dir = std::env::temp_dir().join(format!("bvl-no-skip-cache-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let w = Arc::new(kernels::vvadd::build(Scale::tiny()));
    let job = || SweepJob::new(SystemKind::BIv, &w, "tiny", SimParams::default());

    // The two cache keys the runs below must produce: default params
    // (skip-on) vs `no_skip` forced by the option layer.
    let key_on = job().cache_key();
    let naive_params = SimParams {
        no_skip: true,
        ..SimParams::default()
    };
    let key_off = SweepJob::new(SystemKind::BIv, &w, "tiny", naive_params).cache_key();
    assert_ne!(
        key_on, key_off,
        "no_skip must be part of the params hash, else naive runs would \
         replay memoized skip-on results instead of simulating"
    );

    let mut opts = ExpOpts::for_scale("tiny", dir.clone()).with_jobs(1);
    opts.persist_cache = true;
    let skip_on = run_sweep(&[job()], &opts);

    opts.no_skip = true;
    let naive = run_sweep(&[job()], &opts);
    assert_eq!(skip_on, naive, "skip-equivalence broken");
    assert_eq!(
        opts.throughput.snapshot().runs,
        2,
        "both points must simulate fresh (distinct keys, cold cache)"
    );

    // Both artifacts exist under their own key, with identical bytes.
    let on_path = opts.cache_dir.join(format!("{key_on}.json"));
    let off_path = opts.cache_dir.join(format!("{key_off}.json"));
    let on_bytes = fs::read(&on_path)
        .unwrap_or_else(|e| panic!("skip-on artifact {}: {e}", on_path.display()));
    let off_bytes = fs::read(&off_path)
        .unwrap_or_else(|e| panic!("no-skip artifact {}: {e}", off_path.display()));
    assert_eq!(
        on_bytes, off_bytes,
        "persisted JSON must be byte-identical across skip modes"
    );

    fs::remove_dir_all(&dir).expect("cleanup");
}
