//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset its property tests use: composable [`Strategy`] values
//! (ranges, tuples, [`Just`], [`strategy::Union`], `collection::vec`,
//! [`arbitrary::any`], `.prop_map`) and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_oneof!`] macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (via
//!   the assertion message) but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so failures reproduce exactly across runs and `--jobs`
//!   levels.
//! * Unconfigured tests run [`ProptestConfig::default`] (64) cases rather
//!   than upstream's 256, keeping `cargo test` fast on small hosts.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset: case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic test RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeds from a test name (FNV-1a), so every test has a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                // 2^53 mantissa grid; the endpoint is reachable.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy combinators referenced by macro expansions.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Wraps the alternative list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy for use in a [`Union`] (monomorphization helper
    /// for `prop_oneof!`).
    pub fn boxed<T, S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(s)
    }
}

/// `proptest::collection` — sized containers of generated elements.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::arbitrary` — full-domain generation per type.
pub mod arbitrary {
    use super::{Strategy, TestRng};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-domain strategy for `T` (`any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// The result of [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($args:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $crate::__proptest_bind!{ rng; $($args)* }
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n{}",
                        stringify!($name), case + 1, config.cases, message
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

/// Internal argument binder for [`proptest!`]: accepts both the
/// `arg in strategy` and `arg: Type` (via [`arbitrary::any`]) forms, in any
/// order. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng; $($rest)* }
    };
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg: $ty =
            $crate::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg: $ty =
            $crate::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!{ $rng; $($rest)* }
    };
}

/// Property assertion: on failure the current case returns an error
/// (reported with case number) instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+), l, r,
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds, tuples compose, maps apply.
        #[test]
        fn strategies_compose(
            x in 1u8..32,
            pair in (0u64..100, any::<bool>()),
            v in crate::collection::vec(0usize..8, 0..20),
            mapped in (0u32..10).prop_map(|n| n * 2),
            choice in prop_oneof![Just(1u32), Just(2u32), 5u32..7],
        ) {
            prop_assert!((1..32).contains(&x));
            prop_assert!(pair.0 < 100);
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 8));
            prop_assert_eq!(mapped % 2, 0);
            prop_assert!(choice == 1 || choice == 2 || (5..7).contains(&choice));
        }
    }
}
