//! Offline stand-in for the [`rand`] crate.
//!
//! The build environment for this repository has no crates.io access, so
//! the workspace vendors the *API subset it actually uses*: a seedable
//! small PRNG ([`rngs::SmallRng`], xoshiro256++), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`] over primitive ranges. Streams are
//! deterministic for a given seed (the property the workload generators
//! rely on) but are **not** bit-compatible with upstream `rand` — every
//! reference check in `bvl-workloads` is computed from the same generated
//! data, so only determinism matters.

/// Splits a 64-bit seed into xoshiro state (SplitMix64, the standard
/// xoshiro seeding recommendation).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A type that can be sampled uniformly from the full value domain
/// (stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A half-open range a value can be drawn from (stand-in for
/// `SampleRange<T>`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds (subset of upstream `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small fast PRNG (xoshiro256++, the same family upstream
    /// `SmallRng` uses on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Upstream's default RNG alias, kept for API compatibility.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(10..20u32);
            assert!((10..20).contains(&x));
            let f: f32 = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let b: u8 = r.gen_range(0..4u8);
            assert!(b < 4);
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
