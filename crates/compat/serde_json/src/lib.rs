//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Content`](serde::Content) tree as JSON
//! (compact and pretty, 2-space indent, field order preserved) and parses
//! JSON text back into the same tree. Output is deterministic: the same
//! value always serializes to the same bytes, which the experiment
//! harness's `--jobs` equivalence guarantee and run cache rely on.

use serde::Serialize;

/// The parsed/serializable JSON tree (alias of the serde data model).
pub type Value = serde::Content;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for tree-representable values; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON (2-space indent, like upstream).
///
/// # Errors
///
/// Never fails for tree-representable values; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Fails on malformed JSON, with a byte-offset diagnostic.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing data at byte {pos}")));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_compound(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    write_sep(out, indent, depth + 1, i == 0);
                    write_value(out, item, indent, depth + 1);
                }
            })
        }
        Value::Map(entries) => {
            write_compound(out, indent, depth, entries.is_empty(), '{', '}', |out| {
                for (i, (k, item)) in entries.iter().enumerate() {
                    write_sep(out, indent, depth + 1, i == 0);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, indent, depth + 1);
                }
            });
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_sep(out: &mut String, indent: Option<&str>, depth: usize, first: bool) {
    if !first {
        out.push(',');
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

/// Floats print with a shortest round-trip representation, always with a
/// decimal point or exponent so they re-parse as floats (upstream ryu
/// behaviour).
fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() || x.is_infinite() {
        // Upstream serde_json emits null for non-finite floats.
        out.push_str("null");
        return;
    }
    let s = format!("{x:?}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error(format!("expected , or ] at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected : at byte {pos}")));
                }
                *pos += 1;
                entries.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error(format!("expected , or }} at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                            16,
                        )
                        .map_err(|e| Error(e.to_string()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| Error(e.to_string()))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| Error(e.to_string()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("expected number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::U64(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::I64(i));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|e| Error(format!("bad number `{text}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_expected_shape() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
        ]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    1.5,\n    null\n  ]\n}"
        );
        assert_eq!(to_string(&v).unwrap(), "{\"a\":1,\"b\":[1.5,null]}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
    }

    #[test]
    fn round_trips() {
        let v = Value::Map(vec![
            ("wall_ns".into(), Value::F64(123.25)),
            ("name".into(), Value::Str("vv\"add\n".into())),
            ("big".into(), Value::Null),
            ("xs".into(), Value::Seq(vec![Value::U64(1), Value::I64(-2)])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }
}
