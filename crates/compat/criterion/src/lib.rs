//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the benchmarking API subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `finish`), [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs a
//! warm-up iteration and `sample_size` timed samples, reporting the median
//! wall time per iteration (plus derived element throughput when
//! configured). There is no statistics engine, outlier analysis, or HTML
//! report.

use std::time::Instant;

pub use std::hint::black_box;

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.default_sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples_ns.push(start.elapsed().as_nanos());
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up (untimed).
    let mut warm = Bencher {
        samples_ns: Vec::new(),
    };
    f(&mut warm);

    let mut b = Bencher {
        samples_ns: Vec::with_capacity(sample_size),
    };
    while b.samples_ns.len() < sample_size {
        let before = b.samples_ns.len();
        f(&mut b);
        if b.samples_ns.len() == before {
            // The closure never called iter(); avoid spinning forever.
            break;
        }
    }
    if b.samples_ns.is_empty() {
        println!("  {label}: no samples (closure never called Bencher::iter)");
        return;
    }
    b.samples_ns.sort_unstable();
    let median = b.samples_ns[b.samples_ns.len() / 2];
    match throughput {
        Some(Throughput::Elements(n)) if median > 0 => {
            let rate = n as f64 / (median as f64 / 1.0e9);
            println!(
                "  {label}: median {median} ns/iter ({} samples), {rate:.0} elem/s",
                b.samples_ns.len()
            );
        }
        Some(Throughput::Bytes(n)) if median > 0 => {
            let rate = n as f64 / (median as f64 / 1.0e9) / (1 << 20) as f64;
            println!(
                "  {label}: median {median} ns/iter ({} samples), {rate:.2} MiB/s",
                b.samples_ns.len()
            );
        }
        _ => println!(
            "  {label}: median {median} ns/iter ({} samples)",
            b.samples_ns.len()
        ),
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups (ignores harness CLI args).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("case", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran >= 3);
    }
}
