//! Offline stand-in for `serde`'s serialization half.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset it uses: a [`Serialize`] trait (every value lowers itself to
//! the self-describing [`Content`] tree, which `serde_json` then formats)
//! plus a derive macro for structs with named fields. The trait shape is
//! deliberately simpler than upstream serde's visitor architecture; all
//! in-repo consumers go through `serde_json`, which only needs the tree.

pub use serde_derive::Serialize;

/// A serialized value: the data-model tree every [`Serialize`] type
/// lowers itself into. `serde_json` renders it; the experiment harness's
/// run cache also reads it back via the accessor methods.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` (from `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, slice, array, tuple).
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order (derived structs).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The value under `key` if this is a map containing it.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The `u64` value, widening from any integer representation.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(x) => Some(x),
            Content::I64(x) => u64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The `f64` value, widening from integers.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(x) => Some(x),
            Content::U64(x) => Some(x as f64),
            Content::I64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is a sequence.
    pub fn as_array(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(xs) => Some(xs),
            _ => None,
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }
}

/// A type that can lower itself to the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` to the serialization tree.
    fn to_content(&self) -> Content;
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Upstream-compatible module path (`serde::ser::Serialize`).
pub mod ser {
    pub use super::{Content, Serialize};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower() {
        assert_eq!(3u32.to_content(), Content::U64(3));
        assert_eq!((-3i64).to_content(), Content::I64(-3));
        assert_eq!("hi".to_content(), Content::Str("hi".into()));
        assert_eq!(None::<u8>.to_content(), Content::Null);
    }

    #[test]
    fn containers_lower() {
        let v = vec![1u8, 2];
        assert_eq!(
            v.to_content(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
        let t = ("x".to_string(), 1.5f64);
        assert_eq!(
            t.to_content(),
            Content::Seq(vec![Content::Str("x".into()), Content::F64(1.5)])
        );
    }

    #[test]
    fn map_accessors() {
        let m = Content::Map(vec![("a".into(), Content::U64(7))]);
        assert_eq!(m.get("a").and_then(Content::as_u64), Some(7));
        assert!(m.get("b").is_none());
    }
}
