//! `#[derive(Serialize)]` for the vendored offline `serde` subset.
//!
//! Supports exactly what the workspace uses: non-generic structs with
//! named fields (any field type that itself implements `Serialize`).
//! Implemented directly on `proc_macro` token streams — the environment
//! has no crates.io access, so `syn`/`quote` are unavailable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by lowering each named field in declaration
/// order into a `serde::Content::Map` entry.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();

    // Skip attributes/visibility until the `struct` keyword.
    let name = loop {
        match iter.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(n)) => break n.to_string(),
                other => panic!("expected struct name, found {other:?}"),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("the vendored serde_derive only supports structs with named fields")
            }
            Some(_) => continue,
            None => panic!("no `struct` found in derive input"),
        }
    };

    // The body must be the next brace group (generics are unsupported).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("the vendored serde_derive does not support generic structs")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("the vendored serde_derive does not support tuple/unit structs")
            }
            Some(_) => continue,
            None => panic!("struct `{name}` has no braced field list"),
        }
    };

    let fields = parse_named_fields(body);
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f})),"
            )
        })
        .collect();

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Extracts field names from the brace-group token stream of a struct
/// with named fields, skipping attributes and visibility modifiers and
/// balancing `<...>` so commas inside generic types do not split fields.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip field attributes: `#` followed by a bracket group.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("malformed attribute, found {other:?}"),
            }
        }
        // Skip visibility: `pub` with optional `(...)` restriction.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        // Field name.
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
    fields
}
