#![warn(missing_docs)]
//! # bvl-obs — the cycle-attribution observability layer
//!
//! Three facilities, shared by every crate of the simulator:
//!
//! 1. **[`StatsRegistry`]** — every ticked component (cores, caches, DRAM,
//!    the vector engines, the runtime) registers its counters under a
//!    hierarchical dotted path (`sys.little3.l1d.misses`). The registry
//!    freezes into a [`StatsSnapshot`], the typed, ordered key→value view
//!    that `bvl-sim` embeds in its `RunResult` and that every figure
//!    module reads instead of reaching into per-component structs.
//! 2. **Event tracing** ([`trace`]) — a thread-local, ring-buffered
//!    structured event sink ([`TraceEvent`]) that is a branch-on-a-bool
//!    no-op when disabled, with a Chrome `trace_event` JSON exporter so
//!    any run can be opened in `chrome://tracing` / Perfetto.
//! 3. **Conservation laws** ([`conservation`]) — exact flow balances
//!    (`busy + Σstalls == cycles`, `hits + misses + merges == accesses`,
//!    L1→L2→DRAM flow, VMU→bank line delivery) checked over a snapshot
//!    by [`check_conservation`]. `bvl_sim::verify_conservation` wraps it
//!    for `RunResult`, and debug builds run it after every simulation.
//!    The contracts each component promises are documented in
//!    `DESIGN.md` §4.10.

pub mod conservation;
pub mod registry;
pub mod trace;

pub use conservation::{check_conservation, Violation};
pub use registry::{Scope, StatsRegistry, StatsSnapshot};
pub use trace::{TraceEvent, TraceLog};
