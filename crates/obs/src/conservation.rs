//! Conservation-law checking over a [`StatsSnapshot`].
//!
//! Every law is an *exact* flow balance over end-of-run counters.
//! Components are discovered from the snapshot's path schema, so the
//! checker works unchanged for all seven `SystemKind`s — a law whose
//! paths are absent is simply not applicable to that system.
//!
//! Simulation ends when every core and engine is done, not when the
//! memory hierarchy has fully drained (a speculative ifetch miss issued
//! the cycle a core halts never completes). The downstream flow laws
//! therefore carry explicit in-flight terms, themselves registered from
//! the end-of-run queue depths (`sys.mem.l2_inflight`,
//! `sys.mem.dram_inflight_{rd,wr}`).
//!
//! The laws (see `DESIGN.md` §4.10 for the component contracts):
//!
//! | law          | balance |
//! |--------------|---------|
//! | `breakdown`  | per core-like unit: `Σ breakdown.* == cycles` |
//! | `cache`      | per cache: `hits + misses + mshr_merges == accesses` |
//! | `dram-flow`  | `dram.accesses + mem.dram_inflight_{rd+wr} == l2.misses + l2.writebacks`, `dram.writes + mem.dram_inflight_wr == l2.writebacks` |
//! | `l2-flow`    | `l2.accesses == mem.l2_reqs`; `l2.accesses + mem.l2_inflight == Σ l1*.misses + Σ l1d.writebacks + mem.dve_reqs` |
//! | `data-reqs`  | `mem.data_reqs == Σ l1d.accesses + mem.dve_reqs` |
//! | `ifetch-reqs`| `mem.ifetch_reqs == Σ l1i.accesses` |
//! | `vmu-flow`   | `engine.vmu.line_reqs == mem.vmu_reqs` |

use crate::registry::StatsSnapshot;

/// One violated conservation law.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Short law identifier (`"breakdown"`, `"dram-flow"`, …).
    pub law: &'static str,
    /// Human-readable statement of the broken balance, with both sides'
    /// paths spelled out.
    pub detail: String,
    /// Left-hand side value.
    pub lhs: u64,
    /// Right-hand side value.
    pub rhs: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} ({} != {})",
            self.law, self.detail, self.lhs, self.rhs
        )
    }
}

fn check(out: &mut Vec<Violation>, law: &'static str, detail: String, lhs: u64, rhs: u64) {
    if lhs != rhs {
        out.push(Violation {
            law,
            detail,
            lhs,
            rhs,
        });
    }
}

/// Checks every applicable conservation law against `snap`, returning
/// all violations (empty means the snapshot balances).
pub fn check_conservation(snap: &StatsSnapshot) -> Vec<Violation> {
    let mut v = Vec::new();
    check_breakdowns(snap, &mut v);
    check_caches(snap, &mut v);
    check_dram_flow(snap, &mut v);
    check_l2_flow(snap, &mut v);
    check_port_counts(snap, &mut v);
    check_vmu_flow(snap, &mut v);
    v
}

/// `Σ breakdown.* == cycles` for every unit that reports a breakdown.
fn check_breakdowns(snap: &StatsSnapshot, out: &mut Vec<Violation>) {
    let units: Vec<String> = snap
        .paths_matching("", ".breakdown.busy")
        .iter()
        .map(|p| p[..p.len() - ".breakdown.busy".len()].to_string())
        .collect();
    for unit in units {
        let cycles = snap.value(&format!("{unit}.cycles"));
        let total = snap.sum_matching(&format!("{unit}.breakdown."), "");
        check(
            out,
            "breakdown",
            format!("{unit}: Σ breakdown == cycles"),
            total,
            cycles,
        );
    }
}

/// `hits + misses + mshr_merges == accesses` for every cache. Caches are
/// recognised by their `mshr_merges` counter (DRAM has none).
fn check_caches(snap: &StatsSnapshot, out: &mut Vec<Violation>) {
    let caches: Vec<String> = snap
        .paths_matching("", ".mshr_merges")
        .iter()
        .map(|p| p[..p.len() - ".mshr_merges".len()].to_string())
        .collect();
    for c in caches {
        let lhs = snap.value(&format!("{c}.hits"))
            + snap.value(&format!("{c}.misses"))
            + snap.value(&format!("{c}.mshr_merges"));
        check(
            out,
            "cache",
            format!("{c}: hits + misses + mshr_merges == accesses"),
            lhs,
            snap.value(&format!("{c}.accesses")),
        );
    }
}

/// Every L2 miss becomes exactly one DRAM read and every L2 writeback
/// exactly one DRAM write, counting what is still queued toward DRAM at
/// end of run as in-flight.
fn check_dram_flow(snap: &StatsSnapshot, out: &mut Vec<Violation>) {
    if snap.get("sys.dram.accesses").is_none() {
        return;
    }
    let l2_misses = snap.value("sys.l2.misses");
    let l2_wb = snap.value("sys.l2.writebacks");
    let rd = snap.value("sys.mem.dram_inflight_rd");
    let wr = snap.value("sys.mem.dram_inflight_wr");
    check(
        out,
        "dram-flow",
        "sys.dram.accesses + inflight == sys.l2.misses + sys.l2.writebacks".to_string(),
        snap.value("sys.dram.accesses") + rd + wr,
        l2_misses + l2_wb,
    );
    check(
        out,
        "dram-flow",
        "sys.dram.writes + inflight == sys.l2.writebacks".to_string(),
        snap.value("sys.dram.writes") + wr,
        l2_wb,
    );
}

/// Every accepted L2 access is an L1 demand miss, an L1D writeback, or a
/// DVE line request — and `mem.l2_reqs` counts the same accept events.
fn check_l2_flow(snap: &StatsSnapshot, out: &mut Vec<Violation>) {
    if snap.get("sys.l2.accesses").is_none() {
        return;
    }
    let l2_accesses = snap.value("sys.l2.accesses");
    check(
        out,
        "l2-flow",
        "sys.l2.accesses == sys.mem.l2_reqs".to_string(),
        l2_accesses,
        snap.value("sys.mem.l2_reqs"),
    );
    let inflow = snap.sum_matching("sys.", ".l1i.misses")
        + snap.sum_matching("sys.", ".l1d.misses")
        + snap.sum_matching("sys.", ".l1d.writebacks")
        + snap.value("sys.mem.dve_reqs");
    check(
        out,
        "l2-flow",
        "sys.l2.accesses + sys.mem.l2_inflight == Σ l1.misses + Σ l1d.writebacks + sys.mem.dve_reqs"
            .to_string(),
        l2_accesses + snap.value("sys.mem.l2_inflight"),
        inflow,
    );
}

/// The hierarchy's front-door counters agree with the per-cache accept
/// counts: `data_reqs` covers every L1D port plus the DVE's direct-to-L2
/// port, `ifetch_reqs` every L1I port.
fn check_port_counts(snap: &StatsSnapshot, out: &mut Vec<Violation>) {
    if snap.get("sys.mem.data_reqs").is_none() {
        return;
    }
    check(
        out,
        "data-reqs",
        "sys.mem.data_reqs == Σ l1d.accesses + sys.mem.dve_reqs".to_string(),
        snap.value("sys.mem.data_reqs"),
        snap.sum_matching("sys.", ".l1d.accesses") + snap.value("sys.mem.dve_reqs"),
    );
    check(
        out,
        "ifetch-reqs",
        "sys.mem.ifetch_reqs == Σ l1i.accesses".to_string(),
        snap.value("sys.mem.ifetch_reqs"),
        snap.sum_matching("sys.", ".l1i.accesses"),
    );
}

/// At drain, every line request the VMU generated was accepted by a bank
/// exactly once (`mem.vmu_reqs` counts accepts on `PortId::Vmu` ports).
fn check_vmu_flow(snap: &StatsSnapshot, out: &mut Vec<Violation>) {
    if snap.get("sys.engine.vmu.line_reqs").is_none() {
        return;
    }
    check(
        out,
        "vmu-flow",
        "sys.engine.vmu.line_reqs == sys.mem.vmu_reqs".to_string(),
        snap.value("sys.engine.vmu.line_reqs"),
        snap.value("sys.mem.vmu_reqs"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::StatsRegistry;

    fn balanced() -> StatsRegistry {
        let mut reg = StatsRegistry::new();
        reg.set("sys.little0.cycles", 10);
        reg.set("sys.little0.breakdown.busy", 6);
        reg.set("sys.little0.breakdown.raw_mem", 4);
        reg.set("sys.little0.l1d.accesses", 5);
        reg.set("sys.little0.l1d.hits", 3);
        reg.set("sys.little0.l1d.misses", 2);
        reg.set("sys.little0.l1d.mshr_merges", 0);
        reg.set("sys.little0.l1d.writebacks", 1);
        reg.set("sys.little0.l1i.accesses", 7);
        reg.set("sys.little0.l1i.misses", 1);
        reg.set("sys.little0.l1i.mshr_merges", 0);
        reg.set("sys.little0.l1i.hits", 6);
        reg.set("sys.l2.accesses", 4);
        reg.set("sys.l2.hits", 1);
        reg.set("sys.l2.misses", 3);
        reg.set("sys.l2.mshr_merges", 0);
        reg.set("sys.l2.writebacks", 2);
        reg.set("sys.dram.accesses", 5);
        reg.set("sys.dram.writes", 2);
        reg.set("sys.mem.l2_reqs", 4);
        reg.set("sys.mem.data_reqs", 5);
        reg.set("sys.mem.ifetch_reqs", 7);
        reg.set("sys.mem.dve_reqs", 0);
        reg
    }

    #[test]
    fn balanced_snapshot_passes() {
        let snap = balanced().snapshot();
        let v = check_conservation(&snap);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn breakdown_violation_is_caught() {
        let mut reg = balanced();
        reg.set("sys.lane0.cycles", 10);
        reg.set("sys.lane0.breakdown.busy", 3);
        let v = check_conservation(&reg.snapshot());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].law, "breakdown");
        assert_eq!((v[0].lhs, v[0].rhs), (3, 10));
        assert!(v[0].to_string().contains("sys.lane0"));
    }

    #[test]
    fn cache_partition_violation_is_caught() {
        let mut snap_entries: Vec<(String, u64)> = balanced()
            .snapshot()
            .iter()
            .map(|(p, v)| (p.to_string(), v))
            .collect();
        for (p, v) in &mut snap_entries {
            if p == "sys.little0.l1d.hits" {
                *v += 1;
            }
        }
        let v = check_conservation(&StatsSnapshot::from_entries(snap_entries));
        assert!(v.iter().any(|x| x.law == "cache"));
    }

    #[test]
    fn dram_flow_violation_is_caught() {
        let mut reg = balanced();
        // A fully absent dram section is fine…
        let snap = reg.snapshot();
        assert!(check_conservation(&snap).is_empty());
        // …but a lost write is not.
        reg = StatsRegistry::new();
        for (p, v) in snap.iter() {
            let v = if p == "sys.dram.writes" { v + 1 } else { v };
            reg.set(p, v);
        }
        let v = check_conservation(&reg.snapshot());
        assert!(v.iter().any(|x| x.law == "dram-flow"));
    }

    #[test]
    fn vmu_flow_checked_only_when_present() {
        let mut reg = balanced();
        assert!(check_conservation(&reg.snapshot().clone()).is_empty());
        reg = balanced();
        reg.set("sys.engine.vmu.line_reqs", 9);
        reg.set("sys.mem.vmu_reqs", 8);
        let v = check_conservation(&reg.snapshot());
        assert!(v.iter().any(|x| x.law == "vmu-flow"));
    }
}
