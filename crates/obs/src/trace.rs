//! Low-overhead structured event tracing.
//!
//! Components call [`emit`] unconditionally from their tick paths; the
//! call is an `#[inline]` branch on a thread-local bool that costs
//! nothing measurable while tracing is disabled (the common case — the
//! `skip` Criterion bench guards the regression budget). When a run
//! starts with `SimParams::trace` set, the simulator arms the
//! thread-local sink via [`start`]; [`finish`] disarms it and hands the
//! collected [`TraceLog`] back.
//!
//! The sink is thread-local because the sweep harness fans independent
//! `simulate` calls out across worker threads: each run's events land in
//! its own thread's buffer with no synchronization on the hot path.
//!
//! Two render targets:
//!
//! * [`TraceLog::to_text`] — one line per event, the byte-stable format
//!   the golden-trace regression test compares;
//! * [`TraceLog::to_chrome_json`] — the Chrome `trace_event` JSON array
//!   format, loadable in `chrome://tracing` and Perfetto (`--trace-out`
//!   on every experiment binary).

use std::cell::{Cell, RefCell};

/// One structured trace event.
///
/// `tick` is the emitting component's *local clock-domain cycle* (uncore
/// cycles for the hierarchy, big-cluster cycles for the big core, …);
/// `component`/`unit` identify the emitter (`("little", 3)`), `kind` the
/// event, and `payload` one event-defined value (a sequence number, a
/// line address, a window length).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock-domain cycle at which the event happened.
    pub tick: u64,
    /// Emitting component class (`"big"`, `"vmu"`, `"dram"`, `"sim"`, …).
    pub component: &'static str,
    /// Instance index within the class (core id, bank id; 0 if unique).
    pub unit: u16,
    /// Event kind (`"vec_dispatch"`, `"rd"`, `"skip"`, …).
    pub kind: &'static str,
    /// Event-defined value.
    pub payload: u64,
}

/// A bounded, ordered collection of [`TraceEvent`]s.
///
/// The buffer keeps the *first* `capacity` events and counts the rest in
/// [`TraceLog::dropped`] — a deterministic policy, so a truncated trace
/// is still byte-stable run to run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// An empty log holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records `ev`, or counts it dropped once the buffer is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that arrived after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The byte-stable text rendering: one `tick component[unit] kind
    /// payload` line per event, plus a trailing `# dropped N` marker when
    /// the buffer overflowed. This is what the golden-trace regression
    /// test byte-compares.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 32);
        for e in &self.events {
            out.push_str(&format!(
                "{} {}[{}] {} {}\n",
                e.tick, e.component, e.unit, e.kind, e.payload
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("# dropped {}\n", self.dropped));
        }
        out
    }

    /// Chrome `trace_event` JSON (the `{"traceEvents": [...]}` object
    /// form). Each event becomes an instant event (`"ph":"i"`) at
    /// `ts = tick`; each distinct `(component, unit)` pair becomes a
    /// named thread so Perfetto groups events by emitter.
    pub fn to_chrome_json(&self) -> String {
        // Stable (component, unit) -> tid mapping in first-seen order.
        let mut emitters: Vec<(&'static str, u16)> = Vec::new();
        let tid_of =
            |c: &'static str, u: u16, emitters: &mut Vec<(&'static str, u16)>| match emitters
                .iter()
                .position(|&(ec, eu)| ec == c && eu == u)
            {
                Some(i) => i,
                None => {
                    emitters.push((c, u));
                    emitters.len() - 1
                }
            };
        let mut body = String::from("{\"traceEvents\":[");
        let mut first = true;
        for e in &self.events {
            let tid = tid_of(e.component, e.unit, &mut emitters);
            if !first {
                body.push(',');
            }
            first = false;
            body.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"payload\":{}}}}}",
                e.kind, e.component, e.tick, tid, e.payload
            ));
        }
        // Thread-name metadata so viewers label rows `big/0`, `dram/0`, …
        for (tid, (c, u)) in emitters.iter().enumerate() {
            if !first {
                body.push(',');
            }
            first = false;
            body.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{c}/{u}\"}}}}"
            ));
        }
        body.push_str(&format!(
            "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped
        ));
        body
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<TraceLog> = const {
        RefCell::new(TraceLog {
            events: Vec::new(),
            capacity: 0,
            dropped: 0,
        })
    };
}

/// True while this thread's trace sink is armed.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Records one event into this thread's sink — an `#[inline]` branch on
/// a thread-local bool when tracing is disabled, so it may sit on
/// moderately hot simulator paths.
#[inline]
pub fn emit(tick: u64, component: &'static str, unit: u16, kind: &'static str, payload: u64) {
    if !active() {
        return;
    }
    emit_armed(TraceEvent {
        tick,
        component,
        unit,
        kind,
        payload,
    });
}

#[cold]
fn emit_armed(ev: TraceEvent) {
    SINK.with(|s| s.borrow_mut().push(ev));
}

/// Arms this thread's sink with a fresh buffer of `capacity` events.
/// Any previously collected (un-finished) events are discarded.
pub fn start(capacity: usize) {
    SINK.with(|s| *s.borrow_mut() = TraceLog::new(capacity));
    ACTIVE.with(|a| a.set(true));
}

/// Disarms this thread's sink and returns everything it collected.
/// Calling without a prior [`start`] returns an empty log.
pub fn finish() -> TraceLog {
    ACTIVE.with(|a| a.set(false));
    SINK.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emit_is_a_no_op() {
        assert!(!active());
        emit(1, "x", 0, "k", 2);
        assert!(finish().is_empty());
    }

    #[test]
    fn start_emit_finish_round_trip() {
        start(8);
        assert!(active());
        emit(5, "big", 0, "vec_dispatch", 42);
        emit(9, "dram", 0, "rd", 0x4000);
        let log = finish();
        assert!(!active());
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].tick, 5);
        assert_eq!(log.events()[1].payload, 0x4000);
        assert_eq!(log.dropped(), 0);
        // A second finish yields nothing.
        assert!(finish().is_empty());
    }

    #[test]
    fn overflow_keeps_prefix_and_counts_drops() {
        start(2);
        for i in 0..5 {
            emit(i, "c", 0, "k", i);
        }
        let log = finish();
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.events()[1].tick, 1);
        assert!(log.to_text().ends_with("# dropped 3\n"));
    }

    #[test]
    fn text_format_is_stable() {
        let mut log = TraceLog::new(4);
        log.push(TraceEvent {
            tick: 7,
            component: "little",
            unit: 3,
            kind: "halt",
            payload: 0,
        });
        assert_eq!(log.to_text(), "7 little[3] halt 0\n");
    }

    #[test]
    fn chrome_json_names_threads() {
        let mut log = TraceLog::new(4);
        log.push(TraceEvent {
            tick: 1,
            component: "vmu",
            unit: 0,
            kind: "mem_cmd",
            payload: 9,
        });
        let json = log.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"mem_cmd\""));
        assert!(json.contains("\"name\":\"vmu/0\""));
        assert!(json.contains("\"dropped\":0"));
    }
}
