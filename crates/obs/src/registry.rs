//! The unified statistics registry.
//!
//! Components register `u64` counters (and end-of-run gauges) under
//! hierarchical dotted paths. Paths are unique — registering the same
//! path twice is a bug and panics loudly. A finished registry freezes
//! into a [`StatsSnapshot`], an insertion-ordered key→value view with
//! lookup, prefix aggregation and delta support.

use std::collections::HashMap;

/// A write-side registry of named counters.
///
/// ```
/// use bvl_obs::StatsRegistry;
/// let mut reg = StatsRegistry::new();
/// let mut sys = reg.scope("sys");
/// let mut l1d = sys.scope("little3.l1d");
/// l1d.set("misses", 41);
/// let snap = reg.snapshot();
/// assert_eq!(snap.get("sys.little3.l1d.misses"), Some(41));
/// ```
#[derive(Debug, Default)]
pub struct StatsRegistry {
    entries: Vec<(String, u64)>,
    index: HashMap<String, usize>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Registers `value` under the full `path`.
    ///
    /// # Panics
    ///
    /// Panics if `path` was already registered — two components claiming
    /// the same path is a wiring bug, not a mergeable situation.
    pub fn set(&mut self, path: &str, value: u64) {
        if let Err(e) = self.try_set(path, value) {
            panic!("{e}");
        }
    }

    /// Fallible [`StatsRegistry::set`]: returns an error instead of
    /// panicking on a duplicate path. The property-test suite uses this
    /// to probe path-uniqueness without `catch_unwind`.
    pub fn try_set(&mut self, path: &str, value: u64) -> Result<(), String> {
        if self.index.contains_key(path) {
            return Err(format!("stats path `{path}` registered twice"));
        }
        self.index.insert(path.to_string(), self.entries.len());
        self.entries.push((path.to_string(), value));
        Ok(())
    }

    /// A sub-scope that prefixes every registered name with `prefix.`.
    pub fn scope(&mut self, prefix: &str) -> Scope<'_> {
        Scope {
            reg: self,
            prefix: prefix.to_string(),
        }
    }

    /// Number of registered paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Freezes the registry into an immutable snapshot.
    pub fn snapshot(self) -> StatsSnapshot {
        StatsSnapshot {
            entries: self.entries,
        }
    }
}

/// A prefixed view into a [`StatsRegistry`]; see [`StatsRegistry::scope`].
#[derive(Debug)]
pub struct Scope<'a> {
    reg: &'a mut StatsRegistry,
    prefix: String,
}

impl Scope<'_> {
    /// Registers `value` under `{prefix}.{name}`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate full path (see [`StatsRegistry::set`]).
    pub fn set(&mut self, name: &str, value: u64) {
        let path = format!("{}.{name}", self.prefix);
        self.reg.set(&path, value);
    }

    /// A deeper sub-scope `{prefix}.{sub}`.
    pub fn scope(&mut self, sub: &str) -> Scope<'_> {
        Scope {
            prefix: format!("{}.{sub}", self.prefix),
            reg: self.reg,
        }
    }

    /// The full dotted prefix of this scope.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }
}

/// The frozen, insertion-ordered path→value view of one run's counters.
///
/// Equality is exact (path set, order and values), which is what the
/// skip-equivalence and determinism suites compare.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    entries: Vec<(String, u64)>,
}

impl StatsSnapshot {
    /// Builds a snapshot directly from `(path, value)` pairs — the
    /// deserialization entry point (cache reload, tests).
    ///
    /// # Panics
    ///
    /// Panics on duplicate paths.
    pub fn from_entries(entries: Vec<(String, u64)>) -> Self {
        let mut reg = StatsRegistry::new();
        for (p, v) in entries {
            reg.set(&p, v);
        }
        reg.snapshot()
    }

    /// The value at `path`, if registered.
    pub fn get(&self, path: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(p, _)| p == path)
            .map(|&(_, v)| v)
    }

    /// The value at `path`, defaulting to 0 when the component did not
    /// exist in this run (e.g. `sys.big.*` on `1L`).
    pub fn value(&self, path: &str) -> u64 {
        self.get(path).unwrap_or(0)
    }

    /// Sum of every entry whose path matches `prefix`…`suffix` — e.g.
    /// `sum_matching("sys.lane", ".cycles")` totals all lanes' cycles.
    /// An empty `prefix` or `suffix` matches everything on that side.
    pub fn sum_matching(&self, prefix: &str, suffix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(p, _)| p.starts_with(prefix) && p.ends_with(suffix))
            .map(|&(_, v)| v)
            .sum()
    }

    /// Paths matching `prefix`…`suffix`, in registration order.
    pub fn paths_matching(&self, prefix: &str, suffix: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(p, _)| p.starts_with(prefix) && p.ends_with(suffix))
            .map(|(p, _)| p.as_str())
            .collect()
    }

    /// Per-path difference `self - earlier` (wrapping), keeping `self`'s
    /// path order. Paths absent from `earlier` count as 0 there.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(p, v)| (p.clone(), v.wrapping_sub(earlier.value(p))))
                .collect(),
        }
    }

    /// Iterates `(path, value)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.entries.iter().map(|&(ref p, v)| (p.as_str(), v))
    }

    /// Number of registered paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty (e.g. [`StatsSnapshot::default`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_paths_compose() {
        let mut reg = StatsRegistry::new();
        let mut sys = reg.scope("sys");
        sys.set("uncore_cycles", 7);
        let mut l2 = sys.scope("l2");
        l2.set("misses", 3);
        let snap = reg.snapshot();
        assert_eq!(snap.get("sys.uncore_cycles"), Some(7));
        assert_eq!(snap.get("sys.l2.misses"), Some(3));
        assert_eq!(snap.get("sys.l2.hits"), None);
        assert_eq!(snap.value("sys.l2.hits"), 0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_path_panics() {
        let mut reg = StatsRegistry::new();
        reg.set("a.b", 1);
        reg.set("a.b", 2);
    }

    #[test]
    fn sum_matching_aggregates() {
        let mut reg = StatsRegistry::new();
        reg.set("sys.lane0.cycles", 10);
        reg.set("sys.lane1.cycles", 20);
        reg.set("sys.lane1.retired", 5);
        reg.set("sys.l2.cycles", 99);
        let snap = reg.snapshot();
        assert_eq!(snap.sum_matching("sys.lane", ".cycles"), 30);
        assert_eq!(snap.paths_matching("sys.lane", ".cycles").len(), 2);
    }

    #[test]
    fn delta_subtracts_per_path() {
        let a = StatsSnapshot::from_entries(vec![("x".into(), 3), ("y".into(), 10)]);
        let b = StatsSnapshot::from_entries(vec![("x".into(), 5), ("y".into(), 10)]);
        let d = b.delta(&a);
        assert_eq!(d.get("x"), Some(2));
        assert_eq!(d.get("y"), Some(0));
    }
}
