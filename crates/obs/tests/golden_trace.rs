//! Golden-trace regression test: one fixed difftest corpus program runs
//! on `1b-4VL` with tracing armed, and the text rendering of the event
//! log must byte-match the committed golden file. Any change to event
//! ordering, emit sites or the text format shows up as a diff here.
//!
//! To re-bless after an intentional change:
//! `BLESS=1 cargo test -p bvl-obs --test golden_trace`
//!
//! The Chrome JSON rendering of the same log is also validated as
//! parseable `trace_event` JSON (what `--trace-out` writes for
//! Perfetto / chrome://tracing).

use bvl_difftest::{difftest_workload, DtProgram};
use bvl_sim::{simulate_traced, SimParams, SystemKind};
use std::path::PathBuf;

const CORPUS_PROGRAM: &str = "seed_0ae89775f52a28c8";

fn manifest_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn traced_corpus_run() -> bvl_obs::TraceLog {
    let text = std::fs::read_to_string(manifest_path(&format!(
        "../difftest/corpus/{CORPUS_PROGRAM}.s"
    )))
    .expect("read corpus program");
    let dt = DtProgram::parse(&text).expect("parse corpus program");
    let program = dt.assemble().expect("assemble corpus program");
    let (serial, vector) = (
        program.label("serial").expect("serial label"),
        program.label("vector").expect("vector label"),
    );
    let workload = difftest_workload(&program, serial, vector);
    let (_, log) = simulate_traced(SystemKind::B4Vl, &workload, &SimParams::default())
        .expect("traced simulation");
    log
}

#[test]
fn corpus_trace_matches_golden() {
    let log = traced_corpus_run();
    assert!(!log.is_empty(), "traced run emitted no events");
    let rendered = log.to_text();

    let golden_path = manifest_path(&format!("tests/golden/{CORPUS_PROGRAM}.b4vl.txt"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("bless golden trace");
        eprintln!("blessed {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {} ({e}) — bless with BLESS=1", golden_path.display()));
    assert_eq!(
        rendered,
        golden,
        "trace diverged from {} — re-bless with BLESS=1 if intentional",
        golden_path.display()
    );
}

#[test]
fn corpus_trace_chrome_json_is_valid_trace_event_format() {
    let log = traced_corpus_run();
    let json: serde_json::Value =
        serde_json::from_str(&log.to_chrome_json()).expect("chrome trace JSON parses");
    let events = json
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let field = |e: &serde_json::Value, k: &str| -> serde_json::Value {
        e.get(k)
            .unwrap_or_else(|| panic!("event missing `{k}`"))
            .clone()
    };
    let mut instants = 0usize;
    for e in events {
        assert!(field(e, "name").as_str().is_some());
        assert_eq!(field(e, "pid").as_u64(), Some(0));
        assert!(field(e, "tid").as_u64().is_some());
        match field(e, "ph").as_str().expect("ph string") {
            "i" => {
                assert!(field(e, "ts").as_u64().is_some(), "instant event needs ts");
                instants += 1;
            }
            "M" => assert_eq!(field(e, "name").as_str(), Some("thread_name")),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(instants, log.len());
    assert_eq!(
        json.get("otherData")
            .and_then(|o| o.get("dropped"))
            .and_then(|d| d.as_u64()),
        Some(log.dropped())
    );
}
