//! Property tests for the stats registry: snapshot/delta round-trips and
//! path uniqueness under arbitrary (bounded) register sequences.

use bvl_obs::{StatsRegistry, StatsSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// A bounded pool of realistic-looking paths. Small enough that random
/// sequences collide, so the uniqueness property is actually exercised.
const PATHS: [&str; 8] = [
    "sys.clock.uncore",
    "sys.big.cycles",
    "sys.little0.l1d.misses",
    "sys.little1.l1d.misses",
    "sys.lane0.breakdown.busy",
    "sys.l2.accesses",
    "sys.mem.data_reqs",
    "sys.dram.writes",
];

fn build(seq: &[(usize, u64)]) -> (StatsRegistry, Vec<(String, u64)>) {
    let mut reg = StatsRegistry::new();
    let mut accepted: Vec<(String, u64)> = Vec::new();
    for &(pi, v) in seq {
        let path = PATHS[pi % PATHS.len()];
        let ok = reg.try_set(path, v).is_ok();
        let first_occurrence = !accepted.iter().any(|(p, _)| p == path);
        assert_eq!(
            ok, first_occurrence,
            "try_set must accept exactly first use"
        );
        if ok {
            accepted.push((path.to_string(), v));
        }
    }
    (reg, accepted)
}

proptest! {
    /// A snapshot re-built from its own `(path, value)` entries is
    /// identical — order, paths and values all survive the round trip.
    #[test]
    fn snapshot_round_trips_through_entries(
        seq in vec((0usize..PATHS.len(), 0u64..1_000_000), 0..24),
    ) {
        let (reg, accepted) = build(&seq);
        let snap = reg.snapshot();
        prop_assert_eq!(snap.len(), accepted.len());
        let rebuilt = StatsSnapshot::from_entries(
            snap.iter().map(|(p, v)| (p.to_string(), v)).collect(),
        );
        prop_assert_eq!(&rebuilt, &snap);
        for (p, v) in &accepted {
            prop_assert_eq!(snap.get(p), Some(*v), "lost value at {}", p);
        }
    }

    /// `later.delta(earlier)` is the per-path wrapping difference, paths
    /// absent from `earlier` counting as 0; delta with self is all zeros.
    #[test]
    fn delta_is_per_path_difference(
        seq in vec((0usize..PATHS.len(), 0u64..1_000_000), 0..24),
        bumps in vec((0usize..PATHS.len(), 0u64..1_000), 0..24),
    ) {
        let (reg, accepted) = build(&seq);
        let earlier = reg.snapshot();

        // A later snapshot: same paths, some values bumped, plus one path
        // the earlier snapshot may not have.
        let mut later_entries: Vec<(String, u64)> = accepted.clone();
        for &(pi, b) in &bumps {
            if let Some(e) = later_entries.get_mut(pi % PATHS.len().max(1)) {
                e.1 = e.1.wrapping_add(b);
            }
        }
        if !later_entries.iter().any(|(p, _)| p == "sys.runtime.steals") {
            later_entries.push(("sys.runtime.steals".to_string(), 7));
        }
        let later = StatsSnapshot::from_entries(later_entries.clone());

        let d = later.delta(&earlier);
        prop_assert_eq!(d.len(), later.len());
        for (p, v) in later.iter() {
            prop_assert_eq!(
                d.value(p),
                v.wrapping_sub(earlier.value(p)),
                "delta wrong at {}", p
            );
        }
        for (_, v) in later.delta(&later).iter() {
            prop_assert_eq!(v, 0);
        }
    }

    /// Registration is first-wins-and-loud: duplicates are rejected, the
    /// original value survives, and aggregation sees each path once.
    #[test]
    fn paths_stay_unique_and_sums_agree(
        seq in vec((0usize..PATHS.len(), 0u64..1_000_000), 1..32),
    ) {
        let (reg, accepted) = build(&seq);
        prop_assert_eq!(reg.len(), accepted.len());
        let snap = reg.snapshot();
        let manual: u64 = accepted
            .iter()
            .filter(|(p, _)| p.starts_with("sys.") && p.ends_with(".misses"))
            .map(|&(_, v)| v)
            .sum();
        prop_assert_eq!(snap.sum_matching("sys.", ".misses"), manual);
        prop_assert_eq!(
            snap.paths_matching("", "").len(),
            accepted.len(),
            "every accepted path appears exactly once"
        );
    }
}
