//! End-to-end conservation-law suite: every `SystemKind` × a vector
//! kernel and a matrix kernel, with the quiescence-skip engine both on
//! and off. `bvl_sim::verify_conservation` must find nothing, and the
//! skip-mode law (`edges_run + edges_skipped == Σ live domain cycles`)
//! must balance against the snapshot's `sys.clock.*` counters.

use bvl_sim::{simulate_with_stats, SimParams, SystemKind};
use bvl_workloads::{kernels, Scale, Workload};

fn check(workload: &Workload, kind: SystemKind, no_skip: bool) {
    let params = SimParams {
        no_skip,
        ..SimParams::default()
    };
    let (r, skip) = simulate_with_stats(kind, workload, &params)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name, kind.label()));

    let violations = bvl_sim::verify_conservation(&r);
    assert!(
        violations.is_empty(),
        "{} on {} (no_skip={no_skip}): {}",
        workload.name,
        kind.label(),
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );

    // Skip-mode conservation: every clock edge of every live domain was
    // either processed naively or batch-skipped. `sys.clock.big`/`.little`
    // are registered only for live domains and `value()` defaults absent
    // paths to 0, so the sum below is exactly the live-domain total.
    let domain_edges =
        r.stat("sys.clock.uncore") + r.stat("sys.clock.big") + r.stat("sys.clock.little");
    assert_eq!(
        skip.edges_run + skip.edges_skipped,
        domain_edges,
        "{} on {} (no_skip={no_skip}): skip law",
        workload.name,
        kind.label()
    );
    if no_skip {
        assert_eq!(skip.edges_skipped, 0, "naive loop must not skip");
    }

    // The snapshot is the source of truth for the figure-facing counters.
    assert_eq!(r.stat("sys.clock.uncore"), r.uncore_cycles);
    assert_eq!(r.stat("sys.fetch_groups"), r.fetch_groups);
}

#[test]
fn vvadd_balances_on_every_system_skip_on_and_off() {
    let w = kernels::vvadd::build(Scale::tiny());
    for kind in SystemKind::ALL {
        check(&w, kind, false);
        check(&w, kind, true);
    }
}

#[test]
fn mmult_balances_on_every_system_skip_on_and_off() {
    let w = kernels::mmult::build(Scale::tiny());
    for kind in SystemKind::ALL {
        check(&w, kind, false);
        check(&w, kind, true);
    }
}

/// Regression: `sw` halts its core with a speculative ifetch miss still
/// in flight toward the L2 — the case that forced the flow laws to carry
/// explicit `sys.mem.*_inflight` terms.
#[test]
fn sw_with_inflight_tail_balances() {
    let w = bvl_workloads::apps::sw::build(Scale::tiny());
    for kind in [SystemKind::L1, SystemKind::B4Vl] {
        check(&w, kind, false);
    }
}
