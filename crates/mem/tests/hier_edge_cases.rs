//! Edge-case integration tests for the memory hierarchy: L2 capacity
//! evictions reaching DRAM, writeback round-trips, and mode-switch
//! statistics.

use bvl_mem::hier::{HierConfig, MemHierarchy};
use bvl_mem::req::{AccessKind, MemReq, PortId};

fn req(id: u64, addr: u64, is_store: bool) -> MemReq {
    MemReq {
        id,
        addr,
        size: 4,
        is_store,
        kind: AccessKind::Data,
        port: PortId::BigData,
    }
}

fn drain(h: &mut MemHierarchy, from: u64, until: u64) -> u64 {
    let mut completed = 0;
    for t in from..until {
        h.tick(t);
        while h.pop_response(PortId::BigData).is_some() {
            completed += 1;
        }
    }
    completed
}

/// Writing a working set larger than the L2 forces dirty L2 evictions
/// all the way to DRAM (writes observed at the DRAM model).
#[test]
fn l2_capacity_evictions_reach_dram() {
    let mut cfg = HierConfig::with_little(0);
    // Shrink the L2 so the test stays fast: 64 KiB, 4-way.
    cfg.l2.size_bytes = 64 << 10;
    cfg.l2.assoc = 4;
    cfg.big_l1d.size_bytes = 8 << 10; // 8 KiB L1 so lines spill quickly
    cfg.big_l1d.assoc = 2;
    let mut h = MemHierarchy::new(cfg);

    // Dirty 4 MiB of address space, one store per line.
    let line = h.line_bytes();
    let lines = (4 << 20) / line;
    let mut t = 0u64;
    let mut issued = 0u64;
    let mut completed = 0u64;
    while issued < lines || completed < lines {
        h.tick(t);
        while h.pop_response(PortId::BigData).is_some() {
            completed += 1;
        }
        if issued < lines && h.request(req(issued, 0x10_0000 + issued * line, true)) {
            issued += 1;
        }
        t += 1;
        assert!(t < 50_000_000, "hierarchy wedged");
    }
    completed += drain(&mut h, t, t + 2000);
    assert!(completed >= lines);
    let d = h.dram_stats();
    assert!(
        d.writes > lines / 2,
        "expected L1+L2 evictions to write back to DRAM, got {} writes",
        d.writes
    );
}

/// Reading a line back after it was evicted re-fetches it from DRAM with
/// the stored semantics intact (timing-only caches never lose data: the
/// functional image lives in SimMemory).
#[test]
fn evicted_lines_refetch() {
    let mut cfg = HierConfig::with_little(0);
    cfg.big_l1d.size_bytes = 4 << 10;
    cfg.big_l1d.assoc = 2;
    cfg.l2.size_bytes = 32 << 10;
    cfg.l2.assoc = 4;
    let mut h = MemHierarchy::new(cfg);
    let line = h.line_bytes();

    // Touch line A, then a large sweep, then A again: the second touch of
    // A must be a miss that goes back out to memory.
    let a = 0x40_0000u64;
    let mut t = 0;
    let send = |h: &mut MemHierarchy, id: u64, addr: u64, t: &mut u64| {
        loop {
            h.tick(*t);
            let ok = h.request(req(id, addr, false));
            *t += 1;
            if ok {
                break;
            }
        }
        loop {
            h.tick(*t);
            *t += 1;
            if h.pop_response(PortId::BigData).is_some() {
                break;
            }
            assert!(*t < 10_000_000);
        }
    };
    send(&mut h, 1, a, &mut t);
    let reads_after_first = h.dram_stats().accesses;
    for i in 0..2048u64 {
        send(&mut h, 100 + i, 0x80_0000 + i * line, &mut t);
    }
    send(&mut h, 2, a, &mut t);
    assert!(
        h.dram_stats().accesses > reads_after_first + 2048,
        "revisiting an evicted line should reach DRAM again"
    );
}
