//! Property-based tests for the memory hierarchy: request conservation
//! (every accepted request gets exactly one response), FIFO ordering, and
//! bank-mapping invariants.

use bvl_mem::cache::{AccessOutcome, Cache, CacheParams};
use bvl_mem::hier::{HierConfig, MemHierarchy};
use bvl_mem::req::{AccessKind, MemReq, PortId};
use bvl_mem::sram_fifo::SramFifo;
use proptest::prelude::*;
use std::collections::HashSet;

fn mem_req(id: u64, addr: u64, is_store: bool, port: PortId) -> MemReq {
    MemReq {
        id,
        addr,
        size: 4,
        is_store,
        kind: AccessKind::Data,
        port,
    }
}

proptest! {
    /// A standalone cache with an always-ready next level conserves
    /// requests: every accepted access is answered exactly once, and the
    /// cache never responds to an id it did not accept.
    #[test]
    fn cache_conserves_requests(
        accesses in proptest::collection::vec((0u64..4096, any::<bool>()), 1..200)
    ) {
        let mut cache = Cache::new(CacheParams {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 1,
            mshrs: 4,
            ports: 1,
        });
        let next_level_latency = 5u64;
        let mut pending_fills: Vec<(u64, u64)> = Vec::new(); // (ready, line)
        let mut accepted: HashSet<u64> = HashSet::new();
        let mut answered: HashSet<u64> = HashSet::new();

        let mut queue: Vec<(u64, u64, bool)> = accesses
            .iter()
            .enumerate()
            .map(|(i, (a, s))| (i as u64, *a & !3, *s))
            .collect();
        queue.reverse();

        let mut inflight = None;
        for now in 0..20_000u64 {
            cache.tick(now);
            // Service next-level fills.
            pending_fills.retain(|&(ready, line)| {
                if ready <= now {
                    cache.fill(now, line);
                    false
                } else {
                    true
                }
            });
            while let Some(line) = cache.pop_miss() {
                pending_fills.push((now + next_level_latency, line));
            }
            while cache.pop_writeback().is_some() {}
            while let Some(r) = cache.pop_response() {
                prop_assert!(accepted.contains(&r.id), "response for unaccepted id {}", r.id);
                prop_assert!(answered.insert(r.id), "duplicate response id {}", r.id);
            }
            // Issue at most one request per cycle, retrying rejections.
            if inflight.is_none() {
                inflight = queue.pop();
            }
            if let Some((id, addr, st)) = inflight {
                match cache.access(now, mem_req(id, addr, st, PortId::BigData)) {
                    AccessOutcome::Rejected => {}
                    _ => {
                        accepted.insert(id);
                        inflight = None;
                    }
                }
            }
            if queue.is_empty() && inflight.is_none() && answered.len() == accepted.len() && pending_fills.is_empty() {
                break;
            }
        }
        prop_assert_eq!(accepted.len(), accesses.len(), "not all requests accepted");
        prop_assert_eq!(answered.len(), accepted.len(), "responses lost");
    }

    /// The full hierarchy conserves requests across two little cores
    /// issuing a mixed read/write stream with sharing.
    #[test]
    fn hierarchy_conserves_requests(
        accesses in proptest::collection::vec(
            (0u64..2048, any::<bool>(), 0u8..2), 1..100)
    ) {
        let mut h = MemHierarchy::new(HierConfig::with_little(2));
        let mut queue: Vec<(u64, u64, bool, u8)> = accesses
            .iter()
            .enumerate()
            .map(|(i, (a, s, c))| (i as u64, (*a & !3) + 0x1000, *s, *c))
            .collect();
        queue.reverse();
        let mut inflight = None;
        let mut accepted = 0usize;
        let mut answered = 0usize;
        for now in 0..200_000u64 {
            h.tick(now);
            for c in 0..2 {
                while h.pop_response(PortId::LittleData(c)).is_some() {
                    answered += 1;
                }
            }
            if inflight.is_none() {
                inflight = queue.pop();
            }
            if let Some((id, addr, st, c)) = inflight {
                if h.request(mem_req(id, addr, st, PortId::LittleData(c))) {
                    accepted += 1;
                    inflight = None;
                }
            }
            if queue.is_empty() && inflight.is_none() && answered == accepted {
                break;
            }
        }
        prop_assert_eq!(accepted, accesses.len());
        prop_assert_eq!(answered, accepted);
    }

    /// SRAM FIFOs deliver items in order, never lose or duplicate them.
    #[test]
    fn sram_fifo_order(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut f = SramFifo::new(8);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        for (now, &enq) in ops.iter().enumerate() {
            let now = now as u64;
            if enq {
                if f.try_enqueue(now, next_in) {
                    next_in += 1;
                }
            } else if let Some(v) = f.try_dequeue(now) {
                prop_assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        // Drain.
        let mut now = ops.len() as u64;
        while let Some(v) = f.try_dequeue(now) {
            prop_assert_eq!(v, next_out);
            next_out += 1;
            now += 1;
        }
        prop_assert_eq!(next_out, next_in);
    }

    /// Bank mapping: same line always maps to the same bank; consecutive
    /// lines round-robin across all banks (minimal conflicts for
    /// unit-stride streams, paper section III-E).
    #[test]
    fn bank_mapping_round_robins(base_line in 0u64..100_000, n_little in 1usize..8) {
        let h = MemHierarchy::new(HierConfig::with_little(n_little));
        let line = h.line_bytes();
        let addr = base_line * line;
        // Every byte of a line maps to one bank.
        let b0 = h.bank_of(addr);
        for off in [0u64, 1, line / 2, line - 1] {
            prop_assert_eq!(h.bank_of(addr + off), b0);
        }
        // n consecutive lines cover all n banks.
        let banks: HashSet<u8> = (0..n_little as u64)
            .map(|i| h.bank_of(addr + i * line))
            .collect();
        prop_assert_eq!(banks.len(), n_little);
    }
}
