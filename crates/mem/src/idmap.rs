//! A dense map over monotonically allocated `u64` ids.
//!
//! The timing models hand out transaction ids from simple incrementing
//! counters (VMU commands, in-flight line requests, cross-element
//! transactions, ...). Tracking those with `HashMap<u64, _>` pays a hash
//! and a probe on every per-cycle lookup; the access pattern is really a
//! sliding window — ids are allocated in increasing order and retired
//! roughly FIFO. [`IdMap`] exploits that: entries live in a `VecDeque`
//! indexed by `id - base`, and `base` advances as the oldest entries
//! retire, so memory stays proportional to the in-flight window while
//! every operation is an array index.
//!
//! Ids may be *inserted* out of order (e.g. memory lines arriving out of
//! sequence); the map distinguishes a vacant slot — an id inside the
//! window that may yet be inserted — from a retired one, and the base
//! only ever advances past retired slots.

use bvl_snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

#[derive(Clone, Debug, Default)]
enum Slot<T> {
    /// Inside the window but never inserted (may still arrive).
    #[default]
    Vacant,
    Occupied(T),
    /// Removed; the id must never come back.
    Retired,
}

impl<T> Slot<T> {
    fn as_ref(&self) -> Option<&T> {
        match self {
            Slot::Occupied(v) => Some(v),
            _ => None,
        }
    }

    fn as_mut(&mut self) -> Option<&mut T> {
        match self {
            Slot::Occupied(v) => Some(v),
            _ => None,
        }
    }
}

/// A map keyed by monotonically allocated ids (see module docs).
///
/// Ids below the retired-window base are treated as absent; inserting one
/// panics (an id must never be re-used after retirement).
#[derive(Clone, Debug, Default)]
pub struct IdMap<T> {
    base: u64,
    slots: VecDeque<Slot<T>>,
    len: usize,
}

impl<T> IdMap<T> {
    /// Creates an empty map accepting ids from 0.
    pub fn new() -> Self {
        IdMap::starting_at(0)
    }

    /// Creates an empty map anchored at `first_id`, the smallest id the
    /// owning counter will ever allocate. Anchoring matters: an id below
    /// the anchor can never be inserted, and a *permanently* vacant slot
    /// at the front would pin the window open for the whole run.
    pub fn starting_at(first_id: u64) -> Self {
        IdMap {
            base: first_id,
            slots: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn index(&self, id: u64) -> Option<usize> {
        id.checked_sub(self.base).map(|i| i as usize)
    }

    /// Inserts `value` under `id`, returning the previous entry if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is below the retired window (ids are allocated from
    /// an incrementing counter and must not be re-used).
    pub fn insert(&mut self, id: u64, value: T) -> Option<T> {
        let idx = self
            .index(id)
            .expect("IdMap id re-used after its window retired");
        while self.slots.len() <= idx {
            self.slots.push_back(Slot::Vacant);
        }
        let old = std::mem::replace(&mut self.slots[idx], Slot::Occupied(value));
        match old {
            Slot::Occupied(v) => Some(v),
            Slot::Vacant => {
                self.len += 1;
                None
            }
            Slot::Retired => panic!("IdMap id re-used after its window retired"),
        }
    }

    /// The entry under `id`, if live.
    pub fn get(&self, id: u64) -> Option<&T> {
        self.index(id)
            .and_then(|i| self.slots.get(i))
            .and_then(Slot::as_ref)
    }

    /// Mutable access to the entry under `id`, if live.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        self.index(id)
            .and_then(|i| self.slots.get_mut(i))
            .and_then(Slot::as_mut)
    }

    /// True if `id` is live.
    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Removes and returns the entry under `id`, advancing the window base
    /// past any retired prefix.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let idx = self.index(id)?;
        let slot = self.slots.get_mut(idx)?;
        let old = match std::mem::replace(slot, Slot::Retired) {
            Slot::Occupied(v) => {
                self.len -= 1;
                Some(v)
            }
            // A vacant slot stays vacant: its id may still be inserted.
            Slot::Vacant => {
                *slot = Slot::Vacant;
                None
            }
            Slot::Retired => None,
        };
        while let Some(Slot::Retired) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        old
    }

    /// Iterates live `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (self.base + i as u64, v)))
    }
}

impl<T: Snap> Snap for Slot<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Slot::Vacant => w.u8(0),
            Slot::Occupied(v) => {
                w.u8(1);
                v.save(w);
            }
            Slot::Retired => w.u8(2),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Slot::Vacant),
            1 => Ok(Slot::Occupied(T::load(r)?)),
            2 => Ok(Slot::Retired),
            t => Err(SnapError::BadTag {
                ty: "IdMap::Slot",
                tag: u64::from(t),
            }),
        }
    }
}

/// The serialized form preserves the exact slot-tag sequence (vacant /
/// occupied / retired), not just the live entries: retired tombstones
/// inside the window are part of the map's behaviour (they reject
/// re-insertion) and must survive a checkpoint round trip. `len` is
/// derivable, so it is recomputed on load rather than trusted.
impl<T: Snap> Snap for IdMap<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.base.save(w);
        self.slots.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let base: u64 = Snap::load(r)?;
        let slots: VecDeque<Slot<T>> = Snap::load(r)?;
        let len = slots.iter().filter(|s| s.as_ref().is_some()).count();
        Ok(IdMap { base, slots, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = IdMap::new();
        assert!(m.is_empty());
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(&"a"));
        assert_eq!(m.get(0), None);
        assert_eq!(m.remove(1), Some("a"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.get(2), Some(&"b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn out_of_order_removal_keeps_window_tight() {
        let mut m = IdMap::new();
        for id in 1..=4u64 {
            m.insert(id, id * 10);
        }
        m.remove(3);
        m.remove(2);
        assert_eq!(m.len(), 2);
        assert_eq!(m.iter().map(|(id, _)| id).collect::<Vec<_>>(), [1, 4]);
        // Removing the oldest live entry retires the whole gap.
        m.remove(1);
        assert_eq!(m.iter().map(|(id, _)| id).collect::<Vec<_>>(), [4]);
        assert_eq!(m.get(4), Some(&40));
        m.remove(4);
        assert!(m.is_empty());
        // New ids keep working after the window fully drained.
        m.insert(9, 90);
        assert_eq!(m.get(9), Some(&90));
    }

    #[test]
    fn out_of_order_insertion_fills_vacant_holes() {
        let mut m = IdMap::new();
        m.insert(3, "c");
        m.insert(5, "e");
        // Retiring id 3 must not retire the vacant hole at 4.
        assert_eq!(m.remove(3), Some("c"));
        m.insert(4, "d");
        assert_eq!(m.get(4), Some(&"d"));
        assert_eq!(m.remove(4), Some("d"));
        assert_eq!(m.remove(5), Some("e"));
        assert!(m.is_empty());
    }

    #[test]
    fn sparse_ids_are_absent_not_errors() {
        let mut m = IdMap::new();
        m.insert(5, ());
        assert!(!m.contains(3));
        assert_eq!(m.get_mut(4), None);
        assert_eq!(m.remove(3), None);
        assert!(m.contains(5));
    }

    #[test]
    #[should_panic(expected = "re-used")]
    fn reinserting_retired_id_panics() {
        let mut m = IdMap::new();
        m.insert(1, ());
        m.insert(2, ());
        m.remove(1);
        m.remove(2); // base advances past 2
        m.insert(1, ());
    }

    // ---- 3-state slot lifecycle --------------------------------------
    // Each slot moves Vacant -> Occupied -> Retired; the window base only
    // ever advances past a Retired prefix. The tests below pin each legal
    // transition and the illegal ones.

    #[test]
    fn occupied_slot_replacement_keeps_len() {
        let mut m = IdMap::new();
        assert_eq!(m.insert(3, "first"), None);
        // Occupied -> Occupied is a replacement, not a second entry.
        assert_eq!(m.insert(3, "second"), Some("first"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(3), Some(&"second"));
    }

    #[test]
    fn vacant_slot_survives_remove_and_still_accepts_insert() {
        let mut m = IdMap::new();
        m.insert(2, 20);
        // Id 1 is inside the window but never arrived: removing it is a
        // no-op that must NOT turn the slot into a tombstone.
        assert_eq!(m.remove(1), None);
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.get(1), Some(&10));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn tombstones_recycle_once_the_prefix_retires() {
        let mut m = IdMap::new();
        for id in 0..8u64 {
            m.insert(id, id);
        }
        // Retire out of order: 3,1,2 leave tombstones behind id 0.
        m.remove(3);
        m.remove(1);
        m.remove(2);
        assert_eq!(m.len(), 5);
        // Retiring 0 lets the base sweep the whole tombstone run.
        m.remove(0);
        assert_eq!(m.iter().map(|(id, _)| id).collect::<Vec<_>>(), [4, 5, 6, 7]);
        // The swept ids are gone for good: absent, not re-insertable.
        for id in 0..4u64 {
            assert!(!m.contains(id));
            assert_eq!(m.remove(id), None);
        }
    }

    #[test]
    #[should_panic(expected = "re-used")]
    fn tombstone_inside_window_rejects_reinsertion() {
        let mut m = IdMap::new();
        m.insert(0, ());
        m.insert(2, ());
        m.remove(2); // retired but NOT swept: id 0 still pins the window
        assert!(m.contains(0));
        m.insert(2, ());
    }

    #[test]
    fn iteration_stays_ordered_after_heavy_churn() {
        let mut m = IdMap::starting_at(100);
        for id in 100..140u64 {
            m.insert(id, id * 2);
        }
        // Retire every third id, then refill a few vacant stragglers.
        for id in (100..140u64).step_by(3) {
            m.remove(id);
        }
        m.insert(150, 300);
        m.insert(145, 290);
        let ids: Vec<u64> = m.iter().map(|(id, _)| id).collect();
        let mut expect: Vec<u64> = (100..140).filter(|id| id % 3 != 1).collect();
        expect.extend([145, 150]);
        assert_eq!(ids, expect);
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "iter must be sorted");
        assert_eq!(m.len(), ids.len());
        assert!(m.iter().all(|(id, v)| *v == id * 2));
    }

    #[test]
    fn starting_at_anchor_rejects_earlier_ids() {
        let mut m = IdMap::starting_at(10);
        m.insert(10, ());
        assert!(!m.contains(9));
        assert_eq!(m.remove(9), None);
        m.remove(10);
        // Fully drained at the anchor: the window re-opens at 11.
        assert!(m.is_empty());
        m.insert(11, ());
        assert_eq!(m.iter().map(|(id, _)| id).collect::<Vec<_>>(), [11]);
    }
}
