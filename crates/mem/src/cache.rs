//! Set-associative write-back cache timing model with MSHRs.
//!
//! The cache tracks tags, state and timing only — data movement is handled
//! functionally by the golden executor against [`crate::SimMemory`]. Misses
//! allocate an MSHR and surface a line-granular request on the miss port;
//! the owner (the hierarchy) routes it to the next level and calls
//! [`Cache::fill`] when the line returns.

use crate::queue::DelayQueue;
use crate::req::MemReq;
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Configuration of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Number of miss-status holding registers (outstanding misses).
    pub mshrs: usize,
    /// Requests accepted per cycle.
    pub ports: u32,
}

impl CacheParams {
    /// A 32 KiB two-way L1 with 64 B lines (the paper's little-core L1).
    pub fn little_l1() -> Self {
        CacheParams {
            size_bytes: 32 << 10,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 2,
            mshrs: 8,
            ports: 1,
        }
    }

    /// A 64 KiB four-way L1 for the big core.
    pub fn big_l1() -> Self {
        CacheParams {
            size_bytes: 64 << 10,
            assoc: 4,
            line_bytes: 64,
            hit_latency: 2,
            mshrs: 16,
            ports: 2,
        }
    }

    /// A 1 MiB sixteen-way shared L2.
    pub fn shared_l2() -> Self {
        CacheParams {
            size_bytes: 1 << 20,
            assoc: 16,
            line_bytes: 64,
            hit_latency: 12,
            mshrs: 32,
            ports: 4,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.assoc))
    }
}

/// Per-cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests accepted.
    pub accesses: u64,
    /// Of which stores.
    pub stores: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (primary — each allocates an MSHR).
    pub misses: u64,
    /// Secondary misses merged into an existing MSHR.
    pub mshr_merges: u64,
    /// Requests rejected for port/MSHR backpressure.
    pub rejects: u64,
    /// Dirty lines written back on eviction or invalidation.
    pub writebacks: u64,
    /// External invalidations that hit a resident line.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate over accepted accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Registers every counter under `scope` (e.g. `sys.little3.l1d`).
    /// The path schema satisfies the `cache` conservation law:
    /// `hits + misses + mshr_merges == accesses`.
    pub fn register(&self, scope: &mut bvl_obs::Scope<'_>) {
        scope.set("accesses", self.accesses);
        scope.set("stores", self.stores);
        scope.set("hits", self.hits);
        scope.set("misses", self.misses);
        scope.set("mshr_merges", self.mshr_merges);
        scope.set("rejects", self.rejects);
        scope.set("writebacks", self.writebacks);
        scope.set("invalidations", self.invalidations);
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    last_used: u64,
}

#[derive(Clone, Debug)]
struct Mshr {
    line_addr: u64,
    reqs: Vec<MemReq>,
    any_store: bool,
}

/// Result of presenting a request to [`Cache::access`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The request hit and will appear on the response port after the hit
    /// latency.
    Hit,
    /// The request missed; a line request was surfaced on the miss port.
    Miss,
    /// The request merged into an outstanding miss for the same line.
    MergedMiss,
    /// The cache could not accept the request this cycle (ports or MSHRs
    /// exhausted); retry later.
    Rejected,
}

/// A set-associative write-back cache with MSHRs (timing only).
#[derive(Clone, Debug)]
pub struct Cache {
    params: CacheParams,
    sets: Vec<Vec<Line>>,
    mshrs: Vec<Mshr>,
    hit_pipe: DelayQueue<MemReq>,
    resp_out: VecDeque<MemReq>,
    miss_out: VecDeque<u64>, // line addresses needing a fill
    wb_out: VecDeque<u64>,   // dirty line addresses written back
    accepts_this_cycle: u32,
    stats: CacheStats,
    /// Max requests merged per MSHR before backpressure.
    mshr_targets: usize,
}

impl Cache {
    /// Creates a cache from its parameters.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// line size).
    pub fn new(params: CacheParams) -> Self {
        assert!(
            params.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = params.num_sets();
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two"
        );
        Cache {
            params,
            sets: vec![vec![Line::default(); params.assoc as usize]; sets as usize],
            mshrs: Vec::with_capacity(params.mshrs),
            hit_pipe: DelayQueue::new(params.hit_latency),
            resp_out: VecDeque::new(),
            miss_out: VecDeque::new(),
            wb_out: VecDeque::new(),
            accepts_this_cycle: 0,
            stats: CacheStats::default(),
            mshr_targets: 8,
        }
    }

    /// The cache's configuration.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of MSHRs currently allocated.
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.params.line_bytes - 1)
    }

    /// (set index, tag) for an address. The full line address is used as
    /// the tag so lines are unambiguous regardless of which indexing mode
    /// the owner uses (paper section III-E keeps bank bits in the tag for
    /// exactly this reason).
    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = self.line_addr(addr);
        let set = (line / self.params.line_bytes) % self.params.num_sets();
        (set as usize, line)
    }

    /// Advances the hit pipeline; call once per cycle before accesses.
    pub fn tick(&mut self, now: u64) {
        self.accepts_this_cycle = 0;
        while let Some(req) = self.hit_pipe.pop_ready(now) {
            self.resp_out.push_back(req);
        }
    }

    /// Presents one request. See [`AccessOutcome`] for the verdicts.
    pub fn access(&mut self, now: u64, req: MemReq) -> AccessOutcome {
        if self.accepts_this_cycle >= self.params.ports {
            self.stats.rejects += 1;
            return AccessOutcome::Rejected;
        }
        let (set, tag) = self.locate(req.addr);

        // Hit?
        if let Some(way) = self.sets[set].iter().position(|l| l.valid && l.tag == tag) {
            self.accepts_this_cycle += 1;
            self.stats.accesses += 1;
            self.stats.hits += 1;
            if req.is_store {
                self.stats.stores += 1;
                self.sets[set][way].dirty = true;
            }
            self.sets[set][way].last_used = now;
            self.hit_pipe.push(now, req);
            return AccessOutcome::Hit;
        }

        // Merge into an outstanding miss?
        if let Some(m) = self.mshrs.iter_mut().find(|m| m.line_addr == tag) {
            if m.reqs.len() >= self.mshr_targets {
                self.stats.rejects += 1;
                return AccessOutcome::Rejected;
            }
            self.accepts_this_cycle += 1;
            self.stats.accesses += 1;
            self.stats.mshr_merges += 1;
            if req.is_store {
                self.stats.stores += 1;
                m.any_store = true;
            }
            m.reqs.push(req);
            return AccessOutcome::MergedMiss;
        }

        // Primary miss: allocate an MSHR if one is free.
        if self.mshrs.len() >= self.params.mshrs {
            self.stats.rejects += 1;
            return AccessOutcome::Rejected;
        }
        self.accepts_this_cycle += 1;
        self.stats.accesses += 1;
        self.stats.misses += 1;
        if req.is_store {
            self.stats.stores += 1;
        }
        self.mshrs.push(Mshr {
            line_addr: tag,
            reqs: vec![req],
            any_store: req.is_store,
        });
        self.miss_out.push_back(tag);
        AccessOutcome::Miss
    }

    /// Installs a returned line, completing its MSHR. Merged requests
    /// appear on the response port after the hit latency.
    ///
    /// Unsolicited fills (no matching MSHR) install the line silently —
    /// used for coherence-driven line migration.
    pub fn fill(&mut self, now: u64, line_addr: u64) {
        let (set, tag) = self.locate(line_addr);
        debug_assert_eq!(tag, line_addr, "fill address must be line-aligned");

        let mshr_idx = self.mshrs.iter().position(|m| m.line_addr == tag);
        let any_store = mshr_idx.map(|i| self.mshrs[i].any_store).unwrap_or(false);

        // Victim selection: invalid way first, else LRU.
        let ways = &mut self.sets[set];
        let way = ways.iter().position(|l| !l.valid).unwrap_or_else(|| {
            ways.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i)
                .expect("associativity is positive")
        });
        if ways[way].valid && ways[way].dirty {
            self.stats.writebacks += 1;
            self.wb_out.push_back(ways[way].tag);
        }
        ways[way] = Line {
            valid: true,
            dirty: any_store,
            tag,
            last_used: now,
        };

        if let Some(i) = mshr_idx {
            let m = self.mshrs.swap_remove(i);
            for req in m.reqs {
                self.hit_pipe.push(now, req);
            }
        }
    }

    /// Invalidates a line if present; returns `Some(was_dirty)`.
    ///
    /// Dirty invalidations also surface a writeback on the writeback port.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<bool> {
        let (set, tag) = self.locate(line_addr);
        let ways = &mut self.sets[set];
        let way = ways.iter().position(|l| l.valid && l.tag == tag)?;
        let dirty = ways[way].dirty;
        ways[way] = Line::default();
        self.stats.invalidations += 1;
        if dirty {
            self.stats.writebacks += 1;
            self.wb_out.push_back(tag);
        }
        Some(dirty)
    }

    /// True if the line is resident.
    pub fn probe(&self, line_addr: u64) -> bool {
        let (set, tag) = self.locate(line_addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Undelivered entries on the miss port — misses already counted in
    /// [`CacheStats::misses`] whose next-level access has not happened yet
    /// (the conservation checker's in-flight term).
    pub fn pending_miss_out(&self) -> u64 {
        self.miss_out.len() as u64
    }

    /// Undelivered entries on the writeback port (see
    /// [`Cache::pending_miss_out`]).
    pub fn pending_wb_out(&self) -> u64 {
        self.wb_out.len() as u64
    }

    /// True if a miss for this line is outstanding.
    pub fn miss_pending(&self, line_addr: u64) -> bool {
        let tag = self.line_addr(line_addr);
        self.mshrs.iter().any(|m| m.line_addr == tag)
    }

    /// The first cycle at which ticking the cache does anything: the hit
    /// pipe's head maturing, or `Some(now)` while undelivered output sits
    /// on the response/miss/writeback ports. `None` means ticking is a
    /// no-op until some external `access`/`fill` arrives.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if !self.resp_out.is_empty() || !self.miss_out.is_empty() || !self.wb_out.is_empty() {
            return Some(now);
        }
        self.hit_pipe.next_ready().map(|t| t.max(now))
    }

    /// Pops a completed request (hit or fill completion).
    pub fn pop_response(&mut self) -> Option<MemReq> {
        self.resp_out.pop_front()
    }

    /// Pops a line address that needs fetching from the next level.
    pub fn pop_miss(&mut self) -> Option<u64> {
        self.miss_out.pop_front()
    }

    /// Pops a dirty line address written back toward the next level.
    pub fn pop_writeback(&mut self) -> Option<u64> {
        self.wb_out.pop_front()
    }

    /// Appends this cache's mutable state (everything but the
    /// configuration) to a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.sets.save(w);
        self.mshrs.save(w);
        self.hit_pipe.save(w);
        self.resp_out.save(w);
        self.miss_out.save(w);
        self.wb_out.save(w);
        self.accepts_this_cycle.save(w);
        self.stats.save(w);
    }

    /// Restores state written by [`Cache::save_state`] into this cache.
    /// The configuration (`params`, `mshr_targets`) is kept — the caller
    /// rebuilds it from the run parameters — and the restored geometry
    /// must match it.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let sets: Vec<Vec<Line>> = Snap::load(r)?;
        if sets.len() != self.sets.len()
            || sets
                .iter()
                .any(|ways| ways.len() != self.params.assoc as usize)
        {
            return Err(SnapError::Corrupt {
                what: format!(
                    "cache geometry mismatch: {} sets restored into {}",
                    sets.len(),
                    self.sets.len()
                ),
            });
        }
        let mshrs: Vec<Mshr> = Snap::load(r)?;
        if mshrs.len() > self.params.mshrs {
            return Err(SnapError::Corrupt {
                what: format!(
                    "{} MSHRs restored into a cache with {}",
                    mshrs.len(),
                    self.params.mshrs
                ),
            });
        }
        let hit_pipe: DelayQueue<MemReq> = Snap::load(r)?;
        if hit_pipe.latency() != self.params.hit_latency {
            return Err(SnapError::Corrupt {
                what: "cache hit-pipe latency mismatch".into(),
            });
        }
        self.sets = sets;
        self.mshrs = mshrs;
        self.hit_pipe = hit_pipe;
        self.resp_out = Snap::load(r)?;
        self.miss_out = Snap::load(r)?;
        self.wb_out = Snap::load(r)?;
        self.accepts_this_cycle = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

snap_struct!(Line {
    valid,
    dirty,
    tag,
    last_used,
});
snap_struct!(Mshr {
    line_addr,
    reqs,
    any_store,
});
snap_struct!(CacheStats {
    accesses,
    stores,
    hits,
    misses,
    mshr_merges,
    rejects,
    writebacks,
    invalidations,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::{AccessKind, PortId};

    fn req(id: u64, addr: u64, is_store: bool) -> MemReq {
        MemReq {
            id,
            addr,
            size: 4,
            is_store,
            kind: AccessKind::Data,
            port: PortId::BigData,
        }
    }

    fn small_cache() -> Cache {
        Cache::new(CacheParams {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 2,
            mshrs: 2,
            ports: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache();
        c.tick(0);
        assert_eq!(c.access(0, req(1, 0x100, false)), AccessOutcome::Miss);
        assert_eq!(c.pop_miss(), Some(0x100));
        c.fill(5, 0x100);
        c.tick(8);
        assert_eq!(c.pop_response().unwrap().id, 1);
        c.tick(9);
        assert_eq!(c.access(9, req(2, 0x104, false)), AccessOutcome::Hit);
        c.tick(11);
        assert_eq!(c.pop_response().unwrap().id, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut c = small_cache();
        c.tick(0);
        assert_eq!(c.access(0, req(1, 0x100, false)), AccessOutcome::Miss);
        c.tick(1);
        assert_eq!(c.access(1, req(2, 0x108, false)), AccessOutcome::MergedMiss);
        // Only one line request surfaced.
        assert_eq!(c.pop_miss(), Some(0x100));
        assert_eq!(c.pop_miss(), None);
        c.fill(5, 0x100);
        c.tick(7);
        let ids: Vec<u64> = std::iter::from_fn(|| c.pop_response())
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn port_limit_rejects() {
        let mut c = small_cache();
        c.tick(0);
        assert_eq!(c.access(0, req(1, 0x100, false)), AccessOutcome::Miss);
        assert_eq!(c.access(0, req(2, 0x200, false)), AccessOutcome::Rejected);
        c.tick(1);
        assert_eq!(c.access(1, req(2, 0x200, false)), AccessOutcome::Miss);
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let mut c = small_cache(); // 2 MSHRs, 1 port
        c.tick(0);
        assert_eq!(c.access(0, req(1, 0x1000, false)), AccessOutcome::Miss);
        c.tick(1);
        assert_eq!(c.access(1, req(2, 0x2000, false)), AccessOutcome::Miss);
        c.tick(2);
        assert_eq!(c.access(2, req(3, 0x3000, false)), AccessOutcome::Rejected);
        assert_eq!(c.stats().rejects, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = small_cache(); // 8 sets, 2 ways
                                   // Three lines mapping to the same set: stride = sets*line = 512.
        for (i, addr) in [0x0u64, 0x200, 0x400].iter().enumerate() {
            c.tick(i as u64 * 10);
            let is_store = i == 0;
            c.access(i as u64 * 10, req(i as u64, *addr, is_store));
            c.fill(i as u64 * 10 + 3, *addr);
        }
        // Filling the third line evicts the LRU (the dirty first line).
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.pop_writeback(), Some(0x0));
    }

    #[test]
    fn lru_prefers_recently_used() {
        let mut c = small_cache();
        c.tick(0);
        c.access(0, req(1, 0x0, false));
        c.fill(0, 0x0);
        c.tick(1);
        c.access(1, req(2, 0x200, false));
        c.fill(1, 0x200);
        // Touch 0x0 so 0x200 is LRU.
        c.tick(10);
        c.access(10, req(3, 0x0, false));
        c.tick(11);
        c.access(11, req(4, 0x400, false));
        c.fill(11, 0x400);
        assert!(c.probe(0x0));
        assert!(!c.probe(0x200));
    }

    #[test]
    fn invalidation_reports_dirtiness() {
        let mut c = small_cache();
        c.tick(0);
        c.access(0, req(1, 0x100, true));
        c.fill(0, 0x100);
        assert_eq!(c.invalidate(0x100), Some(true));
        assert!(!c.probe(0x100));
        assert_eq!(c.invalidate(0x100), None);
        assert_eq!(c.pop_writeback(), Some(0x100));
    }

    #[test]
    fn next_event_tracks_hit_pipe_and_output_ports() {
        let mut c = small_cache();
        c.tick(0);
        assert_eq!(c.next_event(0), None);
        // A miss leaves the line request on the miss port: event now.
        assert_eq!(c.access(0, req(1, 0x100, false)), AccessOutcome::Miss);
        assert_eq!(c.next_event(0), Some(0));
        assert_eq!(c.pop_miss(), Some(0x100));
        assert_eq!(c.next_event(0), None);
        // A fill at cycle 5 matures through the 2-cycle hit pipe at 7.
        c.fill(5, 0x100);
        assert_eq!(c.next_event(5), Some(7));
        c.tick(6);
        assert!(c.pop_response().is_none());
        c.tick(7);
        assert_eq!(c.next_event(7), Some(7));
        assert_eq!(c.pop_response().unwrap().id, 1);
        assert_eq!(c.next_event(7), None);
    }

    #[test]
    fn hit_rate_stat() {
        let mut c = small_cache();
        c.tick(0);
        c.access(0, req(1, 0x100, false));
        c.fill(1, 0x100);
        c.tick(2);
        c.access(2, req(2, 0x100, false));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }
}
