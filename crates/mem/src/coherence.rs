//! Invalidation-based MSI directory kept beside the shared L2.
//!
//! A simplified stand-in for the paper's AMBA 5 CHI coherent interconnect:
//! the directory is the authority on which L1 holds each line and in what
//! state. L1 caches themselves only track presence + dirtiness; the
//! hierarchy consults the directory on every L1 access that reaches the
//! shared level and applies the returned actions (invalidate sharers,
//! collect a dirty copy from the owner).
//!
//! This is the mechanism behind the paper's mode-switch behaviour (section
//! III-E): after entering vector mode a line cached in the "wrong" bank is
//! migrated by exactly this invalidate-and-refill path the first time the
//! VMU touches it.

use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::HashMap;

/// Maximum number of tracked L1 caches.
pub const MAX_CACHES: usize = 32;

/// The sharing state of one line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bitmask of caches holding the line.
    pub sharers: u32,
    /// Cache holding the line in modified state, if any.
    pub owner: Option<u8>,
}

/// Actions the hierarchy must perform to satisfy an access coherently.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoherenceActions {
    /// Caches that must invalidate their copy.
    pub invalidate: Vec<u8>,
    /// Cache that must surrender a dirty copy (writeback-forward).
    pub fetch_dirty_from: Option<u8>,
}

impl CoherenceActions {
    /// True when the access proceeds with no coherence traffic.
    pub fn is_empty(&self) -> bool {
        self.invalidate.is_empty() && self.fetch_dirty_from.is_none()
    }
}

/// The MSI directory.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
    /// Coherence messages issued (for stats / latency accounting).
    messages: u64,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total coherence messages (invalidations + dirty fetches) issued.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Current sharing state of a line (absent lines are unshared).
    pub fn entry(&self, line: u64) -> DirEntry {
        self.entries.get(&line).copied().unwrap_or_default()
    }

    /// Registers a *read* by `cache`; returns required actions.
    ///
    /// A modified copy elsewhere is collected (writeback-forward) and the
    /// former owner downgrades to sharer.
    ///
    /// # Panics
    ///
    /// Panics if `cache >= MAX_CACHES`.
    pub fn on_read(&mut self, line: u64, cache: u8) -> CoherenceActions {
        assert!((cache as usize) < MAX_CACHES);
        let e = self.entries.entry(line).or_default();
        let mut actions = CoherenceActions::default();
        if let Some(owner) = e.owner {
            if owner != cache {
                actions.fetch_dirty_from = Some(owner);
                self.messages += 1;
                e.owner = None;
            }
        }
        e.sharers |= 1 << cache;
        actions
    }

    /// Registers a *write* by `cache`; every other copy is invalidated and
    /// a dirty copy elsewhere is collected first.
    ///
    /// # Panics
    ///
    /// Panics if `cache >= MAX_CACHES`.
    pub fn on_write(&mut self, line: u64, cache: u8) -> CoherenceActions {
        assert!((cache as usize) < MAX_CACHES);
        let e = self.entries.entry(line).or_default();
        let mut actions = CoherenceActions::default();
        if let Some(owner) = e.owner {
            if owner != cache {
                actions.fetch_dirty_from = Some(owner);
                self.messages += 1;
            }
        }
        for c in 0..MAX_CACHES as u8 {
            if c != cache && e.sharers & (1 << c) != 0 {
                actions.invalidate.push(c);
                self.messages += 1;
            }
        }
        e.sharers = 1 << cache;
        e.owner = Some(cache);
        actions
    }

    /// Registers that `cache` evicted (or was invalidated for) `line`.
    pub fn on_evict(&mut self, line: u64, cache: u8) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1 << cache);
            if e.owner == Some(cache) {
                e.owner = None;
            }
            if e.sharers == 0 && e.owner.is_none() {
                self.entries.remove(&line);
            }
        }
    }

    /// True if any cache other than `cache` holds the line.
    pub fn held_elsewhere(&self, line: u64, cache: u8) -> bool {
        let e = self.entry(line);
        e.sharers & !(1u32 << cache) != 0
    }

    /// Number of tracked lines (for tests / occupancy stats).
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

snap_struct!(DirEntry { sharers, owner });

/// The directory's `HashMap` has no deterministic iteration order, so the
/// encoding sorts entries by line address — identical directory states
/// always serialize to identical bytes.
impl Snap for Directory {
    fn save(&self, w: &mut SnapWriter) {
        let mut lines: Vec<(u64, DirEntry)> = self.entries.iter().map(|(k, v)| (*k, *v)).collect();
        lines.sort_unstable_by_key(|(line, _)| *line);
        lines.save(w);
        self.messages.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let lines: Vec<(u64, DirEntry)> = Snap::load(r)?;
        Ok(Directory {
            entries: lines.into_iter().collect(),
            messages: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_read_share_peacefully() {
        let mut d = Directory::new();
        assert!(d.on_read(0x100, 0).is_empty());
        assert!(d.on_read(0x100, 1).is_empty());
        let e = d.entry(0x100);
        assert_eq!(e.sharers, 0b11);
        assert_eq!(e.owner, None);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.on_read(0x100, 0);
        d.on_read(0x100, 1);
        let a = d.on_write(0x100, 2);
        assert_eq!(a.invalidate, vec![0, 1]);
        assert_eq!(a.fetch_dirty_from, None);
        let e = d.entry(0x100);
        assert_eq!(e.sharers, 0b100);
        assert_eq!(e.owner, Some(2));
    }

    #[test]
    fn read_after_write_collects_dirty_copy() {
        let mut d = Directory::new();
        d.on_write(0x100, 0);
        let a = d.on_read(0x100, 1);
        assert_eq!(a.fetch_dirty_from, Some(0));
        assert!(a.invalidate.is_empty());
        let e = d.entry(0x100);
        assert_eq!(e.owner, None);
        assert_eq!(e.sharers, 0b11);
    }

    #[test]
    fn write_after_write_migrates_ownership() {
        let mut d = Directory::new();
        d.on_write(0x100, 0);
        let a = d.on_write(0x100, 1);
        assert_eq!(a.fetch_dirty_from, Some(0));
        assert_eq!(a.invalidate, vec![0]);
        assert_eq!(d.entry(0x100).owner, Some(1));
    }

    #[test]
    fn rewrite_by_owner_is_silent() {
        let mut d = Directory::new();
        d.on_write(0x100, 0);
        let a = d.on_write(0x100, 0);
        assert!(a.is_empty());
        assert_eq!(d.messages(), 0);
    }

    #[test]
    fn eviction_clears_tracking() {
        let mut d = Directory::new();
        d.on_read(0x100, 0);
        d.on_evict(0x100, 0);
        assert_eq!(d.tracked_lines(), 0);
        assert!(!d.held_elsewhere(0x100, 1));
    }

    #[test]
    fn held_elsewhere_detects_wrong_bank_residency() {
        // The vector-mode line-migration scenario: core 1 cached a line in
        // scalar mode; in vector mode the line's home bank is 0.
        let mut d = Directory::new();
        d.on_write(0x100, 1);
        assert!(d.held_elsewhere(0x100, 0));
        let a = d.on_read(0x100, 0);
        assert_eq!(a.fetch_dirty_from, Some(1));
    }
}
