//! Latency-modeling queues shared by the timing components.

use bvl_snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// A queue whose entries become visible only after a fixed delay, modeling
/// a pipelined path of known depth (e.g. the VCU's broadcast bus or a
/// cache's hit pipeline).
#[derive(Clone, Debug)]
pub struct DelayQueue<T> {
    entries: VecDeque<(u64, T)>, // (ready_cycle, payload)
    latency: u64,
}

impl<T> DelayQueue<T> {
    /// Creates a queue with the given pipeline latency in cycles.
    pub fn new(latency: u64) -> Self {
        DelayQueue {
            entries: VecDeque::new(),
            latency,
        }
    }

    /// The configured latency.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Inserts `item` at cycle `now`; it becomes poppable at
    /// `now + latency`.
    pub fn push(&mut self, now: u64, item: T) {
        self.entries.push_back((now + self.latency, item));
    }

    /// Inserts with an extra delay on top of the base latency.
    pub fn push_with_extra(&mut self, now: u64, extra: u64, item: T) {
        self.entries.push_back((now + self.latency + extra, item));
    }

    /// Pops the oldest entry if it is ready at cycle `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<T> {
        if self.entries.front().is_some_and(|(t, _)| *t <= now) {
            self.entries.pop_front().map(|(_, v)| v)
        } else {
            None
        }
    }

    /// Peeks at the oldest entry if it is ready at cycle `now`.
    pub fn peek_ready(&self, now: u64) -> Option<&T> {
        self.entries
            .front()
            .filter(|(t, _)| *t <= now)
            .map(|(_, v)| v)
    }

    /// The cycle the oldest entry becomes poppable, if any is queued.
    ///
    /// Entries are FIFO, so with head-of-line blocking the front's ready
    /// time is exactly the first cycle a `pop_ready` can succeed.
    pub fn next_ready(&self) -> Option<u64> {
        self.entries.front().map(|(t, _)| *t)
    }

    /// Number of queued entries (ready or not).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A bounded FIFO with occupancy-based backpressure, modeling a hardware
/// queue of fixed depth (UopQ, DataQ, command queues, ...).
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    entries: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Attempts to enqueue; returns `false` (rejecting the item) when full.
    pub fn try_push(&mut self, item: T) -> bool {
        if self.entries.len() >= self.capacity {
            false
        } else {
            self.entries.push_back(item);
            true
        }
    }

    /// Dequeues the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.entries.pop_front()
    }

    /// Peeks the oldest entry.
    pub fn front(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<T: Snap> Snap for DelayQueue<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.latency.save(w);
        self.entries.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DelayQueue {
            latency: Snap::load(r)?,
            entries: Snap::load(r)?,
        })
    }
}

impl<T: Snap> Snap for BoundedQueue<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.capacity.save(w);
        self.entries.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let capacity: usize = Snap::load(r)?;
        let entries: VecDeque<T> = Snap::load(r)?;
        if capacity == 0 || entries.len() > capacity {
            return Err(SnapError::Corrupt {
                what: format!(
                    "BoundedQueue occupancy {} over capacity {capacity}",
                    entries.len()
                ),
            });
        }
        Ok(BoundedQueue { entries, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_queue_respects_latency() {
        let mut q = DelayQueue::new(3);
        q.push(10, "a");
        assert!(q.pop_ready(12).is_none());
        assert_eq!(q.pop_ready(13), Some("a"));
    }

    #[test]
    fn delay_queue_preserves_order() {
        let mut q = DelayQueue::new(1);
        q.push(0, 1);
        q.push(0, 2);
        assert_eq!(q.pop_ready(5), Some(1));
        assert_eq!(q.pop_ready(5), Some(2));
        assert_eq!(q.pop_ready(5), None);
    }

    #[test]
    fn delay_queue_head_of_line_blocks() {
        let mut q = DelayQueue::new(0);
        q.push_with_extra(0, 10, "slow");
        q.push(0, "fast");
        // "fast" is ready but behind "slow" — FIFO order is preserved.
        assert!(q.pop_ready(5).is_none());
        assert_eq!(q.pop_ready(10), Some("slow"));
        assert_eq!(q.pop_ready(10), Some("fast"));
    }

    #[test]
    fn next_ready_reports_front_deadline() {
        let mut q = DelayQueue::new(3);
        assert_eq!(q.next_ready(), None);
        q.push(10, "a");
        q.push_with_extra(11, 5, "b");
        assert_eq!(q.next_ready(), Some(13));
        // Before the reported cycle nothing pops; at it, the front does.
        assert!(q.pop_ready(12).is_none());
        assert_eq!(q.pop_ready(13), Some("a"));
        assert_eq!(q.next_ready(), Some(19));
    }

    #[test]
    fn bounded_queue_backpressure() {
        let mut q = BoundedQueue::new(2);
        assert!(q.try_push(1));
        assert!(q.try_push(2));
        assert!(!q.try_push(3));
        assert!(q.is_full());
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
