//! Latency/bandwidth-limited DRAM model.
//!
//! Requests are accepted at a bounded rate, occupy one of a bounded set of
//! in-flight slots, and complete after a fixed access latency. This is the
//! "simple memory" end-point under the shared L2, matching the role of the
//! gem5 simple memory controller in the paper's setup.

use crate::queue::BoundedQueue;
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// DRAM configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramParams {
    /// Access latency in (uncore) cycles.
    pub latency: u64,
    /// Maximum requests in flight.
    pub max_inflight: usize,
    /// Requests accepted per cycle.
    pub accepts_per_cycle: u32,
}

impl Default for DramParams {
    fn default() -> Self {
        // ~100 ns at 1 GHz, 48 requests in flight (a multi-channel
        // LPDDR-class controller: enough bank parallelism that the vector
        // units' own buffering is what limits MLP — the premise of the
        // paper's Figure 8 sweep), one 64 B line accepted per cycle.
        DramParams {
            latency: 100,
            max_inflight: 48,
            accepts_per_cycle: 1,
        }
    }
}

/// DRAM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Line requests serviced.
    pub accesses: u64,
    /// Of which writes (writebacks).
    pub writes: u64,
    /// Requests rejected for bandwidth/occupancy.
    pub rejects: u64,
}

impl DramStats {
    /// Registers every counter under `scope` (conventionally `sys.dram`).
    pub fn register(&self, scope: &mut bvl_obs::Scope<'_>) {
        scope.set("accesses", self.accesses);
        scope.set("writes", self.writes);
        scope.set("rejects", self.rejects);
    }
}

/// The DRAM timing model. Generic over the token type `T` callers attach
/// to each request (the hierarchy uses it to route completions).
#[derive(Clone, Debug)]
pub struct Dram<T> {
    params: DramParams,
    inflight: BoundedQueue<(u64, T)>, // (done_cycle, token)
    done: VecDeque<T>,
    accepted_this_cycle: u32,
    stats: DramStats,
}

impl<T> Dram<T> {
    /// Creates a DRAM model.
    pub fn new(params: DramParams) -> Self {
        Dram {
            params,
            inflight: BoundedQueue::new(params.max_inflight),
            done: VecDeque::new(),
            accepted_this_cycle: 0,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Advances time; completed requests become poppable.
    pub fn tick(&mut self, now: u64) {
        self.accepted_this_cycle = 0;
        while self.inflight.front().is_some_and(|(done, _)| *done <= now) {
            let (_, tok) = self.inflight.pop().expect("front checked");
            self.done.push_back(tok);
        }
    }

    /// Attempts to start a request; `false` means retry later.
    pub fn try_request(&mut self, now: u64, is_write: bool, token: T) -> bool {
        if self.accepted_this_cycle >= self.params.accepts_per_cycle || self.inflight.is_full() {
            self.stats.rejects += 1;
            return false;
        }
        self.accepted_this_cycle += 1;
        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }
        let ok = self.inflight.try_push((now + self.params.latency, token));
        debug_assert!(ok, "occupancy checked above");
        true
    }

    /// Pops a completed request's token.
    pub fn pop_done(&mut self) -> Option<T> {
        self.done.pop_front()
    }

    /// The first cycle at which ticking the DRAM does anything: `Some(c)`
    /// when a request completes at `c` (or a completion is already
    /// poppable), `None` when fully drained.
    ///
    /// In-flight entries share one fixed latency and arrive with
    /// monotonically nondecreasing `now`, so the FIFO front carries the
    /// earliest completion.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if !self.done.is_empty() {
            return Some(now);
        }
        self.inflight.front().map(|(done, _)| (*done).max(now))
    }

    /// Requests currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }
}

snap_struct!(DramStats {
    accesses,
    writes,
    rejects,
});

impl<T: Snap> Dram<T> {
    /// Appends the mutable state (not the configuration) to a checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.inflight.save(w);
        self.done.save(w);
        self.accepted_this_cycle.save(w);
        self.stats.save(w);
    }

    /// Restores state written by [`Dram::save_state`], keeping `params`.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let inflight: BoundedQueue<(u64, T)> = Snap::load(r)?;
        if inflight.capacity() != self.params.max_inflight {
            return Err(SnapError::Corrupt {
                what: "DRAM in-flight capacity mismatch".into(),
            });
        }
        self.inflight = inflight;
        self.done = Snap::load(r)?;
        self.accepted_this_cycle = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_latency() {
        let mut d = Dram::new(DramParams {
            latency: 10,
            max_inflight: 4,
            accepts_per_cycle: 1,
        });
        d.tick(0);
        assert!(d.try_request(0, false, "a"));
        d.tick(9);
        assert_eq!(d.pop_done(), None);
        d.tick(10);
        assert_eq!(d.pop_done(), Some("a"));
    }

    #[test]
    fn bandwidth_limit() {
        let mut d = Dram::new(DramParams {
            latency: 10,
            max_inflight: 4,
            accepts_per_cycle: 1,
        });
        d.tick(0);
        assert!(d.try_request(0, false, 1));
        assert!(!d.try_request(0, false, 2));
        assert_eq!(d.stats().rejects, 1);
        d.tick(1);
        assert!(d.try_request(1, false, 2));
    }

    #[test]
    fn next_event_matches_completion_cycle() {
        let mut d = Dram::new(DramParams {
            latency: 10,
            max_inflight: 4,
            accepts_per_cycle: 1,
        });
        d.tick(0);
        assert_eq!(d.next_event(0), None);
        assert!(d.try_request(0, false, "a"));
        assert_eq!(d.next_event(0), Some(10));
        // Quiescent until the reported cycle: ticks earlier pop nothing.
        for t in 1..10 {
            d.tick(t);
            assert!(d.pop_done().is_none());
            assert_eq!(d.next_event(t), Some(10));
        }
        d.tick(10);
        // An undrained completion keeps the DRAM "hot".
        assert_eq!(d.next_event(10), Some(10));
        assert_eq!(d.pop_done(), Some("a"));
    }

    #[test]
    fn occupancy_limit() {
        let mut d = Dram::new(DramParams {
            latency: 100,
            max_inflight: 2,
            accepts_per_cycle: 2,
        });
        d.tick(0);
        assert!(d.try_request(0, false, 1));
        assert!(d.try_request(0, false, 2));
        d.tick(1);
        assert!(!d.try_request(1, false, 3));
        d.tick(100);
        assert_eq!(d.pop_done(), Some(1));
        assert!(d.try_request(100, true, 3));
        assert_eq!(d.stats().writes, 1);
    }
}
