//! Memory request/response types and port identifiers.

use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::fmt;

/// Kind of access, used for the paper's traffic breakdowns (Figures 5–6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Instruction fetch.
    IFetch,
    /// Data access.
    Data,
}

/// Identifies which agent issued a request (and where its response goes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PortId {
    /// A little core's L1D port (`core` = cluster index).
    LittleData(u8),
    /// A little core's L1I (front-end fetch) port.
    LittleFetch(u8),
    /// The big core's L1D port.
    BigData,
    /// The integrated vector unit's port — shares the big core's L1D (and
    /// therefore its port bandwidth), but responses route separately.
    Ivu,
    /// The big core's L1I port.
    BigFetch,
    /// The VLITTLE vector memory unit, addressing L1D bank `0..n`.
    Vmu(u8),
    /// The decoupled vector engine's high-bandwidth L2 port.
    DveL2,
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortId::LittleData(c) => write!(f, "L{c}.d"),
            PortId::LittleFetch(c) => write!(f, "L{c}.i"),
            PortId::BigData => write!(f, "big.d"),
            PortId::Ivu => write!(f, "ivu"),
            PortId::BigFetch => write!(f, "big.i"),
            PortId::Vmu(b) => write!(f, "vmu.{b}"),
            PortId::DveL2 => write!(f, "dve.l2"),
        }
    }
}

/// One memory request travelling through the hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemReq {
    /// Caller-assigned identifier, echoed in the response.
    pub id: u64,
    /// Byte address of the access.
    pub addr: u64,
    /// Access size in bytes (line-sized for vector/fetch traffic).
    pub size: u64,
    /// True for stores/writebacks.
    pub is_store: bool,
    /// Fetch vs data.
    pub kind: AccessKind,
    /// Issuing agent.
    pub port: PortId,
}

/// Response delivered back to the issuing port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemResp {
    /// The identifier of the completed request.
    pub id: u64,
    /// Address of the completed request.
    pub addr: u64,
    /// True if the completed request was a store.
    pub is_store: bool,
    /// The issuing agent the response is for.
    pub port: PortId,
}

impl MemReq {
    /// The response acknowledging this request.
    pub fn response(&self) -> MemResp {
        MemResp {
            id: self.id,
            addr: self.addr,
            is_store: self.is_store,
            port: self.port,
        }
    }

    /// The line-aligned base address for `line_bytes`-sized lines.
    pub fn line_addr(&self, line_bytes: u64) -> u64 {
        self.addr & !(line_bytes - 1)
    }
}

impl Snap for AccessKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            AccessKind::IFetch => 0,
            AccessKind::Data => 1,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(AccessKind::IFetch),
            1 => Ok(AccessKind::Data),
            t => Err(SnapError::BadTag {
                ty: "AccessKind",
                tag: u64::from(t),
            }),
        }
    }
}

impl Snap for PortId {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            PortId::LittleData(c) => {
                w.u8(0);
                w.u8(*c);
            }
            PortId::LittleFetch(c) => {
                w.u8(1);
                w.u8(*c);
            }
            PortId::BigData => w.u8(2),
            PortId::Ivu => w.u8(3),
            PortId::BigFetch => w.u8(4),
            PortId::Vmu(b) => {
                w.u8(5);
                w.u8(*b);
            }
            PortId::DveL2 => w.u8(6),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(PortId::LittleData(r.u8()?)),
            1 => Ok(PortId::LittleFetch(r.u8()?)),
            2 => Ok(PortId::BigData),
            3 => Ok(PortId::Ivu),
            4 => Ok(PortId::BigFetch),
            5 => Ok(PortId::Vmu(r.u8()?)),
            6 => Ok(PortId::DveL2),
            t => Err(SnapError::BadTag {
                ty: "PortId",
                tag: u64::from(t),
            }),
        }
    }
}

snap_struct!(MemReq {
    id,
    addr,
    size,
    is_store,
    kind,
    port,
});
snap_struct!(MemResp {
    id,
    addr,
    is_store,
    port,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        let r = MemReq {
            id: 1,
            addr: 0x1234,
            size: 4,
            is_store: false,
            kind: AccessKind::Data,
            port: PortId::BigData,
        };
        assert_eq!(r.line_addr(64), 0x1200);
        assert_eq!(r.response().id, 1);
    }

    #[test]
    fn port_display() {
        assert_eq!(PortId::LittleData(2).to_string(), "L2.d");
        assert_eq!(PortId::Vmu(3).to_string(), "vmu.3");
    }
}
