#![warn(missing_docs)]
//! # bvl-mem — cycle-level reconfigurable memory hierarchy
//!
//! Implements the memory substrate of the big.VLITTLE paper:
//!
//! * [`simmem`] — the shared *functional* memory image ([`SimMemory`]) all
//!   cores execute against, plus a bump allocator for workload data.
//! * [`req`] — memory request/response types and port identifiers.
//! * [`queue`] — fixed-latency delay queues used to model pipelined paths.
//! * [`idmap`] — a dense sliding-window map over monotonically allocated
//!   transaction ids (the hot-path replacement for `HashMap<u64, _>`).
//! * [`cache`] — a set-associative write-back cache timing model with
//!   MSHRs, LRU replacement and per-access statistics.
//! * [`dram`] — a latency/bandwidth-limited DRAM model.
//! * [`coherence`] — an invalidation-based MSI directory kept at the shared
//!   L2 (a simplified stand-in for the paper's AMBA 5 CHI model).
//! * [`hier`] — the composed hierarchy: per-core private L1I/L1D caches, a
//!   shared banked L2 and DRAM, with the paper's *reconfigurable L1
//!   subsystem* (section III-E): in vector mode the little cores' private
//!   L1Ds become a logically-shared multi-bank cache addressed by bank
//!   bits placed between the block offset and the index.
//! * [`sram_fifo`] — L1I SRAM arrays repurposed as load/store data FIFOs
//!   for the vector memory unit (single read/write port arbitration).
//!
//! Timing and function are split: caches track tags/state/latency only,
//! while data lives in [`SimMemory`] and is moved by the golden executor.
//! This trace-driven-style split keeps the timing model honest (it cannot
//! invent values) while preserving every quantity the paper reports
//! (cycles, request counts, hit rates).

pub mod cache;
pub mod coherence;
pub mod dram;
pub mod hier;
pub mod idmap;
pub mod queue;
pub mod req;
pub mod simmem;
pub mod sram_fifo;

pub use cache::{Cache, CacheParams, CacheStats};
pub use dram::{Dram, DramParams};
pub use hier::{HierConfig, MemHierarchy, MemStats};
pub use idmap::IdMap;
pub use req::{AccessKind, MemReq, MemResp, PortId};
pub use simmem::{MemImage, SharedMem, SimMemory};
pub use sram_fifo::SramFifo;
