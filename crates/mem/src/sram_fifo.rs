//! L1I SRAM arrays repurposed as circular data FIFOs.
//!
//! In vector mode the little cores' front-ends are disabled, leaving their
//! L1 instruction caches' SRAM data arrays idle. The paper (section III-E)
//! turns each of them into a circular FIFO buffering cache-line-sized load
//! and store data for the VMSUs, *without* touching the cache control
//! logic. Each SRAM has a single read/write port, so the VMSU must
//! arbitrate between enqueue and dequeue in any one cycle — this model
//! enforces exactly that structural hazard.

use crate::queue::BoundedQueue;
use bvl_snap::{Snap, SnapError, SnapReader, SnapWriter};

/// A single-ported SRAM-backed FIFO of line-sized entries.
#[derive(Clone, Debug)]
pub struct SramFifo<T> {
    slots: BoundedQueue<T>,
    last_port_cycle: Option<u64>,
    port_conflicts: u64,
}

impl<T> SramFifo<T> {
    /// Creates a FIFO with `capacity` line-sized slots.
    ///
    /// A 32 KiB L1I with 64 B lines yields 512 slots, split between load
    /// and store queues by the VMSU configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        SramFifo {
            slots: BoundedQueue::new(capacity),
            last_port_cycle: None,
            port_conflicts: 0,
        }
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when full.
    pub fn is_full(&self) -> bool {
        self.slots.is_full()
    }

    /// Cycles in which an enqueue and a dequeue competed for the port.
    pub fn port_conflicts(&self) -> u64 {
        self.port_conflicts
    }

    fn take_port(&mut self, now: u64) -> bool {
        if self.last_port_cycle == Some(now) {
            self.port_conflicts += 1;
            false
        } else {
            self.last_port_cycle = Some(now);
            true
        }
    }

    /// True if the single port is still free this cycle.
    pub fn port_free(&self, now: u64) -> bool {
        self.last_port_cycle != Some(now)
    }

    /// Attempts to enqueue at cycle `now`; fails if the FIFO is full or the
    /// port was already used this cycle.
    pub fn try_enqueue(&mut self, now: u64, item: T) -> bool {
        if self.slots.is_full() || !self.port_free(now) {
            if !self.port_free(now) {
                self.port_conflicts += 1;
            }
            return false;
        }
        let taken = self.take_port(now);
        debug_assert!(taken);
        let pushed = self.slots.try_push(item);
        debug_assert!(pushed);
        true
    }

    /// Attempts to dequeue at cycle `now`; fails if empty or the port was
    /// already used this cycle.
    pub fn try_dequeue(&mut self, now: u64) -> Option<T> {
        if self.slots.is_empty() || !self.port_free(now) {
            if !self.port_free(now) && !self.slots.is_empty() {
                self.port_conflicts += 1;
            }
            return None;
        }
        let taken = self.take_port(now);
        debug_assert!(taken);
        self.slots.pop()
    }

    /// Peeks the oldest entry (no port use — head registers are outside
    /// the SRAM).
    pub fn front(&self) -> Option<&T> {
        self.slots.front()
    }
}

impl<T: Snap> Snap for SramFifo<T> {
    fn save(&self, w: &mut SnapWriter) {
        self.slots.save(w);
        self.last_port_cycle.save(w);
        self.port_conflicts.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SramFifo {
            slots: Snap::load(r)?,
            last_port_cycle: Snap::load(r)?,
            port_conflicts: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_port_per_cycle() {
        let mut f = SramFifo::new(4);
        assert!(f.try_enqueue(0, 1));
        // Port busy: dequeue in the same cycle fails.
        assert_eq!(f.try_dequeue(0), None);
        assert_eq!(f.port_conflicts(), 1);
        // Next cycle it drains.
        assert_eq!(f.try_dequeue(1), Some(1));
    }

    #[test]
    fn capacity_backpressure() {
        let mut f = SramFifo::new(2);
        assert!(f.try_enqueue(0, 1));
        assert!(f.try_enqueue(1, 2));
        assert!(!f.try_enqueue(2, 3));
        assert!(f.is_full());
    }

    #[test]
    fn fifo_order() {
        let mut f = SramFifo::new(4);
        f.try_enqueue(0, "a");
        f.try_enqueue(1, "b");
        assert_eq!(f.front(), Some(&"a"));
        assert_eq!(f.try_dequeue(2), Some("a"));
        assert_eq!(f.try_dequeue(3), Some("b"));
        assert_eq!(f.try_dequeue(4), None);
    }
}
