//! The shared functional memory image and workload-data allocator.
//!
//! All simulated cores (and the golden executors inside them) read and
//! write one [`SimMemory`]. The timing hierarchy in [`crate::hier`] only
//! models *when* accesses complete; the bytes themselves live here.

use bvl_isa::mem::Memory;
use bvl_snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Default backing size (64 MiB) — enough for every workload at the
/// default scales.
pub const DEFAULT_SIZE: usize = 64 << 20;

/// A flat byte memory with a bump allocator for laying out workload data.
#[derive(Clone, Debug)]
pub struct SimMemory {
    bytes: Vec<u8>,
    /// Next free address for [`SimMemory::alloc`]. Starts above a reserved
    /// low region so null-ish addresses fault loudly in tests.
    brk: u64,
    /// One past the highest byte ever written — the live prefix that
    /// [`SimMemory::fork`] must copy (everything above is still zero).
    high_water: u64,
}

impl SimMemory {
    /// Creates a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        SimMemory {
            bytes: vec![0; size],
            brk: 0x1000,
            high_water: 0,
        }
    }

    /// A logical copy at a fraction of `clone()`'s cost: the fresh backing
    /// comes zeroed from the allocator (lazy zero pages), and only the
    /// prefix that has ever been written — tracked by a high-water mark —
    /// is actually copied. With a 64 MiB default backing and workloads
    /// touching a few hundred KiB, this turns the per-`simulate` image
    /// copy from tens of milliseconds into microseconds.
    pub fn fork(&self) -> SimMemory {
        let live = (self.high_water.max(self.brk) as usize).min(self.bytes.len());
        let mut bytes = vec![0; self.bytes.len()];
        bytes[..live].copy_from_slice(&self.bytes[..live]);
        SimMemory {
            bytes,
            brk: self.brk,
            high_water: self.high_water,
        }
    }

    /// Total backed bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory backs zero bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Allocates `size` bytes aligned to `align` and returns the base
    /// address. Purely a bump allocator; there is no free.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or the region is exhausted.
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        let end = base + size;
        assert!(
            (end as usize) <= self.bytes.len(),
            "simulated memory exhausted: need {end:#x}, have {:#x}",
            self.bytes.len()
        );
        self.brk = end;
        base
    }

    /// Allocates and fills a `u32` array, returning its base address.
    pub fn alloc_u32(&mut self, data: &[u32]) -> u64 {
        let base = self.alloc(data.len() as u64 * 4, 64);
        for (i, v) in data.iter().enumerate() {
            self.write_uint(base + i as u64 * 4, 4, u64::from(*v));
        }
        base
    }

    /// Allocates and fills an `f32` array, returning its base address.
    pub fn alloc_f32(&mut self, data: &[f32]) -> u64 {
        let base = self.alloc(data.len() as u64 * 4, 64);
        for (i, v) in data.iter().enumerate() {
            self.write_f32(base + i as u64 * 4, *v);
        }
        base
    }

    /// Allocates and fills a `u64` array, returning its base address.
    pub fn alloc_u64(&mut self, data: &[u64]) -> u64 {
        let base = self.alloc(data.len() as u64 * 8, 64);
        for (i, v) in data.iter().enumerate() {
            self.write_uint(base + i as u64 * 8, 8, *v);
        }
        base
    }

    /// Reads back a `u32` array.
    pub fn read_u32_array(&self, base: u64, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| self.read_uint(base + i as u64 * 4, 4) as u32)
            .collect()
    }

    /// Reads back an `f32` array.
    pub fn read_f32_array(&self, base: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| self.read_f32(base + i as u64 * 4))
            .collect()
    }

    /// One past the highest byte ever written — everything at or above
    /// this address still reads as zero.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// The live prefix: every byte from 0 up to the high-water mark.
    pub fn live_bytes(&self) -> &[u8] {
        &self.bytes[..(self.high_water as usize).min(self.bytes.len())]
    }
}

/// Only the live prefix (up to the high-water mark) is encoded: every
/// byte at or above it is zero by the write-path invariant, so a restore
/// zero-fills the rest. `brk` rides along so the bump allocator resumes
/// where it left off.
impl Snap for SimMemory {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.bytes.len());
        w.u64(self.brk);
        w.u64(self.high_water);
        w.bytes(self.live_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let total = r.usize()?;
        if total > (4 << 30) {
            // Bound allocation on corrupt input: no simulated system backs
            // more than a few GiB.
            return Err(SnapError::Corrupt {
                what: format!("memory image claims {total} backing bytes"),
            });
        }
        let brk = r.u64()?;
        let high_water = r.u64()?;
        let live = r.bytes()?;
        if live.len() != (high_water as usize).min(total) || high_water as usize > total {
            return Err(SnapError::Corrupt {
                what: format!(
                    "memory image live prefix {} disagrees with high-water {high_water} / total {total}",
                    live.len()
                ),
            });
        }
        let mut bytes = vec![0u8; total];
        bytes[..live.len()].copy_from_slice(live);
        Ok(SimMemory {
            bytes,
            brk,
            high_water,
        })
    }
}

/// A comparable snapshot of a [`SimMemory`]'s live contents.
///
/// Captures only the written prefix (up to the high-water mark); bytes
/// above it are zero by construction in every image of the same total
/// size, so comparing live prefixes compares the whole address space.
/// Two runs that performed the same set of writes produce equal images —
/// the memory half of the differential-test oracle contract.
#[derive(Clone, PartialEq, Eq)]
pub struct MemImage {
    bytes: Vec<u8>,
    total_len: usize,
}

impl MemImage {
    /// Snapshots the live prefix of `mem`.
    pub fn capture(mem: &SimMemory) -> MemImage {
        MemImage {
            bytes: mem.live_bytes().to_vec(),
            total_len: mem.len(),
        }
    }

    /// Length of the captured live prefix (the high-water mark).
    pub fn live_len(&self) -> usize {
        self.bytes.len()
    }

    /// The captured bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The first address whose byte differs between the two images,
    /// treating everything beyond a shorter live prefix as zero.
    pub fn first_difference(&self, other: &MemImage) -> Option<u64> {
        let n = self.bytes.len().max(other.bytes.len());
        (0..n).find_map(|i| {
            let a = self.bytes.get(i).copied().unwrap_or(0);
            let b = other.bytes.get(i).copied().unwrap_or(0);
            (a != b).then_some(i as u64)
        })
    }
}

impl fmt::Debug for MemImage {
    /// Compact rendering (an image can be megabytes): sizes plus an FNV-1a
    /// digest of the live bytes, enough to see *that* two images differ.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &self.bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        write!(
            f,
            "MemImage {{ live: {} of {} bytes, fnv1a: {h:016x} }}",
            self.bytes.len(),
            self.total_len
        )
    }
}

impl Default for SimMemory {
    fn default() -> Self {
        SimMemory::new(DEFAULT_SIZE)
    }
}

impl Memory for SimMemory {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
    }

    fn write(&mut self, addr: u64, buf: &[u8]) {
        let a = addr as usize;
        let end = a + buf.len();
        self.bytes[a..end].copy_from_slice(buf);
        self.high_water = self.high_water.max(end as u64);
    }
}

/// A shared handle to one [`SimMemory`], cloneable across the cores of a
/// simulated system (single-threaded simulation; `Rc<RefCell<_>>`).
#[derive(Clone, Debug, Default)]
pub struct SharedMem(Rc<RefCell<SimMemory>>);

impl SharedMem {
    /// Wraps a memory image in a shared handle.
    pub fn new(mem: SimMemory) -> Self {
        SharedMem(Rc::new(RefCell::new(mem)))
    }

    /// Runs `f` with a shared borrow of the memory.
    pub fn with<R>(&self, f: impl FnOnce(&SimMemory) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Runs `f` with an exclusive borrow of the memory.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut SimMemory) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl Memory for SharedMem {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        self.0.borrow().read(addr, buf);
    }

    fn write(&mut self, addr: u64, buf: &[u8]) {
        self.0.borrow_mut().write(addr, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut m = SimMemory::new(1 << 20);
        let a = m.alloc(10, 64);
        assert_eq!(a % 64, 0);
        let b = m.alloc(10, 64);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
    }

    #[test]
    fn array_round_trips() {
        let mut m = SimMemory::new(1 << 20);
        let base = m.alloc_u32(&[1, 2, 3]);
        assert_eq!(m.read_u32_array(base, 3), vec![1, 2, 3]);
        let fb = m.alloc_f32(&[1.5, -2.5]);
        assert_eq!(m.read_f32_array(fb, 2), vec![1.5, -2.5]);
    }

    #[test]
    #[should_panic(expected = "simulated memory exhausted")]
    fn alloc_exhaustion_panics() {
        let mut m = SimMemory::new(1 << 16);
        let _ = m.alloc(1 << 20, 8);
    }

    #[test]
    fn fork_matches_clone_and_stays_independent() {
        let mut m = SimMemory::new(1 << 20);
        let base = m.alloc_u32(&[7, 8, 9]);
        // A direct write above brk must still be carried by fork.
        m.write_uint(0x8_0000, 8, 0xFEED);
        let mut f = m.fork();
        assert_eq!(f.read_u32_array(base, 3), vec![7, 8, 9]);
        assert_eq!(f.read_uint(0x8_0000, 8), 0xFEED);
        assert_eq!(f.len(), m.len());
        // Forks don't alias.
        f.write_uint(base, 4, 42);
        assert_eq!(m.read_uint(base, 4), 7);
        // The fork allocates where the original left off.
        let next = f.alloc(16, 64);
        assert!(next >= base + 12);
    }

    #[test]
    fn fork_copies_exactly_the_high_water_prefix() {
        let mut m = SimMemory::new(1 << 20);
        assert_eq!(m.high_water(), 0);
        m.write_uint(0x4000, 4, 0xABCD);
        // One past the highest written byte, not a page or line round-up.
        assert_eq!(m.high_water(), 0x4004);
        let f = m.fork();
        assert_eq!(f.high_water(), m.high_water());
        assert_eq!(f.read_uint(0x4000, 4), 0xABCD);
        // The live prefix view and the captured image agree.
        assert_eq!(f.live_bytes(), m.live_bytes());
        assert_eq!(MemImage::capture(&f), MemImage::capture(&m));
    }

    #[test]
    fn fork_lazy_pages_read_as_zero() {
        let mut m = SimMemory::new(1 << 20);
        m.write_uint(0x2000, 8, u64::MAX);
        let f = m.fork();
        // Far above the high-water mark: never copied, still zero.
        assert_eq!(f.read_uint(0x8_0000, 8), 0);
        assert_eq!(f.read_uint((1 << 20) - 8, 8), 0);
        // Just above the copied prefix too.
        assert_eq!(f.read_uint(m.high_water(), 8), 0);
    }

    #[test]
    fn fork_writes_do_not_leak_either_direction() {
        let mut m = SimMemory::new(1 << 20);
        m.write_uint(0x3000, 4, 111);
        let mut f = m.fork();
        // Child write, inside and above the copied prefix.
        f.write_uint(0x3000, 4, 222);
        f.write_uint(0x7_0000, 4, 333);
        assert_eq!(m.read_uint(0x3000, 4), 111);
        assert_eq!(m.read_uint(0x7_0000, 4), 0);
        assert_eq!(m.high_water(), 0x3004);
        // Parent write after the fork stays invisible to the child.
        m.write_uint(0x5000, 4, 444);
        assert_eq!(f.read_uint(0x5000, 4), 0);
    }

    #[test]
    fn mem_image_reports_first_difference() {
        let mut a = SimMemory::new(1 << 16);
        a.write_uint(0x100, 4, 0x01020304);
        let mut b = a.fork();
        let ia = MemImage::capture(&a);
        assert_eq!(ia.first_difference(&MemImage::capture(&b)), None);
        b.write_uint(0x102, 1, 0xFF);
        let ib = MemImage::capture(&b);
        assert_eq!(ia.first_difference(&ib), Some(0x102));
        // A longer live prefix only differs where it is non-zero.
        b.write_uint(0x200, 2, 0);
        b.write_uint(0x210, 1, 7);
        assert_eq!(ib.first_difference(&MemImage::capture(&b)), Some(0x210));
    }

    #[test]
    fn shared_mem_aliases() {
        let h1 = SharedMem::new(SimMemory::new(1 << 16));
        let mut h2 = h1.clone();
        h2.write_uint(0x2000, 4, 77);
        assert_eq!(h1.read_uint(0x2000, 4), 77);
    }
}
