//! The composed, reconfigurable memory hierarchy.
//!
//! Structure (matching the paper's Table II system):
//!
//! ```text
//!  little0..n: L1I + L1D   big: L1I + L1D   DVE (1bDV only)
//!        \        |            |             /
//!         +-------+---- NoC ---+------------+
//!                       |
//!                  shared L2 (+ MSI directory)
//!                       |
//!                     DRAM
//! ```
//!
//! Two modes:
//!
//! * **Scalar mode** — every little core accesses its private L1D through
//!   [`PortId::LittleData`]; coherence is maintained by the directory.
//! * **Vector mode** — the VLITTLE engine's VMU accesses the little L1Ds
//!   as address-interleaved banks through [`PortId::Vmu`]; the *bank bits
//!   sit between the block offset and the index* and the full line address
//!   remains the tag, so no flush is needed on a mode switch. A line still
//!   cached in the "wrong" bank from scalar mode is migrated on first
//!   touch by the ordinary directory actions (counted in
//!   [`MemStats::line_migrations`]).

use crate::cache::{AccessOutcome, Cache, CacheParams, CacheStats};
use crate::coherence::Directory;
use crate::dram::{Dram, DramParams};
use crate::queue::DelayQueue;
use crate::req::{AccessKind, MemReq, MemResp, PortId};
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Sentinel id marking internal writeback traffic (responses discarded).
const WB_ID: u64 = u64::MAX;

/// Configuration of the whole hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct HierConfig {
    /// Number of little cores (0 for the `1b`/`1bIV`/`1bDV` systems).
    pub num_little: usize,
    /// Whether a big core (with its own L1s) is present.
    pub has_big: bool,
    /// Whether the decoupled vector engine's L2 port is present.
    pub has_dve: bool,
    /// Little-core L1I parameters.
    pub little_l1i: CacheParams,
    /// Little-core L1D parameters.
    pub little_l1d: CacheParams,
    /// Big-core L1I parameters.
    pub big_l1i: CacheParams,
    /// Big-core L1D parameters.
    pub big_l1d: CacheParams,
    /// Shared L2 parameters.
    pub l2: CacheParams,
    /// DRAM parameters.
    pub dram: DramParams,
    /// One-way NoC latency between L1s and L2, cycles.
    pub noc_latency: u64,
    /// Extra latency per coherence action (invalidate / dirty fetch).
    pub coherence_latency: u64,
    /// Line requests the DVE may inject per cycle (its high-bandwidth
    /// port; the paper gives the decoupled engine more L2 bandwidth than
    /// an L1 port).
    pub dve_l2_ports: u32,
}

impl HierConfig {
    /// The default big.LITTLE-style hierarchy with `n` little cores.
    pub fn with_little(n: usize) -> Self {
        HierConfig {
            num_little: n,
            has_big: true,
            has_dve: false,
            little_l1i: CacheParams::little_l1(),
            little_l1d: CacheParams::little_l1(),
            big_l1i: CacheParams::big_l1(),
            big_l1d: CacheParams::big_l1(),
            l2: CacheParams::shared_l2(),
            dram: DramParams::default(),
            noc_latency: 3,
            coherence_latency: 8,
            dve_l2_ports: 4,
        }
    }
}

/// Aggregated hierarchy statistics (inputs to Figures 5, 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Instruction-fetch requests entering the L1 level.
    pub ifetch_reqs: u64,
    /// Data requests entering the L1 level (scalar ports, VMU banks and
    /// the DVE's L2 port).
    pub data_reqs: u64,
    /// Requests reaching the shared L2.
    pub l2_reqs: u64,
    /// Of the data requests, those arriving on the DVE's direct L2 port
    /// (they bypass every L1 — `data_reqs - dve_reqs` equals the sum of
    /// L1D accepts).
    pub dve_reqs: u64,
    /// Of the data requests, those arriving on VMU bank ports — each is
    /// one accepted VMU line request (conservation law `vmu-flow`).
    pub vmu_reqs: u64,
    /// Coherence messages issued by the directory.
    pub coherence_msgs: u64,
    /// Vector-mode accesses that found their line dirty in another bank
    /// and migrated it.
    pub line_migrations: u64,
}

impl MemStats {
    /// Registers every counter under `scope` (conventionally `sys.mem`).
    pub fn register(&self, scope: &mut bvl_obs::Scope<'_>) {
        scope.set("ifetch_reqs", self.ifetch_reqs);
        scope.set("data_reqs", self.data_reqs);
        scope.set("l2_reqs", self.l2_reqs);
        scope.set("dve_reqs", self.dve_reqs);
        scope.set("vmu_reqs", self.vmu_reqs);
        scope.set("coherence_msgs", self.coherence_msgs);
        scope.set("line_migrations", self.line_migrations);
    }
}

#[derive(Clone, Copy, Debug)]
struct L2Entry {
    req: MemReq,
    /// Extra coherence delay already charged to this entry.
    extra: u64,
}

/// The memory hierarchy timing model.
#[derive(Clone, Debug)]
pub struct MemHierarchy {
    cfg: HierConfig,
    little_l1i: Vec<Cache>,
    little_l1d: Vec<Cache>,
    big_l1i: Option<Cache>,
    big_l1d: Option<Cache>,
    l2: Cache,
    dram: Dram<(u64, bool)>, // (line, is_write)
    dir: Directory,
    to_l2: DelayQueue<L2Entry>,
    pending_l2: VecDeque<L2Entry>,
    from_l2: DelayQueue<MemReq>,
    pending_dram: VecDeque<(u64, bool)>,
    resp_little_d: Vec<VecDeque<MemResp>>,
    resp_little_i: Vec<VecDeque<MemResp>>,
    resp_big_d: VecDeque<MemResp>,
    resp_big_i: VecDeque<MemResp>,
    resp_ivu: VecDeque<MemResp>,
    resp_vmu: VecDeque<MemResp>,
    resp_dve: VecDeque<MemResp>,
    dve_accepts_this_cycle: u32,
    vector_mode: bool,
    now: u64,
    next_internal_id: u64,
    stats: MemStats,
}

impl MemHierarchy {
    /// Builds the hierarchy from its configuration.
    pub fn new(cfg: HierConfig) -> Self {
        MemHierarchy {
            little_l1i: (0..cfg.num_little)
                .map(|_| Cache::new(cfg.little_l1i))
                .collect(),
            little_l1d: (0..cfg.num_little)
                .map(|_| Cache::new(cfg.little_l1d))
                .collect(),
            big_l1i: cfg.has_big.then(|| Cache::new(cfg.big_l1i)),
            big_l1d: cfg.has_big.then(|| Cache::new(cfg.big_l1d)),
            l2: Cache::new(cfg.l2),
            dram: Dram::new(cfg.dram),
            dir: Directory::new(),
            to_l2: DelayQueue::new(cfg.noc_latency),
            pending_l2: VecDeque::new(),
            from_l2: DelayQueue::new(cfg.noc_latency),
            pending_dram: VecDeque::new(),
            resp_little_d: (0..cfg.num_little).map(|_| VecDeque::new()).collect(),
            resp_little_i: (0..cfg.num_little).map(|_| VecDeque::new()).collect(),
            resp_big_d: VecDeque::new(),
            resp_big_i: VecDeque::new(),
            resp_ivu: VecDeque::new(),
            resp_vmu: VecDeque::new(),
            resp_dve: VecDeque::new(),
            dve_accepts_this_cycle: 0,
            vector_mode: false,
            now: 0,
            next_internal_id: 0,
            stats: MemStats::default(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierConfig {
        &self.cfg
    }

    /// Line size in bytes (uniform across the hierarchy).
    pub fn line_bytes(&self) -> u64 {
        self.cfg.l2.line_bytes
    }

    /// Switches between scalar and vector mode (paper section III-E). No
    /// flush: lines migrate lazily via the coherence protocol.
    pub fn set_vector_mode(&mut self, on: bool) {
        self.vector_mode = on;
    }

    /// True while in vector mode.
    pub fn vector_mode(&self) -> bool {
        self.vector_mode
    }

    /// The bank (little L1D index) owning `addr` in vector mode: bank bits
    /// sit directly above the block offset.
    pub fn bank_of(&self, addr: u64) -> u8 {
        let banks = self.cfg.num_little.max(1) as u64;
        ((addr / self.line_bytes()) % banks) as u8
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats;
        s.coherence_msgs = self.dir.messages();
        s
    }

    /// A little core's L1D statistics.
    pub fn little_l1d_stats(&self, c: usize) -> &CacheStats {
        self.little_l1d[c].stats()
    }

    /// A little core's L1I statistics.
    pub fn little_l1i_stats(&self, c: usize) -> &CacheStats {
        self.little_l1i[c].stats()
    }

    /// The big core's L1D statistics.
    ///
    /// # Panics
    ///
    /// Panics if the system has no big core.
    pub fn big_l1d_stats(&self) -> &CacheStats {
        self.big_l1d.as_ref().expect("no big core").stats()
    }

    /// Shared L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &crate::dram::DramStats {
        self.dram.stats()
    }

    /// Requests already counted at the L1 level (misses, writebacks, DVE
    /// injections) that have not yet been presented to the L2: undelivered
    /// L1 miss/writeback ports, NoC flight, and the L2's reject-retry
    /// queue. Simulation ends when cores and engines are done, not when
    /// the hierarchy is fully drained — e.g. a speculative ifetch miss
    /// issued right before a core halts — so the `l2-flow` conservation
    /// law carries this as its in-flight term.
    pub fn l2_inflight(&self) -> u64 {
        let l1_ports: u64 = self
            .little_l1i
            .iter()
            .chain(&self.little_l1d)
            .chain(&self.big_l1i)
            .chain(&self.big_l1d)
            .map(|c| c.pending_miss_out() + c.pending_wb_out())
            .sum();
        l1_ports + self.to_l2.len() as u64 + self.pending_l2.len() as u64
    }

    /// L2 misses / writebacks already counted but not yet accepted by
    /// DRAM, as `(reads, writes)` — the `dram-flow` law's in-flight term
    /// (see [`MemHierarchy::l2_inflight`]).
    pub fn dram_inflight(&self) -> (u64, u64) {
        let rd = self.pending_dram.iter().filter(|&&(_, w)| !w).count() as u64
            + self.l2.pending_miss_out();
        let wr =
            self.pending_dram.iter().filter(|&&(_, w)| w).count() as u64 + self.l2.pending_wb_out();
        (rd, wr)
    }

    /// Registers every cache, the DRAM and the hierarchy's front-door
    /// counters under `sys` — `sys.little{i}.l1{i,d}.*`, `sys.big.l1{i,d}.*`,
    /// `sys.l2.*`, `sys.dram.*`, `sys.mem.*`. In vector mode the little
    /// L1Ds double as VMU banks, but they are the same physical caches, so
    /// the paths stay `little{i}.l1d` regardless of the final mode.
    pub fn register_stats(&self, sys: &mut bvl_obs::Scope<'_>) {
        for c in 0..self.cfg.num_little {
            let mut core = sys.scope(&format!("little{c}"));
            self.little_l1i[c].stats().register(&mut core.scope("l1i"));
            self.little_l1d[c].stats().register(&mut core.scope("l1d"));
        }
        if let (Some(l1i), Some(l1d)) = (&self.big_l1i, &self.big_l1d) {
            let mut big = sys.scope("big");
            l1i.stats().register(&mut big.scope("l1i"));
            l1d.stats().register(&mut big.scope("l1d"));
        }
        self.l2.stats().register(&mut sys.scope("l2"));
        self.dram.stats().register(&mut sys.scope("dram"));
        let mut mem = sys.scope("mem");
        self.stats().register(&mut mem);
        mem.set("l2_inflight", self.l2_inflight());
        let (rd, wr) = self.dram_inflight();
        mem.set("dram_inflight_rd", rd);
        mem.set("dram_inflight_wr", wr);
    }

    fn internal_id(&mut self) -> u64 {
        self.next_internal_id += 1;
        self.next_internal_id
    }

    /// Advances the hierarchy by one uncore cycle. Call once per cycle
    /// *before* cores issue their requests for that cycle.
    pub fn tick(&mut self, now: u64) {
        self.now = now;
        self.dve_accepts_this_cycle = 0;

        // 1. DRAM completions fill the L2.
        self.dram.tick(now);
        while let Some((line, is_write)) = self.dram.pop_done() {
            if !is_write {
                self.l2.fill(now, line);
            }
        }

        // 2. L2 completions travel back across the NoC.
        self.l2.tick(now);
        while let Some(req) = self.l2.pop_response() {
            if req.id != WB_ID {
                self.from_l2.push(now, req);
            }
        }
        while let Some(line) = self.l2.pop_miss() {
            self.pending_dram.push_back((line, false));
        }
        while let Some(line) = self.l2.pop_writeback() {
            self.pending_dram.push_back((line, true));
        }
        while let Some(&(line, w)) = self.pending_dram.front() {
            if self.dram.try_request(now, w, (line, w)) {
                bvl_obs::trace::emit(now, "dram", 0, if w { "wr" } else { "rd" }, line);
                self.pending_dram.pop_front();
            } else {
                break;
            }
        }

        // 3. L2 fills reach the L1s (or the DVE).
        while let Some(req) = self.from_l2.pop_ready(now) {
            self.deliver_l2_fill(req);
        }

        // 4. L1 caches advance; their completions, misses and writebacks
        //    are drained.
        for c in 0..self.cfg.num_little {
            self.little_l1i[c].tick(now);
            self.little_l1d[c].tick(now);
        }
        if let Some(c) = self.big_l1i.as_mut() {
            c.tick(now);
        }
        if let Some(c) = self.big_l1d.as_mut() {
            c.tick(now);
        }
        self.drain_l1s();

        // 5. NoC-delayed L1 miss traffic reaches the L2.
        while let Some(e) = self.to_l2.pop_ready(now) {
            self.pending_l2.push_back(e);
        }
        while let Some(&front) = self.pending_l2.front() {
            if front.extra > 0 {
                // Charge remaining coherence latency one cycle at a time.
                self.pending_l2.front_mut().expect("front checked").extra -= 1;
                break;
            }
            match self.l2.access(now, front.req) {
                AccessOutcome::Rejected => break,
                _ => {
                    self.stats.l2_reqs += 1;
                    self.pending_l2.pop_front();
                }
            }
        }
    }

    fn deliver_l2_fill(&mut self, req: MemReq) {
        let line = req.addr;
        match req.port {
            PortId::LittleFetch(c) => self.little_l1i[c as usize].fill(self.now, line),
            PortId::LittleData(c) | PortId::Vmu(c) => {
                self.little_l1d[c as usize].fill(self.now, line)
            }
            PortId::BigFetch => {
                if let Some(c) = self.big_l1i.as_mut() {
                    c.fill(self.now, line)
                }
            }
            PortId::BigData | PortId::Ivu => {
                if let Some(c) = self.big_l1d.as_mut() {
                    c.fill(self.now, line)
                }
            }
            PortId::DveL2 => self.resp_dve.push_back(req.response()),
        }
    }

    fn drain_l1s(&mut self) {
        // Completions to per-port response queues.
        for c in 0..self.cfg.num_little {
            while let Some(req) = self.little_l1i[c].pop_response() {
                self.resp_little_i[c].push_back(req.response());
            }
            while let Some(req) = self.little_l1d[c].pop_response() {
                match req.port {
                    PortId::Vmu(_) => self.resp_vmu.push_back(req.response()),
                    _ => self.resp_little_d[c].push_back(req.response()),
                }
            }
        }
        if let Some(cache) = self.big_l1i.as_mut() {
            while let Some(req) = cache.pop_response() {
                self.resp_big_i.push_back(req.response());
            }
        }
        if let Some(cache) = self.big_l1d.as_mut() {
            while let Some(req) = cache.pop_response() {
                match req.port {
                    PortId::Ivu => self.resp_ivu.push_back(req.response()),
                    _ => self.resp_big_d.push_back(req.response()),
                }
            }
        }

        // Misses become NoC traffic toward the L2, passing the directory.
        for c in 0..self.cfg.num_little {
            while let Some(line) = self.little_l1i[c].pop_miss() {
                let req = self.line_req(
                    line,
                    false,
                    AccessKind::IFetch,
                    PortId::LittleFetch(c as u8),
                );
                self.to_l2.push(self.now, L2Entry { req, extra: 0 });
            }
            while let Some(line) = self.little_l1d[c].pop_miss() {
                self.data_miss_to_l2(line, c as u8);
            }
            while let Some(line) = self.little_l1d[c].pop_writeback() {
                self.dir.on_evict(line, c as u8);
                self.writeback_to_l2(line, PortId::LittleData(c as u8));
            }
            while let Some(_line) = self.little_l1i[c].pop_writeback() {
                // Instruction lines are never dirty; nothing to do.
            }
        }
        let big_agent = self.cfg.num_little as u8;
        if self.big_l1i.is_some() {
            while let Some(line) = self.big_l1i.as_mut().expect("checked").pop_miss() {
                let req = self.line_req(line, false, AccessKind::IFetch, PortId::BigFetch);
                self.to_l2.push(self.now, L2Entry { req, extra: 0 });
            }
        }
        if self.big_l1d.is_some() {
            while let Some(line) = self.big_l1d.as_mut().expect("checked").pop_miss() {
                self.data_miss_big(line, big_agent);
            }
            while let Some(line) = self.big_l1d.as_mut().expect("checked").pop_writeback() {
                self.dir.on_evict(line, big_agent);
                self.writeback_to_l2(line, PortId::BigData);
            }
        }
    }

    fn line_req(&mut self, line: u64, is_store: bool, kind: AccessKind, port: PortId) -> MemReq {
        MemReq {
            id: self.internal_id(),
            addr: line,
            size: self.line_bytes(),
            is_store,
            kind,
            port,
        }
    }

    /// Routes a little-L1D miss (scalar or VMU-bank) through the directory.
    fn data_miss_to_l2(&mut self, line: u64, cache_id: u8) {
        // Intent: conservatively read; stores mark the filled line dirty
        // and the directory is fixed up at store time (see `request`).
        let actions = self.dir.on_read(line, cache_id);
        let extra = self.apply_actions(line, &actions, cache_id);
        let port = if self.vector_mode {
            PortId::Vmu(cache_id)
        } else {
            PortId::LittleData(cache_id)
        };
        if self.vector_mode && actions.fetch_dirty_from.is_some() {
            self.stats.line_migrations += 1;
            bvl_obs::trace::emit(self.now, "mem", cache_id as u16, "migrate", line);
        }
        let req = self.line_req(line, false, AccessKind::Data, port);
        self.to_l2.push(self.now, L2Entry { req, extra });
    }

    fn data_miss_big(&mut self, line: u64, agent: u8) {
        let actions = self.dir.on_read(line, agent);
        let extra = self.apply_actions(line, &actions, agent);
        let req = self.line_req(line, false, AccessKind::Data, PortId::BigData);
        self.to_l2.push(self.now, L2Entry { req, extra });
    }

    /// Invalidates / collects copies per the directory's actions; returns
    /// the extra latency charged to the triggering request.
    fn apply_actions(
        &mut self,
        line: u64,
        actions: &crate::coherence::CoherenceActions,
        _requester: u8,
    ) -> u64 {
        let mut extra = 0;
        let n = self.cfg.num_little as u8;
        for &target in actions
            .invalidate
            .iter()
            .chain(actions.fetch_dirty_from.iter())
        {
            extra += self.cfg.coherence_latency;
            if target < n {
                self.little_l1d[target as usize].invalidate(line);
            } else if target == n {
                if let Some(c) = self.big_l1d.as_mut() {
                    c.invalidate(line);
                }
            }
            // DVE (agent n+1) holds no cache; nothing to invalidate.
            self.dir.on_evict(line, target);
        }
        extra
    }

    fn writeback_to_l2(&mut self, line: u64, port: PortId) {
        let req = MemReq {
            id: WB_ID,
            addr: line,
            size: self.line_bytes(),
            is_store: true,
            kind: AccessKind::Data,
            port,
        };
        self.to_l2.push(self.now, L2Entry { req, extra: 0 });
    }

    /// Presents a request from a core or engine. Returns `false` when the
    /// target cannot accept it this cycle (retry next cycle).
    ///
    /// # Panics
    ///
    /// Panics (debug) if a port inconsistent with the current mode is used
    /// — e.g. [`PortId::LittleData`] while in vector mode.
    pub fn request(&mut self, req: MemReq) -> bool {
        debug_assert_ne!(req.id, WB_ID, "WB_ID is reserved for internal traffic");
        match req.port {
            PortId::LittleFetch(c) => {
                let outcome = self.little_l1i[c as usize].access(self.now, req);
                if outcome != AccessOutcome::Rejected {
                    self.stats.ifetch_reqs += 1;
                }
                outcome != AccessOutcome::Rejected
            }
            PortId::BigFetch => {
                let cache = self.big_l1i.as_mut().expect("no big core");
                let outcome = cache.access(self.now, req);
                if outcome != AccessOutcome::Rejected {
                    self.stats.ifetch_reqs += 1;
                }
                outcome != AccessOutcome::Rejected
            }
            PortId::LittleData(c) => {
                debug_assert!(
                    !self.vector_mode,
                    "little cores do not access L1D directly in vector mode"
                );
                self.data_access(req, c)
            }
            PortId::Vmu(bank) => {
                debug_assert!(self.vector_mode, "VMU ports exist only in vector mode");
                debug_assert_eq!(
                    self.bank_of(req.addr),
                    bank,
                    "VMU request routed to the wrong bank"
                );
                let accepted = self.data_access(req, bank);
                if accepted {
                    self.stats.vmu_reqs += 1;
                }
                accepted
            }
            PortId::BigData | PortId::Ivu => {
                let agent = self.cfg.num_little as u8;
                let line = req.line_addr(self.line_bytes());
                let cache = self.big_l1d.as_mut().expect("no big core");
                let outcome = cache.access(self.now, req);
                if outcome == AccessOutcome::Rejected {
                    return false;
                }
                self.stats.data_reqs += 1;
                if req.is_store {
                    self.store_ownership(line, agent);
                }
                true
            }
            PortId::DveL2 => {
                assert!(self.cfg.has_dve, "system has no decoupled vector engine");
                if self.dve_accepts_this_cycle >= self.cfg.dve_l2_ports {
                    return false;
                }
                self.dve_accepts_this_cycle += 1;
                self.stats.data_reqs += 1;
                self.stats.dve_reqs += 1;
                let agent = self.cfg.num_little as u8 + 1;
                let line = req.line_addr(self.line_bytes());
                let actions = if req.is_store {
                    self.dir.on_write(line, agent)
                } else {
                    self.dir.on_read(line, agent)
                };
                let extra = self.apply_actions(line, &actions, agent);
                self.to_l2.push(self.now, L2Entry { req, extra });
                true
            }
        }
    }

    fn data_access(&mut self, req: MemReq, cache_id: u8) -> bool {
        let line = req.line_addr(self.line_bytes());
        let outcome = self.little_l1d[cache_id as usize].access(self.now, req);
        if outcome == AccessOutcome::Rejected {
            return false;
        }
        self.stats.data_reqs += 1;
        if req.is_store {
            self.store_ownership(line, cache_id);
        }
        true
    }

    /// Ensures the directory records `agent` as exclusive owner for a
    /// store, invalidating other copies. Charged without extra latency to
    /// the storing agent (documented simplification: the cost lands on the
    /// caches that lose the line).
    fn store_ownership(&mut self, line: u64, agent: u8) {
        if self.dir.entry(line).owner == Some(agent) {
            return;
        }
        let actions = self.dir.on_write(line, agent);
        self.apply_actions(line, &actions, agent);
        // apply_actions evicted every other copy; re-record the writer.
        let refreshed = self.dir.on_write(line, agent);
        debug_assert!(refreshed.is_empty());
    }

    /// The first uncore cycle at which [`MemHierarchy::tick`] would do
    /// observable work: queue entries maturing, DRAM returns, or
    /// one-per-cycle backpressure processing. While `now` is strictly
    /// before the reported cycle, a tick only refreshes `self.now` and the
    /// per-cycle port counters — state the tick at the event cycle
    /// re-establishes identically.
    ///
    /// `None` means the hierarchy is fully drained: ticking stays a no-op
    /// until a core or engine injects a new request.
    ///
    /// Per-port response queues are deliberately *not* considered — they
    /// are consumed by core ticks, not hierarchy ticks; callers must gate
    /// skipping on [`MemHierarchy::response_pending`] for every live port.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        // One-per-cycle processing queues advance every tick.
        if !self.pending_l2.is_empty() || !self.pending_dram.is_empty() {
            return Some(now);
        }
        let mut ev: Option<u64> = None;
        let mut fold = |c: Option<u64>| {
            ev = match (ev, c) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        };
        fold(self.dram.next_event(now));
        fold(self.to_l2.next_ready().map(|t| t.max(now)));
        fold(self.from_l2.next_ready().map(|t| t.max(now)));
        fold(self.l2.next_event(now));
        for c in self.little_l1i.iter().chain(self.little_l1d.iter()) {
            fold(c.next_event(now));
        }
        if let Some(c) = self.big_l1i.as_ref() {
            fold(c.next_event(now));
        }
        if let Some(c) = self.big_l1d.as_ref() {
            fold(c.next_event(now));
        }
        ev
    }

    /// True while an undelivered response sits in `port`'s queue (the
    /// consuming core/engine must tick to drain it).
    pub fn response_pending(&self, port: PortId) -> bool {
        match port {
            PortId::LittleData(c) => !self.resp_little_d[c as usize].is_empty(),
            PortId::LittleFetch(c) => !self.resp_little_i[c as usize].is_empty(),
            PortId::BigData => !self.resp_big_d.is_empty(),
            PortId::BigFetch => !self.resp_big_i.is_empty(),
            PortId::Ivu => !self.resp_ivu.is_empty(),
            PortId::Vmu(_) => !self.resp_vmu.is_empty(),
            PortId::DveL2 => !self.resp_dve.is_empty(),
        }
    }

    /// Pops a completed response for the given port.
    pub fn pop_response(&mut self, port: PortId) -> Option<MemResp> {
        match port {
            PortId::LittleData(c) => self.resp_little_d[c as usize].pop_front(),
            PortId::LittleFetch(c) => self.resp_little_i[c as usize].pop_front(),
            PortId::BigData => self.resp_big_d.pop_front(),
            PortId::BigFetch => self.resp_big_i.pop_front(),
            PortId::Ivu => self.resp_ivu.pop_front(),
            PortId::Vmu(_) => self.resp_vmu.pop_front(),
            PortId::DveL2 => self.resp_dve.pop_front(),
        }
    }

    /// Appends the whole hierarchy's mutable state to a checkpoint. The
    /// configuration is not encoded — a restore target is built from the
    /// same [`HierConfig`] and [`MemHierarchy::restore_state`] validates
    /// the shapes line up.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.little_l1i.len());
        for c in self.little_l1i.iter().chain(self.little_l1d.iter()) {
            c.save_state(w);
        }
        w.bool(self.big_l1i.is_some());
        if let Some(c) = self.big_l1i.as_ref() {
            c.save_state(w);
        }
        w.bool(self.big_l1d.is_some());
        if let Some(c) = self.big_l1d.as_ref() {
            c.save_state(w);
        }
        self.l2.save_state(w);
        self.dram.save_state(w);
        self.dir.save(w);
        self.to_l2.save(w);
        self.pending_l2.save(w);
        self.from_l2.save(w);
        self.pending_dram.save(w);
        self.resp_little_d.save(w);
        self.resp_little_i.save(w);
        self.resp_big_d.save(w);
        self.resp_big_i.save(w);
        self.resp_ivu.save(w);
        self.resp_vmu.save(w);
        self.resp_dve.save(w);
        self.dve_accepts_this_cycle.save(w);
        self.vector_mode.save(w);
        self.now.save(w);
        self.next_internal_id.save(w);
        self.stats.save(w);
    }

    /// Restores state written by [`MemHierarchy::save_state`] into a
    /// hierarchy freshly built from the same configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n_little: usize = r.usize()?;
        if n_little != self.cfg.num_little {
            return Err(SnapError::Corrupt {
                what: format!(
                    "checkpoint has {n_little} little L1 pairs, system has {}",
                    self.cfg.num_little
                ),
            });
        }
        for c in self.little_l1i.iter_mut().chain(self.little_l1d.iter_mut()) {
            c.restore_state(r)?;
        }
        // Each presence flag is interleaved with its cache payload, so the
        // flags must be read one at a time, not hoisted together.
        for cache in [&mut self.big_l1i, &mut self.big_l1d] {
            match (r.bool()?, cache.as_mut()) {
                (true, Some(c)) => c.restore_state(r)?,
                (false, None) => {}
                _ => {
                    return Err(SnapError::Corrupt {
                        what: "big-core L1 presence mismatch".into(),
                    })
                }
            }
        }
        self.l2.restore_state(r)?;
        self.dram.restore_state(r)?;
        self.dir = Snap::load(r)?;
        self.to_l2 = Snap::load(r)?;
        self.pending_l2 = Snap::load(r)?;
        self.from_l2 = Snap::load(r)?;
        self.pending_dram = Snap::load(r)?;
        let resp_little_d: Vec<VecDeque<MemResp>> = Snap::load(r)?;
        let resp_little_i: Vec<VecDeque<MemResp>> = Snap::load(r)?;
        if resp_little_d.len() != self.cfg.num_little || resp_little_i.len() != self.cfg.num_little
        {
            return Err(SnapError::Corrupt {
                what: "little-core response queue count mismatch".into(),
            });
        }
        self.resp_little_d = resp_little_d;
        self.resp_little_i = resp_little_i;
        self.resp_big_d = Snap::load(r)?;
        self.resp_big_i = Snap::load(r)?;
        self.resp_ivu = Snap::load(r)?;
        self.resp_vmu = Snap::load(r)?;
        self.resp_dve = Snap::load(r)?;
        self.dve_accepts_this_cycle = Snap::load(r)?;
        self.vector_mode = Snap::load(r)?;
        self.now = Snap::load(r)?;
        self.next_internal_id = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

snap_struct!(L2Entry { req, extra });
snap_struct!(MemStats {
    ifetch_reqs,
    data_reqs,
    l2_reqs,
    dve_reqs,
    vmu_reqs,
    coherence_msgs,
    line_migrations,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, addr: u64, is_store: bool, port: PortId) -> MemReq {
        MemReq {
            id,
            addr,
            size: 4,
            is_store,
            kind: AccessKind::Data,
            port,
        }
    }

    fn run_until_response(
        h: &mut MemHierarchy,
        port: PortId,
        start: u64,
        limit: u64,
    ) -> (u64, MemResp) {
        for t in start..start + limit {
            h.tick(t);
            if let Some(r) = h.pop_response(port) {
                return (t, r);
            }
        }
        panic!("no response within {limit} cycles");
    }

    #[test]
    fn little_load_misses_all_the_way_to_dram() {
        let mut h = MemHierarchy::new(HierConfig::with_little(4));
        h.tick(0);
        assert!(h.request(req(1, 0x4000, false, PortId::LittleData(0))));
        let (t, r) = run_until_response(&mut h, PortId::LittleData(0), 1, 400);
        assert_eq!(r.id, 1);
        // Must include L1 miss + NoC + L2 miss + DRAM latency.
        assert!(t > 100, "completed suspiciously fast at cycle {t}");
        assert_eq!(h.dram_stats().accesses, 1);
        // Second access to the same line is an L1 hit — fast.
        let t0 = t + 1;
        h.tick(t0);
        assert!(h.request(req(2, 0x4004, false, PortId::LittleData(0))));
        let (t2, _) = run_until_response(&mut h, PortId::LittleData(0), t0 + 1, 10);
        assert!(t2 - t0 <= 4, "hit took {} cycles", t2 - t0);
    }

    #[test]
    fn l2_hit_is_faster_than_dram() {
        let mut h = MemHierarchy::new(HierConfig::with_little(2));
        // Core 0 warms the L2.
        h.tick(0);
        assert!(h.request(req(1, 0x8000, false, PortId::LittleData(0))));
        let (t_warm, _) = run_until_response(&mut h, PortId::LittleData(0), 1, 400);
        // Core 1 misses L1 but hits L2.
        let t0 = t_warm + 1;
        h.tick(t0);
        assert!(h.request(req(2, 0x8000, false, PortId::LittleData(1))));
        let (t1, _) = run_until_response(&mut h, PortId::LittleData(1), t0 + 1, 400);
        assert!(
            t1 - t0 < t_warm,
            "L2 hit ({}) not faster than DRAM path ({})",
            t1 - t0,
            t_warm
        );
        assert_eq!(h.dram_stats().accesses, 1);
    }

    #[test]
    fn store_invalidates_other_sharers() {
        let mut h = MemHierarchy::new(HierConfig::with_little(2));
        // Both cores read the line.
        h.tick(0);
        assert!(h.request(req(1, 0x9000, false, PortId::LittleData(0))));
        run_until_response(&mut h, PortId::LittleData(0), 1, 400);
        h.tick(500);
        assert!(h.request(req(2, 0x9000, false, PortId::LittleData(1))));
        run_until_response(&mut h, PortId::LittleData(1), 501, 400);
        // Core 0 stores: core 1's copy must disappear.
        h.tick(1000);
        assert!(h.request(req(3, 0x9000, true, PortId::LittleData(0))));
        run_until_response(&mut h, PortId::LittleData(0), 1001, 400);
        assert!(h.little_l1d_stats(1).invalidations >= 1);
    }

    #[test]
    fn vector_mode_banks_by_line() {
        let h = MemHierarchy::new(HierConfig::with_little(4));
        assert_eq!(h.bank_of(0x0000), 0);
        assert_eq!(h.bank_of(0x0040), 1);
        assert_eq!(h.bank_of(0x0080), 2);
        assert_eq!(h.bank_of(0x00C0), 3);
        assert_eq!(h.bank_of(0x0100), 0);
        // Bank bits are above the 64 B offset: same line, same bank.
        assert_eq!(h.bank_of(0x0041), 1);
    }

    #[test]
    fn vmu_access_migrates_wrong_bank_line() {
        let mut h = MemHierarchy::new(HierConfig::with_little(4));
        // In scalar mode core 3 dirties line 0x0 (home bank 0).
        h.tick(0);
        assert!(h.request(req(1, 0x0, true, PortId::LittleData(3))));
        run_until_response(&mut h, PortId::LittleData(3), 1, 400);
        // Switch to vector mode; VMU touches the line via bank 0.
        h.set_vector_mode(true);
        h.tick(1000);
        let mut r = req(2, 0x0, false, PortId::Vmu(0));
        r.size = 64;
        assert!(h.request(r));
        run_until_response(&mut h, PortId::Vmu(0), 1001, 600);
        assert_eq!(h.stats().line_migrations, 1);
        assert!(h.little_l1d_stats(3).invalidations >= 1);
    }

    #[test]
    fn ifetch_counts_separately_from_data() {
        let mut h = MemHierarchy::new(HierConfig::with_little(1));
        h.tick(0);
        assert!(h.request(MemReq {
            id: 1,
            addr: 0x100,
            size: 64,
            is_store: false,
            kind: AccessKind::IFetch,
            port: PortId::LittleFetch(0),
        }));
        assert!(h.request(req(2, 0x4000, false, PortId::LittleData(0))));
        let s = h.stats();
        assert_eq!(s.ifetch_reqs, 1);
        assert_eq!(s.data_reqs, 1);
    }

    #[test]
    fn dve_port_has_line_bandwidth() {
        let mut cfg = HierConfig::with_little(0);
        cfg.has_dve = true;
        let mut h = MemHierarchy::new(cfg);
        h.tick(0);
        // Four line requests accepted in one cycle, fifth rejected.
        for i in 0..4 {
            let mut r = req(i, 0x1000 + i * 64, false, PortId::DveL2);
            r.size = 64;
            assert!(h.request(r), "request {i} rejected");
        }
        let mut r5 = req(9, 0x9000, false, PortId::DveL2);
        r5.size = 64;
        assert!(!h.request(r5));
        // All four eventually respond.
        let mut got = 0;
        for t in 1..1000 {
            h.tick(t);
            while h.pop_response(PortId::DveL2).is_some() {
                got += 1;
            }
            if got == 4 {
                break;
            }
        }
        assert_eq!(got, 4);
    }

    /// A quiescent hierarchy never does observable work before the cycle
    /// `next_event` reports: skipping straight to the event cycle must
    /// reproduce the naive tick-by-tick run exactly.
    #[test]
    fn next_event_skip_matches_naive_ticking() {
        let mut naive = MemHierarchy::new(HierConfig::with_little(2));
        naive.tick(0);
        assert!(naive.request(req(1, 0x4000, false, PortId::LittleData(0))));
        let mut skippy = naive.clone();

        let mut t_naive = 1;
        let naive_arrival = loop {
            naive.tick(t_naive);
            if naive.pop_response(PortId::LittleData(0)).is_some() {
                break t_naive;
            }
            t_naive += 1;
            assert!(t_naive < 400);
        };

        let mut t = 0u64;
        let skip_arrival = loop {
            let ev = skippy.next_event(t).expect("request in flight");
            assert!(ev >= t, "event {ev} in the past of {t}");
            t = ev.max(t + 1);
            skippy.tick(t);
            if skippy.pop_response(PortId::LittleData(0)).is_some() {
                break t;
            }
            assert!(t < 400);
        };
        assert_eq!(naive_arrival, skip_arrival);
        assert_eq!(naive.stats(), skippy.stats());
        assert_eq!(naive.dram_stats(), skippy.dram_stats());
        assert_eq!(naive.l2_stats(), skippy.l2_stats());
    }

    #[test]
    fn response_pending_reports_per_port() {
        let mut h = MemHierarchy::new(HierConfig::with_little(1));
        h.tick(0);
        assert!(h.request(req(1, 0x4000, false, PortId::LittleData(0))));
        run_until_response_peek(&mut h, PortId::LittleData(0));
        assert!(h.response_pending(PortId::LittleData(0)));
        assert!(!h.response_pending(PortId::LittleFetch(0)));
        h.pop_response(PortId::LittleData(0));
        assert!(!h.response_pending(PortId::LittleData(0)));
    }

    fn run_until_response_peek(h: &mut MemHierarchy, port: PortId) {
        for t in 1..400 {
            h.tick(t);
            if h.response_pending(port) {
                return;
            }
        }
        panic!("no response within 400 cycles");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "vector mode")]
    fn little_data_port_forbidden_in_vector_mode() {
        let mut h = MemHierarchy::new(HierConfig::with_little(2));
        h.set_vector_mode(true);
        h.tick(0);
        let _ = h.request(req(1, 0x0, false, PortId::LittleData(0)));
    }
}
