//! Synthetic input generators (seeded, deterministic).
//!
//! Substitutes for the benchmark suites' input files: dense vectors and
//! matrices, 2-D grids, option batches, particle tracks, DNA sequences and
//! R-MAT-style power-law graphs — the same *shapes* the paper's inputs
//! have, at configurable scale.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform `f32` values in `[lo, hi)`.
pub fn f32_vec(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Uniform `u32` values in `[0, bound)`.
pub fn u32_vec(seed: u64, n: usize, bound: u32) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

/// A random DNA sequence over {A, C, G, T} encoded as bytes 0..4.
pub fn dna(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..4u8)).collect()
}

/// A compressed-sparse-row graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// Row offsets, `vertices + 1` entries.
    pub offsets: Vec<u32>,
    /// Column indices (destination vertices), sorted per row.
    pub edges: Vec<u32>,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbours of `v`.
    pub fn neighbours(&self, v: usize) -> &[u32] {
        let s = self.offsets[v] as usize;
        let e = self.offsets[v + 1] as usize;
        &self.edges[s..e]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }
}

/// Generates an R-MAT-style power-law graph with `vertices` vertices and
/// roughly `vertices * degree` directed edges, symmetrized so every edge
/// appears in both directions (Ligra's inputs are symmetric), with
/// self-loops and duplicates removed.
///
/// # Panics
///
/// Panics if `vertices` is not a power of two (R-MAT requirement).
pub fn rmat(seed: u64, vertices: usize, degree: usize) -> CsrGraph {
    assert!(vertices.is_power_of_two(), "R-MAT needs 2^k vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let levels = vertices.trailing_zeros();
    let (a, b, c) = (0.57, 0.19, 0.19); // Graph500 parameters
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(vertices * degree);
    for _ in 0..vertices * degree {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // upper-left
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            pairs.push((u as u32, v as u32));
            pairs.push((v as u32, u as u32)); // symmetrize
        }
    }
    pairs.sort_unstable();
    pairs.dedup();

    let mut offsets = vec![0u32; vertices + 1];
    for &(u, _) in &pairs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..vertices {
        offsets[i + 1] += offsets[i];
    }
    let edges = pairs.iter().map(|&(_, v)| v).collect();
    CsrGraph { offsets, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(f32_vec(7, 16, 0.0, 1.0), f32_vec(7, 16, 0.0, 1.0));
        assert_eq!(u32_vec(7, 16, 100), u32_vec(7, 16, 100));
        assert_eq!(dna(7, 64), dna(7, 64));
        assert_eq!(rmat(7, 64, 4), rmat(7, 64, 4));
    }

    #[test]
    fn dna_alphabet() {
        assert!(dna(3, 1000).iter().all(|&b| b < 4));
    }

    #[test]
    fn rmat_is_valid_csr_and_symmetric() {
        let g = rmat(11, 128, 4);
        assert_eq!(g.offsets.len(), 129);
        assert_eq!(*g.offsets.last().unwrap() as usize, g.num_edges());
        // Monotone offsets.
        assert!(g.offsets.windows(2).all(|w| w[0] <= w[1]));
        // Symmetry: (u,v) implies (v,u).
        for u in 0..g.vertices() {
            for &v in g.neighbours(u) {
                assert!(
                    g.neighbours(v as usize).contains(&(u as u32)),
                    "missing reverse edge {v}->{u}"
                );
                assert_ne!(u as u32, v, "self loop");
            }
        }
        // Power-law-ish: max degree well above average.
        let avg = g.num_edges() / g.vertices();
        let max = (0..g.vertices()).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max > 2 * avg,
            "degree distribution too flat: max {max}, avg {avg}"
        );
    }
}
