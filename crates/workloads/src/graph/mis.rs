//! `mis` — maximal independent set, Luby's algorithm (Ligra).
//!
//! Vertices carry baked random priorities. Each round is two phases over
//! double-buffered state arrays (0 = undecided, 1 = in set, 2 = excluded):
//! *select* — an undecided vertex enters the set if its priority beats
//! every undecided neighbour's; *exclude* — an undecided vertex with a
//! selected neighbour is excluded. Round count precomputed.

use crate::gen;
use crate::graph::util::{self, PhaseSpec};
use crate::workload::{regs, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::XReg;
use bvl_mem::SimMemory;
use std::sync::Arc;

fn reference(g: &gen::CsrGraph, prio: &[u32]) -> (u64, Vec<u32>) {
    let v = g.vertices();
    let mut state = vec![0u32; v];
    let mut rounds = 0;
    loop {
        // select
        let mut sel = state.clone();
        for w in 0..v {
            if state[w] != 0 {
                continue;
            }
            let wins = g
                .neighbours(w)
                .iter()
                .all(|&u| state[u as usize] != 0 || prio[u as usize] < prio[w]);
            if wins {
                sel[w] = 1;
            }
        }
        // exclude
        let mut nxt = sel.clone();
        for w in 0..v {
            if sel[w] != 0 {
                continue;
            }
            if g.neighbours(w).iter().any(|&u| sel[u as usize] == 1) {
                nxt[w] = 2;
            }
        }
        rounds += 1;
        let done = nxt.iter().all(|&s| s != 0);
        state = nxt;
        if done {
            break;
        }
    }
    (rounds, state)
}

/// Builds `mis` at `scale`.
pub fn build(scale: Scale) -> Workload {
    let g = gen::rmat(
        scale.seed ^ 104,
        scale.vertices as usize,
        scale.degree as usize,
    );
    let v = g.vertices();
    // Distinct priorities: permuted indices hashed.
    let prio: Vec<u32> = {
        let mut p = gen::u32_vec(scale.seed ^ 105, v, u32::MAX);
        // Break ties deterministically by mixing the vertex id into the
        // low bits.
        for (i, x) in p.iter_mut().enumerate() {
            *x = (*x & !0xFFF) | (i as u32 & 0xFFF);
        }
        p
    };
    let (rounds, expect) = reference(&g, &prio);

    let mut mem = SimMemory::default();
    let gm = util::alloc_graph(&mut mem, &g);
    let prio_base = mem.alloc_u32(&prio);
    let st_a = mem.alloc(v as u64 * 4, 64);
    let st_b = mem.alloc(v as u64 * 4, 64);

    let t = regs::T;
    let (src_arg, dst_arg) = (regs::ARG2, regs::ARG3);

    let mut asm = Assembler::new();
    let mut specs = Vec::new();
    for _ in 0..rounds {
        // Each round round-trips: select reads st_a and writes st_b, then
        // exclude reads st_b and writes st_a — state always ends in st_a.
        specs.push(PhaseSpec {
            body: "select_body",
            args: vec![(src_arg, st_a), (dst_arg, st_b)],
        });
        specs.push(PhaseSpec {
            body: "exclude_body",
            args: vec![(src_arg, st_b), (dst_arg, st_a)],
        });
    }
    util::emit_phase_entries(&mut asm, &specs, gm.v);

    // select: dst[v] = (src[v]==0 && wins) ? 1 : src[v]
    util::emit_vertex_sweep(
        &mut asm,
        "select_body",
        &gm,
        |asm| {
            asm.slli(t[3], t[0], 2);
            asm.add(t[4], t[3], src_arg);
            asm.lw(t[5], t[4], 0); // my state
            asm.li(t[7], 1); // wins flag
            asm.li(t[6], prio_base as i64);
            asm.add(t[6], t[6], t[3]);
            asm.lw(t[6], t[6], 0); // my priority
        },
        |asm| {
            // undecided neighbour with priority >= mine -> lose
            asm.slli(regs::B[1], t[2], 2);
            asm.add(regs::B[2], regs::B[1], src_arg);
            asm.lw(regs::B[2], regs::B[2], 0);
            asm.bne(regs::B[2], XReg::ZERO, "mis_sel$dec"); // decided: skip
            asm.li(regs::B[3], prio_base as i64);
            asm.add(regs::B[3], regs::B[3], regs::B[1]);
            asm.lw(regs::B[3], regs::B[3], 0);
            asm.bltu(regs::B[3], t[6], "mis_sel$dec"); // lower prio: fine
            asm.li(t[7], 0);
            asm.label("mis_sel$dec");
        },
        |asm| {
            asm.add(t[4], t[3], dst_arg);
            asm.bne(t[5], XReg::ZERO, "mis_sel$copy");
            asm.beq(t[7], XReg::ZERO, "mis_sel$copy");
            asm.li(t[5], 1);
            asm.label("mis_sel$copy");
            asm.sw(t[5], t[4], 0);
        },
    );

    // exclude: dst[v] = (src[v]==0 && any neighbour src==1) ? 2 : src[v]
    util::emit_vertex_sweep(
        &mut asm,
        "exclude_body",
        &gm,
        |asm| {
            asm.slli(t[3], t[0], 2);
            asm.add(t[4], t[3], src_arg);
            asm.lw(t[5], t[4], 0);
            asm.li(t[7], 0); // neighbour-selected flag
        },
        |asm| {
            asm.slli(regs::B[1], t[2], 2);
            asm.add(regs::B[1], regs::B[1], src_arg);
            asm.lw(regs::B[1], regs::B[1], 0);
            asm.li(regs::B[2], 1);
            asm.bne(regs::B[1], regs::B[2], "mis_ex$n");
            asm.li(t[7], 1);
            asm.label("mis_ex$n");
        },
        |asm| {
            asm.add(t[4], t[3], dst_arg);
            asm.bne(t[5], XReg::ZERO, "mis_ex$copy");
            asm.beq(t[7], XReg::ZERO, "mis_ex$copy");
            asm.li(t[5], 2);
            asm.label("mis_ex$copy");
            asm.sw(t[5], t[4], 0);
        },
    );

    let program = Arc::new(asm.assemble().expect("mis assembles"));
    let chunk = (gm.v / 16).max(16);
    let phases = util::make_phase_tasks(&program, gm.v, chunk, &specs);
    // After `rounds` full rounds, state lives in the buffer written by the
    // last exclude phase: st_a if rounds odd... exclude of round r writes
    // the buffer select read from. Round r: select a->b, exclude b->a, so
    // every round ends back in its starting buffer: st_a always.
    let final_base = st_a;

    Workload {
        name: "mis",
        class: WorkloadClass::TaskParallel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: None,
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let got = m.read_u32_array(final_base, expect.len());
            if got == expect {
                Ok(())
            } else {
                let i = got
                    .iter()
                    .zip(&expect)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                Err(format!(
                    "mis mismatch at {i}: got {} want {}",
                    got[i], expect[i]
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil;

    #[test]
    fn reference_is_maximal_and_independent() {
        let g = gen::rmat(13, 64, 4);
        let prio = gen::u32_vec(14, 64, u32::MAX);
        let (_, state) = reference(&g, &prio);
        for v in 0..g.vertices() {
            assert_ne!(state[v], 0, "vertex {v} undecided");
            if state[v] == 1 {
                for &u in g.neighbours(v) {
                    assert_ne!(state[u as usize], 1, "adjacent {v},{u} both in MIS");
                }
            } else {
                assert!(
                    g.neighbours(v).iter().any(|&u| state[u as usize] == 1),
                    "excluded {v} has no selected neighbour (not maximal)"
                );
            }
        }
    }

    #[test]
    fn serial_matches_reference() {
        testutil::check_serial(|| build(Scale::tiny()));
    }

    #[test]
    fn phases_match_reference() {
        testutil::check_phases(|| build(Scale::tiny()));
    }
}
