//! `bfs` — breadth-first search from vertex 0 (Ligra).
//!
//! Level-synchronous, bottom-up style: in round `it`, every unvisited
//! vertex adopts level `it` if any neighbour carries level `it − 1`. One
//! barrier-delimited phase per BFS level (phase count precomputed from the
//! reference traversal), each a vertex-range `parallel_for`.

use crate::gen;
use crate::graph::util::{self, PhaseArgs};
use crate::workload::{regs, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::XReg;
use bvl_mem::SimMemory;
use std::sync::Arc;

/// "Unvisited" sentinel level.
const INF: u32 = u32::MAX;

/// Reference BFS levels from vertex 0.
pub(crate) fn reference_levels(g: &gen::CsrGraph) -> Vec<u32> {
    let mut levels = vec![INF; g.vertices()];
    levels[0] = 0;
    let mut frontier = vec![0usize];
    let mut lvl = 0;
    while !frontier.is_empty() {
        lvl += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.neighbours(v) {
                if levels[u as usize] == INF {
                    levels[u as usize] = lvl;
                    next.push(u as usize);
                }
            }
        }
        frontier = next;
    }
    levels
}

/// Builds `bfs` at `scale`.
pub fn build(scale: Scale) -> Workload {
    let g = gen::rmat(
        scale.seed ^ 100,
        scale.vertices as usize,
        scale.degree as usize,
    );
    let expect = reference_levels(&g);
    let max_level = expect
        .iter()
        .filter(|&&l| l != INF)
        .max()
        .copied()
        .unwrap_or(0);

    let mut mem = SimMemory::default();
    let gm = util::alloc_graph(&mut mem, &g);
    let mut init = vec![INF; g.vertices()];
    init[0] = 0;
    let levels = mem.alloc_u32(&init);

    let t = regs::T;
    let bs = regs::B;
    let it_arg = regs::ARG2;

    let mut asm = Assembler::new();
    let phase_args: PhaseArgs = (1..=max_level)
        .map(|it| vec![(it_arg, u64::from(it))])
        .collect();
    util::emit_entries(&mut asm, "body", &phase_args, gm.v);
    util::emit_vertex_sweep(
        &mut asm,
        "body",
        &gm,
        // per-vertex: remember the current level (t[5]); t[3] = found flag.
        // `lw` sign-extends, so INF (0xFFFF_FFFF) reads back as -1.
        |asm| {
            asm.li(t[3], 0);
            asm.li(bs[1], levels as i64);
            asm.slli(t[4], t[0], 2);
            asm.add(bs[1], bs[1], t[4]);
            asm.lw(t[5], bs[1], 0);
            asm.li(t[6], -1);
        },
        // per-edge: found |= (levels[u] == it - 1)
        |asm| {
            asm.li(bs[2], levels as i64);
            asm.slli(t[4], t[2], 2);
            asm.add(bs[2], bs[2], t[4]);
            asm.lw(t[4], bs[2], 0);
            asm.addi(t[7], it_arg, -1);
            asm.bne(t[4], t[7], "bfs$skip");
            asm.li(t[3], 1);
            asm.label("bfs$skip");
        },
        // finalize: if unvisited && found -> levels[v] = it
        |asm| {
            asm.bne(t[5], t[6], "bfs$visited");
            asm.beq(t[3], XReg::ZERO, "bfs$visited");
            asm.sw(it_arg, bs[1], 0);
            asm.label("bfs$visited");
        },
    );

    let program = Arc::new(asm.assemble().expect("bfs assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let chunk = (gm.v / 16).max(16);
    let phases = util::make_phases(scalar_pc, gm.v, chunk, &phase_args);

    Workload {
        name: "bfs",
        class: WorkloadClass::TaskParallel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: None,
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let got = m.read_u32_array(levels, expect.len());
            if got == expect {
                Ok(())
            } else {
                let i = got
                    .iter()
                    .zip(&expect)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                Err(format!(
                    "bfs mismatch at {i}: got {} want {}",
                    got[i], expect[i]
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil;

    #[test]
    fn reference_levels_are_consistent() {
        let g = gen::rmat(5, 64, 4);
        let l = reference_levels(&g);
        assert_eq!(l[0], 0);
        for v in 0..g.vertices() {
            if l[v] != INF && l[v] != 0 {
                assert!(
                    g.neighbours(v).iter().any(|&u| l[u as usize] == l[v] - 1),
                    "vertex {v} has no predecessor"
                );
            }
        }
    }

    #[test]
    fn serial_matches_reference() {
        testutil::check_serial(|| build(Scale::tiny()));
    }

    #[test]
    fn phases_match_reference() {
        testutil::check_phases(|| build(Scale::tiny()));
    }
}
