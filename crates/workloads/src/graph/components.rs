//! `components` — connected components by label propagation (Ligra).
//!
//! Every vertex starts labelled with its own id; each round takes the
//! minimum label over itself and its neighbours (double-buffered). Rounds
//! continue until a fixpoint, with the round count precomputed from the
//! reference propagation.

use crate::gen;
use crate::graph::util::{self, PhaseSpec};
use crate::workload::{regs, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_mem::SimMemory;
use std::sync::Arc;

fn reference_rounds(g: &gen::CsrGraph) -> (Vec<Vec<u32>>, Vec<u32>) {
    let v = g.vertices();
    let mut cur: Vec<u32> = (0..v as u32).collect();
    let mut states = vec![cur.clone()];
    loop {
        let mut nxt = cur.clone();
        for (w, label) in nxt.iter_mut().enumerate() {
            for &u in g.neighbours(w) {
                *label = (*label).min(cur[u as usize]);
            }
        }
        if nxt == cur {
            break;
        }
        states.push(nxt.clone());
        cur = nxt;
    }
    (states, cur)
}

/// Builds `components` at `scale`.
pub fn build(scale: Scale) -> Workload {
    let g = gen::rmat(
        scale.seed ^ 102,
        scale.vertices as usize,
        scale.degree as usize,
    );
    let (states, expect) = reference_rounds(&g);
    let rounds = (states.len() - 1) as u64;

    let mut mem = SimMemory::default();
    let gm = util::alloc_graph(&mut mem, &g);
    let init: Vec<u32> = (0..g.vertices() as u32).collect();
    let lab_a = mem.alloc_u32(&init);
    let lab_b = mem.alloc_u32(&init);

    let t = regs::T;
    let (src_arg, dst_arg) = (regs::ARG2, regs::ARG3);

    let mut asm = Assembler::new();
    let specs: Vec<PhaseSpec> = (0..rounds)
        .map(|r| {
            let (s, d) = if r % 2 == 0 {
                (lab_a, lab_b)
            } else {
                (lab_b, lab_a)
            };
            PhaseSpec {
                body: "cc_body",
                args: vec![(src_arg, s), (dst_arg, d)],
            }
        })
        .collect();
    util::emit_phase_entries(&mut asm, &specs, gm.v);

    util::emit_vertex_sweep(
        &mut asm,
        "cc_body",
        &gm,
        // per-vertex: best = src[v]
        |asm| {
            asm.slli(t[3], t[0], 2);
            asm.add(t[4], t[3], src_arg);
            asm.lw(t[5], t[4], 0);
        },
        // per-edge: best = min(best, src[u])
        |asm| {
            asm.slli(t[4], t[2], 2);
            asm.add(t[4], t[4], src_arg);
            asm.lw(t[6], t[4], 0);
            asm.bge(t[6], t[5], "cc$keep");
            asm.mv(t[5], t[6]);
            asm.label("cc$keep");
        },
        // finalize: dst[v] = best
        |asm| {
            asm.add(t[4], t[3], dst_arg);
            asm.sw(t[5], t[4], 0);
        },
    );

    let program = Arc::new(asm.assemble().expect("components assembles"));
    let chunk = (gm.v / 16).max(16);
    let phases = util::make_phase_tasks(&program, gm.v, chunk, &specs);
    let final_base = if rounds.is_multiple_of(2) {
        lab_a
    } else {
        lab_b
    };

    Workload {
        name: "components",
        class: WorkloadClass::TaskParallel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: None,
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let got = m.read_u32_array(final_base, expect.len());
            if got == expect {
                Ok(())
            } else {
                let i = got
                    .iter()
                    .zip(&expect)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                Err(format!(
                    "components mismatch at {i}: got {} want {}",
                    got[i], expect[i]
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil;

    #[test]
    fn reference_converges_to_component_minima() {
        let g = gen::rmat(9, 64, 4);
        let (_, labels) = reference_rounds(&g);
        // Every vertex's label equals the minimum label among its
        // neighbours and itself (fixpoint property).
        for v in 0..g.vertices() {
            for &u in g.neighbours(v) {
                assert_eq!(labels[v].min(labels[u as usize]), labels[v]);
            }
        }
    }

    #[test]
    fn serial_matches_reference() {
        testutil::check_serial(|| build(Scale::tiny()));
    }

    #[test]
    fn phases_match_reference() {
        testutil::check_phases(|| build(Scale::tiny()));
    }
}
