//! `kcore` — k-core decomposition by iterative peeling (Ligra).
//!
//! A vertex stays alive while it has at least `K` alive neighbours; each
//! round recomputes alive-degrees over double-buffered alive flags until a
//! fixpoint. `K` is set to the graph's average degree, so a non-trivial
//! core survives. Round count precomputed.

use crate::gen;
use crate::graph::util::{self, PhaseSpec};
use crate::workload::{regs, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::XReg;
use bvl_mem::SimMemory;
use std::sync::Arc;

fn reference(g: &gen::CsrGraph, k: u32) -> (u64, Vec<u32>) {
    let v = g.vertices();
    let mut alive = vec![1u32; v];
    let mut rounds = 0;
    loop {
        rounds += 1;
        let nxt: Vec<u32> = (0..v)
            .map(|w| {
                if alive[w] == 0 {
                    return 0;
                }
                let d: u32 = g.neighbours(w).iter().map(|&u| alive[u as usize]).sum();
                u32::from(d >= k)
            })
            .collect();
        if nxt == alive {
            break;
        }
        alive = nxt;
    }
    (rounds, alive)
}

/// Builds `kcore` at `scale`.
pub fn build(scale: Scale) -> Workload {
    let g = gen::rmat(
        scale.seed ^ 106,
        scale.vertices as usize,
        scale.degree as usize,
    );
    let v = g.vertices();
    let k = ((g.num_edges() / v) as u32).max(2);
    let (rounds, expect) = reference(&g, k);

    let mut mem = SimMemory::default();
    let gm = util::alloc_graph(&mut mem, &g);
    let alive_a = mem.alloc_u32(&vec![1u32; v]);
    let alive_b = mem.alloc_u32(&vec![1u32; v]);

    let t = regs::T;
    let (src_arg, dst_arg) = (regs::ARG2, regs::ARG3);

    let mut asm = Assembler::new();
    let specs: Vec<PhaseSpec> = (0..rounds)
        .map(|r| {
            let (s, d) = if r % 2 == 0 {
                (alive_a, alive_b)
            } else {
                (alive_b, alive_a)
            };
            PhaseSpec {
                body: "kcore_body",
                args: vec![(src_arg, s), (dst_arg, d)],
            }
        })
        .collect();
    util::emit_phase_entries(&mut asm, &specs, gm.v);

    util::emit_vertex_sweep(
        &mut asm,
        "kcore_body",
        &gm,
        |asm| {
            asm.slli(t[3], t[0], 2);
            asm.add(t[4], t[3], src_arg);
            asm.lw(t[5], t[4], 0); // my alive flag
            asm.li(t[7], 0); // alive-degree
        },
        |asm| {
            asm.slli(t[4], t[2], 2);
            asm.add(t[4], t[4], src_arg);
            asm.lw(t[6], t[4], 0);
            asm.add(t[7], t[7], t[6]);
        },
        |asm| {
            // dst[v] = alive && deg >= k
            asm.li(t[6], i64::from(k));
            asm.li(t[4], 0);
            asm.beq(t[5], XReg::ZERO, "kc$dead");
            asm.blt(t[7], t[6], "kc$dead");
            asm.li(t[4], 1);
            asm.label("kc$dead");
            asm.add(t[6], t[3], dst_arg);
            asm.sw(t[4], t[6], 0);
        },
    );

    let program = Arc::new(asm.assemble().expect("kcore assembles"));
    let chunk = (gm.v / 16).max(16);
    let phases = util::make_phase_tasks(&program, gm.v, chunk, &specs);
    let final_base = if rounds % 2 == 0 { alive_a } else { alive_b };

    Workload {
        name: "kcore",
        class: WorkloadClass::TaskParallel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: None,
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let got = m.read_u32_array(final_base, expect.len());
            if got == expect {
                Ok(())
            } else {
                let i = got
                    .iter()
                    .zip(&expect)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                Err(format!(
                    "kcore mismatch at {i}: got {} want {}",
                    got[i], expect[i]
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil;

    #[test]
    fn reference_fixpoint_property() {
        let g = gen::rmat(15, 128, 4);
        let k = 3;
        let (_, alive) = reference(&g, k);
        for v in 0..g.vertices() {
            let d: u32 = g.neighbours(v).iter().map(|&u| alive[u as usize]).sum();
            if alive[v] == 1 {
                assert!(d >= k, "alive vertex {v} below k");
            }
        }
    }

    #[test]
    fn serial_matches_reference() {
        testutil::check_serial(|| build(Scale::tiny()));
    }

    #[test]
    fn phases_match_reference() {
        testutil::check_phases(|| build(Scale::tiny()));
    }
}
