//! `bc` — Brandes-style betweenness centrality from one source (Ligra).
//!
//! Forward pass: level-synchronous shortest-path counting
//! (`sigma[v] = Σ sigma[u]` over predecessors, one phase per BFS level);
//! backward pass: dependency accumulation
//! (`delta[v] = Σ sigma[v]/sigma[w] · (1 + delta[w])` over successors, one
//! phase per level from the deepest inward). BFS levels are baked into
//! memory (computed by the reference traversal, exactly what a prior `bfs`
//! run produces).

use crate::gen;
use crate::graph::bfs::reference_levels;
use crate::graph::util::{self, PhaseSpec};
use crate::workload::{regs, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::XReg;
use bvl_mem::SimMemory;
use std::sync::Arc;

fn reference(g: &gen::CsrGraph, levels: &[u32]) -> (Vec<u32>, Vec<f32>) {
    let v = g.vertices();
    let max_level = levels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    let mut sigma = vec![0u32; v];
    sigma[0] = 1;
    for lvl in 1..=max_level {
        let snapshot = sigma.clone();
        for w in 0..v {
            if levels[w] != lvl {
                continue;
            }
            let mut s = 0u32;
            for &u in g.neighbours(w) {
                if levels[u as usize] == lvl - 1 {
                    s = s.wrapping_add(snapshot[u as usize]);
                }
            }
            sigma[w] = s;
        }
    }
    let mut delta = vec![0f32; v];
    for lvl in (0..max_level).rev() {
        let snapshot = delta.clone();
        for w in 0..v {
            if levels[w] != lvl {
                continue;
            }
            let mut d = 0f32;
            for &u in g.neighbours(w) {
                let u = u as usize;
                if levels[u] == lvl + 1 && sigma[u] != 0 {
                    let ratio = sigma[w] as f32 / sigma[u] as f32;
                    d += ratio * (1.0 + snapshot[u]);
                }
            }
            delta[w] = d;
        }
    }
    (sigma, delta)
}

/// Builds `bc` at `scale`.
pub fn build(scale: Scale) -> Workload {
    let g = gen::rmat(
        scale.seed ^ 107,
        scale.vertices as usize,
        scale.degree as usize,
    );
    let levels = reference_levels(&g);
    let max_level = levels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    let (expect_sigma, expect_delta) = reference(&g, &levels);

    let mut mem = SimMemory::default();
    let gm = util::alloc_graph(&mut mem, &g);
    let lvl_base = mem.alloc_u32(&levels);
    let mut sigma_init = vec![0u32; g.vertices()];
    sigma_init[0] = 1;
    let sigma_base = mem.alloc_u32(&sigma_init);
    // Snapshot buffers (the per-level clone in the reference).
    let sigma_snap = mem.alloc_u32(&sigma_init);
    let delta_base = mem.alloc(g.vertices() as u64 * 4, 64);
    let delta_snap = mem.alloc(g.vertices() as u64 * 4, 64);
    let one_c = mem.alloc_f32(&[1.0]);

    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let lvl_arg = regs::ARG2;

    let mut asm = Assembler::new();
    let mut specs = Vec::new();
    for lvl in 1..=max_level {
        // Copy phase (snapshot) then compute phase.
        specs.push(PhaseSpec {
            body: "copy_sigma_body",
            args: vec![],
        });
        specs.push(PhaseSpec {
            body: "sigma_body",
            args: vec![(lvl_arg, u64::from(lvl))],
        });
    }
    for lvl in (0..max_level).rev() {
        specs.push(PhaseSpec {
            body: "copy_delta_body",
            args: vec![],
        });
        specs.push(PhaseSpec {
            body: "delta_body",
            args: vec![(lvl_arg, u64::from(lvl))],
        });
    }
    util::emit_phase_entries(&mut asm, &specs, gm.v);

    // copy bodies: snapshot <- live, vertex range.
    for (label, src, dst) in [
        ("copy_sigma_body", sigma_base, sigma_snap),
        ("copy_delta_body", delta_base, delta_snap),
    ] {
        asm.label(label);
        asm.mv(t[0], regs::START);
        let l = format!("{label}$l");
        let r = format!("{label}$r");
        asm.label(l.clone());
        asm.bge(t[0], regs::END, r.clone());
        asm.slli(t[1], t[0], 2);
        asm.li(bs[0], src as i64);
        asm.add(bs[0], bs[0], t[1]);
        asm.lw(t[2], bs[0], 0);
        asm.li(bs[1], dst as i64);
        asm.add(bs[1], bs[1], t[1]);
        asm.sw(t[2], bs[1], 0);
        asm.addi(t[0], t[0], 1);
        asm.j(l);
        asm.label(r);
        asm.jalr(XReg::ZERO, XReg::RA, 0);
    }

    // sigma_body: for v at level `lvl`, sum snapshot sigma of
    // level-(lvl-1) neighbours.
    util::emit_vertex_sweep(
        &mut asm,
        "sigma_body",
        &gm,
        |asm| {
            asm.slli(t[3], t[0], 2);
            asm.li(t[4], lvl_base as i64);
            asm.add(t[4], t[4], t[3]);
            asm.lw(t[5], t[4], 0); // my level
            asm.li(t[7], 0); // sum
        },
        |asm| {
            asm.slli(t[4], t[2], 2);
            asm.li(t[6], lvl_base as i64);
            asm.add(t[6], t[6], t[4]);
            asm.lw(t[6], t[6], 0);
            asm.addi(regs::B[1], lvl_arg, -1);
            asm.bne(t[6], regs::B[1], "bc_s$skip");
            asm.li(t[6], sigma_snap as i64);
            asm.add(t[6], t[6], t[4]);
            asm.lw(t[6], t[6], 0);
            asm.add(t[7], t[7], t[6]);
            asm.label("bc_s$skip");
        },
        |asm| {
            asm.bne(t[5], lvl_arg, "bc_s$notme");
            asm.li(t[4], sigma_base as i64);
            asm.add(t[4], t[4], t[3]);
            asm.sw(t[7], t[4], 0);
            asm.label("bc_s$notme");
        },
    );

    // delta_body: for v at level `lvl`, accumulate from level-(lvl+1)
    // successors: delta[v] += sigma[v]/sigma[u] * (1 + delta_snap[u]).
    util::emit_vertex_sweep(
        &mut asm,
        "delta_body",
        &gm,
        |asm| {
            asm.slli(t[3], t[0], 2);
            asm.li(t[4], lvl_base as i64);
            asm.add(t[4], t[4], t[3]);
            asm.lw(t[5], t[4], 0); // my level
            asm.li(t[4], sigma_base as i64);
            asm.add(t[4], t[4], t[3]);
            asm.lw(t[7], t[4], 0); // my sigma
            asm.fmv_w_x(ft[0], XReg::ZERO); // acc
            asm.li(t[4], one_c as i64);
            asm.flw(ft[5], t[4], 0);
        },
        |asm| {
            asm.slli(t[4], t[2], 2);
            asm.li(t[6], lvl_base as i64);
            asm.add(t[6], t[6], t[4]);
            asm.lw(t[6], t[6], 0);
            asm.addi(regs::B[1], lvl_arg, 1);
            asm.bne(t[6], regs::B[1], "bc_d$skip");
            asm.li(t[6], sigma_base as i64);
            asm.add(t[6], t[6], t[4]);
            asm.lw(t[6], t[6], 0); // sigma[u]
            asm.beq(t[6], XReg::ZERO, "bc_d$skip");
            // ratio = sigma[v] / sigma[u]
            asm.fcvt_s_w(ft[1], t[7]);
            asm.fcvt_s_w(ft[2], t[6]);
            asm.fdiv_s(ft[1], ft[1], ft[2]);
            // 1 + delta_snap[u]
            asm.li(t[6], delta_snap as i64);
            asm.add(t[6], t[6], t[4]);
            asm.flw(ft[2], t[6], 0);
            asm.fadd_s(ft[2], ft[2], ft[5]);
            // acc += ratio * term (unfused, as in the reference)
            asm.fmul_s(ft[1], ft[1], ft[2]);
            asm.fadd_s(ft[0], ft[0], ft[1]);
            asm.label("bc_d$skip");
        },
        |asm| {
            asm.bne(t[5], lvl_arg, "bc_d$notme");
            asm.li(t[4], delta_base as i64);
            asm.add(t[4], t[4], t[3]);
            asm.fsw(ft[0], t[4], 0);
            asm.label("bc_d$notme");
        },
    );

    let program = Arc::new(asm.assemble().expect("bc assembles"));
    let chunk = (gm.v / 16).max(16);
    let phases = util::make_phase_tasks(&program, gm.v, chunk, &specs);

    Workload {
        name: "bc",
        class: WorkloadClass::TaskParallel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: None,
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let gs = m.read_u32_array(sigma_base, expect_sigma.len());
            if gs != expect_sigma {
                let i = gs
                    .iter()
                    .zip(&expect_sigma)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                return Err(format!(
                    "bc sigma mismatch at {i}: got {} want {}",
                    gs[i], expect_sigma[i]
                ));
            }
            let gd = m.read_f32_array(delta_base, expect_delta.len());
            for (i, (&g, &e)) in gd.iter().zip(&expect_delta).enumerate() {
                if g.to_bits() != e.to_bits() {
                    return Err(format!("bc delta mismatch at {i}: got {g} want {e}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil;

    #[test]
    fn sigma_counts_shortest_paths_on_a_path_graph() {
        // Manual 4-cycle: 0-1, 1-2, 2-3, 3-0.
        let g = gen::CsrGraph {
            offsets: vec![0, 2, 4, 6, 8],
            edges: vec![1, 3, 0, 2, 1, 3, 0, 2],
        };
        let levels = reference_levels(&g);
        let (sigma, _) = reference(&g, &levels);
        assert_eq!(sigma[0], 1);
        assert_eq!(sigma[1], 1);
        assert_eq!(sigma[3], 1);
        assert_eq!(sigma[2], 2); // two shortest paths to the far corner
    }

    #[test]
    fn serial_matches_reference() {
        testutil::check_serial(|| build(Scale::tiny()));
    }

    #[test]
    fn phases_match_reference() {
        testutil::check_phases(|| build(Scale::tiny()));
    }
}
