//! `pagerank` — power iteration (Ligra).
//!
//! Each iteration is two barrier-delimited phases: (1) per-vertex
//! contribution `contrib[v] = rank[v] / deg[v]`, then (2) per-vertex
//! gather `rank'[v] = (1−d)/V + d · Σ contrib[u]` over neighbours. Ranks
//! double-buffer across iterations.

use crate::gen;
use crate::graph::util::{self, PhaseSpec};
use crate::workload::{regs, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{FReg, XReg};
use bvl_mem::SimMemory;
use std::sync::Arc;

/// Damping factor.
const D: f32 = 0.85;

/// Builds `pagerank` at `scale` (`scale.iters` iterations).
pub fn build(scale: Scale) -> Workload {
    let g = gen::rmat(
        scale.seed ^ 101,
        scale.vertices as usize,
        scale.degree as usize,
    );
    let v = g.vertices();
    let iters = scale.iters;
    let init_rank = 1.0f32 / v as f32;
    let base_term = (1.0 - D) / v as f32;

    let mut mem = SimMemory::default();
    let gm = util::alloc_graph(&mut mem, &g);
    let rank_a = mem.alloc_f32(&vec![init_rank; v]);
    let rank_b = mem.alloc(v as u64 * 4, 64);
    let contrib = mem.alloc(v as u64 * 4, 64);
    let consts = mem.alloc_f32(&[D, base_term]);

    // Reference with identical op order.
    let mut cur = vec![init_rank; v];
    for _ in 0..iters {
        let contribs: Vec<f32> = (0..v)
            .map(|u| {
                let deg = g.degree(u);
                if deg == 0 {
                    0.0
                } else {
                    cur[u] / deg as f32
                }
            })
            .collect();
        let mut nxt = vec![0f32; v];
        for (w, n) in nxt.iter_mut().enumerate() {
            let mut sum = 0f32;
            for &u in g.neighbours(w) {
                sum += contribs[u as usize];
            }
            *n = sum.mul_add(D, base_term);
        }
        cur = nxt;
    }
    let expect = cur;
    let final_base = if iters.is_multiple_of(2) {
        rank_a
    } else {
        rank_b
    };

    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let (src_arg, dst_arg) = (regs::ARG2, regs::ARG3);
    let (fd, fbase) = (FReg::new(7), FReg::new(8));

    let mut asm = Assembler::new();

    // Phase sequence: per iteration, contrib(src=rank_x) then
    // gather(src=contrib, dst=rank_y).
    let mut specs: Vec<PhaseSpec> = Vec::new();
    for it in 0..iters {
        let (ra, rb) = if it % 2 == 0 {
            (rank_a, rank_b)
        } else {
            (rank_b, rank_a)
        };
        specs.push(PhaseSpec {
            body: "contrib_body",
            args: vec![(src_arg, ra), (dst_arg, contrib)],
        });
        specs.push(PhaseSpec {
            body: "gather_body",
            args: vec![(src_arg, contrib), (dst_arg, rb)],
        });
    }
    util::emit_phase_entries(&mut asm, &specs, gm.v);

    // contrib_body: contrib[v] = deg ? rank[v]/deg : 0 (no edge loop).
    asm.label("contrib_body");
    asm.mv(t[0], regs::START);
    asm.label("cb$v");
    asm.bge(t[0], regs::END, "cb$ret");
    asm.li(bs[0], gm.offsets as i64);
    asm.slli(t[1], t[0], 2);
    asm.add(bs[0], bs[0], t[1]);
    asm.lw(t[2], bs[0], 4);
    asm.lw(t[3], bs[0], 0);
    asm.sub(t[2], t[2], t[3]); // deg
    asm.add(bs[1], src_arg, t[1]);
    asm.flw(ft[0], bs[1], 0); // rank[v]
    asm.fmv_w_x(ft[1], XReg::ZERO);
    asm.beq(t[2], XReg::ZERO, "cb$zero");
    asm.fcvt_s_w(ft[1], t[2]);
    asm.fdiv_s(ft[1], ft[0], ft[1]);
    asm.label("cb$zero");
    asm.add(bs[2], dst_arg, t[1]);
    asm.fsw(ft[1], bs[2], 0);
    asm.addi(t[0], t[0], 1);
    asm.j("cb$v");
    asm.label("cb$ret");
    asm.jalr(XReg::ZERO, XReg::RA, 0);

    // gather_body: rank'[v] = fma(sum, D, base).
    asm.li(t[5], consts as i64); // (unreachable preamble guard)
    util::emit_vertex_sweep(
        &mut asm,
        "gather_body",
        &gm,
        |asm| {
            asm.li(t[5], consts as i64);
            asm.flw(fd, t[5], 0);
            asm.flw(fbase, t[5], 4);
            asm.fmv_w_x(ft[0], XReg::ZERO); // sum
        },
        |asm| {
            asm.slli(t[4], t[2], 2);
            asm.add(t[4], t[4], src_arg);
            asm.flw(ft[1], t[4], 0);
            asm.fadd_s(ft[0], ft[0], ft[1]);
        },
        |asm| {
            asm.fmadd_s(ft[0], ft[0], fd, fbase);
            asm.slli(t[4], t[0], 2);
            asm.add(t[4], t[4], dst_arg);
            asm.fsw(ft[0], t[4], 0);
        },
    );

    let program = Arc::new(asm.assemble().expect("pagerank assembles"));
    let chunk = (gm.v / 16).max(16);
    let phases = util::make_phase_tasks(&program, gm.v, chunk, &specs);

    Workload {
        name: "pagerank",
        class: WorkloadClass::TaskParallel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: None,
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let got = m.read_f32_array(final_base, expect.len());
            for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                if g.to_bits() != e.to_bits() {
                    return Err(format!("pagerank mismatch at {i}: got {g} want {e}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil;

    #[test]
    fn serial_matches_reference() {
        testutil::check_serial(|| build(Scale::tiny()));
    }

    #[test]
    fn phases_match_reference() {
        testutil::check_phases(|| build(Scale::tiny()));
    }

    #[test]
    fn two_phases_per_iteration() {
        let w = build(Scale::tiny());
        assert_eq!(w.phases.len() as u64, 2 * Scale::tiny().iters);
    }
}
