//! `trianglecount` — triangle counting by sorted-adjacency intersection
//! (Ligra).
//!
//! For every vertex `v` and neighbour `u > v`, counts common neighbours
//! `w > u` by merging the two sorted adjacency lists — each triangle is
//! counted exactly once at its smallest vertex. One parallel phase over
//! vertices plus a single-task reduction phase summing the per-vertex
//! counts.

use crate::gen;
use crate::graph::util::{self, PhaseSpec};
use crate::workload::{regs, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::XReg;
use bvl_mem::SimMemory;
use std::sync::Arc;

fn reference(g: &gen::CsrGraph) -> (Vec<u32>, u32) {
    let v = g.vertices();
    let mut counts = vec![0u32; v];
    for (a, count) in counts.iter_mut().enumerate() {
        let na = g.neighbours(a);
        for &b in na {
            let b = b as usize;
            if b <= a {
                continue;
            }
            let nb = g.neighbours(b);
            // merge: common neighbours w with w > b
            let (mut i, mut j) = (0, 0);
            while i < na.len() && j < nb.len() {
                let (x, y) = (na[i], nb[j]);
                if x <= b as u32 {
                    i += 1;
                } else if y <= b as u32 {
                    j += 1;
                } else if x == y {
                    *count += 1;
                    i += 1;
                    j += 1;
                } else if x < y {
                    i += 1;
                } else {
                    j += 1;
                }
            }
        }
    }
    let total = counts.iter().sum();
    (counts, total)
}

/// Builds `trianglecount` at `scale`.
pub fn build(scale: Scale) -> Workload {
    let g = gen::rmat(
        scale.seed ^ 108,
        scale.vertices as usize,
        scale.degree as usize,
    );
    let (expect_counts, expect_total) = reference(&g);

    let mut mem = SimMemory::default();
    let gm = util::alloc_graph(&mut mem, &g);
    let counts = mem.alloc(gm.v * 4, 64);
    let total_out = mem.alloc(4, 4);

    let t = regs::T;
    let bs = regs::B;

    let mut asm = Assembler::new();
    let specs = vec![
        PhaseSpec {
            body: "tc_body",
            args: vec![],
        },
        PhaseSpec {
            body: "sum_body",
            args: vec![],
        },
    ];
    util::emit_phase_entries(&mut asm, &specs, gm.v);

    // tc_body: per vertex a in [START, END): count triangles anchored at a.
    // Register plan: t0=a, t1=i (edge idx within a's list), bs0=&edges[.]
    // via the sweep; inside per-edge: t2=b, then a full merge loop over
    // (na, nb) using bs[1..4]/t[3..7].
    util::emit_vertex_sweep(
        &mut asm,
        "tc_body",
        &gm,
        |asm| {
            asm.li(t[3], 0); // triangle count for a
        },
        |asm| {
            // b = t[2]; skip unless b > a
            asm.bge(t[0], t[2], "tc$next");
            // i ptr = current a-list position is bs[0]; we need the whole
            // a-list again for the merge: recompute its bounds.
            asm.li(bs[1], gm.offsets as i64);
            asm.slli(t[4], t[0], 2);
            asm.add(bs[1], bs[1], t[4]);
            asm.lw(t[5], bs[1], 0); // a start
            asm.lw(t[6], bs[1], 4); // a end
            asm.li(bs[1], gm.offsets as i64);
            asm.slli(t[4], t[2], 2);
            asm.add(bs[1], bs[1], t[4]);
            asm.lw(t[7], bs[1], 0); // b start
            asm.lw(t[4], bs[1], 4); // b end
                                    // pointers: bs[2] = &edges[a_i], bs[3] = &edges[b_j];
                                    // limits: bs[4] = &edges[a_end], bs[5] = &edges[b_end]
            asm.li(bs[1], gm.edges as i64);
            asm.slli(t[5], t[5], 2);
            asm.add(bs[2], bs[1], t[5]);
            asm.slli(t[6], t[6], 2);
            asm.add(bs[4], bs[1], t[6]);
            asm.slli(t[7], t[7], 2);
            asm.add(bs[3], bs[1], t[7]);
            asm.slli(t[4], t[4], 2);
            asm.add(bs[5], bs[1], t[4]);
            asm.label("tc$merge");
            asm.bge(bs[2], bs[4], "tc$next");
            asm.bge(bs[3], bs[5], "tc$next");
            asm.lw(t[4], bs[2], 0); // x
            asm.lw(t[5], bs[3], 0); // y
                                    // skip elements <= b
            asm.blt(t[2], t[4], "tc$x_ok");
            asm.addi(bs[2], bs[2], 4);
            asm.j("tc$merge");
            asm.label("tc$x_ok");
            asm.blt(t[2], t[5], "tc$y_ok");
            asm.addi(bs[3], bs[3], 4);
            asm.j("tc$merge");
            asm.label("tc$y_ok");
            asm.bne(t[4], t[5], "tc$neq");
            asm.addi(t[3], t[3], 1); // triangle!
            asm.addi(bs[2], bs[2], 4);
            asm.addi(bs[3], bs[3], 4);
            asm.j("tc$merge");
            asm.label("tc$neq");
            asm.blt(t[4], t[5], "tc$xlt");
            asm.addi(bs[3], bs[3], 4);
            asm.j("tc$merge");
            asm.label("tc$xlt");
            asm.addi(bs[2], bs[2], 4);
            asm.j("tc$merge");
            asm.label("tc$next");
        },
        |asm| {
            asm.li(bs[1], counts as i64);
            asm.slli(t[4], t[0], 2);
            asm.add(bs[1], bs[1], t[4]);
            asm.sw(t[3], bs[1], 0);
        },
    );

    // sum_body: single linear reduction (runs as one task).
    asm.label("sum_body");
    asm.li(t[0], 0);
    asm.li(t[1], gm.v as i64);
    asm.li(t[2], 0);
    asm.li(bs[0], counts as i64);
    asm.label("sum$l");
    asm.bge(t[0], t[1], "sum$r");
    asm.lw(t[3], bs[0], 0);
    asm.add(t[2], t[2], t[3]);
    asm.addi(bs[0], bs[0], 4);
    asm.addi(t[0], t[0], 1);
    asm.j("sum$l");
    asm.label("sum$r");
    asm.li(bs[1], total_out as i64);
    asm.sw(t[2], bs[1], 0);
    asm.jalr(XReg::ZERO, XReg::RA, 0);

    let program = Arc::new(asm.assemble().expect("tc assembles"));
    let chunk = (gm.v / 16).max(16);
    let mut phases = util::make_phase_tasks(&program, gm.v, chunk, &specs);
    // The reduction is inherently single-task.
    let sum_pc = program.label("task$sum_body").expect("label");
    phases[1] = crate::workload::Phase::new(vec![bvl_runtime::Task {
        scalar_pc: sum_pc,
        vector_pc: None,
        args: vec![],
    }]);

    Workload {
        name: "trianglecount",
        class: WorkloadClass::TaskParallel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: None,
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            use bvl_isa::mem::Memory;
            let got = m.read_u32_array(counts, expect_counts.len());
            if got != expect_counts {
                let i = got
                    .iter()
                    .zip(&expect_counts)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                return Err(format!(
                    "tc count mismatch at {i}: got {} want {}",
                    got[i], expect_counts[i]
                ));
            }
            let gt = m.read_uint(total_out, 4) as u32;
            if gt != expect_total {
                return Err(format!("tc total: got {gt} want {expect_total}"));
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil;

    #[test]
    fn reference_counts_a_known_triangle() {
        // Triangle 0-1-2 plus a pendant 3.
        let g = gen::CsrGraph {
            offsets: vec![0, 2, 4, 7, 8],
            edges: vec![1, 2, 0, 2, 0, 1, 3, 2],
        };
        let (counts, total) = reference(&g);
        assert_eq!(total, 1);
        assert_eq!(counts[0], 1); // anchored at the smallest vertex
    }

    #[test]
    fn serial_matches_reference() {
        testutil::check_serial(|| build(Scale::tiny()));
    }

    #[test]
    fn phases_match_reference() {
        testutil::check_phases(|| build(Scale::tiny()));
    }
}
