//! The eight Ligra-style task-parallel graph applications (paper Table
//! IV): `bfs`, `pagerank`, `components`, `radii`, `mis`, `kcore`, `bc`,
//! `trianglecount`.
//!
//! All run over synthetic symmetric R-MAT graphs in CSR form. Iterative
//! algorithms are expressed as barrier-delimited `parallel_for` phases
//! over vertex ranges (double-buffered where a phase reads what another
//! vertex writes), with the phase count precomputed functionally — the
//! frontier-convergence structure Ligra's `edgeMap`/`vertexMap` produce.
//! Graph bodies are scalar only: the paper's premise is exactly that these
//! irregular workloads do not vectorize profitably, which is why `1bDV`
//! loses on them.

pub mod bc;
pub mod bfs;
pub mod components;
pub mod kcore;
pub mod mis;
pub mod pagerank;
pub mod radii;
pub mod tc;
pub mod util;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::workload::Workload;
    use bvl_isa::exec::Machine;

    /// Runs the serial entry functionally and checks the result.
    pub fn check_serial(build: impl Fn() -> Workload) {
        let w = build();
        let mut m = Machine::new(w.mem.clone(), 512);
        m.set_pc(w.serial_entry);
        m.run(&w.program, 500_000_000).expect("serial entry runs");
        (w.check)(m.mem()).unwrap_or_else(|e| panic!("{} (serial): {e}", w.name));
    }

    /// Runs every phase's tasks in order and checks the result.
    pub fn check_phases(build: impl Fn() -> Workload) {
        let w = build();
        let mut m = Machine::new(w.mem.clone(), 512);
        for phase in &w.phases {
            for task in &phase.tasks {
                for &(r, v) in &task.args {
                    m.set_xreg(r, v);
                }
                m.set_pc(task.entry(false));
                m.run(&w.program, 500_000_000).expect("task runs");
            }
        }
        (w.check)(m.mem()).unwrap_or_else(|e| panic!("{} (phases): {e}", w.name));
    }
}
