//! `radii` — graph eccentricity estimation (Ligra's Radii).
//!
//! Runs 32 simultaneous BFS traversals from sample sources, packed as one
//! bit per source in a `u32` visited mask per vertex (double-buffered).
//! Each round ORs neighbour masks; a vertex whose mask grows updates its
//! radius estimate to the round number. Rounds are precomputed.

use crate::gen;
use crate::graph::util::{self, PhaseSpec};
use crate::workload::{regs, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::XReg;
use bvl_mem::SimMemory;
use std::sync::Arc;

fn reference(g: &gen::CsrGraph) -> (u64, Vec<u32>, Vec<u32>) {
    let v = g.vertices();
    let sources = v.min(32);
    let mut vis: Vec<u32> = (0..v)
        .map(|i| if i < sources { 1u32 << i } else { 0 })
        .collect();
    let mut radii: Vec<u32> = (0..v)
        .map(|i| if i < sources { 0 } else { u32::MAX })
        .collect();
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut nxt = vis.clone();
        let mut changed = false;
        for w in 0..v {
            let mut m = vis[w];
            for &u in g.neighbours(w) {
                m |= vis[u as usize];
            }
            if m != vis[w] {
                radii[w] = rounds as u32;
                changed = true;
            }
            nxt[w] = m;
        }
        vis = nxt;
        if !changed {
            break;
        }
    }
    (rounds, vis, radii)
}

/// Builds `radii` at `scale`.
pub fn build(scale: Scale) -> Workload {
    let g = gen::rmat(
        scale.seed ^ 103,
        scale.vertices as usize,
        scale.degree as usize,
    );
    let v = g.vertices();
    let sources = v.min(32);
    let (rounds, _final_vis, expect_radii) = reference(&g);

    let mut mem = SimMemory::default();
    let gm = util::alloc_graph(&mut mem, &g);
    let init_vis: Vec<u32> = (0..v)
        .map(|i| if i < sources { 1u32 << i } else { 0 })
        .collect();
    let init_radii: Vec<u32> = (0..v)
        .map(|i| if i < sources { 0 } else { u32::MAX })
        .collect();
    let vis_a = mem.alloc_u32(&init_vis);
    let vis_b = mem.alloc_u32(&init_vis);
    let radii = mem.alloc_u32(&init_radii);

    let t = regs::T;
    let (src_arg, dst_arg) = (regs::ARG2, regs::ARG3);
    let round_arg = XReg::new(9);

    let mut asm = Assembler::new();
    let specs: Vec<PhaseSpec> = (0..rounds)
        .map(|r| {
            let (s, d) = if r % 2 == 0 {
                (vis_a, vis_b)
            } else {
                (vis_b, vis_a)
            };
            PhaseSpec {
                body: "radii_body",
                args: vec![(src_arg, s), (dst_arg, d), (round_arg, r + 1)],
            }
        })
        .collect();
    util::emit_phase_entries(&mut asm, &specs, gm.v);

    util::emit_vertex_sweep(
        &mut asm,
        "radii_body",
        &gm,
        // per-vertex: mask = src[v]
        |asm| {
            asm.slli(t[3], t[0], 2);
            asm.add(t[4], t[3], src_arg);
            asm.lw(t[5], t[4], 0);
            asm.mv(t[7], t[5]); // original mask
        },
        // per-edge: mask |= src[u]
        |asm| {
            asm.slli(t[4], t[2], 2);
            asm.add(t[4], t[4], src_arg);
            asm.lw(t[6], t[4], 0);
            asm.or(t[5], t[5], t[6]);
        },
        // finalize: dst[v] = mask; if grew -> radii[v] = round
        |asm| {
            asm.add(t[4], t[3], dst_arg);
            asm.sw(t[5], t[4], 0);
            asm.beq(t[5], t[7], "radii$same");
            asm.li(t[4], radii as i64);
            asm.add(t[4], t[4], t[3]);
            asm.sw(round_arg, t[4], 0);
            asm.label("radii$same");
        },
    );

    let program = Arc::new(asm.assemble().expect("radii assembles"));
    let chunk = (gm.v / 16).max(16);
    let phases = util::make_phase_tasks(&program, gm.v, chunk, &specs);

    Workload {
        name: "radii",
        class: WorkloadClass::TaskParallel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: None,
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let got = m.read_u32_array(radii, expect_radii.len());
            if got == expect_radii {
                Ok(())
            } else {
                let i = got
                    .iter()
                    .zip(&expect_radii)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                Err(format!(
                    "radii mismatch at {i}: got {} want {}",
                    got[i], expect_radii[i]
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::testutil;

    #[test]
    fn serial_matches_reference() {
        testutil::check_serial(|| build(Scale::tiny()));
    }

    #[test]
    fn phases_match_reference() {
        testutil::check_phases(|| build(Scale::tiny()));
    }
}
