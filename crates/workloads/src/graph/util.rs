//! Shared plumbing for the graph workloads: CSR layout in simulated
//! memory, task-entry wrappers and unrolled serial drivers.

use crate::gen::CsrGraph;
use crate::workload::{regs, Phase};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::XReg;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;

/// A CSR graph laid out in simulated memory.
#[derive(Clone, Copy, Debug)]
pub struct GraphInMem {
    /// Base of the `u32` offsets array (`v + 1` entries).
    pub offsets: u64,
    /// Base of the `u32` edges array.
    pub edges: u64,
    /// Vertex count.
    pub v: u64,
}

/// Allocates the graph's CSR arrays.
pub fn alloc_graph(mem: &mut SimMemory, g: &CsrGraph) -> GraphInMem {
    GraphInMem {
        offsets: mem.alloc_u32(&g.offsets),
        edges: mem.alloc_u32(&g.edges),
        v: g.vertices() as u64,
    }
}

/// One barrier-delimited phase: which returning body runs, with what
/// extra task arguments.
#[derive(Clone, Debug)]
pub struct PhaseSpec {
    /// Label of the returning body to execute.
    pub body: &'static str,
    /// Extra task arguments (beyond the vertex range).
    pub args: Vec<(XReg, u64)>,
}

/// Backwards-compatible alias used by single-body workloads.
pub type PhaseArgs = Vec<Vec<(XReg, u64)>>;

/// Builds single-body phase specs from plain argument lists.
pub fn specs_for(body: &'static str, phase_args: &PhaseArgs) -> Vec<PhaseSpec> {
    phase_args
        .iter()
        .map(|args| PhaseSpec {
            body,
            args: args.clone(),
        })
        .collect()
}

/// Emits one halting task wrapper per distinct body (`task$<body>`) plus
/// the unrolled `serial` driver running every phase over the full range.
pub fn emit_phase_entries(asm: &mut Assembler, specs: &[PhaseSpec], v: u64) {
    let mut seen: Vec<&str> = Vec::new();
    for spec in specs {
        if !seen.contains(&spec.body) {
            seen.push(spec.body);
            asm.label(format!("task${}", spec.body));
            asm.jal(XReg::RA, spec.body.to_string());
            asm.halt();
        }
    }
    asm.label("serial");
    for spec in specs {
        asm.li(regs::START, 0);
        asm.li(regs::END, v as i64);
        for &(r, val) in &spec.args {
            asm.li(r, val as i64);
        }
        asm.jal(XReg::RA, spec.body.to_string());
    }
    asm.halt();
}

/// Builds the per-phase task lists matching [`emit_phase_entries`].
pub fn make_phase_tasks(
    program: &bvl_isa::asm::Program,
    v: u64,
    chunk: u64,
    specs: &[PhaseSpec],
) -> Vec<Phase> {
    specs
        .iter()
        .map(|spec| {
            let pc = program
                .label(&format!("task${}", spec.body))
                .unwrap_or_else(|| panic!("missing wrapper for body {}", spec.body));
            Phase::new(parallel_for_tasks(
                v,
                chunk,
                pc,
                None,
                regs::START,
                regs::END,
                &spec.args,
            ))
        })
        .collect()
}

/// Single-body convenience: emits `scalar_task` + `serial` (legacy names).
pub fn emit_entries(asm: &mut Assembler, body: &'static str, phase_args: &PhaseArgs, v: u64) {
    asm.label("scalar_task");
    asm.jal(XReg::RA, body.to_string());
    asm.halt();
    asm.label("serial");
    for args in phase_args {
        asm.li(regs::START, 0);
        asm.li(regs::END, v as i64);
        for &(r, val) in args {
            asm.li(r, val as i64);
        }
        asm.jal(XReg::RA, body.to_string());
    }
    asm.halt();
}

/// Builds the per-phase task lists matching [`emit_entries`]'s driver.
pub fn make_phases(scalar_pc: u32, v: u64, chunk: u64, phase_args: &PhaseArgs) -> Vec<Phase> {
    phase_args
        .iter()
        .map(|args| {
            Phase::new(parallel_for_tasks(
                v,
                chunk,
                scalar_pc,
                None,
                regs::START,
                regs::END,
                args,
            ))
        })
        .collect()
}

/// Emits the standard per-vertex neighbour loop scaffold:
///
/// ```text
/// for v in [START, END):
///     <per_vertex(asm)>           // v in t[0]
///     for e in offsets[v]..offsets[v+1]:
///         u = edges[e]            // u in t[2]
///         <per_edge(asm)>
///     <finalize(asm)>
/// return
/// ```
///
/// Register contract inside the callbacks: `t[0]` = vertex, `t[1]` =
/// remaining-edge counter, `t[2]` = neighbour vertex, `bs[0]` = current
/// edge pointer; `t[3]`–`t[7]`, `bs[1]`–`bs[5]` and ARG registers are free
/// for the callbacks (the scaffold does not touch them between hooks).
pub fn emit_vertex_sweep(
    asm: &mut Assembler,
    body_label: &str,
    g: &GraphInMem,
    per_vertex: impl Fn(&mut Assembler),
    per_edge: impl Fn(&mut Assembler),
    finalize: impl Fn(&mut Assembler),
) {
    let t = regs::T;
    let bs = regs::B;
    let l = |s: &str| format!("{body_label}${s}");

    asm.label(body_label);
    asm.mv(t[0], regs::START);
    asm.label(l("v"));
    asm.bge(t[0], regs::END, l("ret"));
    per_vertex(asm);
    // edge range
    asm.li(bs[0], g.offsets as i64);
    asm.slli(t[1], t[0], 2);
    asm.add(bs[0], bs[0], t[1]);
    asm.lw(t[1], bs[0], 4); // offsets[v+1]
    asm.lw(t[2], bs[0], 0); // offsets[v]
    asm.sub(t[1], t[1], t[2]); // edge count
    asm.slli(t[2], t[2], 2);
    asm.li(bs[0], g.edges as i64);
    asm.add(bs[0], bs[0], t[2]); // &edges[offsets[v]]
    asm.label(l("e"));
    asm.beq(t[1], XReg::ZERO, l("efin"));
    asm.lw(t[2], bs[0], 0); // u
    per_edge(asm);
    asm.addi(bs[0], bs[0], 4);
    asm.addi(t[1], t[1], -1);
    asm.j(l("e"));
    asm.label(l("efin"));
    finalize(asm);
    asm.addi(t[0], t[0], 1);
    asm.j(l("v"));
    asm.label(l("ret"));
    asm.jalr(XReg::ZERO, XReg::RA, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use bvl_isa::exec::Machine;
    use bvl_isa::mem::Memory;

    #[test]
    fn vertex_sweep_computes_degrees() {
        let g = gen::rmat(3, 64, 4);
        let mut mem = SimMemory::default();
        let gm = alloc_graph(&mut mem, &g);
        let deg_out = mem.alloc(gm.v * 4, 64);
        let t = regs::T;

        let mut asm = Assembler::new();
        let phase_args: PhaseArgs = vec![vec![]];
        emit_entries(&mut asm, "body", &phase_args, gm.v);
        emit_vertex_sweep(
            &mut asm,
            "body",
            &gm,
            |asm| {
                asm.li(t[3], 0);
            },
            |asm| {
                asm.addi(t[3], t[3], 1);
            },
            |asm| {
                asm.li(regs::B[1], deg_out as i64);
                asm.slli(t[4], t[0], 2);
                asm.add(regs::B[1], regs::B[1], t[4]);
                asm.sw(t[3], regs::B[1], 0);
            },
        );
        let prog = asm.assemble().unwrap();
        let mut m = Machine::new(mem, 512);
        m.set_pc(prog.label("serial").unwrap());
        m.run(&prog, 10_000_000).unwrap();
        for v in 0..g.vertices() {
            assert_eq!(
                m.mem().read_uint(deg_out + v as u64 * 4, 4) as usize,
                g.degree(v),
                "vertex {v}"
            );
        }
    }
}
