//! The three data-parallel micro-kernels of Table IV: `vvadd`, `mmult`,
//! `saxpy`.

pub mod mmult;
pub mod saxpy;
pub mod vvadd;
