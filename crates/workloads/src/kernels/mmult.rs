//! `mmult` — dense single-precision matrix multiplication `C = A × B`.
//!
//! The compute-intensive kernel of Table IV: FMA-rich with reuse, where
//! multiple element groups (chimes) hide FP latency (paper section V-B).
//! Vectorized over the output-row dimension with a register-resident
//! accumulator tile.

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// Builds `mmult` at `scale` (a `scale.dim`² matrix).
pub fn build(scale: Scale) -> Workload {
    let d = scale.dim;
    let a_data = gen::f32_vec(scale.seed, (d * d) as usize, -1.0, 1.0);
    let b_data = gen::f32_vec(scale.seed ^ 3, (d * d) as usize, -1.0, 1.0);

    let mut mem = SimMemory::default();
    let a = mem.alloc_f32(&a_data);
    let b = mem.alloc_f32(&b_data);
    let c = mem.alloc(d * d * 4, 64);

    // Reference: same FMA order as both emitted variants (k ascending,
    // fused rounding).
    let mut expect = vec![0f32; (d * d) as usize];
    for i in 0..d as usize {
        for j in 0..d as usize {
            let mut acc = 0f32;
            for k in 0..d as usize {
                acc = a_data[i * d as usize + k].mul_add(b_data[k * d as usize + j], acc);
            }
            expect[i * d as usize + j] = acc;
        }
    }

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let row_bytes = (d * 4) as i64;

    // ---- scalar range task: rows [start, end)
    // for i in rows: for j: acc = sum_k fma(A[i][k], B[k][j])
    asm.label("scalar_task");
    asm.mv(t[0], start); // i
    asm.label("s_i");
    asm.bge(t[0], end, "s_done");
    asm.li(t[1], 0); // j
    asm.label("s_j");
    asm.li(t[2], d as i64);
    asm.bge(t[1], t[2], "s_i_next");
    // acc = 0
    asm.fmv_w_x(ft[0], XReg::ZERO);
    // a_ptr = A + i*row; b_ptr = B + j*4
    asm.li(bs[0], a as i64);
    asm.li(t[3], row_bytes);
    asm.mul(t[4], t[0], t[3]);
    asm.add(bs[0], bs[0], t[4]);
    asm.li(bs[1], b as i64);
    asm.slli(t[5], t[1], 2);
    asm.add(bs[1], bs[1], t[5]);
    asm.li(t[2], d as i64); // k counter
    asm.label("s_k");
    asm.flw(ft[1], bs[0], 0);
    asm.flw(ft[2], bs[1], 0);
    asm.fmadd_s(ft[0], ft[1], ft[2], ft[0]);
    asm.addi(bs[0], bs[0], 4);
    asm.add(bs[1], bs[1], t[3]); // next row of B
    asm.addi(t[2], t[2], -1);
    asm.bne(t[2], XReg::ZERO, "s_k");
    // C[i][j] = acc
    asm.li(bs[2], c as i64);
    asm.mul(t[4], t[0], t[3]);
    asm.add(bs[2], bs[2], t[4]);
    asm.add(bs[2], bs[2], t[5]);
    asm.fsw(ft[0], bs[2], 0);
    asm.addi(t[1], t[1], 1);
    asm.j("s_j");
    asm.label("s_i_next");
    asm.addi(t[0], t[0], 1);
    asm.j("s_i");
    asm.label("s_done");
    asm.halt();

    // ---- vectorized range task: rows [start, end), j-tiles of VL
    asm.label("vector_task");
    asm.mv(t[0], start); // i
    asm.label("v_i");
    asm.bge(t[0], end, "v_done");
    asm.li(t[1], 0); // j (element index)
    asm.label("v_jtile");
    asm.li(t[2], d as i64);
    asm.sub(t[6], t[2], t[1]); // remaining columns
    asm.beq(t[6], XReg::ZERO, "v_i_next");
    asm.vsetvli(vl, t[6], Sew::E32);
    asm.vmv_v_x(VReg::new(1), XReg::ZERO); // acc tile = 0.0
                                           // a_ptr = A + i*row; b_ptr = B + j*4
    asm.li(bs[0], a as i64);
    asm.li(t[3], row_bytes);
    asm.mul(t[4], t[0], t[3]);
    asm.add(bs[0], bs[0], t[4]);
    asm.li(bs[1], b as i64);
    asm.slli(t[5], t[1], 2);
    asm.add(bs[1], bs[1], t[5]);
    asm.li(t[2], d as i64); // k counter
    asm.label("v_k");
    asm.flw(ft[1], bs[0], 0); // A[i][k]
    asm.vle(VReg::new(2), bs[1]); // B[k][j..j+vl]
    asm.vfmacc_vf(VReg::new(1), ft[1], VReg::new(2)); // acc += a * brow
    asm.addi(bs[0], bs[0], 4);
    asm.add(bs[1], bs[1], t[3]);
    asm.addi(t[2], t[2], -1);
    asm.bne(t[2], XReg::ZERO, "v_k");
    // store tile
    asm.li(bs[2], c as i64);
    asm.mul(t[4], t[0], t[3]);
    asm.add(bs[2], bs[2], t[4]);
    asm.add(bs[2], bs[2], t[5]);
    asm.vse(VReg::new(1), bs[2]);
    asm.add(t[1], t[1], vl);
    asm.j("v_jtile");
    asm.label("v_i_next");
    asm.addi(t[0], t[0], 1);
    asm.j("v_i");
    asm.label("v_done");
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries
    asm.label("serial");
    asm.li(start, 0);
    asm.li(end, d as i64);
    asm.j("scalar_task");
    asm.label("vector");
    asm.li(start, 0);
    asm.li(end, d as i64);
    asm.j("vector_task");

    let program = Arc::new(asm.assemble().expect("mmult assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");
    let chunk = (d / 8).max(2);
    let tasks = parallel_for_tasks(
        d,
        chunk,
        scalar_pc,
        Some(vector_pc),
        regs::START,
        regs::END,
        &[],
    );

    Workload {
        name: "mmult",
        class: WorkloadClass::DataParallelKernel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(tasks)],
        check: Box::new(move |m| {
            let got = m.read_f32_array(c, (d * d) as usize);
            for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                if g.to_bits() != e.to_bits() {
                    return Err(format!("mmult mismatch at {i}: got {g} want {e}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_isa::exec::Machine;

    #[test]
    fn scalar_and_vector_entries_agree() {
        for vector in [false, true] {
            let w = build(Scale::tiny());
            let mut m = Machine::new(w.mem.clone(), 512);
            let entry = if vector {
                w.vector_entry.expect("vectorized")
            } else {
                w.serial_entry
            };
            m.set_pc(entry);
            m.run(&w.program, 100_000_000).expect("runs");
            (w.check)(m.mem()).expect("checker passes");
        }
    }

    #[test]
    fn tasks_cover_rows() {
        let w = build(Scale::tiny());
        let mut m = Machine::new(w.mem.clone(), 512);
        for phase in &w.phases {
            for (i, task) in phase.tasks.iter().enumerate() {
                for &(r, v) in &task.args {
                    m.set_xreg(r, v);
                }
                m.set_pc(task.entry(i % 2 == 0));
                m.run(&w.program, 100_000_000).expect("task runs");
            }
        }
        (w.check)(m.mem()).expect("checker passes");
    }
}
