//! `saxpy` — single-precision `y = a*x + y`.
//!
//! Two input streams, one FMA per element; the canonical
//! memory-bandwidth-versus-FP-latency kernel (Table IV).

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// The scalar coefficient `a`.
const A: f32 = 2.5;

/// Builds `saxpy` at `scale` (uses `scale.n` elements).
pub fn build(scale: Scale) -> Workload {
    let n = scale.n;
    let x_data = gen::f32_vec(scale.seed, n as usize, -10.0, 10.0);
    let y_data = gen::f32_vec(scale.seed ^ 2, n as usize, -10.0, 10.0);

    let mut mem = SimMemory::default();
    let x = mem.alloc_f32(&x_data);
    let y = mem.alloc_f32(&y_data);

    let expect: Vec<f32> = x_data
        .iter()
        .zip(&y_data)
        .map(|(&xi, &yi)| xi.mul_add(A, yi))
        .collect();

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;

    // Loads the coefficient into ft[0] from a baked constant.
    let a_const = mem.alloc_f32(&[A]);

    // ---- scalar range task
    asm.label("scalar_task");
    asm.li(t[5], a_const as i64);
    asm.flw(ft[0], t[5], 0);
    asm.slli(t[0], start, 2);
    asm.li(bs[0], x as i64);
    asm.add(bs[0], bs[0], t[0]);
    asm.li(bs[1], y as i64);
    asm.add(bs[1], bs[1], t[0]);
    asm.sub(t[1], end, start);
    asm.beq(t[1], XReg::ZERO, "s_done");
    asm.label("s_loop");
    asm.flw(ft[1], bs[0], 0);
    asm.flw(ft[2], bs[1], 0);
    asm.fmadd_s(ft[3], ft[1], ft[0], ft[2]); // x*a + y
    asm.fsw(ft[3], bs[1], 0);
    asm.addi(bs[0], bs[0], 4);
    asm.addi(bs[1], bs[1], 4);
    asm.addi(t[1], t[1], -1);
    asm.bne(t[1], XReg::ZERO, "s_loop");
    asm.label("s_done");
    asm.halt();

    // ---- vectorized range task
    asm.label("vector_task");
    asm.li(t[5], a_const as i64);
    asm.flw(ft[0], t[5], 0);
    asm.slli(t[0], start, 2);
    asm.li(bs[0], x as i64);
    asm.add(bs[0], bs[0], t[0]);
    asm.li(bs[1], y as i64);
    asm.add(bs[1], bs[1], t[0]);
    asm.sub(t[1], end, start);
    asm.beq(t[1], XReg::ZERO, "v_done");
    asm.label("v_strip");
    asm.vsetvli(vl, t[1], Sew::E32);
    asm.vle(VReg::new(1), bs[0]); // x
    asm.vle(VReg::new(2), bs[1]); // y
    asm.vfmacc_vf(VReg::new(2), ft[0], VReg::new(1)); // y += a*x
    asm.vse(VReg::new(2), bs[1]);
    asm.slli(t[0], vl, 2);
    asm.add(bs[0], bs[0], t[0]);
    asm.add(bs[1], bs[1], t[0]);
    asm.sub(t[1], t[1], vl);
    asm.bne(t[1], XReg::ZERO, "v_strip");
    asm.label("v_done");
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries
    asm.label("serial");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.j("scalar_task");
    asm.label("vector");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.j("vector_task");

    let program = Arc::new(asm.assemble().expect("saxpy assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");
    let chunk = (n / 32).max(64);
    let tasks = parallel_for_tasks(
        n,
        chunk,
        scalar_pc,
        Some(vector_pc),
        regs::START,
        regs::END,
        &[],
    );

    Workload {
        name: "saxpy",
        class: WorkloadClass::DataParallelKernel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(tasks)],
        check: Box::new(move |m| {
            let got = m.read_f32_array(y, n as usize);
            for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                if g.to_bits() != e.to_bits() {
                    return Err(format!("saxpy mismatch at {i}: got {g} want {e}"));
                }
            }
            Ok(())
        }),
    }
}

/// The RVV semantics of `vfmacc.vf` (`vd += f * vs2`) must match the
/// scalar `fmadd` (`x*a + y`) element-for-element: the accumulator is `y`.
#[cfg(test)]
mod tests {
    use super::*;
    use bvl_isa::exec::Machine;

    #[test]
    fn scalar_and_vector_entries_agree() {
        for vector in [false, true] {
            let w = build(Scale::tiny());
            let mut m = Machine::new(w.mem.clone(), 512);
            let entry = if vector {
                w.vector_entry.expect("vectorized")
            } else {
                w.serial_entry
            };
            m.set_pc(entry);
            m.run(&w.program, 50_000_000).expect("runs");
            (w.check)(m.mem()).expect("checker passes");
        }
    }

    #[test]
    fn vector_variant_works_at_other_vlens() {
        // The same binary must run on the 128-bit IVU and the 2048-bit
        // DVE — vector-length agnosticism end to end.
        for vlen in [128, 2048] {
            let w = build(Scale::tiny());
            let mut m = Machine::new(w.mem.clone(), vlen);
            m.set_pc(w.vector_entry.expect("vectorized"));
            m.run(&w.program, 50_000_000).expect("runs");
            (w.check)(m.mem()).expect("checker passes");
        }
    }

    #[test]
    fn tasks_cover_range() {
        let w = build(Scale::tiny());
        let mut m = Machine::new(w.mem.clone(), 512);
        for phase in &w.phases {
            for task in &phase.tasks {
                for &(r, v) in &task.args {
                    m.set_xreg(r, v);
                }
                // Alternate scalar/vector variants like a heterogeneous
                // system would.
                m.set_pc(task.entry(task.args[0].1 % 2 == 0));
                m.run(&w.program, 50_000_000).expect("task runs");
            }
        }
        (w.check)(m.mem()).expect("checker passes");
    }
}
