//! `vvadd` — element-wise 32-bit integer vector addition (`c = a + b`).
//!
//! The paper's simplest streaming kernel: three unit-stride streams, one
//! ALU op per element. Memory-bandwidth bound on every system.

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// Builds `vvadd` at `scale` (uses `scale.n` elements).
pub fn build(scale: Scale) -> Workload {
    let n = scale.n;
    let a_data = gen::u32_vec(scale.seed, n as usize, 1 << 20);
    let b_data = gen::u32_vec(scale.seed ^ 1, n as usize, 1 << 20);

    let mut mem = SimMemory::default();
    let a = mem.alloc_u32(&a_data);
    let b = mem.alloc_u32(&b_data);
    let c = mem.alloc(n * 4, 64);

    let expect: Vec<u32> = a_data
        .iter()
        .zip(&b_data)
        .map(|(&x, &y)| x.wrapping_add(y))
        .collect();

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;

    // ---- scalar range task: for i in [start, end) { c[i] = a[i] + b[i] }
    asm.label("scalar_task");
    asm.slli(t[0], start, 2);
    asm.li(bs[0], a as i64);
    asm.add(bs[0], bs[0], t[0]);
    asm.li(bs[1], b as i64);
    asm.add(bs[1], bs[1], t[0]);
    asm.li(bs[2], c as i64);
    asm.add(bs[2], bs[2], t[0]);
    asm.sub(t[1], end, start);
    asm.beq(t[1], XReg::ZERO, "s_done");
    asm.label("s_loop");
    asm.lw(t[2], bs[0], 0);
    asm.lw(t[3], bs[1], 0);
    asm.add(t[4], t[2], t[3]);
    asm.sw(t[4], bs[2], 0);
    asm.addi(bs[0], bs[0], 4);
    asm.addi(bs[1], bs[1], 4);
    asm.addi(bs[2], bs[2], 4);
    asm.addi(t[1], t[1], -1);
    asm.bne(t[1], XReg::ZERO, "s_loop");
    asm.label("s_done");
    asm.halt();

    // ---- vectorized range task (RVV strip-mine)
    asm.label("vector_task");
    asm.slli(t[0], start, 2);
    asm.li(bs[0], a as i64);
    asm.add(bs[0], bs[0], t[0]);
    asm.li(bs[1], b as i64);
    asm.add(bs[1], bs[1], t[0]);
    asm.li(bs[2], c as i64);
    asm.add(bs[2], bs[2], t[0]);
    asm.sub(t[1], end, start);
    asm.beq(t[1], XReg::ZERO, "v_done");
    asm.label("v_strip");
    asm.vsetvli(vl, t[1], Sew::E32);
    asm.vle(VReg::new(1), bs[0]);
    asm.vle(VReg::new(2), bs[1]);
    asm.vadd_vv(VReg::new(3), VReg::new(1), VReg::new(2));
    asm.vse(VReg::new(3), bs[2]);
    asm.slli(t[0], vl, 2);
    asm.add(bs[0], bs[0], t[0]);
    asm.add(bs[1], bs[1], t[0]);
    asm.add(bs[2], bs[2], t[0]);
    asm.sub(t[1], t[1], vl);
    asm.bne(t[1], XReg::ZERO, "v_strip");
    asm.label("v_done");
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries
    asm.label("serial");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.j("scalar_task");
    asm.label("vector");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.j("vector_task");

    let program = Arc::new(asm.assemble().expect("vvadd assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");
    let chunk = (n / 32).max(64);
    let tasks = parallel_for_tasks(
        n,
        chunk,
        scalar_pc,
        Some(vector_pc),
        regs::START,
        regs::END,
        &[],
    );

    Workload {
        name: "vvadd",
        class: WorkloadClass::DataParallelKernel,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(tasks)],
        check: Box::new(move |m| {
            let got = m.read_u32_array(c, n as usize);
            if got == expect {
                Ok(())
            } else {
                let i = got
                    .iter()
                    .zip(&expect)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                Err(format!(
                    "vvadd mismatch at {i}: got {} want {}",
                    got[i], expect[i]
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_isa::exec::Machine;
    use bvl_isa::mem::Memory;

    /// Functional smoke-test: run both whole-run entries on the golden
    /// machine and verify via the workload's own checker.
    #[test]
    fn scalar_and_vector_entries_agree() {
        for vector in [false, true] {
            let w = build(Scale::tiny());
            let mut m = Machine::new(w.mem.clone(), 512);
            let entry = if vector {
                w.vector_entry.expect("vectorized")
            } else {
                w.serial_entry
            };
            m.set_pc(entry);
            m.run(&w.program, 50_000_000).expect("runs");
            (w.check)(m.mem()).expect("checker passes");
        }
    }

    /// Every task executed functionally covers the full range.
    #[test]
    fn task_decomposition_covers_everything() {
        let w = build(Scale::tiny());
        let mut m = Machine::new(w.mem.clone(), 512);
        for phase in &w.phases {
            for task in &phase.tasks {
                for &(r, v) in &task.args {
                    m.set_xreg(r, v);
                }
                m.set_pc(task.entry(false));
                m.run(&w.program, 50_000_000).expect("task runs");
            }
        }
        (w.check)(m.mem()).expect("checker passes");
    }

    #[test]
    fn memory_is_initialized() {
        let w = build(Scale::tiny());
        // First input element exists somewhere above the reserved page.
        assert!(w.mem.read_uint(0x1000, 4) < (1 << 20));
        assert!(w.total_tasks() > 1);
    }
}
