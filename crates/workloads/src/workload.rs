//! The workload container and common emission helpers.

use bvl_isa::asm::Program;
use bvl_mem::SimMemory;
use bvl_runtime::Task;
use std::fmt;
use std::sync::Arc;

/// Input-size scaling knob.
///
/// The paper's gem5 runs take 15 minutes to 20 hours each; the default
/// scales here are chosen so a full figure regenerates in minutes while
/// preserving working-set-to-cache relationships. `--scale large` on the
/// experiment binaries doubles/quadruples everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Element count for 1-D kernels.
    pub n: u64,
    /// Matrix dimension for 2-D kernels.
    pub dim: u64,
    /// Vertices for graph workloads.
    pub vertices: u64,
    /// Average degree for graph workloads.
    pub degree: u64,
    /// Iteration count for iterative apps.
    pub iters: u64,
    /// RNG seed for input generation.
    pub seed: u64,
}

impl Scale {
    /// Tiny: unit-test sized; seconds per run.
    pub fn tiny() -> Self {
        Scale {
            n: 512,
            dim: 12,
            vertices: 128,
            degree: 4,
            iters: 2,
            seed: 0xB16_B00B5,
        }
    }

    /// Default experiment scale.
    pub fn default_eval() -> Self {
        Scale {
            n: 8192,
            dim: 32,
            vertices: 1024,
            degree: 8,
            iters: 3,
            seed: 0xB16_B00B5,
        }
    }

    /// Large: closer to paper working sets; minutes per run.
    pub fn large() -> Self {
        Scale {
            n: 65536,
            dim: 64,
            vertices: 4096,
            degree: 12,
            iters: 4,
            seed: 0xB16_B00B5,
        }
    }
}

/// Which suite a workload belongs to (Tables IV and V).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadClass {
    /// One of the three micro-kernels.
    DataParallelKernel,
    /// A Rodinia/RiVec/genomics application.
    DataParallelApp,
    /// A Ligra-style graph application.
    TaskParallel,
}

/// One barrier-delimited group of tasks (a `parallel_for` phase). The
/// system runs phases in order, draining the work-stealing runtime at each
/// boundary — how the Ligra-style apps express per-iteration frontiers.
#[derive(Clone, Debug, Default)]
pub struct Phase {
    /// The phase's tasks.
    pub tasks: Vec<Task>,
}

impl Phase {
    /// Wraps a task list.
    pub fn new(tasks: Vec<Task>) -> Self {
        Phase { tasks }
    }
}

/// A fully built workload: program text, initialized memory, entry points,
/// task decomposition and a reference checker.
pub struct Workload {
    /// Short name as used in the paper's figures.
    pub name: &'static str,
    /// Suite membership.
    pub class: WorkloadClass,
    /// The program (all entry points share one text image).
    pub program: Arc<Program>,
    /// Initialized data image.
    pub mem: SimMemory,
    /// Scalar whole-run entry (used by `1L`, `1b`, and serial fallbacks).
    pub serial_entry: u32,
    /// RVV whole-run entry (used by `1bIV`, `1bDV`, `1b-4VL`).
    pub vector_entry: Option<u32>,
    /// Barrier-delimited task phases (used by the multi-core systems).
    pub phases: Vec<Phase>,
    /// Verifies the final memory image against the pure-Rust reference.
    ///
    /// `Send + Sync` so prebuilt workloads can be fanned out across sweep
    /// worker threads; checkers capture only plain data (expected outputs).
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn Fn(&SimMemory) -> Result<(), String> + Send + Sync>,
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("class", &self.class)
            .field("program_len", &self.program.len())
            .field("phases", &self.phases.len())
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// Total tasks across all phases.
    pub fn total_tasks(&self) -> usize {
        self.phases.iter().map(|p| p.tasks.len()).sum()
    }
}

/// Register-allocation conventions shared by all emitted workloads, so
/// task arguments land in predictable places.
pub mod regs {
    use bvl_isa::reg::{FReg, XReg};

    /// Task argument: range start.
    pub const START: XReg = XReg::new(10);
    /// Task argument: range end.
    pub const END: XReg = XReg::new(11);
    /// Extra task argument 0 (e.g. source/destination buffer selector).
    pub const ARG2: XReg = XReg::new(12);
    /// Extra task argument 1.
    pub const ARG3: XReg = XReg::new(13);
    /// Granted vector length.
    pub const VL: XReg = XReg::new(14);
    /// Scratch registers (caller-saved style).
    pub const T: [XReg; 8] = [
        XReg::new(15),
        XReg::new(16),
        XReg::new(17),
        XReg::new(18),
        XReg::new(19),
        XReg::new(20),
        XReg::new(21),
        XReg::new(22),
    ];
    /// Base-address registers (baked with `li` in routine preambles).
    pub const B: [XReg; 6] = [
        XReg::new(23),
        XReg::new(24),
        XReg::new(25),
        XReg::new(26),
        XReg::new(27),
        XReg::new(28),
    ];
    /// FP scratch registers.
    pub const FT: [FReg; 6] = [
        FReg::new(1),
        FReg::new(2),
        FReg::new(3),
        FReg::new(4),
        FReg::new(5),
        FReg::new(6),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_send_and_sync() {
        // The sweep harness moves prebuilt workloads across worker threads;
        // this fails to compile if any field regresses to a thread-local type.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Workload>();
    }

    #[test]
    fn scales_are_ordered() {
        let (t, d, l) = (Scale::tiny(), Scale::default_eval(), Scale::large());
        assert!(t.n < d.n && d.n < l.n);
        assert!(t.vertices < d.vertices && d.vertices < l.vertices);
    }

    #[test]
    fn reg_conventions_do_not_collide() {
        use regs::*;
        let mut all = vec![
            START.index(),
            END.index(),
            ARG2.index(),
            ARG3.index(),
            VL.index(),
        ];
        all.extend(T.iter().map(|r| r.index()));
        all.extend(B.iter().map(|r| r.index()));
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "register convention collision");
    }
}
