#![warn(missing_docs)]
//! # bvl-workloads — the paper's application benchmarks
//!
//! Every workload of the evaluation (Tables IV and V), rebuilt as
//! instruction streams for the simulator:
//!
//! * [`kernels`] — the three data-parallel kernels: `vvadd`, `mmult`,
//!   `saxpy`.
//! * [`apps`] — the eight data-parallel applications from Rodinia, RiVec
//!   and the genomics suite: `backprop`, `kmeans`, `particlefilter`,
//!   `blackscholes`, `jacobi2d`, `pathfinder`, `lavamd`, `sw`
//!   (Smith-Waterman).
//! * [`graph`] — the eight Ligra-style task-parallel graph applications:
//!   `bfs`, `pagerank`, `components`, `radii`, `mis`, `kcore`, `bc`,
//!   `trianglecount`, over synthetic R-MAT graphs in CSR form.
//!
//! Each workload provides a *scalar* whole-run entry, a *vectorized*
//! whole-run entry (RVV strip-mined, the way the paper hand-vectorizes
//! with intrinsics), a task decomposition (range tasks with scalar and,
//! for data-parallel apps, vectorized variants — what the work-stealing
//! runtime distributes on `1bIV-4L`), and a pure-Rust reference check so
//! every simulated run is verified end-to-end.
//!
//! Inputs are synthetic (seeded [`rand`]): the paper's benchmark-suite
//! input files are not redistributable, and the kernels' behaviour is a
//! property of access pattern + input shape, which the generators
//! reproduce at configurable [`Scale`].

pub mod apps;
pub mod gen;
pub mod graph;
pub mod kernels;
pub mod workload;

pub use workload::{Phase, Scale, Workload, WorkloadClass};

/// Builds every data-parallel workload (kernels + apps) at `scale`.
pub fn all_data_parallel(scale: Scale) -> Vec<Workload> {
    vec![
        kernels::vvadd::build(scale),
        kernels::mmult::build(scale),
        kernels::saxpy::build(scale),
        apps::backprop::build(scale),
        apps::kmeans::build(scale),
        apps::particlefilter::build(scale),
        apps::blackscholes::build(scale),
        apps::jacobi2d::build(scale),
        apps::pathfinder::build(scale),
        apps::lavamd::build(scale),
        apps::sw::build(scale),
    ]
}

/// Builds every task-parallel (graph) workload at `scale`.
pub fn all_task_parallel(scale: Scale) -> Vec<Workload> {
    vec![
        graph::bfs::build(scale),
        graph::pagerank::build(scale),
        graph::components::build(scale),
        graph::radii::build(scale),
        graph::mis::build(scale),
        graph::kcore::build(scale),
        graph::bc::build(scale),
        graph::tc::build(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_suites_have_paper_counts() {
        let s = Scale::tiny();
        assert_eq!(all_data_parallel(s).len(), 11); // 3 kernels + 8 apps
        assert_eq!(all_task_parallel(s).len(), 8); // 8 Ligra apps
    }
}
