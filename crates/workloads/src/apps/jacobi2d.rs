//! `jacobi2d` — 5-point stencil relaxation (RiVec; data analytics).
//!
//! Double-buffered Jacobi iterations on a `(dim+2)²` grid with a halo:
//! `dst[i][j] = 0.25·(src[i-1][j] + src[i+1][j] + src[i][j-1] + src[i][j+1])`.
//! Vectorized over row elements (four shifted unit-stride loads per tile).
//! The task decomposition has one phase per iteration — rows are split
//! across workers and the source/destination buffer bases travel as task
//! arguments, so the double buffering is race-free.

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// Builds `jacobi2d` at `scale` (a `scale.dim`² interior, `scale.iters`
/// iterations).
pub fn build(scale: Scale) -> Workload {
    let d = scale.dim;
    let w = d + 2; // grid width with halo
    let iters = scale.iters;
    let init = gen::f32_vec(scale.seed ^ 20, (w * w) as usize, 0.0, 1.0);

    let mut mem = SimMemory::default();
    let buf_a = mem.alloc_f32(&init);
    let buf_b = mem.alloc_f32(&init); // halo must match in both buffers
    let quarter = mem.alloc_f32(&[0.25]);

    // Reference.
    let mut cur = init.clone();
    let mut nxt = init.clone();
    for _ in 0..iters {
        for i in 1..=d as usize {
            for j in 1..=d as usize {
                let wd = w as usize;
                let sum = cur[(i - 1) * wd + j] + cur[(i + 1) * wd + j];
                let sum = sum + cur[i * wd + j - 1];
                let sum = sum + cur[i * wd + j + 1];
                nxt[i * wd + j] = sum * 0.25;
            }
        }
        std::mem::swap(&mut cur, &mut nxt);
    }
    let expect = cur;
    let final_base = if iters.is_multiple_of(2) {
        buf_a
    } else {
        buf_b
    };

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let (src_arg, dst_arg) = (regs::ARG2, regs::ARG3);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let row_bytes = (w * 4) as i64;

    // ---- scalar row-range task: rows [start, end) (1-based interior),
    //      src base in ARG2, dst base in ARG3.
    asm.label("scalar_task");
    asm.li(t[5], quarter as i64);
    asm.flw(ft[5], t[5], 0);
    asm.mv(t[0], start); // i
    asm.label("s_i");
    asm.bge(t[0], end, "s_done");
    // row pointers: up/cur/down in src; out in dst (start at column 1)
    asm.li(t[3], row_bytes);
    asm.mul(t[4], t[0], t[3]);
    asm.add(bs[0], src_arg, t[4]); // &src[i][0]
    asm.add(bs[2], dst_arg, t[4]);
    asm.addi(bs[0], bs[0], 4); // column 1
    asm.addi(bs[2], bs[2], 4);
    asm.li(t[1], d as i64); // columns
    asm.label("s_j");
    asm.sub(t[2], bs[0], t[3]);
    asm.flw(ft[0], t[2], 0); // up
    asm.add(t[2], bs[0], t[3]);
    asm.flw(ft[1], t[2], 0); // down
    asm.fadd_s(ft[0], ft[0], ft[1]);
    asm.flw(ft[1], bs[0], -4); // left
    asm.fadd_s(ft[0], ft[0], ft[1]);
    asm.flw(ft[1], bs[0], 4); // right
    asm.fadd_s(ft[0], ft[0], ft[1]);
    asm.fmul_s(ft[0], ft[0], ft[5]);
    asm.fsw(ft[0], bs[2], 0);
    asm.addi(bs[0], bs[0], 4);
    asm.addi(bs[2], bs[2], 4);
    asm.addi(t[1], t[1], -1);
    asm.bne(t[1], XReg::ZERO, "s_j");
    asm.addi(t[0], t[0], 1);
    asm.j("s_i");
    asm.label("s_done");
    asm.halt();

    // ---- vectorized row-range task
    asm.label("vector_task");
    asm.li(t[5], quarter as i64);
    asm.flw(ft[5], t[5], 0);
    asm.mv(t[0], start);
    asm.label("v_i");
    asm.bge(t[0], end, "v_done");
    asm.li(t[3], row_bytes);
    asm.mul(t[4], t[0], t[3]);
    asm.add(bs[0], src_arg, t[4]);
    asm.addi(bs[0], bs[0], 4); // &src[i][1]
    asm.add(bs[2], dst_arg, t[4]);
    asm.addi(bs[2], bs[2], 4);
    asm.li(t[1], d as i64); // remaining columns
    asm.label("v_strip");
    asm.vsetvli(vl, t[1], Sew::E32);
    asm.sub(t[2], bs[0], t[3]);
    asm.vle(VReg::new(1), t[2]); // up
    asm.add(t[2], bs[0], t[3]);
    asm.vle(VReg::new(2), t[2]); // down
    asm.vfadd_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.addi(t[2], bs[0], -4);
    asm.vle(VReg::new(2), t[2]); // left
    asm.vfadd_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.addi(t[2], bs[0], 4);
    asm.vle(VReg::new(2), t[2]); // right
    asm.vfadd_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.vfmul_vf(VReg::new(1), VReg::new(1), ft[5]);
    asm.vse(VReg::new(1), bs[2]);
    asm.slli(t[2], vl, 2);
    asm.add(bs[0], bs[0], t[2]);
    asm.add(bs[2], bs[2], t[2]);
    asm.sub(t[1], t[1], vl);
    asm.bne(t[1], XReg::ZERO, "v_strip");
    asm.addi(t[0], t[0], 1);
    asm.j("v_i");
    asm.label("v_done");
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries: loop iterations, swapping buffers.
    for (entry, task) in [("serial", "scalar_task"), ("vector", "vector_task")] {
        asm.label(entry);
        asm.li(t[7], iters as i64);
        asm.li(src_arg, buf_a as i64);
        asm.li(dst_arg, buf_b as i64);
        let loop_l = format!("{entry}_it");
        let done_l = format!("{entry}_fin");
        asm.label(loop_l.clone());
        asm.beq(t[7], XReg::ZERO, done_l.clone());
        asm.li(start, 1);
        asm.li(end, (d + 1) as i64);
        // inline call: jal to task, but tasks end in halt. Instead emit the
        // sweep via jal/ret convention: jump into a non-halting copy.
        asm.jal(XReg::RA, format!("{task}_body"));
        // swap buffers
        asm.mv(t[6], src_arg);
        asm.mv(src_arg, dst_arg);
        asm.mv(dst_arg, t[6]);
        asm.addi(t[7], t[7], -1);
        asm.j(loop_l);
        asm.label(done_l);
        if entry == "vector" {
            asm.vmfence();
        }
        asm.halt();
    }

    // Callable bodies: same code shape, returning via jalr instead of
    // halting. To avoid emitting each sweep twice, the task labels above
    // are thin wrappers; the bodies live here and the task entries are
    // regenerated as body+halt by the assembler's label plumbing. For
    // clarity we simply emit the body variants separately.
    emit_body(
        &mut asm,
        "scalar_task_body",
        false,
        src_arg,
        dst_arg,
        d,
        w,
        quarter,
    );
    emit_body(
        &mut asm,
        "vector_task_body",
        true,
        src_arg,
        dst_arg,
        d,
        w,
        quarter,
    );

    let program = Arc::new(asm.assemble().expect("jacobi2d assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");

    // Task phases: one per iteration, rows split, buffers alternating.
    let chunk = (d / 8).max(2);
    let mut phases = Vec::new();
    for it in 0..iters {
        let (s, dst) = if it % 2 == 0 {
            (buf_a, buf_b)
        } else {
            (buf_b, buf_a)
        };
        let mut tasks = parallel_for_tasks(
            d + 1,
            chunk,
            scalar_pc,
            Some(vector_pc),
            regs::START,
            regs::END,
            &[(src_arg, s), (dst_arg, dst)],
        );
        // Rows are 1-based: drop the [0, ...) prefix by shifting ranges.
        for task in &mut tasks {
            if task.args[0].1 == 0 {
                task.args[0].1 = 1;
            }
        }
        phases.push(Phase::new(tasks));
    }

    Workload {
        name: "jacobi2d",
        class: WorkloadClass::DataParallelApp,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let wd = w as usize;
            let got = m.read_f32_array(final_base, wd * wd);
            for i in 1..=d as usize {
                for j in 1..=d as usize {
                    let (g, e) = (got[i * wd + j], expect[i * wd + j]);
                    if g.to_bits() != e.to_bits() {
                        return Err(format!("jacobi2d mismatch at ({i},{j}): got {g} want {e}"));
                    }
                }
            }
            Ok(())
        }),
    }
}

/// Emits a callable (jalr-returning) sweep body. Identical computation to
/// the task variants; used by the whole-run entries' iteration loop.
#[allow(clippy::too_many_arguments)]
fn emit_body(
    asm: &mut Assembler,
    label: &str,
    vector: bool,
    src_arg: XReg,
    dst_arg: XReg,
    d: u64,
    w: u64,
    quarter: u64,
) {
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let row_bytes = (w * 4) as i64;
    let l = |s: &str| format!("{label}${s}");

    asm.label(label);
    asm.li(t[5], quarter as i64);
    asm.flw(ft[5], t[5], 0);
    asm.mv(t[0], start);
    asm.label(l("i"));
    asm.bge(t[0], end, l("done"));
    asm.li(t[3], row_bytes);
    asm.mul(t[4], t[0], t[3]);
    asm.add(bs[0], src_arg, t[4]);
    asm.addi(bs[0], bs[0], 4);
    asm.add(bs[2], dst_arg, t[4]);
    asm.addi(bs[2], bs[2], 4);
    asm.li(t[1], d as i64);
    asm.label(l("j"));
    if vector {
        asm.vsetvli(vl, t[1], Sew::E32);
        asm.sub(t[2], bs[0], t[3]);
        asm.vle(VReg::new(1), t[2]);
        asm.add(t[2], bs[0], t[3]);
        asm.vle(VReg::new(2), t[2]);
        asm.vfadd_vv(VReg::new(1), VReg::new(1), VReg::new(2));
        asm.addi(t[2], bs[0], -4);
        asm.vle(VReg::new(2), t[2]);
        asm.vfadd_vv(VReg::new(1), VReg::new(1), VReg::new(2));
        asm.addi(t[2], bs[0], 4);
        asm.vle(VReg::new(2), t[2]);
        asm.vfadd_vv(VReg::new(1), VReg::new(1), VReg::new(2));
        asm.vfmul_vf(VReg::new(1), VReg::new(1), ft[5]);
        asm.vse(VReg::new(1), bs[2]);
        asm.slli(t[2], vl, 2);
        asm.add(bs[0], bs[0], t[2]);
        asm.add(bs[2], bs[2], t[2]);
        asm.sub(t[1], t[1], vl);
    } else {
        asm.sub(t[2], bs[0], t[3]);
        asm.flw(ft[0], t[2], 0);
        asm.add(t[2], bs[0], t[3]);
        asm.flw(ft[1], t[2], 0);
        asm.fadd_s(ft[0], ft[0], ft[1]);
        asm.flw(ft[1], bs[0], -4);
        asm.fadd_s(ft[0], ft[0], ft[1]);
        asm.flw(ft[1], bs[0], 4);
        asm.fadd_s(ft[0], ft[0], ft[1]);
        asm.fmul_s(ft[0], ft[0], ft[5]);
        asm.fsw(ft[0], bs[2], 0);
        asm.addi(bs[0], bs[0], 4);
        asm.addi(bs[2], bs[2], 4);
        asm.addi(t[1], t[1], -1);
    }
    asm.bne(t[1], XReg::ZERO, l("j"));
    asm.addi(t[0], t[0], 1);
    asm.j(l("i"));
    asm.label(l("done"));
    // A vector-region boundary inside the iteration loop: make sure the
    // stores of this sweep are visible before the next iteration reads.
    if vector {
        asm.vmfence();
    }
    asm.jalr(XReg::ZERO, XReg::RA, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil;

    #[test]
    fn entries_agree_with_reference() {
        testutil::check_both_entries(|| build(Scale::tiny()));
    }

    #[test]
    fn per_iteration_phases_match_reference() {
        testutil::check_tasks(|| build(Scale::tiny()));
    }

    #[test]
    fn one_phase_per_iteration() {
        let w = build(Scale::tiny());
        assert_eq!(w.phases.len() as u64, Scale::tiny().iters);
    }
}
