//! `blackscholes` — European option pricing (RiVec; data analytics).
//!
//! Prices a batch of call options: `price = S·N(d₁) − K·D·N(d₂)` with the
//! algebraic-sigmoid normal-CDF approximation
//! `N(x) ≈ 0.5 + 0.5·a·x / √(1 + a²x²)` (a ≈ 0.8). The `d₁`, `d₂` terms
//! and the discount factor `D = e^{-rT}` are precomputed per option by the
//! input generator — a documented substitution that removes the `ln`/`exp`
//! library calls while keeping the kernel's FP shape: per element two
//! square roots, two divides and a chain of FMAs, exactly the
//! latency-hiding stress the paper uses `blackscholes` for.

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::instr::{VArithOp, VSrc};
use bvl_isa::reg::{FReg, VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// Sigmoid steepness of the CDF approximation.
const A: f32 = 0.8;

fn n_cdf(x: f32) -> f32 {
    let t = A * x;
    let u = t.mul_add(t, 1.0).sqrt();
    let v = t / u;
    v.mul_add(0.5, 0.5)
}

/// Builds `blackscholes` at `scale` (`scale.n / 2` options).
pub fn build(scale: Scale) -> Workload {
    let n = (scale.n / 2).max(256);
    let s_data = gen::f32_vec(scale.seed ^ 10, n as usize, 10.0, 200.0);
    let kd_data = gen::f32_vec(scale.seed ^ 11, n as usize, 10.0, 200.0);
    let d1_data = gen::f32_vec(scale.seed ^ 12, n as usize, -3.0, 3.0);
    let d2_data = gen::f32_vec(scale.seed ^ 13, n as usize, -3.0, 3.0);

    let mut mem = SimMemory::default();
    let sb = mem.alloc_f32(&s_data);
    let kb = mem.alloc_f32(&kd_data);
    let d1b = mem.alloc_f32(&d1_data);
    let d2b = mem.alloc_f32(&d2_data);
    let out = mem.alloc(n * 4, 64);
    let consts = mem.alloc_f32(&[A, 1.0, 0.5]);

    let expect: Vec<f32> = (0..n as usize)
        .map(|i| {
            let c1 = s_data[i] * n_cdf(d1_data[i]);
            let c2 = kd_data[i] * n_cdf(d2_data[i]);
            c1 - c2
        })
        .collect();

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    // Constant registers: fa = A, f_one = 1.0, f_half = 0.5.
    let (fa, fone, fhalf) = (FReg::new(7), FReg::new(8), FReg::new(9));

    let load_consts = |asm: &mut Assembler, t5: XReg| {
        asm.li(t5, consts as i64);
        asm.flw(fa, t5, 0);
        asm.flw(fone, t5, 4);
        asm.flw(fhalf, t5, 8);
    };

    // Scalar helper: N(x) in ft[1] from x in ft[1], clobbers ft[2].
    let emit_scalar_ncdf = |asm: &mut Assembler| {
        asm.fmul_s(ft[1], ft[1], fa); // t = a*x
        asm.fmadd_s(ft[2], ft[1], ft[1], fone); // t*t + 1
        asm.fsqrt_s(ft[2], ft[2]);
        asm.fdiv_s(ft[1], ft[1], ft[2]); // v = t/u
        asm.fmadd_s(ft[1], ft[1], fhalf, fhalf); // 0.5v + 0.5
    };

    // ---- scalar range task
    asm.label("scalar_task");
    load_consts(&mut asm, t[5]);
    asm.mv(t[0], start);
    asm.label("s_i");
    asm.bge(t[0], end, "s_done");
    asm.slli(t[2], t[0], 2);
    // c1 = S * N(d1)
    asm.li(bs[0], d1b as i64);
    asm.add(bs[0], bs[0], t[2]);
    asm.flw(ft[1], bs[0], 0);
    emit_scalar_ncdf(&mut asm);
    asm.li(bs[1], sb as i64);
    asm.add(bs[1], bs[1], t[2]);
    asm.flw(ft[3], bs[1], 0);
    asm.fmul_s(ft[4], ft[3], ft[1]);
    // c2 = KD * N(d2)
    asm.li(bs[0], d2b as i64);
    asm.add(bs[0], bs[0], t[2]);
    asm.flw(ft[1], bs[0], 0);
    emit_scalar_ncdf(&mut asm);
    asm.li(bs[1], kb as i64);
    asm.add(bs[1], bs[1], t[2]);
    asm.flw(ft[3], bs[1], 0);
    asm.fmul_s(ft[5], ft[3], ft[1]);
    asm.fsub_s(ft[4], ft[4], ft[5]);
    asm.li(bs[2], out as i64);
    asm.add(bs[2], bs[2], t[2]);
    asm.fsw(ft[4], bs[2], 0);
    asm.addi(t[0], t[0], 1);
    asm.j("s_i");
    asm.label("s_done");
    asm.halt();

    // ---- vectorized range task
    // Vector helper: N(x): v_in -> v_out, scratch vt.
    let emit_vector_ncdf = |asm: &mut Assembler, v_x: u8, v_t: u8| {
        // t = a*x
        asm.varith(
            VArithOp::FMul,
            VReg::new(v_x),
            VSrc::F(fa),
            VReg::new(v_x),
            false,
        );
        // u = t*t + 1: v_t = splat(1); v_t += t*t
        asm.vfmv_v_f(VReg::new(v_t), fone);
        asm.vfmacc_vv(VReg::new(v_t), VReg::new(v_x), VReg::new(v_x));
        asm.vfsqrt_v(VReg::new(v_t), VReg::new(v_t));
        // v = t/u
        asm.vfdiv_vv(VReg::new(v_x), VReg::new(v_x), VReg::new(v_t));
        // n = 0.5*v + 0.5: v_t = splat(0.5); v_t += 0.5*v ... use
        // vfmacc.vf with f = 0.5 and accumulate into splat(0.5).
        asm.vfmv_v_f(VReg::new(v_t), fhalf);
        asm.vfmacc_vf(VReg::new(v_t), fhalf, VReg::new(v_x));
        // result in v_t; move to v_x
        asm.vmv_v_v(VReg::new(v_x), VReg::new(v_t));
    };

    asm.label("vector_task");
    load_consts(&mut asm, t[5]);
    asm.mv(t[0], start);
    asm.label("v_tile");
    asm.bge(t[0], end, "v_done");
    asm.sub(t[6], end, t[0]);
    asm.vsetvli(vl, t[6], Sew::E32);
    asm.slli(t[2], t[0], 2);
    // v1 = N(d1)
    asm.li(bs[0], d1b as i64);
    asm.add(bs[0], bs[0], t[2]);
    asm.vle(VReg::new(1), bs[0]);
    emit_vector_ncdf(&mut asm, 1, 3);
    // v1 = S * N(d1)
    asm.li(bs[1], sb as i64);
    asm.add(bs[1], bs[1], t[2]);
    asm.vle(VReg::new(4), bs[1]);
    asm.vfmul_vv(VReg::new(1), VReg::new(4), VReg::new(1));
    // v2 = N(d2)
    asm.li(bs[0], d2b as i64);
    asm.add(bs[0], bs[0], t[2]);
    asm.vle(VReg::new(2), bs[0]);
    emit_vector_ncdf(&mut asm, 2, 3);
    // v2 = KD * N(d2)
    asm.li(bs[1], kb as i64);
    asm.add(bs[1], bs[1], t[2]);
    asm.vle(VReg::new(4), bs[1]);
    asm.vfmul_vv(VReg::new(2), VReg::new(4), VReg::new(2));
    // out = v1 - v2
    asm.vfsub_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.li(bs[2], out as i64);
    asm.add(bs[2], bs[2], t[2]);
    asm.vse(VReg::new(1), bs[2]);
    asm.add(t[0], t[0], vl);
    asm.j("v_tile");
    asm.label("v_done");
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries
    asm.label("serial");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.j("scalar_task");
    asm.label("vector");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.j("vector_task");

    let program = Arc::new(asm.assemble().expect("blackscholes assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");
    let chunk = (n / 16).max(32);
    let tasks = parallel_for_tasks(
        n,
        chunk,
        scalar_pc,
        Some(vector_pc),
        regs::START,
        regs::END,
        &[],
    );

    Workload {
        name: "blackscholes",
        class: WorkloadClass::DataParallelApp,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(tasks)],
        check: Box::new(move |m| {
            let got = m.read_f32_array(out, expect.len());
            for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                if g.to_bits() != e.to_bits() {
                    return Err(format!("blackscholes mismatch at {i}: got {g} want {e}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil;

    #[test]
    fn cdf_approximation_is_sane() {
        assert!((n_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(n_cdf(3.0) > 0.9);
        assert!(n_cdf(-3.0) < 0.1);
    }

    #[test]
    fn entries_agree_with_reference() {
        testutil::check_both_entries(|| build(Scale::tiny()));
    }

    #[test]
    fn tasks_cover_options() {
        testutil::check_tasks(|| build(Scale::tiny()));
    }
}
