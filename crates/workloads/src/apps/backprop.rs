//! `backprop` — forward classification on a fully connected layer
//! (Rodinia; a machine-learning mobile workload per the paper).
//!
//! `out[j] = act( Σ_i in[i] * w[i][j] )` with the rational activation
//! `act(x) = x / (1 + |x|)` (a standard fast sigmoid that keeps the FP
//! instruction mix — fma, fabs, fadd, fdiv — without a transcendental
//! library). Vectorized over output neurons `j`: the weight matrix is
//! stored row-major `w[i][j]`, so each input `i` contributes a unit-stride
//! row scaled by `in[i]` — the same FMA pattern Rodinia's kernel has.

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// Input-layer width.
const N_IN: u64 = 64;

/// Builds `backprop` at `scale` (`scale.n / 8` output neurons).
pub fn build(scale: Scale) -> Workload {
    let n_out = (scale.n / 8).max(64);
    let in_data = gen::f32_vec(scale.seed, N_IN as usize, -1.0, 1.0);
    let w_data = gen::f32_vec(scale.seed ^ 4, (N_IN * n_out) as usize, -0.5, 0.5);

    let mut mem = SimMemory::default();
    let input = mem.alloc_f32(&in_data);
    let weights = mem.alloc_f32(&w_data);
    let out = mem.alloc(n_out * 4, 64);

    let expect: Vec<f32> = (0..n_out as usize)
        .map(|j| {
            let mut acc = 0f32;
            for i in 0..N_IN as usize {
                acc = in_data[i].mul_add(w_data[i * n_out as usize + j], acc);
            }
            acc / (1.0 + acc.abs())
        })
        .collect();

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let one = mem.alloc_f32(&[1.0]);
    let row_bytes = (n_out * 4) as i64;

    // ---- scalar range task over output neurons [start, end)
    asm.label("scalar_task");
    asm.li(t[5], one as i64);
    asm.flw(ft[5], t[5], 0); // 1.0
    asm.mv(t[0], start); // j
    asm.label("s_j");
    asm.bge(t[0], end, "s_done");
    asm.fmv_w_x(ft[0], XReg::ZERO); // acc = 0
    asm.li(bs[0], input as i64);
    asm.li(bs[1], weights as i64);
    asm.slli(t[2], t[0], 2);
    asm.add(bs[1], bs[1], t[2]); // &w[0][j]
    asm.li(t[1], N_IN as i64);
    asm.label("s_i");
    asm.flw(ft[1], bs[0], 0);
    asm.flw(ft[2], bs[1], 0);
    asm.fmadd_s(ft[0], ft[1], ft[2], ft[0]);
    asm.addi(bs[0], bs[0], 4);
    asm.li(t[3], row_bytes);
    asm.add(bs[1], bs[1], t[3]);
    asm.addi(t[1], t[1], -1);
    asm.bne(t[1], XReg::ZERO, "s_i");
    // act(acc) = acc / (1 + |acc|)
    asm.fabs_s(ft[1], ft[0]);
    asm.fadd_s(ft[1], ft[1], ft[5]);
    asm.fdiv_s(ft[0], ft[0], ft[1]);
    asm.li(bs[2], out as i64);
    asm.add(bs[2], bs[2], t[2]);
    asm.fsw(ft[0], bs[2], 0);
    asm.addi(t[0], t[0], 1);
    asm.j("s_j");
    asm.label("s_done");
    asm.halt();

    // ---- vectorized range task: j-tiles of VL output neurons
    asm.label("vector_task");
    asm.li(t[5], one as i64);
    asm.flw(ft[5], t[5], 0);
    asm.mv(t[0], start); // j tile base
    asm.label("v_tile");
    asm.bge(t[0], end, "v_done");
    asm.sub(t[6], end, t[0]);
    asm.vsetvli(vl, t[6], Sew::E32);
    asm.vmv_v_x(VReg::new(1), XReg::ZERO); // acc tile
    asm.li(bs[0], input as i64);
    asm.li(bs[1], weights as i64);
    asm.slli(t[2], t[0], 2);
    asm.add(bs[1], bs[1], t[2]); // &w[0][j_tile]
    asm.li(t[1], N_IN as i64);
    asm.label("v_i");
    asm.flw(ft[1], bs[0], 0); // in[i]
    asm.vle(VReg::new(2), bs[1]); // w[i][tile]
    asm.vfmacc_vf(VReg::new(1), ft[1], VReg::new(2));
    asm.addi(bs[0], bs[0], 4);
    asm.li(t[3], row_bytes);
    asm.add(bs[1], bs[1], t[3]);
    asm.addi(t[1], t[1], -1);
    asm.bne(t[1], XReg::ZERO, "v_i");
    // activation: v3 = |acc| + 1; out = acc / v3
    asm.varith(
        bvl_isa::instr::VArithOp::FAbs,
        VReg::new(3),
        bvl_isa::instr::VSrc::V(VReg::new(1)),
        VReg::new(1),
        false,
    );
    asm.varith(
        bvl_isa::instr::VArithOp::FAdd,
        VReg::new(3),
        bvl_isa::instr::VSrc::F(ft[5]),
        VReg::new(3),
        false,
    );
    // vd = vs2 / src1 ordering: FDiv computes b / a with b = vs2.
    asm.varith(
        bvl_isa::instr::VArithOp::FDiv,
        VReg::new(4),
        bvl_isa::instr::VSrc::V(VReg::new(3)),
        VReg::new(1),
        false,
    );
    asm.li(bs[2], out as i64);
    asm.add(bs[2], bs[2], t[2]);
    asm.vse(VReg::new(4), bs[2]);
    asm.add(t[0], t[0], vl);
    asm.j("v_tile");
    asm.label("v_done");
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries
    asm.label("serial");
    asm.li(start, 0);
    asm.li(end, n_out as i64);
    asm.j("scalar_task");
    asm.label("vector");
    asm.li(start, 0);
    asm.li(end, n_out as i64);
    asm.j("vector_task");

    let program = Arc::new(asm.assemble().expect("backprop assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");
    let chunk = (n_out / 16).max(32);
    let tasks = parallel_for_tasks(
        n_out,
        chunk,
        scalar_pc,
        Some(vector_pc),
        regs::START,
        regs::END,
        &[],
    );

    Workload {
        name: "backprop",
        class: WorkloadClass::DataParallelApp,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(tasks)],
        check: Box::new(move |m| {
            let got = m.read_f32_array(out, expect.len());
            for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
                if g.to_bits() != e.to_bits() {
                    return Err(format!("backprop mismatch at {i}: got {g} want {e}"));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil;

    #[test]
    fn entries_agree_with_reference() {
        testutil::check_both_entries(|| build(Scale::tiny()));
    }

    #[test]
    fn tasks_cover_outputs() {
        testutil::check_tasks(|| build(Scale::tiny()));
    }
}
