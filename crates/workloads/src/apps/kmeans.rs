//! `kmeans` — nearest-centroid assignment (Rodinia; ML clustering).
//!
//! For each point, finds the closest of `K` centroids by squared Euclidean
//! distance and records its index. Points are stored structure-of-arrays
//! (one unit-stride array per dimension), which is how Rodinia's kernel is
//! vectorized: distances for a whole tile of points are computed per
//! centroid, then masked merges keep the running best — exercising vector
//! compares, the mask register and `vmerge`.

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::instr::{VArithOp, VSrc};
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// Point dimensionality.
const DIM: usize = 4;
/// Number of centroids.
const K: usize = 8;
/// "Infinity" initial best distance.
const BIG: f32 = 1e30;

/// Builds `kmeans` at `scale` (`scale.n / 4` points).
pub fn build(scale: Scale) -> Workload {
    let n = (scale.n / 4).max(256);
    // SoA coordinates.
    let coords: Vec<Vec<f32>> = (0..DIM)
        .map(|d| gen::f32_vec(scale.seed ^ (d as u64 + 5), n as usize, -100.0, 100.0))
        .collect();
    let cents: Vec<Vec<f32>> = (0..K)
        .map(|k| gen::f32_vec(scale.seed ^ (k as u64 + 50), DIM, -100.0, 100.0))
        .collect();

    let mut mem = SimMemory::default();
    let coord_bases: Vec<u64> = coords.iter().map(|c| mem.alloc_f32(c)).collect();
    // Centroids flattened [k][d].
    let cent_flat: Vec<f32> = cents.iter().flatten().copied().collect();
    let cent_base = mem.alloc_f32(&cent_flat);
    let assign = mem.alloc(n * 4, 64);
    let big_const = mem.alloc_f32(&[BIG]);

    // Reference (same op order: k ascending, fused d2 accumulation,
    // strict less-than).
    let expect: Vec<u32> = (0..n as usize)
        .map(|i| {
            let mut best = 0u32;
            let mut bestd = BIG;
            for (k, cent) in cents.iter().enumerate() {
                let mut d2 = 0f32;
                for d in 0..DIM {
                    let diff = coords[d][i] - cent[d];
                    d2 = diff.mul_add(diff, d2);
                }
                if d2 < bestd {
                    bestd = d2;
                    best = k as u32;
                }
            }
            best
        })
        .collect();

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;

    // ---- scalar range task over points [start, end)
    asm.label("scalar_task");
    asm.li(t[5], big_const as i64);
    asm.flw(ft[5], t[5], 0); // BIG
    asm.mv(t[0], start); // i
    asm.label("s_i");
    asm.bge(t[0], end, "s_done");
    asm.fmv_s(ft[4], ft[5]); // bestd = BIG
    asm.li(t[4], 0); // best = 0
    asm.li(t[1], 0); // k
    asm.li(bs[1], cent_base as i64);
    asm.label("s_k");
    asm.fmv_w_x(ft[0], XReg::ZERO); // d2 = 0
    asm.slli(t[2], t[0], 2);
    for (d, cb) in coord_bases.iter().enumerate() {
        asm.li(bs[0], *cb as i64);
        asm.add(bs[0], bs[0], t[2]);
        asm.flw(ft[1], bs[0], 0); // p[d][i]
        asm.flw(ft[2], bs[1], (d * 4) as i64); // c[k][d]
        asm.fsub_s(ft[1], ft[1], ft[2]);
        asm.fmadd_s(ft[0], ft[1], ft[1], ft[0]);
    }
    // if d2 < bestd { bestd = d2; best = k }
    asm.flt_s(t[3], ft[0], ft[4]);
    asm.beq(t[3], XReg::ZERO, "s_nokeep");
    asm.fmv_s(ft[4], ft[0]);
    asm.mv(t[4], t[1]);
    asm.label("s_nokeep");
    asm.addi(t[1], t[1], 1);
    asm.addi(bs[1], bs[1], (DIM * 4) as i64);
    asm.li(t[3], K as i64);
    asm.blt(t[1], t[3], "s_k");
    // assign[i] = best
    asm.li(bs[2], assign as i64);
    asm.add(bs[2], bs[2], t[2]);
    asm.sw(t[4], bs[2], 0);
    asm.addi(t[0], t[0], 1);
    asm.j("s_i");
    asm.label("s_done");
    asm.halt();

    // ---- vectorized range task: point tiles of VL
    // v1 = bestd, v2 = best, v3 = d2, v4 = diff/load scratch
    asm.label("vector_task");
    asm.li(t[5], big_const as i64);
    asm.flw(ft[5], t[5], 0);
    asm.mv(t[0], start);
    asm.label("v_tile");
    asm.bge(t[0], end, "v_done");
    asm.sub(t[6], end, t[0]);
    asm.vsetvli(vl, t[6], Sew::E32);
    asm.vfmv_v_f(VReg::new(1), ft[5]); // bestd = BIG
    asm.vmv_v_x(VReg::new(2), XReg::ZERO); // best = 0
    asm.li(t[1], 0); // k
    asm.li(bs[1], cent_base as i64);
    asm.slli(t[2], t[0], 2); // byte offset of tile
    asm.label("v_k");
    asm.vmv_v_x(VReg::new(3), XReg::ZERO); // d2 = 0
    for (d, cb) in coord_bases.iter().enumerate() {
        asm.li(bs[0], *cb as i64);
        asm.add(bs[0], bs[0], t[2]);
        asm.vle(VReg::new(4), bs[0]); // p[d][tile]
        asm.flw(ft[1], bs[1], (d * 4) as i64); // c[k][d]
                                               // diff = p - c  (FSub: vs2 - src1)
        asm.varith(
            VArithOp::FSub,
            VReg::new(4),
            VSrc::F(ft[1]),
            VReg::new(4),
            false,
        );
        // d2 += diff * diff
        asm.vfmacc_vv(VReg::new(3), VReg::new(4), VReg::new(4));
    }
    // mask = d2 < bestd
    asm.vmflt_vv(VReg::MASK, VReg::new(3), VReg::new(1));
    // bestd = mask ? d2 : bestd
    asm.vmerge_vvm(VReg::new(1), VReg::new(1), VReg::new(3));
    // best = mask ? k : best
    asm.vmv_v_x(VReg::new(5), t[1]);
    asm.vmerge_vvm(VReg::new(2), VReg::new(2), VReg::new(5));
    asm.addi(t[1], t[1], 1);
    asm.addi(bs[1], bs[1], (DIM * 4) as i64);
    asm.li(t[3], K as i64);
    asm.blt(t[1], t[3], "v_k");
    // store assignments
    asm.li(bs[2], assign as i64);
    asm.add(bs[2], bs[2], t[2]);
    asm.vse(VReg::new(2), bs[2]);
    asm.add(t[0], t[0], vl);
    asm.j("v_tile");
    asm.label("v_done");
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries
    asm.label("serial");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.j("scalar_task");
    asm.label("vector");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.j("vector_task");

    let program = Arc::new(asm.assemble().expect("kmeans assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");
    let chunk = (n / 16).max(32);
    let tasks = parallel_for_tasks(
        n,
        chunk,
        scalar_pc,
        Some(vector_pc),
        regs::START,
        regs::END,
        &[],
    );

    Workload {
        name: "kmeans",
        class: WorkloadClass::DataParallelApp,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(tasks)],
        check: Box::new(move |m| {
            let got = m.read_u32_array(assign, expect.len());
            if got == expect {
                Ok(())
            } else {
                let i = got
                    .iter()
                    .zip(&expect)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                Err(format!(
                    "kmeans mismatch at {i}: got {} want {}",
                    got[i], expect[i]
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil;

    #[test]
    fn entries_agree_with_reference() {
        testutil::check_both_entries(|| build(Scale::tiny()));
    }

    #[test]
    fn tasks_cover_points() {
        testutil::check_tasks(|| build(Scale::tiny()));
    }
}
