//! The eight data-parallel applications of Table V.
//!
//! | name | suite (paper) | pattern |
//! |---|---|---|
//! | `backprop` | Rodinia | dense layer forward pass (FMA + activation) |
//! | `kmeans` | Rodinia | nearest-centroid assignment (distance + masks) |
//! | `particlefilter` | Rodinia | weight evaluation + argmax reduction |
//! | `blackscholes` | RiVec | option pricing (div/sqrt-heavy polynomials) |
//! | `jacobi2d` | RiVec | 5-point stencil, double buffered |
//! | `pathfinder` | Rodinia | row-wise dynamic programming (min chains) |
//! | `lavamd` | Rodinia | boxed particle interactions (1/(1+d²) forces) |
//! | `sw` | genomics | Smith-Waterman local alignment, anti-diagonal |

pub mod backprop;
pub mod blackscholes;
pub mod jacobi2d;
pub mod kmeans;
pub mod lavamd;
pub mod particlefilter;
pub mod pathfinder;
pub mod sw;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::workload::Workload;
    use bvl_isa::exec::Machine;

    /// Runs the scalar and vectorized whole-run entries functionally and
    /// checks both against the reference.
    pub fn check_both_entries(build: impl Fn() -> Workload) {
        for vector in [false, true] {
            let w = build();
            let mut m = Machine::new(w.mem.clone(), 512);
            let entry = if vector {
                w.vector_entry.expect("vectorized variant")
            } else {
                w.serial_entry
            };
            m.set_pc(entry);
            m.run(&w.program, 200_000_000).expect("entry runs to halt");
            (w.check)(m.mem()).unwrap_or_else(|e| {
                panic!(
                    "{} ({}): {e}",
                    w.name,
                    if vector { "vector" } else { "scalar" }
                )
            });
        }
    }

    /// Executes every task of every phase functionally (alternating
    /// variants) and checks the result.
    pub fn check_tasks(build: impl Fn() -> Workload) {
        let w = build();
        let mut m = Machine::new(w.mem.clone(), 512);
        for phase in &w.phases {
            for (i, task) in phase.tasks.iter().enumerate() {
                for &(r, v) in &task.args {
                    m.set_xreg(r, v);
                }
                m.set_pc(task.entry(i % 2 == 0));
                m.run(&w.program, 200_000_000).expect("task runs to halt");
            }
        }
        (w.check)(m.mem()).unwrap_or_else(|e| panic!("{} (tasks): {e}", w.name));
    }
}
