//! `particlefilter` — object tracking (Rodinia; image processing).
//!
//! One tracking step: evaluate each particle's likelihood weight against
//! the observed position, `w[i] = 1 / (1 + d²)` with
//! `d² = (x[i]−ox)² + (y[i]−oy)²`, then select the maximum-weight particle
//! (the resampling pivot). Two phases: an embarrassingly parallel weight
//! sweep and an argmax reduction — the reduction exercises `vfredmax`,
//! `vmfeq` and `vfirst` (VXU traffic in the VLITTLE engine).

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::instr::{VArithOp, VSrc};
use bvl_isa::reg::{FReg, VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::{parallel_for_tasks, Task};
use std::sync::Arc;

/// Observed position.
const OBS: (f32, f32) = (12.5, -3.75);

/// Builds `particlefilter` at `scale` (`scale.n` particles).
pub fn build(scale: Scale) -> Workload {
    let n = scale.n;
    let xs = gen::f32_vec(scale.seed ^ 40, n as usize, -50.0, 50.0);
    let ys = gen::f32_vec(scale.seed ^ 41, n as usize, -50.0, 50.0);

    let mut mem = SimMemory::default();
    let xb = mem.alloc_f32(&xs);
    let yb = mem.alloc_f32(&ys);
    let wb = mem.alloc(n * 4, 64);
    let best_out = mem.alloc(8, 8); // [best_index u32, best_weight f32]
    let consts = mem.alloc_f32(&[OBS.0, OBS.1, 1.0, -1e30]);

    // Reference.
    let weights: Vec<f32> = (0..n as usize)
        .map(|i| {
            let dx = xs[i] - OBS.0;
            let dy = ys[i] - OBS.1;
            let d2 = dy.mul_add(dy, dx * dx);
            1.0 / (1.0 + d2)
        })
        .collect();
    let best_w = weights.iter().copied().fold(f32::MIN, f32::max);
    let best_i = weights.iter().position(|&w| w == best_w).expect("nonempty") as u32;

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let (fox, foy, fone) = (FReg::new(7), FReg::new(8), FReg::new(9));

    let load_consts = |asm: &mut Assembler| {
        asm.li(regs::T[5], consts as i64);
        asm.flw(fox, regs::T[5], 0);
        asm.flw(foy, regs::T[5], 4);
        asm.flw(fone, regs::T[5], 8);
    };

    // ---- phase 1, scalar: weights for particles [start, end)
    asm.label("weights_scalar");
    load_consts(&mut asm);
    asm.mv(t[0], start);
    asm.label("ws_i");
    asm.bge(t[0], end, "ws_done");
    asm.slli(t[2], t[0], 2);
    asm.li(bs[0], xb as i64);
    asm.add(bs[0], bs[0], t[2]);
    asm.flw(ft[0], bs[0], 0);
    asm.fsub_s(ft[0], ft[0], fox); // dx
    asm.li(bs[0], yb as i64);
    asm.add(bs[0], bs[0], t[2]);
    asm.flw(ft[1], bs[0], 0);
    asm.fsub_s(ft[1], ft[1], foy); // dy
    asm.fmul_s(ft[2], ft[0], ft[0]); // dx*dx
    asm.fmadd_s(ft[2], ft[1], ft[1], ft[2]); // + dy*dy
    asm.fadd_s(ft[2], ft[2], fone);
    asm.fdiv_s(ft[2], fone, ft[2]);
    asm.li(bs[1], wb as i64);
    asm.add(bs[1], bs[1], t[2]);
    asm.fsw(ft[2], bs[1], 0);
    asm.addi(t[0], t[0], 1);
    asm.j("ws_i");
    asm.label("ws_done");
    asm.halt();

    // ---- phase 1, vector
    asm.label("weights_vector");
    load_consts(&mut asm);
    asm.mv(t[0], start);
    asm.label("wv_tile");
    asm.bge(t[0], end, "wv_done");
    asm.sub(t[6], end, t[0]);
    asm.vsetvli(vl, t[6], Sew::E32);
    asm.slli(t[2], t[0], 2);
    asm.li(bs[0], xb as i64);
    asm.add(bs[0], bs[0], t[2]);
    asm.vle(VReg::new(1), bs[0]);
    asm.varith(
        VArithOp::FSub,
        VReg::new(1),
        VSrc::F(fox),
        VReg::new(1),
        false,
    ); // dx
    asm.li(bs[0], yb as i64);
    asm.add(bs[0], bs[0], t[2]);
    asm.vle(VReg::new(2), bs[0]);
    asm.varith(
        VArithOp::FSub,
        VReg::new(2),
        VSrc::F(foy),
        VReg::new(2),
        false,
    ); // dy
    asm.vfmul_vv(VReg::new(3), VReg::new(1), VReg::new(1)); // dx*dx
    asm.vfmacc_vv(VReg::new(3), VReg::new(2), VReg::new(2)); // + dy*dy
    asm.varith(
        VArithOp::FAdd,
        VReg::new(3),
        VSrc::F(fone),
        VReg::new(3),
        false,
    );
    // w = 1 / (1 + d2): splat(1) / v3
    asm.vfmv_v_f(VReg::new(4), fone);
    asm.vfdiv_vv(VReg::new(4), VReg::new(4), VReg::new(3));
    asm.li(bs[1], wb as i64);
    asm.add(bs[1], bs[1], t[2]);
    asm.vse(VReg::new(4), bs[1]);
    asm.add(t[0], t[0], vl);
    asm.j("wv_tile");
    asm.label("wv_done");
    asm.vmfence();
    asm.halt();

    // ---- phase 2, scalar argmax over all weights
    asm.label("argmax_scalar");
    load_consts(&mut asm);
    asm.li(t[5], consts as i64);
    asm.flw(ft[4], t[5], 12); // best = -1e30
    asm.li(t[4], 0); // best idx
    asm.li(t[0], 0);
    asm.li(t[1], n as i64);
    asm.li(bs[0], wb as i64);
    asm.label("as_i");
    asm.bge(t[0], t[1], "as_done");
    asm.flw(ft[0], bs[0], 0);
    asm.fle_s(t[2], ft[0], ft[4]); // w <= best ?
    asm.bne(t[2], XReg::ZERO, "as_skip");
    asm.fmv_s(ft[4], ft[0]);
    asm.mv(t[4], t[0]);
    asm.label("as_skip");
    asm.addi(bs[0], bs[0], 4);
    asm.addi(t[0], t[0], 1);
    asm.j("as_i");
    asm.label("as_done");
    asm.li(bs[1], best_out as i64);
    asm.sw(t[4], bs[1], 0);
    asm.fsw(ft[4], bs[1], 4);
    asm.halt();

    // ---- phase 2, vector argmax: vfredmax for the value, then a
    //      vmfeq+vfirst scan for the first index attaining it.
    asm.label("argmax_vector");
    load_consts(&mut asm);
    asm.li(t[5], consts as i64);
    asm.flw(ft[4], t[5], 12);
    // Pass 1: global max via per-strip reductions.
    asm.li(t[0], 0);
    asm.li(t[1], n as i64);
    asm.li(bs[0], wb as i64);
    asm.label("av_max");
    asm.bge(t[0], t[1], "av_maxdone");
    asm.sub(t[6], t[1], t[0]);
    asm.vsetvli(vl, t[6], Sew::E32);
    asm.vle(VReg::new(1), bs[0]);
    asm.fmv_x_w(t[2], ft[4]);
    asm.vmv_s_x(VReg::new(2), t[2]); // init = running max
    asm.vfredmax(VReg::new(3), VReg::new(1), VReg::new(2));
    asm.vfmv_f_s(ft[4], VReg::new(3));
    asm.slli(t[2], vl, 2);
    asm.add(bs[0], bs[0], t[2]);
    asm.add(t[0], t[0], vl);
    asm.j("av_max");
    asm.label("av_maxdone");
    // Pass 2: first index equal to the max.
    asm.li(t[0], 0);
    asm.li(bs[0], wb as i64);
    asm.label("av_find");
    asm.sub(t[6], t[1], t[0]);
    asm.vsetvli(vl, t[6], Sew::E32);
    asm.vle(VReg::new(1), bs[0]);
    asm.vcmp(
        bvl_isa::instr::VCmpOp::FEq,
        VReg::MASK,
        VReg::new(1),
        VSrc::F(ft[4]),
    );
    asm.vfirst(t[3], VReg::MASK);
    asm.li(t[2], -1i64);
    asm.bne(t[3], t[2], "av_found");
    asm.slli(t[2], vl, 2);
    asm.add(bs[0], bs[0], t[2]);
    asm.add(t[0], t[0], vl);
    asm.j("av_find");
    asm.label("av_found");
    asm.add(t[4], t[0], t[3]);
    asm.li(bs[1], best_out as i64);
    asm.sw(t[4], bs[1], 0);
    asm.fsw(ft[4], bs[1], 4);
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries: weights sweep then argmax. Since both task
    // bodies halt, the whole-run variants are emitted as straight-line
    // versions: set range to [0,n), fall into the weight code... The
    // simplest correct composition: dedicated entries that jump to the
    // weight phase with a continuation flag is overkill here — emit the
    // two phases inline by duplicating the (short) drivers.
    asm.label("serial");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.li(regs::ARG2, 1); // continuation flag: fall through to argmax
    asm.j("weights_scalar_chain");
    asm.label("vector");
    asm.li(start, 0);
    asm.li(end, n as i64);
    asm.li(regs::ARG2, 1);
    asm.j("weights_vector_chain");

    // Chained variants: same weight loops, but branch to argmax at the
    // end instead of halting.
    emit_weights_chain(&mut asm, false, xb, yb, wb, consts);
    emit_weights_chain(&mut asm, true, xb, yb, wb, consts);

    let program = Arc::new(asm.assemble().expect("particlefilter assembles"));
    let w_scalar = program.label("weights_scalar").expect("label");
    let w_vector = program.label("weights_vector").expect("label");
    let a_scalar = program.label("argmax_scalar").expect("label");
    let a_vector = program.label("argmax_vector").expect("label");

    let chunk = (n / 16).max(64);
    let weight_tasks = parallel_for_tasks(
        n,
        chunk,
        w_scalar,
        Some(w_vector),
        regs::START,
        regs::END,
        &[],
    );
    let argmax_task = Task {
        scalar_pc: a_scalar,
        vector_pc: Some(a_vector),
        args: vec![],
    };

    Workload {
        name: "particlefilter",
        class: WorkloadClass::DataParallelApp,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(weight_tasks), Phase::new(vec![argmax_task])],
        check: Box::new(move |m| {
            use bvl_isa::mem::Memory;
            let got_w = m.read_f32_array(wb, weights.len());
            for (i, (&g, &e)) in got_w.iter().zip(&weights).enumerate() {
                if g.to_bits() != e.to_bits() {
                    return Err(format!("weight mismatch at {i}: got {g} want {e}"));
                }
            }
            let gi = m.read_uint(best_out, 4) as u32;
            let gw = m.read_f32(best_out + 4);
            if gi != best_i {
                return Err(format!("argmax index: got {gi} want {best_i}"));
            }
            if gw.to_bits() != best_w.to_bits() {
                return Err(format!("argmax weight: got {gw} want {best_w}"));
            }
            Ok(())
        }),
    }
}

/// Emits the chained whole-run weight sweep ending in a jump to the
/// matching argmax phase.
fn emit_weights_chain(asm: &mut Assembler, vector: bool, xb: u64, yb: u64, wb: u64, consts: u64) {
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let (fox, foy, fone) = (FReg::new(7), FReg::new(8), FReg::new(9));
    let tag = if vector { "vector" } else { "scalar" };
    let l = |s: &str| format!("chain_{tag}${s}");

    asm.label(format!("weights_{tag}_chain"));
    asm.li(t[5], consts as i64);
    asm.flw(fox, t[5], 0);
    asm.flw(foy, t[5], 4);
    asm.flw(fone, t[5], 8);
    asm.mv(t[0], start);
    asm.label(l("i"));
    asm.bge(t[0], end, l("done"));
    if vector {
        asm.sub(t[6], end, t[0]);
        asm.vsetvli(vl, t[6], Sew::E32);
        asm.slli(t[2], t[0], 2);
        asm.li(bs[0], xb as i64);
        asm.add(bs[0], bs[0], t[2]);
        asm.vle(VReg::new(1), bs[0]);
        asm.varith(
            VArithOp::FSub,
            VReg::new(1),
            VSrc::F(fox),
            VReg::new(1),
            false,
        );
        asm.li(bs[0], yb as i64);
        asm.add(bs[0], bs[0], t[2]);
        asm.vle(VReg::new(2), bs[0]);
        asm.varith(
            VArithOp::FSub,
            VReg::new(2),
            VSrc::F(foy),
            VReg::new(2),
            false,
        );
        asm.vfmul_vv(VReg::new(3), VReg::new(1), VReg::new(1));
        asm.vfmacc_vv(VReg::new(3), VReg::new(2), VReg::new(2));
        asm.varith(
            VArithOp::FAdd,
            VReg::new(3),
            VSrc::F(fone),
            VReg::new(3),
            false,
        );
        asm.vfmv_v_f(VReg::new(4), fone);
        asm.vfdiv_vv(VReg::new(4), VReg::new(4), VReg::new(3));
        asm.li(bs[1], wb as i64);
        asm.add(bs[1], bs[1], t[2]);
        asm.vse(VReg::new(4), bs[1]);
        asm.add(t[0], t[0], vl);
    } else {
        asm.slli(t[2], t[0], 2);
        asm.li(bs[0], xb as i64);
        asm.add(bs[0], bs[0], t[2]);
        asm.flw(ft[0], bs[0], 0);
        asm.fsub_s(ft[0], ft[0], fox);
        asm.li(bs[0], yb as i64);
        asm.add(bs[0], bs[0], t[2]);
        asm.flw(ft[1], bs[0], 0);
        asm.fsub_s(ft[1], ft[1], foy);
        asm.fmul_s(ft[2], ft[0], ft[0]);
        asm.fmadd_s(ft[2], ft[1], ft[1], ft[2]);
        asm.fadd_s(ft[2], ft[2], fone);
        asm.fdiv_s(ft[2], fone, ft[2]);
        asm.li(bs[1], wb as i64);
        asm.add(bs[1], bs[1], t[2]);
        asm.fsw(ft[2], bs[1], 0);
        asm.addi(t[0], t[0], 1);
    }
    asm.j(l("i"));
    asm.label(l("done"));
    if vector {
        asm.vmfence();
        asm.j("argmax_vector");
    } else {
        asm.j("argmax_scalar");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil;

    #[test]
    fn entries_agree_with_reference() {
        testutil::check_both_entries(|| build(Scale::tiny()));
    }

    #[test]
    fn two_phase_task_decomposition() {
        let w = build(Scale::tiny());
        assert_eq!(w.phases.len(), 2);
        assert_eq!(w.phases[1].tasks.len(), 1);
        testutil::check_tasks(|| build(Scale::tiny()));
    }
}
