//! `lavamd` — boxed particle interactions (Rodinia; molecular dynamics).
//!
//! Particles live in boxes; within each box every particle accumulates a
//! pairwise force from every other particle:
//! `s = 1/(1 + d²)`, `F += Δ·s` — the soft interaction kernel keeps
//! Rodinia's FP shape (subtract, two FMAs, divide) without the `exp` call.
//! Vectorized over the partner particles `j` with **ordered sum
//! reductions** (`vfredosum`) per particle — the reduction-heavy workload
//! the paper's Figure 7 shows dominated by long-latency and cross-element
//! stalls.

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::instr::{VArithOp, VSrc};
use bvl_isa::reg::{FReg, VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// Particles per box.
const BOX: u64 = 32;

/// Builds `lavamd` at `scale` (`scale.n / 256` boxes of 32 particles).
pub fn build(scale: Scale) -> Workload {
    let boxes = (scale.n / 256).max(8);
    let n = boxes * BOX;
    let xs = gen::f32_vec(scale.seed ^ 60, n as usize, -5.0, 5.0);
    let ys = gen::f32_vec(scale.seed ^ 61, n as usize, -5.0, 5.0);

    let mut mem = SimMemory::default();
    let xb = mem.alloc_f32(&xs);
    let yb = mem.alloc_f32(&ys);
    let fxb = mem.alloc(n * 4, 64);
    let fyb = mem.alloc(n * 4, 64);
    let one_c = mem.alloc_f32(&[1.0]);

    // Reference: j ascending within the box, ordered accumulation.
    let mut efx = vec![0f32; n as usize];
    let mut efy = vec![0f32; n as usize];
    for b in 0..boxes as usize {
        let base = b * BOX as usize;
        for i in 0..BOX as usize {
            let (pi_x, pi_y) = (xs[base + i], ys[base + i]);
            let (mut fx, mut fy) = (0f32, 0f32);
            for j in 0..BOX as usize {
                let dx = xs[base + j] - pi_x;
                let dy = ys[base + j] - pi_y;
                let d2 = dy.mul_add(dy, dx * dx);
                let s = 1.0 / (1.0 + d2);
                fx += dx * s;
                fy += dy * s;
            }
            efx[base + i] = fx;
            efy[base + i] = fy;
        }
    }

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let t = regs::T;
    let bs = regs::B;
    let ft = regs::FT;
    let fone = FReg::new(7);
    let (fxi, fyi) = (FReg::new(8), FReg::new(9));
    let (facx, facy) = (FReg::new(10), FReg::new(11));

    let emit_pair = |asm: &mut Assembler| {
        // ft0 = dx, ft1 = dy, ft2 = scratch; facx/facy accumulate.
        asm.fsub_s(ft[0], ft[0], fxi);
        asm.fsub_s(ft[1], ft[1], fyi);
        asm.fmul_s(ft[2], ft[0], ft[0]);
        asm.fmadd_s(ft[2], ft[1], ft[1], ft[2]); // d2
        asm.fadd_s(ft[2], ft[2], fone);
        asm.fdiv_s(ft[2], fone, ft[2]); // s
                                        // Unfused multiply-then-add, matching the vectorized
                                        // vfmul + vfredosum exactly (and the Rust reference).
        asm.fmul_s(ft[0], ft[0], ft[2]);
        asm.fadd_s(facx, facx, ft[0]); // fx += dx*s
        asm.fmul_s(ft[1], ft[1], ft[2]);
        asm.fadd_s(facy, facy, ft[1]); // fy += dy*s
    };

    // ---- scalar range task over boxes [start, end)
    asm.label("scalar_task");
    asm.li(t[5], one_c as i64);
    asm.flw(fone, t[5], 0);
    asm.mv(t[0], start);
    asm.label("s_b");
    asm.bge(t[0], end, "s_done");
    asm.li(t[3], (BOX * 4) as i64);
    asm.mul(t[4], t[0], t[3]);
    asm.li(t[1], 0); // i
    asm.label("s_i");
    asm.li(bs[0], xb as i64);
    asm.add(bs[0], bs[0], t[4]);
    asm.li(bs[1], yb as i64);
    asm.add(bs[1], bs[1], t[4]);
    asm.slli(t[2], t[1], 2);
    asm.add(t[5], bs[0], t[2]);
    asm.flw(fxi, t[5], 0);
    asm.add(t[5], bs[1], t[2]);
    asm.flw(fyi, t[5], 0);
    asm.fmv_w_x(facx, XReg::ZERO);
    asm.fmv_w_x(facy, XReg::ZERO);
    asm.li(t[2], BOX as i64);
    asm.label("s_j");
    asm.flw(ft[0], bs[0], 0);
    asm.flw(ft[1], bs[1], 0);
    emit_pair(&mut asm);
    asm.addi(bs[0], bs[0], 4);
    asm.addi(bs[1], bs[1], 4);
    asm.addi(t[2], t[2], -1);
    asm.bne(t[2], XReg::ZERO, "s_j");
    // store forces
    asm.slli(t[2], t[1], 2);
    asm.li(bs[2], fxb as i64);
    asm.add(bs[2], bs[2], t[4]);
    asm.add(bs[2], bs[2], t[2]);
    asm.fsw(facx, bs[2], 0);
    asm.li(bs[2], fyb as i64);
    asm.add(bs[2], bs[2], t[4]);
    asm.add(bs[2], bs[2], t[2]);
    asm.fsw(facy, bs[2], 0);
    asm.addi(t[1], t[1], 1);
    asm.li(t[2], BOX as i64);
    asm.blt(t[1], t[2], "s_i");
    asm.addi(t[0], t[0], 1);
    asm.j("s_b");
    asm.label("s_done");
    asm.halt();

    // ---- vectorized range task: per particle i, vectorize over j with
    //      ordered-sum reductions. BOX = 32 spans multiple strips; the
    //      running sums thread through the reduction init element.
    asm.label("vector_task");
    asm.li(t[5], one_c as i64);
    asm.flw(fone, t[5], 0);
    asm.mv(t[0], start);
    asm.label("v_b");
    asm.bge(t[0], end, "v_done");
    asm.li(t[3], (BOX * 4) as i64);
    asm.mul(t[4], t[0], t[3]);
    asm.li(t[1], 0); // i
    asm.label("v_i");
    asm.li(bs[0], xb as i64);
    asm.add(bs[0], bs[0], t[4]);
    asm.li(bs[1], yb as i64);
    asm.add(bs[1], bs[1], t[4]);
    asm.slli(t[2], t[1], 2);
    asm.add(t[5], bs[0], t[2]);
    asm.flw(fxi, t[5], 0);
    asm.add(t[5], bs[1], t[2]);
    asm.flw(fyi, t[5], 0);
    asm.fmv_w_x(facx, XReg::ZERO);
    asm.fmv_w_x(facy, XReg::ZERO);
    asm.li(t[2], BOX as i64); // remaining j
    asm.label("v_j");
    asm.vsetvli(vl, t[2], Sew::E32);
    asm.vle(VReg::new(1), bs[0]); // x[j..]
    asm.varith(
        VArithOp::FSub,
        VReg::new(1),
        VSrc::F(fxi),
        VReg::new(1),
        false,
    ); // dx
    asm.vle(VReg::new(2), bs[1]); // y[j..]
    asm.varith(
        VArithOp::FSub,
        VReg::new(2),
        VSrc::F(fyi),
        VReg::new(2),
        false,
    ); // dy
    asm.vfmul_vv(VReg::new(3), VReg::new(1), VReg::new(1));
    asm.vfmacc_vv(VReg::new(3), VReg::new(2), VReg::new(2)); // d2
    asm.varith(
        VArithOp::FAdd,
        VReg::new(3),
        VSrc::F(fone),
        VReg::new(3),
        false,
    );
    asm.vfmv_v_f(VReg::new(4), fone);
    asm.vfdiv_vv(VReg::new(4), VReg::new(4), VReg::new(3)); // s
                                                            // fx partial: vredosum(dx*s) with init = running facx
    asm.vfmul_vv(VReg::new(5), VReg::new(1), VReg::new(4));
    asm.fmv_x_w(t[6], facx);
    asm.vmv_s_x(VReg::new(6), t[6]);
    asm.vfredosum(VReg::new(7), VReg::new(5), VReg::new(6));
    asm.vfmv_f_s(facx, VReg::new(7));
    // fy partial
    asm.vfmul_vv(VReg::new(5), VReg::new(2), VReg::new(4));
    asm.fmv_x_w(t[6], facy);
    asm.vmv_s_x(VReg::new(6), t[6]);
    asm.vfredosum(VReg::new(7), VReg::new(5), VReg::new(6));
    asm.vfmv_f_s(facy, VReg::new(7));
    asm.slli(t[6], vl, 2);
    asm.add(bs[0], bs[0], t[6]);
    asm.add(bs[1], bs[1], t[6]);
    asm.sub(t[2], t[2], vl);
    asm.bne(t[2], XReg::ZERO, "v_j");
    // store forces
    asm.slli(t[2], t[1], 2);
    asm.li(bs[2], fxb as i64);
    asm.add(bs[2], bs[2], t[4]);
    asm.add(bs[2], bs[2], t[2]);
    asm.fsw(facx, bs[2], 0);
    asm.li(bs[2], fyb as i64);
    asm.add(bs[2], bs[2], t[4]);
    asm.add(bs[2], bs[2], t[2]);
    asm.fsw(facy, bs[2], 0);
    asm.addi(t[1], t[1], 1);
    asm.li(t[2], BOX as i64);
    asm.blt(t[1], t[2], "v_i");
    asm.addi(t[0], t[0], 1);
    asm.j("v_b");
    asm.label("v_done");
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries
    asm.label("serial");
    asm.li(start, 0);
    asm.li(end, boxes as i64);
    asm.j("scalar_task");
    asm.label("vector");
    asm.li(start, 0);
    asm.li(end, boxes as i64);
    asm.j("vector_task");

    let program = Arc::new(asm.assemble().expect("lavamd assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");
    let chunk = (boxes / 8).max(1);
    let tasks = parallel_for_tasks(
        boxes,
        chunk,
        scalar_pc,
        Some(vector_pc),
        regs::START,
        regs::END,
        &[],
    );

    Workload {
        name: "lavamd",
        class: WorkloadClass::DataParallelApp,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(tasks)],
        check: Box::new(move |m| {
            let gx = m.read_f32_array(fxb, efx.len());
            let gy = m.read_f32_array(fyb, efy.len());
            for i in 0..efx.len() {
                if gx[i].to_bits() != efx[i].to_bits() || gy[i].to_bits() != efy[i].to_bits() {
                    return Err(format!(
                        "lavamd mismatch at {i}: got ({}, {}) want ({}, {})",
                        gx[i], gy[i], efx[i], efy[i]
                    ));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil;

    #[test]
    fn entries_agree_with_reference() {
        testutil::check_both_entries(|| build(Scale::tiny()));
    }

    #[test]
    fn tasks_cover_boxes() {
        testutil::check_tasks(|| build(Scale::tiny()));
    }
}
