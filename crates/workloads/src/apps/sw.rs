//! `sw` — Smith-Waterman local sequence alignment (genomics suite).
//!
//! Batch alignment: several query chunks are aligned against one reference
//! sequence, each filling its own DP matrix
//! `H[i][j] = max(0, H[i-1][j-1]+s(aᵢ,bⱼ), H[i-1][j]-G, H[i][j-1]-G)`.
//! The vectorized variant sweeps **anti-diagonals**, where all cells are
//! independent: along a diagonal the flat matrix index moves with a
//! constant stride, so the kernel runs on constant-stride vector loads and
//! stores plus a reversed (negative-stride) load of the query — the
//! strided-access workload of the paper (69% vectorized: the short first
//! and last diagonals stay scalar-ish via small `vl`).

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::Task;
use std::sync::Arc;

/// Match / mismatch / gap scores.
const MATCH: i64 = 2;
const MISMATCH: i64 = -1;
const GAP: i64 = 1;
/// Number of independent query chunks (tasks).
const CHUNKS: u64 = 4;

fn reference_dp(a: &[u8], b: &[u8]) -> (Vec<u32>, u32) {
    let (m, n) = (a.len(), b.len());
    let w = n + 1;
    let mut h = vec![0i64; (m + 1) * w];
    let mut best = 0i64;
    for i in 1..=m {
        for j in 1..=n {
            let s = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let v = (h[(i - 1) * w + j - 1] + s)
                .max(h[(i - 1) * w + j] - GAP)
                .max(h[i * w + j - 1] - GAP)
                .max(0);
            h[i * w + j] = v;
            best = best.max(v);
        }
    }
    (h.iter().map(|&x| x as u32).collect(), best as u32)
}

/// Builds `sw` at `scale` (`scale.dim * 4`-long sequences).
pub fn build(scale: Scale) -> Workload {
    let len = (scale.dim * 4).max(32);
    let reference = gen::dna(scale.seed ^ 70, len as usize);
    let queries: Vec<Vec<u8>> = (0..CHUNKS)
        .map(|c| gen::dna(scale.seed ^ (71 + c), len as usize))
        .collect();

    let mut mem = SimMemory::default();
    // Sequences as u32 elements (e32 vector loads).
    let ref_u32: Vec<u32> = reference.iter().map(|&b| u32::from(b)).collect();
    let ref_base = mem.alloc_u32(&ref_u32);
    let q_bases: Vec<u64> = queries
        .iter()
        .map(|q| {
            let qu: Vec<u32> = q.iter().map(|&b| u32::from(b)).collect();
            mem.alloc_u32(&qu)
        })
        .collect();
    let w = len + 1;
    let h_bases: Vec<u64> = (0..CHUNKS).map(|_| mem.alloc((w * w) * 4, 64)).collect();
    let best_base = mem.alloc(CHUNKS * 4, 64);

    // References per chunk: query is the row dimension (a), reference the
    // column dimension (b).
    let mut h_expect = Vec::new();
    let mut best_expect = Vec::new();
    for q in &queries {
        let (h, best) = reference_dp(q, &reference);
        h_expect.push(h);
        best_expect.push(best);
    }

    let mut asm = Assembler::new();
    let vl = regs::VL;
    let (h_arg, q_arg) = (regs::ARG2, regs::ARG3);
    let best_arg = XReg::new(9);
    let t = regs::T;
    let bs = regs::B;

    // Task protocol: START = chunk id (END unused), ARG2 = H base,
    // ARG3 = query base, x9 = &best[chunk].

    // ---- scalar chunk task: classic row-major DP
    asm.label("scalar_task");
    asm.li(t[7], 0); // best
    asm.li(t[0], 1); // i
    asm.label("s_i");
    asm.li(t[5], len as i64);
    asm.blt(t[5], t[0], "s_store");
    asm.li(t[1], 1); // j
    asm.label("s_j");
    asm.li(t[5], len as i64);
    asm.blt(t[5], t[1], "s_i_next");
    // s = a[i-1] == b[j-1] ? MATCH : MISMATCH
    asm.slli(t[2], t[0], 2);
    asm.add(t[2], t[2], q_arg);
    asm.lw(t[3], t[2], -4); // a[i-1]
    asm.slli(t[2], t[1], 2);
    asm.li(bs[0], ref_base as i64);
    asm.add(t[2], t[2], bs[0]);
    asm.lw(t[4], t[2], -4); // b[j-1]
    asm.li(t[2], MISMATCH);
    asm.bne(t[3], t[4], "s_mis");
    asm.li(t[2], MATCH);
    asm.label("s_mis");
    // diag = H[i-1][j-1] + s
    asm.li(t[5], (w * 4) as i64);
    asm.mul(t[6], t[0], t[5]);
    asm.add(t[6], t[6], h_arg); // &H[i][0]
    asm.sub(t[3], t[6], t[5]); // &H[i-1][0]
    asm.slli(t[4], t[1], 2);
    asm.add(t[3], t[3], t[4]); // &H[i-1][j]
    asm.lw(t[5], t[3], -4); // H[i-1][j-1]
    asm.add(t[2], t[5], t[2]); // diag
                               // up = H[i-1][j] - GAP
    asm.lw(t[5], t[3], 0);
    asm.addi(t[5], t[5], -GAP);
    asm.blt(t[5], t[2], "s_nup");
    asm.mv(t[2], t[5]);
    asm.label("s_nup");
    // left = H[i][j-1] - GAP
    asm.add(t[3], t[6], t[4]); // &H[i][j]
    asm.lw(t[5], t[3], -4);
    asm.addi(t[5], t[5], -GAP);
    asm.blt(t[5], t[2], "s_nleft");
    asm.mv(t[2], t[5]);
    asm.label("s_nleft");
    // max(0, ...)
    asm.bge(t[2], XReg::ZERO, "s_nzero");
    asm.li(t[2], 0);
    asm.label("s_nzero");
    asm.sw(t[2], t[3], 0);
    // best
    asm.blt(t[2], t[7], "s_nbest");
    asm.mv(t[7], t[2]);
    asm.label("s_nbest");
    asm.addi(t[1], t[1], 1);
    asm.j("s_j");
    asm.label("s_i_next");
    asm.addi(t[0], t[0], 1);
    asm.j("s_i");
    asm.label("s_store");
    asm.sw(t[7], best_arg, 0);
    asm.halt();

    // ---- vectorized chunk task: anti-diagonal sweep.
    // For diagonal d (2..=2*len), cells i in [max(1, d-len), min(len, d-1)]
    // with j = d - i. Flat index of H[i][d-i] is i*len + d, so the
    // diagonal walks memory with stride len*4 bytes as i increases.
    asm.label("vector_task");
    asm.li(t[7], 0); // best
    asm.li(t[0], 2); // d
    asm.label("v_d");
    asm.li(t[5], (2 * len) as i64);
    asm.blt(t[5], t[0], "v_store");
    // i_lo = max(1, d - len); i_hi = min(len, d - 1)
    asm.li(t[5], len as i64);
    asm.sub(t[1], t[0], t[5]); // d - len
    asm.li(t[2], 1);
    asm.bge(t[1], t[2], "v_lo_ok");
    asm.mv(t[1], t[2]);
    asm.label("v_lo_ok");
    asm.addi(t[2], t[0], -1);
    asm.bge(t[5], t[2], "v_hi_ok");
    asm.mv(t[2], t[5]);
    asm.label("v_hi_ok");
    // count = i_hi - i_lo + 1; loop strips over i
    asm.sub(t[3], t[2], t[1]);
    asm.addi(t[3], t[3], 1);
    asm.label("v_strip");
    asm.beq(t[3], XReg::ZERO, "v_d_next");
    asm.vsetvli(vl, t[3], Sew::E32);
    // Base flat byte addr for current i_lo: (i_lo*len + d) * 4 over H;
    // stride = len*4.
    asm.li(t[4], (len * 4) as i64);
    asm.mul(t[5], t[1], t[4]);
    asm.slli(t[6], t[0], 2);
    asm.add(t[5], t[5], t[6]);
    asm.add(t[5], t[5], h_arg); // &H[i_lo][d-i_lo]
                                // diag source: H[i-1][j-1] -> offset -(len*4) - 4... flat:
                                // (i-1)*len + d - 2 + ... derived: current - len*4 - 8 + 4 = see docs.
                                // flat(i,j) = i*(len+1) + j = i*len + d  (since j = d - i)
                                // flat(i-1,j-1) = (i-1)*len + d - 2  -> current - len*4 - 8
                                // flat(i-1,j)   = (i-1)*len + d - 1  -> current - len*4 - 4
                                // flat(i,j-1)   = i*len + d - 1      -> current - 4
    asm.sub(t[6], t[5], t[4]);
    asm.addi(t[6], t[6], -8);
    asm.vlse(VReg::new(1), t[6], t[4]); // diag cells
    asm.addi(t[6], t[6], 4);
    asm.vlse(VReg::new(2), t[6], t[4]); // up cells
    asm.addi(t[6], t[5], -4);
    asm.vlse(VReg::new(3), t[6], t[4]); // left cells
                                        // scores: a[i-1] ascending (unit stride from q_arg + (i_lo-1)*4),
                                        // b[j-1] descending from j_hi-1 = d - i_lo - 1.
    asm.slli(t[6], t[1], 2);
    asm.add(t[6], t[6], q_arg);
    asm.addi(t[6], t[6], -4);
    asm.vle(VReg::new(4), t[6]); // a values
    asm.sub(t[6], t[0], t[1]); // j_hi = d - i_lo
    asm.slli(t[6], t[6], 2);
    asm.li(bs[0], ref_base as i64);
    asm.add(t[6], t[6], bs[0]);
    asm.addi(t[6], t[6], -4); // &b[j-1] for i = i_lo (j = d - i)
    asm.li(bs[1], -4i64);
    asm.vlse(VReg::new(5), t[6], bs[1]); // b values, reversed
                                         // s = (a == b) ? MATCH : MISMATCH via mask + merges
    asm.vcmp(
        bvl_isa::instr::VCmpOp::Eq,
        VReg::MASK,
        VReg::new(4),
        bvl_isa::instr::VSrc::V(VReg::new(5)),
    );
    asm.li(t[6], MISMATCH);
    asm.vmv_v_x(VReg::new(6), t[6]);
    asm.li(t[6], MATCH);
    asm.vmv_v_x(VReg::new(7), t[6]);
    asm.vmerge_vvm(VReg::new(6), VReg::new(6), VReg::new(7)); // s
                                                              // H = max(0, diag + s, up - G, left - G)
    asm.vadd_vv(VReg::new(1), VReg::new(1), VReg::new(6));
    asm.li(t[6], -GAP);
    asm.vadd_vx(VReg::new(2), VReg::new(2), t[6]);
    asm.vmax_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.vadd_vx(VReg::new(3), VReg::new(3), t[6]);
    asm.vmax_vv(VReg::new(1), VReg::new(1), VReg::new(3));
    asm.vmax_vx(VReg::new(1), VReg::new(1), XReg::ZERO);
    // store the diagonal cells
    asm.vsse(VReg::new(1), t[5], t[4]);
    // best = max(best, redmax(H))
    asm.vmv_s_x(VReg::new(8), t[7]);
    asm.vredmax(VReg::new(9), VReg::new(1), VReg::new(8));
    asm.vmv_x_s(t[7], VReg::new(9));
    // advance strip
    asm.add(t[1], t[1], vl);
    asm.sub(t[3], t[3], vl);
    asm.j("v_strip");
    asm.label("v_d_next");
    asm.addi(t[0], t[0], 1);
    asm.j("v_d");
    asm.label("v_store");
    asm.sw(t[7], best_arg, 0);
    asm.vmfence();
    asm.halt();

    // ---- whole-run entries: loop over chunks.
    for (entry, task) in [("serial", "scalar_task"), ("vector", "vector_task")] {
        asm.label(entry);
        // Chunks processed one after another by re-entering the task code;
        // since tasks halt, the driver pre-loads args and jumps — the last
        // chunk's halt ends the program, earlier chunks re-enter through
        // an unrolled sequence.
        for ch in 0..CHUNKS {
            asm.li(h_arg, h_bases[ch as usize] as i64);
            asm.li(q_arg, q_bases[ch as usize] as i64);
            asm.li(best_arg, (best_base + ch * 4) as i64);
            if ch + 1 == CHUNKS {
                asm.j(task);
            } else {
                asm.jal(XReg::RA, format!("{task}_ret"));
            }
        }
        // (The final jump above never falls through.)
    }
    // Returning trampolines: run the task body, then return. Implemented
    // by copying the halting entries' code would double the text; instead
    // the trampoline flips a "return mode" flag the tasks check before
    // halting. Simpler: tasks are short enough that re-entering via the
    // normal entry and treating `halt` as chunk-complete would need system
    // support — so the trampolines rebuild the loop the honest way:
    emit_ret_wrapper(&mut asm, "scalar_task_ret", "scalar_task2");
    emit_ret_wrapper(&mut asm, "vector_task_ret", "vector_task2");
    emit_second_copies(&mut asm, len, w, ref_base);

    let program = Arc::new(asm.assemble().expect("sw assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");

    let tasks: Vec<Task> = (0..CHUNKS)
        .map(|ch| Task {
            scalar_pc,
            vector_pc: Some(vector_pc),
            args: vec![
                (regs::START, ch),
                (h_arg, h_bases[ch as usize]),
                (q_arg, q_bases[ch as usize]),
                (best_arg, best_base + ch * 4),
            ],
        })
        .collect();

    let h_bases_c = h_bases.clone();
    Workload {
        name: "sw",
        class: WorkloadClass::DataParallelApp,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases: vec![Phase::new(tasks)],
        check: Box::new(move |m| {
            use bvl_isa::mem::Memory;
            for ch in 0..CHUNKS as usize {
                let got = m.read_u32_array(h_bases_c[ch], h_expect[ch].len());
                for (i, (&g, &e)) in got.iter().zip(&h_expect[ch]).enumerate() {
                    if g != e {
                        return Err(format!("sw chunk {ch} H mismatch at {i}: got {g} want {e}"));
                    }
                }
                let gb = m.read_uint(best_base + ch as u64 * 4, 4) as u32;
                if gb != best_expect[ch] {
                    return Err(format!(
                        "sw chunk {ch} best: got {gb} want {}",
                        best_expect[ch]
                    ));
                }
            }
            Ok(())
        }),
    }
}

/// Thin wrapper: call the non-halting copy and return to the driver.
fn emit_ret_wrapper(asm: &mut Assembler, label: &str, target: &str) {
    asm.label(label);
    // Preserve RA across the nested call in a callee-saved register.
    asm.mv(XReg::new(8), XReg::RA);
    asm.jal(XReg::RA, target.to_string());
    asm.jalr(XReg::ZERO, XReg::new(8), 0);
}

/// Second, returning copies of the DP bodies (identical computation; they
/// end in `jalr ra` instead of `halt`). Kept small by re-emitting through
/// the same code as `build` uses — the scalar body here is the only
/// duplicated text in the workload.
fn emit_second_copies(asm: &mut Assembler, len: u64, w: u64, ref_base: u64) {
    let (h_arg, q_arg) = (regs::ARG2, regs::ARG3);
    let best_arg = XReg::new(9);
    let t = regs::T;
    let bs = regs::B;
    let l = |p: &str, s: &str| format!("{p}${s}");

    // Scalar copy.
    let p = "sc2";
    asm.label("scalar_task2");
    asm.li(t[7], 0);
    asm.li(t[0], 1);
    asm.label(l(p, "i"));
    asm.li(t[5], len as i64);
    asm.blt(t[5], t[0], l(p, "store"));
    asm.li(t[1], 1);
    asm.label(l(p, "j"));
    asm.li(t[5], len as i64);
    asm.blt(t[5], t[1], l(p, "inext"));
    asm.slli(t[2], t[0], 2);
    asm.add(t[2], t[2], q_arg);
    asm.lw(t[3], t[2], -4);
    asm.slli(t[2], t[1], 2);
    asm.li(bs[0], ref_base as i64);
    asm.add(t[2], t[2], bs[0]);
    asm.lw(t[4], t[2], -4);
    asm.li(t[2], MISMATCH);
    asm.bne(t[3], t[4], l(p, "mis"));
    asm.li(t[2], MATCH);
    asm.label(l(p, "mis"));
    asm.li(t[5], (w * 4) as i64);
    asm.mul(t[6], t[0], t[5]);
    asm.add(t[6], t[6], h_arg);
    asm.sub(t[3], t[6], t[5]);
    asm.slli(t[4], t[1], 2);
    asm.add(t[3], t[3], t[4]);
    asm.lw(t[5], t[3], -4);
    asm.add(t[2], t[5], t[2]);
    asm.lw(t[5], t[3], 0);
    asm.addi(t[5], t[5], -GAP);
    asm.blt(t[5], t[2], l(p, "nup"));
    asm.mv(t[2], t[5]);
    asm.label(l(p, "nup"));
    asm.add(t[3], t[6], t[4]);
    asm.lw(t[5], t[3], -4);
    asm.addi(t[5], t[5], -GAP);
    asm.blt(t[5], t[2], l(p, "nleft"));
    asm.mv(t[2], t[5]);
    asm.label(l(p, "nleft"));
    asm.bge(t[2], XReg::ZERO, l(p, "nzero"));
    asm.li(t[2], 0);
    asm.label(l(p, "nzero"));
    asm.sw(t[2], t[3], 0);
    asm.blt(t[2], t[7], l(p, "nbest"));
    asm.mv(t[7], t[2]);
    asm.label(l(p, "nbest"));
    asm.addi(t[1], t[1], 1);
    asm.j(l(p, "j"));
    asm.label(l(p, "inext"));
    asm.addi(t[0], t[0], 1);
    asm.j(l(p, "i"));
    asm.label(l(p, "store"));
    asm.sw(t[7], best_arg, 0);
    asm.jalr(XReg::ZERO, XReg::RA, 0);

    // Vector copy.
    let p = "vc2";
    let vl = regs::VL;
    asm.label("vector_task2");
    asm.li(t[7], 0);
    asm.li(t[0], 2);
    asm.label(l(p, "d"));
    asm.li(t[5], (2 * len) as i64);
    asm.blt(t[5], t[0], l(p, "store"));
    asm.li(t[5], len as i64);
    asm.sub(t[1], t[0], t[5]);
    asm.li(t[2], 1);
    asm.bge(t[1], t[2], l(p, "lo"));
    asm.mv(t[1], t[2]);
    asm.label(l(p, "lo"));
    asm.addi(t[2], t[0], -1);
    asm.bge(t[5], t[2], l(p, "hi"));
    asm.mv(t[2], t[5]);
    asm.label(l(p, "hi"));
    asm.sub(t[3], t[2], t[1]);
    asm.addi(t[3], t[3], 1);
    asm.label(l(p, "strip"));
    asm.beq(t[3], XReg::ZERO, l(p, "dnext"));
    asm.vsetvli(vl, t[3], Sew::E32);
    asm.li(t[4], (len * 4) as i64);
    asm.mul(t[5], t[1], t[4]);
    asm.slli(t[6], t[0], 2);
    asm.add(t[5], t[5], t[6]);
    asm.add(t[5], t[5], h_arg);
    asm.sub(t[6], t[5], t[4]);
    asm.addi(t[6], t[6], -8);
    asm.vlse(VReg::new(1), t[6], t[4]);
    asm.addi(t[6], t[6], 4);
    asm.vlse(VReg::new(2), t[6], t[4]);
    asm.addi(t[6], t[5], -4);
    asm.vlse(VReg::new(3), t[6], t[4]);
    asm.slli(t[6], t[1], 2);
    asm.add(t[6], t[6], q_arg);
    asm.addi(t[6], t[6], -4);
    asm.vle(VReg::new(4), t[6]);
    asm.sub(t[6], t[0], t[1]);
    asm.slli(t[6], t[6], 2);
    asm.li(bs[0], ref_base as i64);
    asm.add(t[6], t[6], bs[0]);
    asm.addi(t[6], t[6], -4);
    asm.li(bs[1], -4i64);
    asm.vlse(VReg::new(5), t[6], bs[1]);
    asm.vcmp(
        bvl_isa::instr::VCmpOp::Eq,
        VReg::MASK,
        VReg::new(4),
        bvl_isa::instr::VSrc::V(VReg::new(5)),
    );
    asm.li(t[6], MISMATCH);
    asm.vmv_v_x(VReg::new(6), t[6]);
    asm.li(t[6], MATCH);
    asm.vmv_v_x(VReg::new(7), t[6]);
    asm.vmerge_vvm(VReg::new(6), VReg::new(6), VReg::new(7));
    asm.vadd_vv(VReg::new(1), VReg::new(1), VReg::new(6));
    asm.li(t[6], -GAP);
    asm.vadd_vx(VReg::new(2), VReg::new(2), t[6]);
    asm.vmax_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.vadd_vx(VReg::new(3), VReg::new(3), t[6]);
    asm.vmax_vv(VReg::new(1), VReg::new(1), VReg::new(3));
    asm.vmax_vx(VReg::new(1), VReg::new(1), XReg::ZERO);
    asm.vsse(VReg::new(1), t[5], t[4]);
    asm.vmv_s_x(VReg::new(8), t[7]);
    asm.vredmax(VReg::new(9), VReg::new(1), VReg::new(8));
    asm.vmv_x_s(t[7], VReg::new(9));
    asm.add(t[1], t[1], vl);
    asm.sub(t[3], t[3], vl);
    asm.j(l(p, "strip"));
    asm.label(l(p, "dnext"));
    asm.addi(t[0], t[0], 1);
    asm.j(l(p, "d"));
    asm.label(l(p, "store"));
    asm.sw(t[7], best_arg, 0);
    asm.vmfence();
    asm.jalr(XReg::ZERO, XReg::RA, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil;

    #[test]
    fn reference_dp_small_case() {
        // a = ACGT vs b = ACGT: perfect match scores 2*len on the diagonal.
        let a = [0u8, 1, 2, 3];
        let (h, best) = reference_dp(&a, &a);
        assert_eq!(best, 8);
        assert_eq!(h[4 * 5 + 4], 8); // H[4][4]
    }

    #[test]
    fn entries_agree_with_reference() {
        testutil::check_both_entries(|| build(Scale::tiny()));
    }

    #[test]
    fn chunk_tasks_are_independent() {
        testutil::check_tasks(|| build(Scale::tiny()));
    }
}
