//! `pathfinder` — grid dynamic programming (Rodinia).
//!
//! Finds minimum-cost paths through a rows×cols grid, row by row:
//! `dst[j] = cost[r][j] + min(src[j-1], src[j], src[j+1])` with clamped
//! edges. Rows are inherently sequential; columns are data-parallel — the
//! paper's classic regular-memory workload (unit-stride with ±1 shifted
//! streams, integer mins). One task phase per row.

use crate::gen;
use crate::workload::{regs, Phase, Scale, Workload, WorkloadClass};
use bvl_isa::asm::Assembler;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::SimMemory;
use bvl_runtime::parallel_for_tasks;
use std::sync::Arc;

/// Number of DP rows.
const ROWS: u64 = 8;

/// Builds `pathfinder` at `scale` (`scale.n / 8` columns, 8 rows).
pub fn build(scale: Scale) -> Workload {
    let cols = (scale.n / 8).max(256);
    let cost_data = gen::u32_vec(scale.seed ^ 30, (ROWS * cols) as usize, 1000);

    let mut mem = SimMemory::default();
    let cost = mem.alloc_u32(&cost_data);
    // Row 0 seeds the wavefront.
    let row0: Vec<u32> = cost_data[..cols as usize].to_vec();
    let buf_a = mem.alloc_u32(&row0);
    let buf_b = mem.alloc(cols * 4, 64);

    // Reference.
    let mut cur = row0.clone();
    for r in 1..ROWS as usize {
        let mut nxt = vec![0u32; cols as usize];
        for j in 0..cols as usize {
            let left = cur[j.saturating_sub(1)];
            let mid = cur[j];
            let right = cur[(j + 1).min(cols as usize - 1)];
            nxt[j] = cost_data[r * cols as usize + j].wrapping_add(left.min(mid).min(right));
        }
        cur = nxt;
    }
    let expect = cur;
    // ROWS-1 sweeps: final buffer alternates starting from buf_b.
    let final_base = if (ROWS - 1) % 2 == 1 { buf_b } else { buf_a };

    let mut asm = Assembler::new();
    let (start, end, vl) = (regs::START, regs::END, regs::VL);
    let (src_arg, dst_arg) = (regs::ARG2, regs::ARG3);
    let row_arg = regs::ARG3; // row index folded into cost base instead
    let _ = row_arg;
    let t = regs::T;
    let bs = regs::B;

    // Task args: START/END = column range, ARG2 = src buffer base,
    // ARG3 = dst buffer base, T[7] = cost-row base (passed as 4th arg).
    let cost_arg = XReg::new(9);

    // Emits min3 + add for one scalar column. Expects column index in
    // t[0]; uses t[2..5].
    // ---- scalar column-range task for one row (thin wrapper over the
    //      returning body so the whole-run entries can reuse it)
    asm.label("scalar_task");
    asm.jal(XReg::RA, "scalar_body");
    asm.halt();
    asm.label("scalar_body");
    asm.mv(t[0], start);
    asm.label("s_j");
    asm.bge(t[0], end, "s_done");
    // left index = max(j-1, 0); right = min(j+1, cols-1)
    asm.addi(t[1], t[0], -1);
    asm.bge(t[1], XReg::ZERO, "s_lok");
    asm.li(t[1], 0);
    asm.label("s_lok");
    asm.addi(t[2], t[0], 1);
    asm.li(t[3], (cols - 1) as i64);
    asm.blt(t[2], t[3], "s_rok");
    asm.mv(t[2], t[3]);
    asm.label("s_rok");
    // min3
    asm.slli(t[4], t[1], 2);
    asm.add(t[4], t[4], src_arg);
    asm.lw(t[1], t[4], 0); // left
    asm.slli(t[4], t[0], 2);
    asm.add(t[4], t[4], src_arg);
    asm.lw(t[5], t[4], 0); // mid
    asm.blt(t[1], t[5], "s_m1");
    asm.mv(t[1], t[5]);
    asm.label("s_m1");
    asm.slli(t[4], t[2], 2);
    asm.add(t[4], t[4], src_arg);
    asm.lw(t[5], t[4], 0); // right
    asm.blt(t[1], t[5], "s_m2");
    asm.mv(t[1], t[5]);
    asm.label("s_m2");
    // + cost[r][j]
    asm.slli(t[4], t[0], 2);
    asm.add(t[4], t[4], cost_arg);
    asm.lw(t[5], t[4], 0);
    asm.add(t[1], t[1], t[5]);
    asm.slli(t[4], t[0], 2);
    asm.add(t[4], t[4], dst_arg);
    asm.sw(t[1], t[4], 0);
    asm.addi(t[0], t[0], 1);
    asm.j("s_j");
    asm.label("s_done");
    asm.jalr(XReg::ZERO, XReg::RA, 0);

    // ---- vectorized column-range task: interior vectorized, edges via
    //      clamped first/last elements handled by shifting bases; the
    //      first and last global columns are computed scalarly by the
    //      whole-run caller's range construction (tasks always receive
    //      interior-safe ranges plus edge columns handled below).
    asm.label("vector_task");
    asm.jal(XReg::RA, "vector_body");
    asm.halt();
    asm.label("vector_body");
    // Handle edge columns in this range scalarly (j == 0 or cols-1).
    asm.mv(t[0], start);
    asm.label("v_j");
    asm.bge(t[0], end, "v_done");
    // If j is interior and at least VL-worth remains before `end-?`,
    // vectorize [j, min(end, cols-1)). Edge columns fall through to the
    // scalar path.
    asm.beq(t[0], XReg::ZERO, "v_scalar_one");
    asm.li(t[3], (cols - 1) as i64);
    asm.bge(t[0], t[3], "v_scalar_one");
    // interior strip until min(end, cols-1)
    asm.mv(t[1], end);
    asm.blt(t[1], t[3], "v_clamped");
    asm.mv(t[1], t[3]);
    asm.label("v_clamped");
    asm.sub(t[2], t[1], t[0]); // interior count
    asm.beq(t[2], XReg::ZERO, "v_scalar_one");
    asm.vsetvli(vl, t[2], Sew::E32);
    asm.slli(t[4], t[0], 2);
    asm.add(bs[0], src_arg, t[4]);
    asm.addi(t[5], bs[0], -4);
    asm.vle(VReg::new(1), t[5]); // left
    asm.vle(VReg::new(2), bs[0]); // mid
    asm.vmin_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.addi(t[5], bs[0], 4);
    asm.vle(VReg::new(2), t[5]); // right
    asm.vmin_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.add(bs[1], cost_arg, t[4]);
    asm.vle(VReg::new(2), bs[1]);
    asm.vadd_vv(VReg::new(1), VReg::new(1), VReg::new(2));
    asm.add(bs[2], dst_arg, t[4]);
    asm.vse(VReg::new(1), bs[2]);
    asm.add(t[0], t[0], vl);
    asm.j("v_j");
    // one scalar (edge) column, then continue
    asm.label("v_scalar_one");
    asm.addi(t[1], t[0], -1);
    asm.bge(t[1], XReg::ZERO, "ve_lok");
    asm.li(t[1], 0);
    asm.label("ve_lok");
    asm.addi(t[2], t[0], 1);
    asm.li(t[3], (cols - 1) as i64);
    asm.blt(t[2], t[3], "ve_rok");
    asm.mv(t[2], t[3]);
    asm.label("ve_rok");
    asm.slli(t[4], t[1], 2);
    asm.add(t[4], t[4], src_arg);
    asm.lw(t[1], t[4], 0);
    asm.slli(t[4], t[0], 2);
    asm.add(t[4], t[4], src_arg);
    asm.lw(t[5], t[4], 0);
    asm.blt(t[1], t[5], "ve_m1");
    asm.mv(t[1], t[5]);
    asm.label("ve_m1");
    asm.slli(t[4], t[2], 2);
    asm.add(t[4], t[4], src_arg);
    asm.lw(t[5], t[4], 0);
    asm.blt(t[1], t[5], "ve_m2");
    asm.mv(t[1], t[5]);
    asm.label("ve_m2");
    asm.slli(t[4], t[0], 2);
    asm.add(t[4], t[4], cost_arg);
    asm.lw(t[5], t[4], 0);
    asm.add(t[1], t[1], t[5]);
    asm.slli(t[4], t[0], 2);
    asm.add(t[4], t[4], dst_arg);
    asm.sw(t[1], t[4], 0);
    asm.addi(t[0], t[0], 1);
    asm.j("v_j");
    asm.label("v_done");
    asm.vmfence();
    asm.jalr(XReg::ZERO, XReg::RA, 0);

    // ---- whole-run entries: iterate rows, swapping buffers.
    for (entry, task_pc) in [("serial", "scalar_body"), ("vector", "vector_body")] {
        asm.label(entry);
        asm.li(t[6], 1); // row
        asm.li(src_arg, buf_a as i64);
        asm.li(dst_arg, buf_b as i64);
        let it = format!("{entry}_row");
        let fin = format!("{entry}_fin");
        asm.label(it.clone());
        asm.li(t[7], ROWS as i64);
        asm.bge(t[6], t[7], fin.clone());
        asm.li(start, 0);
        asm.li(end, cols as i64);
        asm.li(cost_arg, cost as i64);
        asm.li(t[7], (cols * 4) as i64);
        asm.mul(t[7], t[6], t[7]);
        asm.add(cost_arg, cost_arg, t[7]);
        asm.jal(XReg::RA, task_pc.to_string());
        asm.mv(t[7], src_arg);
        asm.mv(src_arg, dst_arg);
        asm.mv(dst_arg, t[7]);
        asm.addi(t[6], t[6], 1);
        asm.j(it);
        asm.label(fin);
        asm.halt();
    }

    let program = Arc::new(asm.assemble().expect("pathfinder assembles"));
    let scalar_pc = program.label("scalar_task").expect("label");
    let vector_pc = program.label("vector_task").expect("label");

    // Task phases: one per DP row.
    let chunk = (cols / 16).max(64);
    let mut phases = Vec::new();
    for r in 1..ROWS {
        let (s, dst) = if (r - 1) % 2 == 0 {
            (buf_a, buf_b)
        } else {
            (buf_b, buf_a)
        };
        let cost_row = cost + r * cols * 4;
        phases.push(Phase::new(parallel_for_tasks(
            cols,
            chunk,
            scalar_pc,
            Some(vector_pc),
            regs::START,
            regs::END,
            &[(src_arg, s), (dst_arg, dst), (cost_arg, cost_row)],
        )));
    }

    Workload {
        name: "pathfinder",
        class: WorkloadClass::DataParallelApp,
        serial_entry: program.label("serial").expect("label"),
        vector_entry: Some(program.label("vector").expect("label")),
        program,
        mem,
        phases,
        check: Box::new(move |m| {
            let got = m.read_u32_array(final_base, expect.len());
            if got == expect {
                Ok(())
            } else {
                let i = got
                    .iter()
                    .zip(&expect)
                    .position(|(g, e)| g != e)
                    .unwrap_or(0);
                Err(format!(
                    "pathfinder mismatch at {i}: got {} want {}",
                    got[i], expect[i]
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil;

    #[test]
    fn entries_agree_with_reference() {
        testutil::check_both_entries(|| build(Scale::tiny()));
    }

    #[test]
    fn row_phases_match_reference() {
        testutil::check_tasks(|| build(Scale::tiny()));
    }

    #[test]
    fn one_phase_per_dp_row() {
        let w = build(Scale::tiny());
        assert_eq!(w.phases.len() as u64, ROWS - 1);
    }
}
