#![warn(missing_docs)]
//! # bvl-area — post-synthesis-seeded area model (paper Table VI)
//!
//! The paper synthesizes the VLITTLE engine's added components in a 12 nm
//! node and reports component areas; the reproducible artifact is the
//! *composition arithmetic* — which components a `4L` cluster and a `4VL`
//! engine contain and the resulting overhead percentages (≈2.4% with the
//! simple little core, ≈2.1% with Ariane). This crate encodes the
//! published component areas as constants and recomputes Table VI, plus
//! the Ara-referenced first-order gate estimate for the `1bDV` engine.

use serde::Serialize;

/// One synthesized component (paper Table VI), area in kµm² at 12 nm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Post-synthesis area in kµm².
    pub area_kum2: f64,
    /// Instances in the cluster.
    pub count: u32,
}

impl Component {
    /// Total area contributed.
    pub fn total(&self) -> f64 {
        self.area_kum2 * f64::from(self.count)
    }
}

/// Which little-core RTL the cluster uses (paper evaluates both).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LittleCoreRtl {
    /// The in-house single-issue RV64IMAF core.
    Simple,
    /// The open-source Linux-capable Ariane (RV64G) core.
    Ariane,
}

impl LittleCoreRtl {
    /// Core area in kµm² (Table VI).
    pub fn core_area(self) -> f64 {
        match self {
            LittleCoreRtl::Simple => 26.1,
            LittleCoreRtl::Ariane => 41.8,
        }
    }
}

/// 32 KiB two-way L1 with a 64-bit data path.
pub const L1_64B_DATAPATH: f64 = 40.3;
/// 32 KiB two-way L1D widened to a 512-bit data path (vector mode).
pub const L1D_512B_DATAPATH: f64 = 41.6;

/// The VLITTLE-specific additions (Table VI): VXU ring, VMU queues/CAM/
/// line buffers, VCU micro-op and scalar data queues.
pub fn vlittle_additions() -> Vec<Component> {
    vec![
        Component {
            name: "VXU: ring network",
            area_kum2: 0.3,
            count: 1,
        },
        Component {
            name: "VMU: micro-op & command queues",
            area_kum2: 1.7,
            count: 1,
        },
        Component {
            name: "VMU: store-address CAM",
            area_kum2: 0.8,
            count: 1,
        },
        Component {
            name: "VMU: line buffers",
            area_kum2: 0.4,
            count: 1,
        },
        Component {
            name: "VCU: micro-op queue",
            area_kum2: 1.0,
            count: 1,
        },
        Component {
            name: "VCU: scalar data queue",
            area_kum2: 1.0,
            count: 1,
        },
    ]
}

/// A computed cluster bill of materials.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ClusterArea {
    /// Line items.
    pub components: Vec<Component>,
    /// Total area in kµm².
    pub total_kum2: f64,
}

fn cluster(components: Vec<Component>) -> ClusterArea {
    let total_kum2 = components.iter().map(Component::total).sum();
    ClusterArea {
        components,
        total_kum2,
    }
}

/// The baseline `4L` cluster: four little cores with private 64-bit L1I
/// and L1D caches.
pub fn cluster_4l(rtl: LittleCoreRtl) -> ClusterArea {
    cluster(vec![
        Component {
            name: "little core",
            area_kum2: rtl.core_area(),
            count: 4,
        },
        Component {
            name: "32KB L1I (64b path)",
            area_kum2: L1_64B_DATAPATH,
            count: 4,
        },
        Component {
            name: "32KB L1D (64b path)",
            area_kum2: L1_64B_DATAPATH,
            count: 4,
        },
    ])
}

/// The `4VL` engine: the same cluster with 512-bit-path L1Ds and the
/// vector-specific additions.
pub fn cluster_4vl(rtl: LittleCoreRtl) -> ClusterArea {
    let mut components = vec![
        Component {
            name: "little core",
            area_kum2: rtl.core_area(),
            count: 4,
        },
        Component {
            name: "32KB L1I (64b path)",
            area_kum2: L1_64B_DATAPATH,
            count: 4,
        },
        Component {
            name: "32KB L1D (512b path)",
            area_kum2: L1D_512B_DATAPATH,
            count: 4,
        },
    ];
    components.extend(vlittle_additions());
    cluster(components)
}

/// Area overhead of `4VL` over `4L` (Table VI's bottom row).
pub fn vlittle_overhead(rtl: LittleCoreRtl) -> f64 {
    cluster_4vl(rtl).total_kum2 / cluster_4l(rtl).total_kum2 - 1.0
}

// ---- Ara-referenced 1bDV estimate (paper Section VI) ----

/// Ara per-64-bit-lane area, kilo-gate-equivalents.
pub const ARA_KGE_PER_LANE: f64 = 738.0;
/// Ariane core without L1 caches, kGE.
pub const ARIANE_KGE: f64 = 524.0;

/// First-order area of the simulated decoupled vector engine: an 8×64-bit
/// lane Ara configuration (equivalent to 16×32-bit lanes), in kGE.
pub fn dve_estimate_kge() -> f64 {
    8.0 * ARA_KGE_PER_LANE
}

/// First-order area of four Ariane cores with their L1 caches, in kGE —
/// one 32 KiB cache is roughly one cache-less Ariane (Table VI ratio).
pub fn four_ariane_with_l1_kge() -> f64 {
    4.0 * (ARIANE_KGE * (1.0 + 2.0 * L1_64B_DATAPATH / 41.8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_totals_match_paper() {
        // 4L with the simple core: 4*(26.1 + 40.3 + 40.3) = 426.8 ≈ 427.0.
        let t = cluster_4l(LittleCoreRtl::Simple).total_kum2;
        assert!((t - 426.8).abs() < 0.5, "4L total {t}");
        // 4VL: 437.2 ≈ 437.4.
        let t = cluster_4vl(LittleCoreRtl::Simple).total_kum2;
        assert!((t - 437.2).abs() < 0.5, "4VL total {t}");
    }

    #[test]
    fn overheads_match_paper_percentages() {
        let simple = vlittle_overhead(LittleCoreRtl::Simple);
        let ariane = vlittle_overhead(LittleCoreRtl::Ariane);
        assert!((simple - 0.024).abs() < 0.002, "simple overhead {simple}");
        assert!((ariane - 0.021).abs() < 0.002, "ariane overhead {ariane}");
        // Under the paper's 5% claim with margin.
        assert!(simple < 0.05 && ariane < 0.05);
    }

    #[test]
    fn dve_is_comparable_to_four_ariane_cluster() {
        // Paper Section VI: the 8-lane Ara (~5.9 MGE) is roughly the size
        // of four Ariane cores with their L1s (~6 MGE).
        let dve = dve_estimate_kge();
        let cluster = four_ariane_with_l1_kge();
        let ratio = dve / cluster;
        assert!(
            (0.8..=1.25).contains(&ratio),
            "dve {dve} vs cluster {cluster} (ratio {ratio})"
        );
    }

    #[test]
    fn additions_are_tiny() {
        let adds: f64 = vlittle_additions().iter().map(Component::total).sum();
        assert!((adds - 5.2).abs() < 1e-9);
    }
}
