//! Checkpoint encodings ([`Snap`]) for the architectural types.
//!
//! In-flight pipeline structures (ROB entries, vector commands, little-core
//! pending slots) carry whole [`Instr`] values, so instructions serialize
//! *structurally* — one tag byte per variant plus its operands — rather
//! than through [`crate::encode`]: the binary encoder can reject
//! structurally-built immediates that are perfectly legal in-flight values,
//! and a checkpoint save must never fail.
//!
//! Every register decode validates its index before constructing the
//! newtype (the constructors panic on out-of-range indices; a corrupt
//! checkpoint must produce a [`SnapError`], never a panic).

use crate::exec::{ExecCounters, MemAccess, StepInfo};
use crate::instr::{
    AluOp, AvlSrc, BranchOp, FpCmpOp, FpOp, FpPrec, Instr, MemWidth, VArithOp, VCmpOp, VMaskOp,
    VMemMode, VRedOp, VSrc,
};
use crate::predecode::DestReg;
use crate::reg::{FReg, VReg, XReg, NUM_REGS};
use crate::vcfg::{Sew, VectorConfig};
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};

macro_rules! snap_reg {
    ($ty:ident) => {
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.u8(self.index() as u8);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let i = r.u8()?;
                if (i as usize) < NUM_REGS {
                    Ok($ty::new(i))
                } else {
                    Err(SnapError::BadTag {
                        ty: stringify!($ty),
                        tag: u64::from(i),
                    })
                }
            }
        }
    };
}

snap_reg!(XReg);
snap_reg!(FReg);
snap_reg!(VReg);

macro_rules! snap_enum {
    ($ty:ident { $($variant:ident = $tag:literal),+ $(,)? }) => {
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.u8(match self { $($ty::$variant => $tag),+ });
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                match r.u8()? {
                    $($tag => Ok($ty::$variant),)+
                    t => Err(SnapError::BadTag {
                        ty: stringify!($ty),
                        tag: u64::from(t),
                    }),
                }
            }
        }
    };
}

snap_enum!(Sew { E8 = 0, E16 = 1, E32 = 2, E64 = 3 });
snap_enum!(MemWidth { B = 0, H = 1, W = 2, D = 3 });
snap_enum!(FpPrec { S = 0, D = 1 });
snap_enum!(AluOp {
    Add = 0, Sub = 1, Sll = 2, Srl = 3, Sra = 4, And = 5, Or = 6, Xor = 7,
    Slt = 8, Sltu = 9, Mul = 10, Div = 11, Divu = 12, Rem = 13, Remu = 14,
});
snap_enum!(FpOp {
    Add = 0, Sub = 1, Mul = 2, Div = 3, Min = 4, Max = 5, Sqrt = 6,
    Sgnj = 7, Sgnjn = 8, Sgnjx = 9,
});
snap_enum!(FpCmpOp { Eq = 0, Lt = 1, Le = 2 });
snap_enum!(BranchOp { Eq = 0, Ne = 1, Lt = 2, Ge = 3, Ltu = 4, Geu = 5 });
snap_enum!(VArithOp {
    Add = 0, Sub = 1, Mul = 2, Div = 3, Divu = 4, Rem = 5, Min = 6, Max = 7,
    And = 8, Or = 9, Xor = 10, Sll = 11, Srl = 12, Sra = 13,
    FAdd = 14, FSub = 15, FMul = 16, FDiv = 17, FMin = 18, FMax = 19,
    FSqrt = 20, FMacc = 21, FNeg = 22, FAbs = 23, Merge = 24,
});
snap_enum!(VCmpOp {
    Eq = 0, Ne = 1, Lt = 2, Le = 3, Gt = 4, FEq = 5, FLt = 6, FLe = 7,
});
snap_enum!(VRedOp { Sum = 0, Min = 1, Max = 2, FSum = 3, FMin = 4, FMax = 5 });
snap_enum!(VMaskOp { And = 0, Or = 1, Xor = 2, AndNot = 3, Not = 4 });

impl Snap for AvlSrc {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            AvlSrc::Reg(x) => {
                w.u8(0);
                x.save(w);
            }
            AvlSrc::Imm(i) => {
                w.u8(1);
                w.u32(*i);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(AvlSrc::Reg(Snap::load(r)?)),
            1 => Ok(AvlSrc::Imm(r.u32()?)),
            t => Err(SnapError::BadTag {
                ty: "AvlSrc",
                tag: u64::from(t),
            }),
        }
    }
}

impl Snap for VMemMode {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            VMemMode::Unit => w.u8(0),
            VMemMode::Strided(x) => {
                w.u8(1);
                x.save(w);
            }
            VMemMode::Indexed(v) => {
                w.u8(2);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(VMemMode::Unit),
            1 => Ok(VMemMode::Strided(Snap::load(r)?)),
            2 => Ok(VMemMode::Indexed(Snap::load(r)?)),
            t => Err(SnapError::BadTag {
                ty: "VMemMode",
                tag: u64::from(t),
            }),
        }
    }
}

impl Snap for VSrc {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            VSrc::V(v) => {
                w.u8(0);
                v.save(w);
            }
            VSrc::X(x) => {
                w.u8(1);
                x.save(w);
            }
            VSrc::F(f) => {
                w.u8(2);
                f.save(w);
            }
            VSrc::I(i) => {
                w.u8(3);
                w.i64(*i);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(VSrc::V(Snap::load(r)?)),
            1 => Ok(VSrc::X(Snap::load(r)?)),
            2 => Ok(VSrc::F(Snap::load(r)?)),
            3 => Ok(VSrc::I(r.i64()?)),
            t => Err(SnapError::BadTag {
                ty: "VSrc",
                tag: u64::from(t),
            }),
        }
    }
}

impl Snap for DestReg {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            DestReg::X(r) => {
                w.u8(0);
                w.u8(*r);
            }
            DestReg::F(r) => {
                w.u8(1);
                w.u8(*r);
            }
            DestReg::None => w.u8(2),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(DestReg::X(r.u8()?)),
            1 => Ok(DestReg::F(r.u8()?)),
            2 => Ok(DestReg::None),
            t => Err(SnapError::BadTag {
                ty: "DestReg",
                tag: u64::from(t),
            }),
        }
    }
}

snap_struct!(VectorConfig { vl, sew });
snap_struct!(MemAccess {
    addr,
    size,
    is_store,
});
snap_struct!(StepInfo {
    pc,
    instr,
    taken,
    mem,
    vl,
    sew,
    halted,
});
snap_struct!(ExecCounters {
    instrs,
    vector_instrs,
    vector_elem_ops,
    scalar_mem_ops,
    vector_mem_instrs,
    fp_ops,
    branches,
    branches_taken,
});

impl Snap for Instr {
    fn save(&self, w: &mut SnapWriter) {
        use Instr::*;
        match *self {
            Op { op, rd, rs1, rs2 } => {
                w.u8(0);
                op.save(w);
                rd.save(w);
                rs1.save(w);
                rs2.save(w);
            }
            OpImm { op, rd, rs1, imm } => {
                w.u8(1);
                op.save(w);
                rd.save(w);
                rs1.save(w);
                w.i64(imm);
            }
            Lui { rd, imm } => {
                w.u8(2);
                rd.save(w);
                w.i64(imm);
            }
            Load {
                rd,
                rs1,
                imm,
                width,
                signed,
            } => {
                w.u8(3);
                rd.save(w);
                rs1.save(w);
                w.i64(imm);
                width.save(w);
                w.bool(signed);
            }
            Store {
                rs2,
                rs1,
                imm,
                width,
            } => {
                w.u8(4);
                rs2.save(w);
                rs1.save(w);
                w.i64(imm);
                width.save(w);
            }
            Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                w.u8(5);
                op.save(w);
                rs1.save(w);
                rs2.save(w);
                w.u32(target);
            }
            Jal { rd, target } => {
                w.u8(6);
                rd.save(w);
                w.u32(target);
            }
            Jalr { rd, rs1, imm } => {
                w.u8(7);
                rd.save(w);
                rs1.save(w);
                w.i64(imm);
            }
            FpOp {
                op,
                prec,
                rd,
                rs1,
                rs2,
            } => {
                w.u8(8);
                op.save(w);
                prec.save(w);
                rd.save(w);
                rs1.save(w);
                rs2.save(w);
            }
            FpFma {
                prec,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                w.u8(9);
                prec.save(w);
                rd.save(w);
                rs1.save(w);
                rs2.save(w);
                rs3.save(w);
            }
            FpCmp {
                op,
                prec,
                rd,
                rs1,
                rs2,
            } => {
                w.u8(10);
                op.save(w);
                prec.save(w);
                rd.save(w);
                rs1.save(w);
                rs2.save(w);
            }
            FpLoad { rd, rs1, imm, prec } => {
                w.u8(11);
                rd.save(w);
                rs1.save(w);
                w.i64(imm);
                prec.save(w);
            }
            FpStore {
                rs2,
                rs1,
                imm,
                prec,
            } => {
                w.u8(12);
                rs2.save(w);
                rs1.save(w);
                w.i64(imm);
                prec.save(w);
            }
            FpCvtFromInt { prec, rd, rs1 } => {
                w.u8(13);
                prec.save(w);
                rd.save(w);
                rs1.save(w);
            }
            FpCvtToInt { prec, rd, rs1 } => {
                w.u8(14);
                prec.save(w);
                rd.save(w);
                rs1.save(w);
            }
            FpMvFromInt { prec, rd, rs1 } => {
                w.u8(15);
                prec.save(w);
                rd.save(w);
                rs1.save(w);
            }
            FpMvToInt { prec, rd, rs1 } => {
                w.u8(16);
                prec.save(w);
                rd.save(w);
                rs1.save(w);
            }
            VSetVl { rd, avl, sew } => {
                w.u8(17);
                rd.save(w);
                avl.save(w);
                sew.save(w);
            }
            VLoad {
                vd,
                base,
                mode,
                masked,
            } => {
                w.u8(18);
                vd.save(w);
                base.save(w);
                mode.save(w);
                w.bool(masked);
            }
            VStore {
                vs3,
                base,
                mode,
                masked,
            } => {
                w.u8(19);
                vs3.save(w);
                base.save(w);
                mode.save(w);
                w.bool(masked);
            }
            VArith {
                op,
                vd,
                src1,
                vs2,
                masked,
            } => {
                w.u8(20);
                op.save(w);
                vd.save(w);
                src1.save(w);
                vs2.save(w);
                w.bool(masked);
            }
            VCmp {
                op,
                vd,
                vs2,
                src1,
                masked,
            } => {
                w.u8(21);
                op.save(w);
                vd.save(w);
                vs2.save(w);
                src1.save(w);
                w.bool(masked);
            }
            VRed {
                op,
                vd,
                vs2,
                vs1,
                masked,
            } => {
                w.u8(22);
                op.save(w);
                vd.save(w);
                vs2.save(w);
                vs1.save(w);
                w.bool(masked);
            }
            VPopc { rd, vs2 } => {
                w.u8(23);
                rd.save(w);
                vs2.save(w);
            }
            VFirst { rd, vs2 } => {
                w.u8(24);
                rd.save(w);
                vs2.save(w);
            }
            VMask { op, vd, vs1, vs2 } => {
                w.u8(25);
                op.save(w);
                vd.save(w);
                vs1.save(w);
                vs2.save(w);
            }
            VRgather { vd, vs2, vs1 } => {
                w.u8(26);
                vd.save(w);
                vs2.save(w);
                vs1.save(w);
            }
            VSlideUp { vd, vs2, amt } => {
                w.u8(27);
                vd.save(w);
                vs2.save(w);
                amt.save(w);
            }
            VSlideDown { vd, vs2, amt } => {
                w.u8(28);
                vd.save(w);
                vs2.save(w);
                amt.save(w);
            }
            VMvVX { vd, rs1 } => {
                w.u8(29);
                vd.save(w);
                rs1.save(w);
            }
            VFMvVF { vd, fs1 } => {
                w.u8(30);
                vd.save(w);
                fs1.save(w);
            }
            VMvVV { vd, vs2 } => {
                w.u8(31);
                vd.save(w);
                vs2.save(w);
            }
            VMvXS { rd, vs2 } => {
                w.u8(32);
                rd.save(w);
                vs2.save(w);
            }
            VFMvFS { rd, vs2 } => {
                w.u8(33);
                rd.save(w);
                vs2.save(w);
            }
            VMvSX { vd, rs1 } => {
                w.u8(34);
                vd.save(w);
                rs1.save(w);
            }
            VId { vd, masked } => {
                w.u8(35);
                vd.save(w);
                w.bool(masked);
            }
            VmFence => w.u8(36),
            Halt => w.u8(37),
            Nop => w.u8(38),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        use Instr::*;
        Ok(match r.u8()? {
            0 => Op {
                op: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
                rs2: Snap::load(r)?,
            },
            1 => OpImm {
                op: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
                imm: r.i64()?,
            },
            2 => Lui {
                rd: Snap::load(r)?,
                imm: r.i64()?,
            },
            3 => Load {
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
                imm: r.i64()?,
                width: Snap::load(r)?,
                signed: r.bool()?,
            },
            4 => Store {
                rs2: Snap::load(r)?,
                rs1: Snap::load(r)?,
                imm: r.i64()?,
                width: Snap::load(r)?,
            },
            5 => Branch {
                op: Snap::load(r)?,
                rs1: Snap::load(r)?,
                rs2: Snap::load(r)?,
                target: r.u32()?,
            },
            6 => Jal {
                rd: Snap::load(r)?,
                target: r.u32()?,
            },
            7 => Jalr {
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
                imm: r.i64()?,
            },
            8 => FpOp {
                op: Snap::load(r)?,
                prec: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
                rs2: Snap::load(r)?,
            },
            9 => FpFma {
                prec: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
                rs2: Snap::load(r)?,
                rs3: Snap::load(r)?,
            },
            10 => FpCmp {
                op: Snap::load(r)?,
                prec: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
                rs2: Snap::load(r)?,
            },
            11 => FpLoad {
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
                imm: r.i64()?,
                prec: Snap::load(r)?,
            },
            12 => FpStore {
                rs2: Snap::load(r)?,
                rs1: Snap::load(r)?,
                imm: r.i64()?,
                prec: Snap::load(r)?,
            },
            13 => FpCvtFromInt {
                prec: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
            },
            14 => FpCvtToInt {
                prec: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
            },
            15 => FpMvFromInt {
                prec: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
            },
            16 => FpMvToInt {
                prec: Snap::load(r)?,
                rd: Snap::load(r)?,
                rs1: Snap::load(r)?,
            },
            17 => VSetVl {
                rd: Snap::load(r)?,
                avl: Snap::load(r)?,
                sew: Snap::load(r)?,
            },
            18 => VLoad {
                vd: Snap::load(r)?,
                base: Snap::load(r)?,
                mode: Snap::load(r)?,
                masked: r.bool()?,
            },
            19 => VStore {
                vs3: Snap::load(r)?,
                base: Snap::load(r)?,
                mode: Snap::load(r)?,
                masked: r.bool()?,
            },
            20 => VArith {
                op: Snap::load(r)?,
                vd: Snap::load(r)?,
                src1: Snap::load(r)?,
                vs2: Snap::load(r)?,
                masked: r.bool()?,
            },
            21 => VCmp {
                op: Snap::load(r)?,
                vd: Snap::load(r)?,
                vs2: Snap::load(r)?,
                src1: Snap::load(r)?,
                masked: r.bool()?,
            },
            22 => VRed {
                op: Snap::load(r)?,
                vd: Snap::load(r)?,
                vs2: Snap::load(r)?,
                vs1: Snap::load(r)?,
                masked: r.bool()?,
            },
            23 => VPopc {
                rd: Snap::load(r)?,
                vs2: Snap::load(r)?,
            },
            24 => VFirst {
                rd: Snap::load(r)?,
                vs2: Snap::load(r)?,
            },
            25 => VMask {
                op: Snap::load(r)?,
                vd: Snap::load(r)?,
                vs1: Snap::load(r)?,
                vs2: Snap::load(r)?,
            },
            26 => VRgather {
                vd: Snap::load(r)?,
                vs2: Snap::load(r)?,
                vs1: Snap::load(r)?,
            },
            27 => VSlideUp {
                vd: Snap::load(r)?,
                vs2: Snap::load(r)?,
                amt: Snap::load(r)?,
            },
            28 => VSlideDown {
                vd: Snap::load(r)?,
                vs2: Snap::load(r)?,
                amt: Snap::load(r)?,
            },
            29 => VMvVX {
                vd: Snap::load(r)?,
                rs1: Snap::load(r)?,
            },
            30 => VFMvVF {
                vd: Snap::load(r)?,
                fs1: Snap::load(r)?,
            },
            31 => VMvVV {
                vd: Snap::load(r)?,
                vs2: Snap::load(r)?,
            },
            32 => VMvXS {
                rd: Snap::load(r)?,
                vs2: Snap::load(r)?,
            },
            33 => VFMvFS {
                rd: Snap::load(r)?,
                vs2: Snap::load(r)?,
            },
            34 => VMvSX {
                vd: Snap::load(r)?,
                rs1: Snap::load(r)?,
            },
            35 => VId {
                vd: Snap::load(r)?,
                masked: r.bool()?,
            },
            36 => VmFence,
            37 => Halt,
            38 => Nop,
            t => {
                return Err(SnapError::BadTag {
                    ty: "Instr",
                    tag: u64::from(t),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_snap::{from_framed, to_framed};

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Op {
                op: AluOp::Mul,
                rd: XReg::new(5),
                rs1: XReg::new(6),
                rs2: XReg::new(7),
            },
            Instr::OpImm {
                op: AluOp::Add,
                rd: XReg::new(1),
                rs1: XReg::new(2),
                imm: -4096,
            },
            Instr::Load {
                rd: XReg::new(3),
                rs1: XReg::new(4),
                imm: 16,
                width: MemWidth::W,
                signed: true,
            },
            Instr::Branch {
                op: BranchOp::Ltu,
                rs1: XReg::new(8),
                rs2: XReg::new(9),
                target: 42,
            },
            Instr::FpFma {
                prec: FpPrec::D,
                rd: FReg::new(1),
                rs1: FReg::new(2),
                rs2: FReg::new(3),
                rs3: FReg::new(4),
            },
            Instr::VSetVl {
                rd: XReg::new(10),
                avl: AvlSrc::Imm(8),
                sew: Sew::E32,
            },
            Instr::VLoad {
                vd: VReg::new(1),
                base: XReg::new(11),
                mode: VMemMode::Indexed(VReg::new(2)),
                masked: true,
            },
            Instr::VArith {
                op: VArithOp::FMacc,
                vd: VReg::new(3),
                src1: VSrc::F(FReg::new(5)),
                vs2: VReg::new(4),
                masked: false,
            },
            // A structurally-legal immediate the binary encoder rejects:
            // the structural codec must still round-trip it.
            Instr::VArith {
                op: VArithOp::Add,
                vd: VReg::new(1),
                src1: VSrc::I(1 << 40),
                vs2: VReg::new(2),
                masked: false,
            },
            Instr::VRed {
                op: VRedOp::FSum,
                vd: VReg::new(5),
                vs2: VReg::new(6),
                vs1: VReg::new(7),
                masked: true,
            },
            Instr::VmFence,
            Instr::Halt,
            Instr::Nop,
        ]
    }

    #[test]
    fn instr_round_trip() {
        for i in sample_instrs() {
            let blob = to_framed(&i);
            assert_eq!(from_framed::<Instr>(&blob).unwrap(), i, "{i:?}");
        }
    }

    #[test]
    fn out_of_range_register_is_typed_error_not_panic() {
        let mut w = SnapWriter::new();
        w.u8(40); // register index 40 >= 32
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload);
        assert!(matches!(
            XReg::load(&mut r),
            Err(SnapError::BadTag {
                ty: "XReg",
                tag: 40
            })
        ));
    }

    #[test]
    fn bad_instr_tag_rejected() {
        let mut w = SnapWriter::new();
        w.u8(200);
        let payload = w.into_bytes();
        let mut r = SnapReader::new(&payload);
        assert!(matches!(
            Instr::load(&mut r),
            Err(SnapError::BadTag { ty: "Instr", .. })
        ));
    }

    #[test]
    fn step_info_round_trip() {
        let info = StepInfo {
            pc: 7,
            instr: Instr::VStore {
                vs3: VReg::new(3),
                base: XReg::new(12),
                mode: VMemMode::Strided(XReg::new(13)),
                masked: false,
            },
            taken: Some(99),
            mem: vec![
                MemAccess {
                    addr: 0x2000,
                    size: 4,
                    is_store: true,
                },
                MemAccess {
                    addr: 0x2040,
                    size: 4,
                    is_store: true,
                },
            ],
            vl: 8,
            sew: Sew::E32,
            halted: false,
        };
        let blob = to_framed(&info);
        let back: StepInfo = from_framed(&blob).unwrap();
        assert_eq!(back.pc, info.pc);
        assert_eq!(back.instr, info.instr);
        assert_eq!(back.taken, info.taken);
        assert_eq!(back.mem, info.mem);
        assert_eq!(back.vl, info.vl);
        assert_eq!(back.sew, info.sew);
        assert_eq!(back.halted, info.halted);
    }
}
