//! The instruction set: an RV64 scalar subset plus an RVV 1.0 vector subset.
//!
//! Instructions are represented structurally (an enum), not as raw bits; the
//! [`crate::encode`] module provides a binary round-trip for tooling. Branch
//! and jump targets are *resolved instruction indices* produced by the
//! [`crate::asm::Assembler`]; the timing models map index `i` to the nominal
//! byte address `text_base + 4 * i` when modeling instruction fetch.

use crate::reg::{FReg, VReg, XReg};
use crate::vcfg::Sew;
use std::fmt;

/// Width of a scalar memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Scalar integer register-register / register-immediate ALU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Set-if-less-than, signed.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
    /// 64x64 -> low 64 multiply (M extension; register form only).
    Mul,
    /// Signed division (register form only).
    Div,
    /// Unsigned division (register form only).
    Divu,
    /// Signed remainder (register form only).
    Rem,
    /// Unsigned remainder (register form only).
    Remu,
}

impl AluOp {
    /// True for multiply/divide/remainder ops (long-latency in the cores).
    pub const fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu
        )
    }
}

/// Floating-point precision of a scalar or vector FP operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FpPrec {
    /// IEEE-754 binary32.
    #[default]
    S,
    /// IEEE-754 binary64.
    D,
}

/// Scalar floating-point computational operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Square root (unary; `rs2` ignored).
    Sqrt,
    /// Sign injection (`fsgnj`): magnitude of `rs1`, sign of `rs2`.
    Sgnj,
    /// Negated sign injection (`fsgnjn`): `fneg` when `rs1 == rs2`.
    Sgnjn,
    /// XORed sign injection (`fsgnjx`): `fabs` when `rs1 == rs2`.
    Sgnjx,
}

/// Scalar floating-point comparison writing 0/1 to an integer register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpCmpOp {
    /// Equal.
    Eq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
}

/// Branch condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Source of the application vector length for `vsetvl`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AvlSrc {
    /// AVL read from a scalar register.
    Reg(XReg),
    /// Immediate AVL (`vsetivli`).
    Imm(u32),
}

/// Addressing mode of a vector memory instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VMemMode {
    /// Unit-stride: consecutive elements at `base + i * sew`.
    Unit,
    /// Constant-stride: byte stride read from a scalar register.
    Strided(XReg),
    /// Indexed (gather/scatter): per-element byte offsets from a vector
    /// register, `base + vidx[i]`.
    Indexed(VReg),
}

impl VMemMode {
    /// True for indexed (gather/scatter) accesses, whose addresses are only
    /// known inside the vector engine (per-element translation, paper
    /// section III-E).
    pub const fn is_indexed(self) -> bool {
        matches!(self, VMemMode::Indexed(_))
    }
}

/// Second source operand of a vector arithmetic instruction (`.vv`, `.vx`,
/// `.vf`, `.vi` forms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VSrc {
    /// Vector register.
    V(VReg),
    /// Scalar integer register (splatted).
    X(XReg),
    /// Scalar floating-point register (splatted).
    F(FReg),
    /// Immediate (splatted).
    I(i64),
}

impl VSrc {
    /// The scalar integer register carried by this operand, if any.
    pub const fn xreg(self) -> Option<XReg> {
        match self {
            VSrc::X(x) => Some(x),
            _ => None,
        }
    }

    /// The scalar FP register carried by this operand, if any.
    pub const fn freg(self) -> Option<FReg> {
        match self {
            VSrc::F(f) => Some(f),
            _ => None,
        }
    }
}

/// Vector arithmetic operation (element-wise).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VArithOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiply (low).
    Mul,
    /// Signed integer division.
    Div,
    /// Unsigned integer division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// FP addition.
    FAdd,
    /// FP subtraction.
    FSub,
    /// FP multiplication.
    FMul,
    /// FP division.
    FDiv,
    /// FP minimum.
    FMin,
    /// FP maximum.
    FMax,
    /// FP square root (unary: `src1` ignored).
    FSqrt,
    /// FP fused multiply-accumulate: `vd[i] += src1[i] * vs2[i]`.
    FMacc,
    /// FP negated sign: `vd[i] = -vs2[i]` (unary).
    FNeg,
    /// FP absolute value (unary).
    FAbs,
    /// Mask merge: `vd[i] = mask[i] ? src1[i] : vs2[i]` (always uses `v0`).
    Merge,
}

impl VArithOp {
    /// True for floating-point element operations.
    pub const fn is_fp(self) -> bool {
        matches!(
            self,
            VArithOp::FAdd
                | VArithOp::FSub
                | VArithOp::FMul
                | VArithOp::FDiv
                | VArithOp::FMin
                | VArithOp::FMax
                | VArithOp::FSqrt
                | VArithOp::FMacc
                | VArithOp::FNeg
                | VArithOp::FAbs
        )
    }

    /// True for long-latency element operations (mul/div/sqrt and all FP):
    /// these serialize packed sub-word elements in the little cores (paper
    /// section III-C) and occupy the long-latency functional unit.
    pub const fn is_long_latency(self) -> bool {
        self.is_fp()
            || matches!(
                self,
                VArithOp::Mul | VArithOp::Div | VArithOp::Divu | VArithOp::Rem
            )
    }

    /// True for unary operations (only `vs2` is a real source).
    pub const fn is_unary(self) -> bool {
        matches!(self, VArithOp::FSqrt | VArithOp::FNeg | VArithOp::FAbs)
    }
}

/// Vector comparison writing a mask register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VCmpOp {
    /// Integer equal.
    Eq,
    /// Integer not-equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// FP equal.
    FEq,
    /// FP less-than.
    FLt,
    /// FP less-or-equal.
    FLe,
}

/// Vector reduction operation (cross-element; executes via the VXU in the
/// VLITTLE engine).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VRedOp {
    /// Integer sum reduction (`vredsum`).
    Sum,
    /// Integer minimum reduction.
    Min,
    /// Integer maximum reduction.
    Max,
    /// FP sum reduction (`vfredosum`, ordered).
    FSum,
    /// FP minimum reduction.
    FMin,
    /// FP maximum reduction.
    FMax,
}

impl VRedOp {
    /// True for floating-point reductions.
    pub const fn is_fp(self) -> bool {
        matches!(self, VRedOp::FSum | VRedOp::FMin | VRedOp::FMax)
    }
}

/// Mask-register logical operation (`vmand.mm` etc.).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VMaskOp {
    /// AND of two masks.
    And,
    /// OR of two masks.
    Or,
    /// XOR of two masks.
    Xor,
    /// AND-NOT (`vmandn`): `vs1 & !vs2`.
    AndNot,
    /// NOT via `vmnand` of a mask with itself.
    Not,
}

/// One instruction of the modeled ISA.
///
/// Scalar variants mirror RV64IMFD; vector variants mirror the RVV 1.0
/// subset exercised by the paper's workloads (unit/strided/indexed memory,
/// element arithmetic, comparisons, reductions, permutations, mask ops and
/// the `vmfence` scalar/vector ordering fence of section III-B).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Instr {
    // ----- scalar integer -----
    /// Register-register ALU operation.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: XReg,
        /// First source.
        rs1: XReg,
        /// Second source.
        rs2: XReg,
    },
    /// Register-immediate ALU operation (Sub/Mul/Div/Rem are not valid
    /// immediate forms).
    OpImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: XReg,
        /// Source.
        rs1: XReg,
        /// Sign-extended immediate.
        imm: i64,
    },
    /// Load upper immediate (`rd = imm << 12`).
    Lui {
        /// Destination.
        rd: XReg,
        /// Upper-immediate value (placed at bit 12).
        imm: i64,
    },
    /// Scalar load: `rd = mem[rs1 + imm]`.
    Load {
        /// Destination.
        rd: XReg,
        /// Base address register.
        rs1: XReg,
        /// Byte offset.
        imm: i64,
        /// Access width.
        width: MemWidth,
        /// Sign-extend the loaded value.
        signed: bool,
    },
    /// Scalar store: `mem[rs1 + imm] = rs2`.
    Store {
        /// Value source.
        rs2: XReg,
        /// Base address register.
        rs1: XReg,
        /// Byte offset.
        imm: i64,
        /// Access width.
        width: MemWidth,
    },
    /// Conditional branch to a resolved instruction index.
    Branch {
        /// Condition.
        op: BranchOp,
        /// First compare source.
        rs1: XReg,
        /// Second compare source.
        rs2: XReg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional jump; `rd` receives the return index + 1 (link).
    Jal {
        /// Link destination (use `x0` for a plain jump).
        rd: XReg,
        /// Target instruction index.
        target: u32,
    },
    /// Indirect jump: `pc = rs1 + imm` (instruction-index arithmetic).
    Jalr {
        /// Link destination.
        rd: XReg,
        /// Target base register.
        rs1: XReg,
        /// Index offset.
        imm: i64,
    },

    // ----- scalar floating point -----
    /// FP computational operation.
    FpOp {
        /// Operation.
        op: FpOp,
        /// Precision.
        prec: FpPrec,
        /// Destination.
        rd: FReg,
        /// First source.
        rs1: FReg,
        /// Second source (ignored by unary ops).
        rs2: FReg,
    },
    /// FP fused multiply-add: `rd = rs1 * rs2 + rs3`.
    FpFma {
        /// Precision.
        prec: FpPrec,
        /// Destination.
        rd: FReg,
        /// Multiplicand.
        rs1: FReg,
        /// Multiplier.
        rs2: FReg,
        /// Addend.
        rs3: FReg,
    },
    /// FP comparison to an integer register (0/1).
    FpCmp {
        /// Comparison.
        op: FpCmpOp,
        /// Precision.
        prec: FpPrec,
        /// Destination (integer).
        rd: XReg,
        /// First source.
        rs1: FReg,
        /// Second source.
        rs2: FReg,
    },
    /// FP load.
    FpLoad {
        /// Destination.
        rd: FReg,
        /// Base address register.
        rs1: XReg,
        /// Byte offset.
        imm: i64,
        /// Precision (S = 4 bytes, D = 8 bytes).
        prec: FpPrec,
    },
    /// FP store.
    FpStore {
        /// Value source.
        rs2: FReg,
        /// Base address register.
        rs1: XReg,
        /// Byte offset.
        imm: i64,
        /// Precision.
        prec: FpPrec,
    },
    /// Convert signed integer to FP: `rd = (fp) rs1`.
    FpCvtFromInt {
        /// Precision of the result.
        prec: FpPrec,
        /// Destination.
        rd: FReg,
        /// Integer source.
        rs1: XReg,
    },
    /// Convert FP to signed integer (truncating): `rd = (i64) rs1`.
    FpCvtToInt {
        /// Precision of the source.
        prec: FpPrec,
        /// Integer destination.
        rd: XReg,
        /// FP source.
        rs1: FReg,
    },
    /// Move raw bits from integer to FP register.
    FpMvFromInt {
        /// Precision (S moves low 32 bits).
        prec: FpPrec,
        /// Destination.
        rd: FReg,
        /// Source.
        rs1: XReg,
    },
    /// Move raw bits from FP to integer register.
    FpMvToInt {
        /// Precision.
        prec: FpPrec,
        /// Destination.
        rd: XReg,
        /// Source.
        rs1: FReg,
    },

    // ----- vector configuration & memory -----
    /// `vsetvl`: set `vl`/`sew`, returning the granted `vl` in `rd`.
    VSetVl {
        /// Destination for the granted vl.
        rd: XReg,
        /// Application vector length.
        avl: AvlSrc,
        /// Element width.
        sew: Sew,
    },
    /// Vector load (unit-stride, strided or indexed-gather).
    VLoad {
        /// Destination vector register.
        vd: VReg,
        /// Base address register.
        base: XReg,
        /// Addressing mode.
        mode: VMemMode,
        /// Execute under mask `v0`.
        masked: bool,
    },
    /// Vector store (unit-stride, strided or indexed-scatter).
    VStore {
        /// Data source vector register.
        vs3: VReg,
        /// Base address register.
        base: XReg,
        /// Addressing mode.
        mode: VMemMode,
        /// Execute under mask `v0`.
        masked: bool,
    },

    // ----- vector compute -----
    /// Element-wise arithmetic: `vd[i] = op(src1[i], vs2[i])`.
    VArith {
        /// Operation.
        op: VArithOp,
        /// Destination (also an accumulator source for `FMacc`).
        vd: VReg,
        /// First source (vector, splatted scalar, or immediate).
        src1: VSrc,
        /// Second source.
        vs2: VReg,
        /// Execute under mask `v0`.
        masked: bool,
    },
    /// Element-wise comparison writing mask bits to `vd`.
    VCmp {
        /// Comparison.
        op: VCmpOp,
        /// Mask destination.
        vd: VReg,
        /// First source (vector).
        vs2: VReg,
        /// Second source (vector, splatted scalar, or immediate).
        src1: VSrc,
        /// Execute under mask `v0`.
        masked: bool,
    },
    /// Reduction: `vd[0] = reduce(op, vs1[0], vs2[0..vl])`.
    VRed {
        /// Reduction operation.
        op: VRedOp,
        /// Destination (element 0 written).
        vd: VReg,
        /// Element source vector.
        vs2: VReg,
        /// Initial-value vector (element 0 read).
        vs1: VReg,
        /// Execute under mask `v0`.
        masked: bool,
    },
    /// Mask population count to a scalar register (`vcpop.m`).
    VPopc {
        /// Scalar destination.
        rd: XReg,
        /// Mask source.
        vs2: VReg,
    },
    /// Index of first set mask bit, or -1 (`vfirst.m`).
    VFirst {
        /// Scalar destination.
        rd: XReg,
        /// Mask source.
        vs2: VReg,
    },
    /// Mask-register logical operation.
    VMask {
        /// Operation.
        op: VMaskOp,
        /// Destination mask.
        vd: VReg,
        /// First source mask.
        vs1: VReg,
        /// Second source mask (ignored by `Not`).
        vs2: VReg,
    },

    // ----- vector permutation (cross-element; VXU in the VLITTLE engine) -----
    /// Register gather: `vd[i] = vs2[vs1[i]]` (out-of-range indices yield 0).
    VRgather {
        /// Destination.
        vd: VReg,
        /// Data source.
        vs2: VReg,
        /// Index source.
        vs1: VReg,
    },
    /// Slide up by a scalar amount: `vd[i + amt] = vs2[i]`.
    VSlideUp {
        /// Destination.
        vd: VReg,
        /// Source.
        vs2: VReg,
        /// Slide amount.
        amt: XReg,
    },
    /// Slide down by a scalar amount: `vd[i] = vs2[i + amt]`.
    VSlideDown {
        /// Destination.
        vd: VReg,
        /// Source.
        vs2: VReg,
        /// Slide amount.
        amt: XReg,
    },

    // ----- vector moves -----
    /// Splat a scalar integer: `vd[i] = rs1`.
    VMvVX {
        /// Destination.
        vd: VReg,
        /// Scalar source.
        rs1: XReg,
    },
    /// Splat a scalar float: `vd[i] = fs1`.
    VFMvVF {
        /// Destination.
        vd: VReg,
        /// Scalar FP source.
        fs1: FReg,
    },
    /// Vector-register copy: `vd = vs2` (`vmv.v.v`).
    VMvVV {
        /// Destination.
        vd: VReg,
        /// Source.
        vs2: VReg,
    },
    /// Element 0 to scalar integer register (`vmv.x.s`).
    VMvXS {
        /// Scalar destination.
        rd: XReg,
        /// Vector source.
        vs2: VReg,
    },
    /// Element 0 to scalar FP register (`vfmv.f.s`).
    VFMvFS {
        /// Scalar FP destination.
        rd: FReg,
        /// Vector source.
        vs2: VReg,
    },
    /// Scalar integer to element 0 (`vmv.s.x`).
    VMvSX {
        /// Vector destination.
        vd: VReg,
        /// Scalar source.
        rs1: XReg,
    },
    /// Element indices: `vd[i] = i` (`vid.v`).
    VId {
        /// Destination.
        vd: VReg,
        /// Execute under mask `v0`.
        masked: bool,
    },

    // ----- ordering & system -----
    /// Vector/scalar memory fence (paper section III-B): all older scalar
    /// and vector memory operations complete before any younger one issues.
    VmFence,
    /// Stop the hart. The simulator treats this as end-of-program.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// True if this is a vector instruction dispatched to a vector engine.
    ///
    /// `vsetvl` is *not* in this set: its result depends only on the
    /// machine's constant VLMAX, so it executes in the scalar core like
    /// real RVV implementations do — routing it through the engine would
    /// add a scalar-response round trip to every strip-mine iteration and
    /// serialize the decoupling the architecture exists for.
    pub const fn is_vector(&self) -> bool {
        matches!(
            self,
            Instr::VLoad { .. }
                | Instr::VStore { .. }
                | Instr::VArith { .. }
                | Instr::VCmp { .. }
                | Instr::VRed { .. }
                | Instr::VPopc { .. }
                | Instr::VFirst { .. }
                | Instr::VMask { .. }
                | Instr::VRgather { .. }
                | Instr::VSlideUp { .. }
                | Instr::VSlideDown { .. }
                | Instr::VMvVX { .. }
                | Instr::VFMvVF { .. }
                | Instr::VMvVV { .. }
                | Instr::VMvXS { .. }
                | Instr::VFMvFS { .. }
                | Instr::VMvSX { .. }
                | Instr::VId { .. }
                | Instr::VmFence
        )
    }

    /// True if this vector instruction writes a *scalar* register, forcing
    /// the big core to hold it at the ROB head until the vector engine
    /// responds (paper section III-A).
    pub const fn vector_writes_scalar(&self) -> bool {
        matches!(
            self,
            Instr::VPopc { .. } | Instr::VFirst { .. } | Instr::VMvXS { .. } | Instr::VFMvFS { .. }
        )
    }

    /// The scalar integer register a vector instruction carries *into* the
    /// engine (the VCU's scalar DataQ entry), if any.
    pub fn vector_scalar_source(&self) -> Option<XReg> {
        match *self {
            Instr::VLoad { base, mode, .. }
            | Instr::VStore {
                vs3: _, base, mode, ..
            } => {
                // Base always carried; strided also carries the stride, but
                // one DataQ slot is modeled per instruction.
                let _ = mode;
                Some(base)
            }
            Instr::VArith { src1, .. } | Instr::VCmp { src1, .. } => src1.xreg(),
            Instr::VSlideUp { amt, .. } | Instr::VSlideDown { amt, .. } => Some(amt),
            Instr::VMvVX { rs1, .. } | Instr::VMvSX { rs1, .. } => Some(rs1),
            Instr::VSetVl {
                avl: AvlSrc::Reg(r),
                ..
            } => Some(r),
            _ => None,
        }
    }

    /// True if this is a cross-element vector instruction (reduction,
    /// permutation, or element-0-to-scalar move), which occupies the VXU
    /// in the VLITTLE engine.
    pub const fn is_cross_element(&self) -> bool {
        matches!(
            self,
            Instr::VRed { .. }
                | Instr::VRgather { .. }
                | Instr::VSlideUp { .. }
                | Instr::VSlideDown { .. }
                | Instr::VPopc { .. }
                | Instr::VFirst { .. }
                | Instr::VMvXS { .. }
                | Instr::VFMvFS { .. }
        )
    }

    /// True if this is a vector memory instruction.
    pub const fn is_vector_mem(&self) -> bool {
        matches!(self, Instr::VLoad { .. } | Instr::VStore { .. })
    }

    /// True if this is a scalar memory access (load or store, integer or FP).
    pub const fn is_scalar_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::FpLoad { .. } | Instr::FpStore { .. }
        )
    }

    /// True for control-flow instructions (branches and jumps).
    pub const fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::encode::disasm(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let vadd = Instr::VArith {
            op: VArithOp::Add,
            vd: VReg::new(1),
            src1: VSrc::V(VReg::new(2)),
            vs2: VReg::new(3),
            masked: false,
        };
        assert!(vadd.is_vector());
        assert!(!vadd.vector_writes_scalar());
        assert!(!vadd.is_cross_element());

        let vpopc = Instr::VPopc {
            rd: XReg::new(5),
            vs2: VReg::MASK,
        };
        assert!(vpopc.is_vector());
        assert!(vpopc.vector_writes_scalar());
        assert!(vpopc.is_cross_element());

        let add = Instr::Op {
            op: AluOp::Add,
            rd: XReg::new(1),
            rs1: XReg::new(2),
            rs2: XReg::new(3),
        };
        assert!(!add.is_vector());
        assert!(!add.is_scalar_mem());
    }

    #[test]
    fn scalar_sources_for_dataq() {
        let vload = Instr::VLoad {
            vd: VReg::new(1),
            base: XReg::new(10),
            mode: VMemMode::Unit,
            masked: false,
        };
        assert_eq!(vload.vector_scalar_source(), Some(XReg::new(10)));

        let vv = Instr::VArith {
            op: VArithOp::Add,
            vd: VReg::new(1),
            src1: VSrc::V(VReg::new(2)),
            vs2: VReg::new(3),
            masked: false,
        };
        assert_eq!(vv.vector_scalar_source(), None);

        let vx = Instr::VArith {
            op: VArithOp::Add,
            vd: VReg::new(1),
            src1: VSrc::X(XReg::new(7)),
            vs2: VReg::new(3),
            masked: false,
        };
        assert_eq!(vx.vector_scalar_source(), Some(XReg::new(7)));
    }

    #[test]
    fn long_latency_ops() {
        assert!(VArithOp::FMul.is_long_latency());
        assert!(VArithOp::Mul.is_long_latency());
        assert!(!VArithOp::Add.is_long_latency());
        assert!(!VArithOp::And.is_long_latency());
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::D.bytes(), 8);
    }
}
