#![warn(missing_docs)]
//! # bvl-isa — instruction-set model for the big.VLITTLE reproduction
//!
//! This crate defines everything the rest of the workspace needs to *talk
//! about programs*:
//!
//! * [`reg`] — newtypes for scalar integer ([`XReg`]), scalar floating-point
//!   ([`FReg`]) and vector ([`VReg`]) architectural registers.
//! * [`vcfg`] — the RVV 1.0 vector-configuration state: selected element
//!   width ([`Sew`]), granted vector length ([`vcfg::VectorConfig`]).
//! * [`instr`] — the [`Instr`] enum covering the RV64 scalar subset and the
//!   RVV 1.0 vector subset used by the paper's workloads.
//! * [`asm`] — a label-resolving program builder ([`Assembler`]) used by the
//!   workload crates to emit instruction streams the way a compiler with
//!   RVV intrinsics would.
//! * [`exec`] — the *golden* functional executor ([`Machine`]): a pure
//!   architectural-state interpreter used both directly (workload
//!   characterization, Table IV/V) and as the semantic oracle inside every
//!   timing model.
//! * [`mem`] — the byte-addressable [`Memory`] trait the executor runs
//!   against, plus a simple in-crate [`mem::VecMemory`] implementation.
//! * [`encode`] — binary encode/decode for the scalar subset (real RV64
//!   encodings) and a documented custom 32-bit encoding for the vector
//!   subset, with round-trip guarantees.
//! * [`meta`] — static per-instruction metadata (functional-unit class,
//!   latency class, memory behaviour) consumed by the timing models.
//!
//! ## Example
//!
//! ```
//! use bvl_isa::asm::Assembler;
//! use bvl_isa::exec::Machine;
//! use bvl_isa::mem::VecMemory;
//! use bvl_isa::reg::XReg;
//!
//! // x1 = 2; x2 = 40; x3 = x1 + x2; halt
//! let mut a = Assembler::new();
//! a.li(XReg::new(1), 2);
//! a.li(XReg::new(2), 40);
//! a.add(XReg::new(3), XReg::new(1), XReg::new(2));
//! a.halt();
//! let prog = a.assemble().unwrap();
//!
//! let mut m = Machine::new(VecMemory::new(1 << 16), 512);
//! m.run(&prog, 1_000).unwrap();
//! assert_eq!(m.xreg(XReg::new(3)), 42);
//! ```

pub mod asm;
pub mod encode;
pub mod exec;
pub mod instr;
pub mod mem;
pub mod meta;
pub mod predecode;
pub mod reg;
pub mod snap;
pub mod vcfg;

pub use asm::Assembler;
pub use exec::{ArchSnapshot, Machine};
pub use instr::Instr;
pub use mem::Memory;
pub use reg::{FReg, VReg, XReg};
pub use vcfg::Sew;
