//! Binary encoding, decoding and disassembly.
//!
//! Scalar instructions use the real RV64IMFD encodings (R/I/S/B/U/J
//! formats). Vector instructions use a *structural* 32-bit encoding that
//! mirrors the shape of RVV 1.0 (OP-V major opcode, `funct6`/`funct3`/`vm`
//! fields) but is not bit-compatible with the ratified spec — the simulator
//! dispatches on [`Instr`] values, and this module exists for tooling
//! (program dumps, round-trip tests, binary size accounting).
//!
//! Branch/jump targets in [`Instr`] are absolute instruction indices;
//! encoding converts them to the byte-relative immediates of the real
//! formats using the instruction's own index (`pc`), and decoding converts
//! back, so `decode(encode(i, pc), pc) == i` for every encodable
//! instruction.

use crate::instr::{
    AluOp, AvlSrc, BranchOp, FpCmpOp, FpOp, FpPrec, Instr, MemWidth, VArithOp, VCmpOp, VMaskOp,
    VMemMode, VRedOp, VSrc,
};
use crate::reg::{FReg, VReg, XReg};
use crate::vcfg::Sew;
use std::fmt;

/// Error produced by [`encode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit in the instruction format's field.
    ImmOutOfRange {
        /// The offending immediate.
        imm: i64,
        /// Field width in bits (signed).
        bits: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { imm, bits } => {
                write!(f, "immediate {imm} does not fit in {bits} signed bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced by [`decode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The word's opcode or sub-fields match no modeled instruction.
    Unrecognized(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Unrecognized(w) => write!(f, "unrecognized instruction word {w:#010x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn check_imm(imm: i64, bits: u32) -> Result<u32, EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if imm < min || imm > max {
        Err(EncodeError::ImmOutOfRange { imm, bits })
    } else {
        Ok((imm as u64 & ((1u64 << bits) - 1)) as u32)
    }
}

fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((v as u64) << shift) as i64) >> shift
}

const OP: u32 = 0x33;
const OP_IMM: u32 = 0x13;
const LUI: u32 = 0x37;
const LOAD: u32 = 0x03;
const STORE: u32 = 0x23;
const BRANCH: u32 = 0x63;
const JAL: u32 = 0x6F;
const JALR: u32 = 0x67;
const LOAD_FP: u32 = 0x07;
const STORE_FP: u32 = 0x27;
const OP_FP: u32 = 0x53;
const FMADD: u32 = 0x43;
const OP_V: u32 = 0x57;
const MISC_MEM: u32 = 0x0F;
const SYSTEM: u32 = 0x73;

fn r_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, rs2: u32, funct7: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
}

fn i_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, imm12: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (imm12 << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm12: u32) -> u32 {
    opcode
        | ((imm12 & 0x1F) << 7)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | ((imm12 >> 5) << 25)
}

fn alu_funct(op: AluOp) -> (u32, u32) {
    // (funct3, funct7)
    match op {
        AluOp::Add => (0, 0),
        AluOp::Sub => (0, 0x20),
        AluOp::Sll => (1, 0),
        AluOp::Slt => (2, 0),
        AluOp::Sltu => (3, 0),
        AluOp::Xor => (4, 0),
        AluOp::Srl => (5, 0),
        AluOp::Sra => (5, 0x20),
        AluOp::Or => (6, 0),
        AluOp::And => (7, 0),
        AluOp::Mul => (0, 1),
        AluOp::Div => (4, 1),
        AluOp::Divu => (5, 1),
        AluOp::Rem => (6, 1),
        AluOp::Remu => (7, 1),
    }
}

fn alu_from_funct(funct3: u32, funct7: u32) -> Option<AluOp> {
    Some(match (funct3, funct7) {
        (0, 0) => AluOp::Add,
        (0, 0x20) => AluOp::Sub,
        (1, 0) => AluOp::Sll,
        (2, 0) => AluOp::Slt,
        (3, 0) => AluOp::Sltu,
        (4, 0) => AluOp::Xor,
        (5, 0) => AluOp::Srl,
        (5, 0x20) => AluOp::Sra,
        (6, 0) => AluOp::Or,
        (7, 0) => AluOp::And,
        (0, 1) => AluOp::Mul,
        (4, 1) => AluOp::Div,
        (5, 1) => AluOp::Divu,
        (6, 1) => AluOp::Rem,
        (7, 1) => AluOp::Remu,
        _ => return None,
    })
}

fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Eq => 0,
        BranchOp::Ne => 1,
        BranchOp::Lt => 4,
        BranchOp::Ge => 5,
        BranchOp::Ltu => 6,
        BranchOp::Geu => 7,
    }
}

fn branch_from_funct3(f: u32) -> Option<BranchOp> {
    Some(match f {
        0 => BranchOp::Eq,
        1 => BranchOp::Ne,
        4 => BranchOp::Lt,
        5 => BranchOp::Ge,
        6 => BranchOp::Ltu,
        7 => BranchOp::Geu,
        _ => return None,
    })
}

fn fmt_bit(prec: FpPrec) -> u32 {
    match prec {
        FpPrec::S => 0,
        FpPrec::D => 1,
    }
}

fn fp_funct7(op: FpOp, prec: FpPrec) -> (u32, u32) {
    // (funct7, funct3) — funct3 carries rounding mode (0) or sgnj selector.
    let f = fmt_bit(prec);
    match op {
        FpOp::Add => (f, 0),
        FpOp::Sub => (0x04 | f, 0),
        FpOp::Mul => (0x08 | f, 0),
        FpOp::Div => (0x0C | f, 0),
        FpOp::Sqrt => (0x2C | f, 0),
        FpOp::Sgnj => (0x10 | f, 0),
        FpOp::Sgnjn => (0x10 | f, 1),
        FpOp::Sgnjx => (0x10 | f, 2),
        FpOp::Min => (0x14 | f, 0),
        FpOp::Max => (0x14 | f, 1),
    }
}

// Structural funct6 assignments for the vector encoding (see module docs).
fn varith_funct6(op: VArithOp) -> u32 {
    use VArithOp::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Div => 3,
        Divu => 4,
        Rem => 5,
        Min => 6,
        Max => 7,
        And => 8,
        Or => 9,
        Xor => 10,
        Sll => 11,
        Srl => 12,
        Sra => 13,
        FAdd => 14,
        FSub => 15,
        FMul => 16,
        FDiv => 17,
        FMin => 18,
        FMax => 19,
        FSqrt => 20,
        FMacc => 21,
        FNeg => 22,
        FAbs => 23,
        Merge => 24,
    }
}

fn varith_from_funct6(f: u32) -> Option<VArithOp> {
    use VArithOp::*;
    Some(match f {
        0 => Add,
        1 => Sub,
        2 => Mul,
        3 => Div,
        4 => Divu,
        5 => Rem,
        6 => Min,
        7 => Max,
        8 => And,
        9 => Or,
        10 => Xor,
        11 => Sll,
        12 => Srl,
        13 => Sra,
        14 => FAdd,
        15 => FSub,
        16 => FMul,
        17 => FDiv,
        18 => FMin,
        19 => FMax,
        20 => FSqrt,
        21 => FMacc,
        22 => FNeg,
        23 => FAbs,
        24 => Merge,
        _ => return None,
    })
}

fn vcmp_funct6(op: VCmpOp) -> u32 {
    use VCmpOp::*;
    match op {
        Eq => 25,
        Ne => 26,
        Lt => 27,
        Le => 28,
        Gt => 29,
        FEq => 30,
        FLt => 31,
        FLe => 32,
    }
}

fn vcmp_from_funct6(f: u32) -> Option<VCmpOp> {
    use VCmpOp::*;
    Some(match f {
        25 => Eq,
        26 => Ne,
        27 => Lt,
        28 => Le,
        29 => Gt,
        30 => FEq,
        31 => FLt,
        32 => FLe,
        _ => return None,
    })
}

fn vred_funct6(op: VRedOp) -> u32 {
    use VRedOp::*;
    match op {
        Sum => 33,
        Min => 34,
        Max => 35,
        FSum => 36,
        FMin => 37,
        FMax => 38,
    }
}

fn vred_from_funct6(f: u32) -> Option<VRedOp> {
    use VRedOp::*;
    Some(match f {
        33 => Sum,
        34 => Min,
        35 => Max,
        36 => FSum,
        37 => FMin,
        38 => FMax,
        _ => return None,
    })
}

fn vmask_funct6(op: VMaskOp) -> u32 {
    use VMaskOp::*;
    match op {
        And => 39,
        Or => 40,
        Xor => 41,
        AndNot => 42,
        Not => 43,
    }
}

fn vmask_from_funct6(f: u32) -> Option<VMaskOp> {
    use VMaskOp::*;
    Some(match f {
        39 => And,
        40 => Or,
        41 => Xor,
        42 => AndNot,
        43 => Not,
        _ => return None,
    })
}

const F6_RGATHER: u32 = 44;
const F6_SLIDEUP: u32 = 45;
const F6_SLIDEDOWN: u32 = 46;
const F6_MV_VX: u32 = 47;
const F6_FMV_VF: u32 = 48;
const F6_MV_VV: u32 = 49;
const F6_MV_XS: u32 = 50;
const F6_FMV_FS: u32 = 51;
const F6_MV_SX: u32 = 52;
const F6_VID: u32 = 53;
const F6_POPC: u32 = 54;
const F6_FIRST: u32 = 55;

/// OPIVV / OPIVX / OPIVI / OPFVF operand-kind selectors (funct3 of OP-V).
const K_VV: u32 = 0;
const K_VI: u32 = 3;
const K_VX: u32 = 4;
const K_VF: u32 = 5;
const K_SETVL: u32 = 7;

fn opv(funct6: u32, vm_masked: bool, vs2: u32, s1: u32, funct3: u32, d: u32) -> u32 {
    OP_V | (d << 7)
        | (funct3 << 12)
        | (s1 << 15)
        | (vs2 << 20)
        | (u32::from(vm_masked) << 25)
        | (funct6 << 26)
}

fn sew_code(sew: Sew) -> u32 {
    match sew {
        Sew::E8 => 0,
        Sew::E16 => 1,
        Sew::E32 => 2,
        Sew::E64 => 3,
    }
}

fn sew_from_code(c: u32) -> Sew {
    match c & 3 {
        0 => Sew::E8,
        1 => Sew::E16,
        2 => Sew::E32,
        _ => Sew::E64,
    }
}

/// Encodes one instruction into a 32-bit word.
///
/// `pc` is the instruction's own index in the program (used to compute
/// byte-relative branch/jump immediates).
///
/// # Errors
///
/// Returns [`EncodeError::ImmOutOfRange`] if an immediate (including a
/// branch displacement) does not fit the format's field.
pub fn encode(instr: &Instr, pc: u32) -> Result<u32, EncodeError> {
    Ok(match *instr {
        Instr::Op { op, rd, rs1, rs2 } => {
            let (f3, f7) = alu_funct(op);
            r_type(
                OP,
                rd.index() as u32,
                f3,
                rs1.index() as u32,
                rs2.index() as u32,
                f7,
            )
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            let (f3, f7) = alu_funct(op);
            let imm12 = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                check_imm(imm, 7)? | (f7 << 6) // 6-bit shamt + funct7 marker
            } else {
                check_imm(imm, 12)?
            };
            i_type(OP_IMM, rd.index() as u32, f3, rs1.index() as u32, imm12)
        }
        Instr::Lui { rd, imm } => {
            let imm20 = check_imm(imm, 20)?;
            LUI | ((rd.index() as u32) << 7) | (imm20 << 12)
        }
        Instr::Load {
            rd,
            rs1,
            imm,
            width,
            signed,
        } => {
            let f3 = match (width, signed) {
                (MemWidth::B, true) => 0,
                (MemWidth::H, true) => 1,
                (MemWidth::W, true) => 2,
                (MemWidth::D, _) => 3,
                (MemWidth::B, false) => 4,
                (MemWidth::H, false) => 5,
                (MemWidth::W, false) => 6,
            };
            i_type(
                LOAD,
                rd.index() as u32,
                f3,
                rs1.index() as u32,
                check_imm(imm, 12)?,
            )
        }
        Instr::Store {
            rs2,
            rs1,
            imm,
            width,
        } => {
            let f3 = match width {
                MemWidth::B => 0,
                MemWidth::H => 1,
                MemWidth::W => 2,
                MemWidth::D => 3,
            };
            s_type(
                STORE,
                f3,
                rs1.index() as u32,
                rs2.index() as u32,
                check_imm(imm, 12)?,
            )
        }
        Instr::Branch {
            op,
            rs1,
            rs2,
            target,
        } => {
            let disp = (i64::from(target) - i64::from(pc)) * 4;
            let imm = check_imm(disp, 13)?;
            let f3 = branch_funct3(op);
            BRANCH
                | (((imm >> 11) & 1) << 7)
                | (((imm >> 1) & 0xF) << 8)
                | (f3 << 12)
                | ((rs1.index() as u32) << 15)
                | ((rs2.index() as u32) << 20)
                | (((imm >> 5) & 0x3F) << 25)
                | (((imm >> 12) & 1) << 31)
        }
        Instr::Jal { rd, target } => {
            let disp = (i64::from(target) - i64::from(pc)) * 4;
            let imm = check_imm(disp, 21)?;
            JAL | ((rd.index() as u32) << 7)
                | (((imm >> 12) & 0xFF) << 12)
                | (((imm >> 11) & 1) << 20)
                | (((imm >> 1) & 0x3FF) << 21)
                | (((imm >> 20) & 1) << 31)
        }
        Instr::Jalr { rd, rs1, imm } => i_type(
            JALR,
            rd.index() as u32,
            0,
            rs1.index() as u32,
            check_imm(imm, 12)?,
        ),

        Instr::FpOp {
            op,
            prec,
            rd,
            rs1,
            rs2,
        } => {
            let (f7, f3) = fp_funct7(op, prec);
            r_type(
                OP_FP,
                rd.index() as u32,
                f3,
                rs1.index() as u32,
                rs2.index() as u32,
                f7,
            )
        }
        Instr::FpFma {
            prec,
            rd,
            rs1,
            rs2,
            rs3,
        } => {
            FMADD
                | ((rd.index() as u32) << 7)
                | ((rs1.index() as u32) << 15)
                | ((rs2.index() as u32) << 20)
                | (fmt_bit(prec) << 25)
                | ((rs3.index() as u32) << 27)
        }
        Instr::FpCmp {
            op,
            prec,
            rd,
            rs1,
            rs2,
        } => {
            let f3 = match op {
                FpCmpOp::Le => 0,
                FpCmpOp::Lt => 1,
                FpCmpOp::Eq => 2,
            };
            r_type(
                OP_FP,
                rd.index() as u32,
                f3,
                rs1.index() as u32,
                rs2.index() as u32,
                0x50 | fmt_bit(prec),
            )
        }
        Instr::FpLoad { rd, rs1, imm, prec } => i_type(
            LOAD_FP,
            rd.index() as u32,
            2 + fmt_bit(prec),
            rs1.index() as u32,
            check_imm(imm, 12)?,
        ),
        Instr::FpStore {
            rs2,
            rs1,
            imm,
            prec,
        } => s_type(
            STORE_FP,
            2 + fmt_bit(prec),
            rs1.index() as u32,
            rs2.index() as u32,
            check_imm(imm, 12)?,
        ),
        Instr::FpCvtFromInt { prec, rd, rs1 } => r_type(
            OP_FP,
            rd.index() as u32,
            0,
            rs1.index() as u32,
            0,
            0x68 | fmt_bit(prec),
        ),
        Instr::FpCvtToInt { prec, rd, rs1 } => r_type(
            OP_FP,
            rd.index() as u32,
            0,
            rs1.index() as u32,
            0,
            0x60 | fmt_bit(prec),
        ),
        Instr::FpMvFromInt { prec, rd, rs1 } => r_type(
            OP_FP,
            rd.index() as u32,
            0,
            rs1.index() as u32,
            0,
            0x78 | fmt_bit(prec),
        ),
        Instr::FpMvToInt { prec, rd, rs1 } => r_type(
            OP_FP,
            rd.index() as u32,
            0,
            rs1.index() as u32,
            0,
            0x70 | fmt_bit(prec),
        ),

        Instr::VSetVl { rd, avl, sew } => {
            let (s1, is_imm) = match avl {
                AvlSrc::Reg(r) => (r.index() as u32, 0),
                AvlSrc::Imm(i) => {
                    if i > 31 {
                        return Err(EncodeError::ImmOutOfRange {
                            imm: i64::from(i),
                            bits: 5,
                        });
                    }
                    (i, 1)
                }
            };
            opv(
                sew_code(sew),
                is_imm == 1,
                0,
                s1,
                K_SETVL,
                rd.index() as u32,
            )
        }
        Instr::VLoad {
            vd,
            base,
            mode,
            masked,
        } => encode_vmem(LOAD_FP, vd.index() as u32, base, mode, masked),
        Instr::VStore {
            vs3,
            base,
            mode,
            masked,
        } => encode_vmem(STORE_FP, vs3.index() as u32, base, mode, masked),
        Instr::VArith {
            op,
            vd,
            src1,
            vs2,
            masked,
        } => {
            let (k, s1) = encode_vsrc(src1)?;
            opv(
                varith_funct6(op),
                masked,
                vs2.index() as u32,
                s1,
                k,
                vd.index() as u32,
            )
        }
        Instr::VCmp {
            op,
            vd,
            vs2,
            src1,
            masked,
        } => {
            let (k, s1) = encode_vsrc(src1)?;
            opv(
                vcmp_funct6(op),
                masked,
                vs2.index() as u32,
                s1,
                k,
                vd.index() as u32,
            )
        }
        Instr::VRed {
            op,
            vd,
            vs2,
            vs1,
            masked,
        } => opv(
            vred_funct6(op),
            masked,
            vs2.index() as u32,
            vs1.index() as u32,
            K_VV,
            vd.index() as u32,
        ),
        Instr::VPopc { rd, vs2 } => opv(
            F6_POPC,
            false,
            vs2.index() as u32,
            0,
            K_VV,
            rd.index() as u32,
        ),
        Instr::VFirst { rd, vs2 } => opv(
            F6_FIRST,
            false,
            vs2.index() as u32,
            0,
            K_VV,
            rd.index() as u32,
        ),
        Instr::VMask { op, vd, vs1, vs2 } => opv(
            vmask_funct6(op),
            false,
            vs2.index() as u32,
            vs1.index() as u32,
            K_VV,
            vd.index() as u32,
        ),
        Instr::VRgather { vd, vs2, vs1 } => opv(
            F6_RGATHER,
            false,
            vs2.index() as u32,
            vs1.index() as u32,
            K_VV,
            vd.index() as u32,
        ),
        Instr::VSlideUp { vd, vs2, amt } => opv(
            F6_SLIDEUP,
            false,
            vs2.index() as u32,
            amt.index() as u32,
            K_VX,
            vd.index() as u32,
        ),
        Instr::VSlideDown { vd, vs2, amt } => opv(
            F6_SLIDEDOWN,
            false,
            vs2.index() as u32,
            amt.index() as u32,
            K_VX,
            vd.index() as u32,
        ),
        Instr::VMvVX { vd, rs1 } => opv(
            F6_MV_VX,
            false,
            0,
            rs1.index() as u32,
            K_VX,
            vd.index() as u32,
        ),
        Instr::VFMvVF { vd, fs1 } => opv(
            F6_FMV_VF,
            false,
            0,
            fs1.index() as u32,
            K_VF,
            vd.index() as u32,
        ),
        Instr::VMvVV { vd, vs2 } => opv(
            F6_MV_VV,
            false,
            vs2.index() as u32,
            0,
            K_VV,
            vd.index() as u32,
        ),
        Instr::VMvXS { rd, vs2 } => opv(
            F6_MV_XS,
            false,
            vs2.index() as u32,
            0,
            K_VV,
            rd.index() as u32,
        ),
        Instr::VFMvFS { rd, vs2 } => opv(
            F6_FMV_FS,
            false,
            vs2.index() as u32,
            0,
            K_VV,
            rd.index() as u32,
        ),
        Instr::VMvSX { vd, rs1 } => opv(
            F6_MV_SX,
            false,
            0,
            rs1.index() as u32,
            K_VX,
            vd.index() as u32,
        ),
        Instr::VId { vd, masked } => opv(F6_VID, masked, 0, 0, K_VV, vd.index() as u32),

        Instr::VmFence => MISC_MEM | (0b1010 << 28),
        Instr::Halt => SYSTEM | (1 << 20), // EBREAK
        Instr::Nop => i_type(OP_IMM, 0, 0, 0, 0),
    })
}

fn encode_vsrc(src1: VSrc) -> Result<(u32, u32), EncodeError> {
    Ok(match src1 {
        VSrc::V(v) => (K_VV, v.index() as u32),
        VSrc::X(x) => (K_VX, x.index() as u32),
        VSrc::F(f) => (K_VF, f.index() as u32),
        VSrc::I(imm) => (K_VI, check_imm(imm, 5)?),
    })
}

fn encode_vmem(opcode: u32, vreg: u32, base: XReg, mode: VMemMode, masked: bool) -> u32 {
    let (mop, reg2) = match mode {
        VMemMode::Unit => (0u32, 0u32),
        VMemMode::Strided(s) => (2, s.index() as u32),
        VMemMode::Indexed(v) => (3, v.index() as u32),
    };
    opcode
        | (vreg << 7)
        | (7 << 12) // funct3 = 7 distinguishes vector from scalar FP mem
        | ((base.index() as u32) << 15)
        | (reg2 << 20)
        | (u32::from(masked) << 25)
        | (mop << 26)
}

/// Decodes a 32-bit word back into an [`Instr`].
///
/// `pc` is the word's instruction index (for branch targets).
///
/// # Errors
///
/// Returns [`DecodeError::Unrecognized`] for words outside the modeled
/// subset.
pub fn decode(word: u32, pc: u32) -> Result<Instr, DecodeError> {
    let opcode = word & 0x7F;
    let rd = ((word >> 7) & 0x1F) as u8;
    let funct3 = (word >> 12) & 7;
    let rs1 = ((word >> 15) & 0x1F) as u8;
    let rs2 = ((word >> 20) & 0x1F) as u8;
    let funct7 = (word >> 25) & 0x7F;
    let err = DecodeError::Unrecognized(word);

    Ok(match opcode {
        OP => Instr::Op {
            op: alu_from_funct(funct3, funct7).ok_or(err)?,
            rd: XReg::new(rd),
            rs1: XReg::new(rs1),
            rs2: XReg::new(rs2),
        },
        OP_IMM => {
            if word == i_type(OP_IMM, 0, 0, 0, 0) {
                return Ok(Instr::Nop);
            }
            let raw = (word >> 20) & 0xFFF;
            let op = match funct3 {
                0 => AluOp::Add,
                1 => AluOp::Sll,
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 => {
                    if (raw >> 6) & 0x20 != 0 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => return Err(err),
            };
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                i64::from(raw & 0x3F)
            } else {
                sext(raw, 12)
            };
            Instr::OpImm {
                op,
                rd: XReg::new(rd),
                rs1: XReg::new(rs1),
                imm,
            }
        }
        LUI => Instr::Lui {
            rd: XReg::new(rd),
            imm: sext(word >> 12, 20),
        },
        LOAD => {
            let (width, signed) = match funct3 {
                0 => (MemWidth::B, true),
                1 => (MemWidth::H, true),
                2 => (MemWidth::W, true),
                3 => (MemWidth::D, true),
                4 => (MemWidth::B, false),
                5 => (MemWidth::H, false),
                6 => (MemWidth::W, false),
                _ => return Err(err),
            };
            Instr::Load {
                rd: XReg::new(rd),
                rs1: XReg::new(rs1),
                imm: sext(word >> 20, 12),
                width,
                signed,
            }
        }
        STORE => {
            let width = match funct3 {
                0 => MemWidth::B,
                1 => MemWidth::H,
                2 => MemWidth::W,
                3 => MemWidth::D,
                _ => return Err(err),
            };
            let imm = sext(((word >> 7) & 0x1F) | (((word >> 25) & 0x7F) << 5), 12);
            Instr::Store {
                rs2: XReg::new(rs2),
                rs1: XReg::new(rs1),
                imm,
                width,
            }
        }
        BRANCH => {
            let imm = (((word >> 8) & 0xF) << 1)
                | (((word >> 25) & 0x3F) << 5)
                | (((word >> 7) & 1) << 11)
                | ((word >> 31) << 12);
            let disp = sext(imm, 13);
            Instr::Branch {
                op: branch_from_funct3(funct3).ok_or(err)?,
                rs1: XReg::new(rs1),
                rs2: XReg::new(rs2),
                target: (i64::from(pc) + disp / 4) as u32,
            }
        }
        JAL => {
            let imm = (((word >> 21) & 0x3FF) << 1)
                | (((word >> 20) & 1) << 11)
                | (((word >> 12) & 0xFF) << 12)
                | ((word >> 31) << 20);
            let disp = sext(imm, 21);
            Instr::Jal {
                rd: XReg::new(rd),
                target: (i64::from(pc) + disp / 4) as u32,
            }
        }
        JALR => Instr::Jalr {
            rd: XReg::new(rd),
            rs1: XReg::new(rs1),
            imm: sext(word >> 20, 12),
        },
        LOAD_FP | STORE_FP if funct3 == 7 => {
            let masked = (word >> 25) & 1 == 1;
            let mode = match (word >> 26) & 3 {
                0 => VMemMode::Unit,
                2 => VMemMode::Strided(XReg::new(rs2)),
                3 => VMemMode::Indexed(VReg::new(rs2)),
                _ => return Err(err),
            };
            if opcode == LOAD_FP {
                Instr::VLoad {
                    vd: VReg::new(rd),
                    base: XReg::new(rs1),
                    mode,
                    masked,
                }
            } else {
                Instr::VStore {
                    vs3: VReg::new(rd),
                    base: XReg::new(rs1),
                    mode,
                    masked,
                }
            }
        }
        LOAD_FP => {
            let prec = if funct3 == 3 { FpPrec::D } else { FpPrec::S };
            Instr::FpLoad {
                rd: FReg::new(rd),
                rs1: XReg::new(rs1),
                imm: sext(word >> 20, 12),
                prec,
            }
        }
        STORE_FP => {
            let prec = if funct3 == 3 { FpPrec::D } else { FpPrec::S };
            let imm = sext(((word >> 7) & 0x1F) | (((word >> 25) & 0x7F) << 5), 12);
            Instr::FpStore {
                rs2: FReg::new(rs2),
                rs1: XReg::new(rs1),
                imm,
                prec,
            }
        }
        OP_FP => {
            let prec = if funct7 & 1 == 1 {
                FpPrec::D
            } else {
                FpPrec::S
            };
            match funct7 & !1 {
                0x50 => {
                    let op = match funct3 {
                        0 => FpCmpOp::Le,
                        1 => FpCmpOp::Lt,
                        2 => FpCmpOp::Eq,
                        _ => return Err(err),
                    };
                    Instr::FpCmp {
                        op,
                        prec,
                        rd: XReg::new(rd),
                        rs1: FReg::new(rs1),
                        rs2: FReg::new(rs2),
                    }
                }
                0x68 => Instr::FpCvtFromInt {
                    prec,
                    rd: FReg::new(rd),
                    rs1: XReg::new(rs1),
                },
                0x60 => Instr::FpCvtToInt {
                    prec,
                    rd: XReg::new(rd),
                    rs1: FReg::new(rs1),
                },
                0x78 => Instr::FpMvFromInt {
                    prec,
                    rd: FReg::new(rd),
                    rs1: XReg::new(rs1),
                },
                0x70 => Instr::FpMvToInt {
                    prec,
                    rd: XReg::new(rd),
                    rs1: FReg::new(rs1),
                },
                base => {
                    let op = match (base, funct3) {
                        (0x00, 0) => FpOp::Add,
                        (0x04, 0) => FpOp::Sub,
                        (0x08, 0) => FpOp::Mul,
                        (0x0C, 0) => FpOp::Div,
                        (0x2C, 0) => FpOp::Sqrt,
                        (0x10, 0) => FpOp::Sgnj,
                        (0x10, 1) => FpOp::Sgnjn,
                        (0x10, 2) => FpOp::Sgnjx,
                        (0x14, 0) => FpOp::Min,
                        (0x14, 1) => FpOp::Max,
                        _ => return Err(err),
                    };
                    Instr::FpOp {
                        op,
                        prec,
                        rd: FReg::new(rd),
                        rs1: FReg::new(rs1),
                        rs2: FReg::new(rs2),
                    }
                }
            }
        }
        FMADD => Instr::FpFma {
            prec: if (word >> 25) & 1 == 1 {
                FpPrec::D
            } else {
                FpPrec::S
            },
            rd: FReg::new(rd),
            rs1: FReg::new(rs1),
            rs2: FReg::new(rs2),
            rs3: FReg::new(((word >> 27) & 0x1F) as u8),
        },
        OP_V => decode_opv(word, rd, funct3, rs1, rs2).ok_or(err)?,
        MISC_MEM if (word >> 28) == 0b1010 => Instr::VmFence,
        SYSTEM if word == SYSTEM | (1 << 20) => Instr::Halt,
        _ => return Err(err),
    })
}

fn decode_opv(word: u32, rd: u8, funct3: u32, s1: u8, vs2: u8) -> Option<Instr> {
    let masked = (word >> 25) & 1 == 1;
    let funct6 = word >> 26;
    if funct3 == K_SETVL {
        let sew = sew_from_code(funct6);
        let avl = if masked {
            AvlSrc::Imm(u32::from(s1))
        } else {
            AvlSrc::Reg(XReg::new(s1))
        };
        return Some(Instr::VSetVl {
            rd: XReg::new(rd),
            avl,
            sew,
        });
    }
    let vsrc = || match funct3 {
        K_VV => Some(VSrc::V(VReg::new(s1))),
        K_VX => Some(VSrc::X(XReg::new(s1))),
        K_VF => Some(VSrc::F(FReg::new(s1))),
        K_VI => Some(VSrc::I(sext(u32::from(s1), 5))),
        _ => None,
    };
    if let Some(op) = varith_from_funct6(funct6) {
        return Some(Instr::VArith {
            op,
            vd: VReg::new(rd),
            src1: vsrc()?,
            vs2: VReg::new(vs2),
            masked,
        });
    }
    if let Some(op) = vcmp_from_funct6(funct6) {
        return Some(Instr::VCmp {
            op,
            vd: VReg::new(rd),
            vs2: VReg::new(vs2),
            src1: vsrc()?,
            masked,
        });
    }
    if let Some(op) = vred_from_funct6(funct6) {
        return Some(Instr::VRed {
            op,
            vd: VReg::new(rd),
            vs2: VReg::new(vs2),
            vs1: VReg::new(s1),
            masked,
        });
    }
    if let Some(op) = vmask_from_funct6(funct6) {
        return Some(Instr::VMask {
            op,
            vd: VReg::new(rd),
            vs1: VReg::new(s1),
            vs2: VReg::new(vs2),
        });
    }
    Some(match funct6 {
        F6_RGATHER => Instr::VRgather {
            vd: VReg::new(rd),
            vs2: VReg::new(vs2),
            vs1: VReg::new(s1),
        },
        F6_SLIDEUP => Instr::VSlideUp {
            vd: VReg::new(rd),
            vs2: VReg::new(vs2),
            amt: XReg::new(s1),
        },
        F6_SLIDEDOWN => Instr::VSlideDown {
            vd: VReg::new(rd),
            vs2: VReg::new(vs2),
            amt: XReg::new(s1),
        },
        F6_MV_VX => Instr::VMvVX {
            vd: VReg::new(rd),
            rs1: XReg::new(s1),
        },
        F6_FMV_VF => Instr::VFMvVF {
            vd: VReg::new(rd),
            fs1: FReg::new(s1),
        },
        F6_MV_VV => Instr::VMvVV {
            vd: VReg::new(rd),
            vs2: VReg::new(vs2),
        },
        F6_MV_XS => Instr::VMvXS {
            rd: XReg::new(rd),
            vs2: VReg::new(vs2),
        },
        F6_FMV_FS => Instr::VFMvFS {
            rd: FReg::new(rd),
            vs2: VReg::new(vs2),
        },
        F6_MV_SX => Instr::VMvSX {
            vd: VReg::new(rd),
            rs1: XReg::new(s1),
        },
        F6_VID => Instr::VId {
            vd: VReg::new(rd),
            masked,
        },
        F6_POPC => Instr::VPopc {
            rd: XReg::new(rd),
            vs2: VReg::new(vs2),
        },
        F6_FIRST => Instr::VFirst {
            rd: XReg::new(rd),
            vs2: VReg::new(vs2),
        },
        _ => return None,
    })
}

/// Formats an instruction as assembly-like text (used by `Display`).
pub(crate) fn disasm(instr: &Instr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match *instr {
        Instr::Op { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op)),
        Instr::OpImm { op, rd, rs1, imm } => write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(op)),
        Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm}"),
        Instr::Load {
            rd,
            rs1,
            imm,
            width,
            signed,
        } => write!(
            f,
            "l{}{} {rd}, {imm}({rs1})",
            width_name(width),
            if signed { "" } else { "u" }
        ),
        Instr::Store {
            rs2,
            rs1,
            imm,
            width,
        } => write!(f, "s{} {rs2}, {imm}({rs1})", width_name(width)),
        Instr::Branch {
            op,
            rs1,
            rs2,
            target,
        } => {
            let n = match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            };
            write!(f, "{n} {rs1}, {rs2}, @{target}")
        }
        Instr::Jal { rd, target } => write!(f, "jal {rd}, @{target}"),
        Instr::Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {imm}({rs1})"),
        Instr::FpOp {
            op,
            prec,
            rd,
            rs1,
            rs2,
        } => write!(f, "f{}.{} {rd}, {rs1}, {rs2}", fp_name(op), prec_name(prec)),
        Instr::FpFma {
            prec,
            rd,
            rs1,
            rs2,
            rs3,
        } => write!(f, "fmadd.{} {rd}, {rs1}, {rs2}, {rs3}", prec_name(prec)),
        Instr::FpCmp {
            op,
            prec,
            rd,
            rs1,
            rs2,
        } => {
            let n = match op {
                FpCmpOp::Eq => "feq",
                FpCmpOp::Lt => "flt",
                FpCmpOp::Le => "fle",
            };
            write!(f, "{n}.{} {rd}, {rs1}, {rs2}", prec_name(prec))
        }
        Instr::FpLoad { rd, rs1, imm, prec } => {
            write!(f, "fl{} {rd}, {imm}({rs1})", fp_mem_suffix(prec))
        }
        Instr::FpStore {
            rs2,
            rs1,
            imm,
            prec,
        } => {
            write!(f, "fs{} {rs2}, {imm}({rs1})", fp_mem_suffix(prec))
        }
        Instr::FpCvtFromInt { prec, rd, rs1 } => {
            write!(f, "fcvt.{}.l {rd}, {rs1}", prec_name(prec))
        }
        Instr::FpCvtToInt { prec, rd, rs1 } => {
            write!(f, "fcvt.l.{} {rd}, {rs1}", prec_name(prec))
        }
        Instr::FpMvFromInt { prec, rd, rs1 } => {
            write!(f, "fmv.{}.x {rd}, {rs1}", prec_name(prec))
        }
        Instr::FpMvToInt { prec, rd, rs1 } => write!(f, "fmv.x.{} {rd}, {rs1}", prec_name(prec)),
        Instr::VSetVl { rd, avl, sew } => match avl {
            AvlSrc::Reg(r) => write!(f, "vsetvli {rd}, {r}, {sew}"),
            AvlSrc::Imm(i) => write!(f, "vsetivli {rd}, {i}, {sew}"),
        },
        Instr::VLoad {
            vd,
            base,
            mode,
            masked,
        } => write_vmem(f, "vl", vd.index(), base, mode, masked),
        Instr::VStore {
            vs3,
            base,
            mode,
            masked,
        } => write_vmem(f, "vs", vs3.index(), base, mode, masked),
        Instr::VArith {
            op,
            vd,
            src1,
            vs2,
            masked,
        } => {
            write!(f, "{}.{} {vd}, {vs2}, ", varith_name(op), vsrc_suffix(src1))?;
            write_vsrc(f, src1)?;
            write_mask(f, masked)
        }
        Instr::VCmp {
            op,
            vd,
            vs2,
            src1,
            masked,
        } => {
            let n = match op {
                VCmpOp::Eq => "vmseq",
                VCmpOp::Ne => "vmsne",
                VCmpOp::Lt => "vmslt",
                VCmpOp::Le => "vmsle",
                VCmpOp::Gt => "vmsgt",
                VCmpOp::FEq => "vmfeq",
                VCmpOp::FLt => "vmflt",
                VCmpOp::FLe => "vmfle",
            };
            write!(f, "{n}.{} {vd}, {vs2}, ", vsrc_suffix(src1))?;
            write_vsrc(f, src1)?;
            write_mask(f, masked)
        }
        Instr::VRed {
            op,
            vd,
            vs2,
            vs1,
            masked,
        } => {
            let n = match op {
                VRedOp::Sum => "vredsum",
                VRedOp::Min => "vredmin",
                VRedOp::Max => "vredmax",
                VRedOp::FSum => "vfredosum",
                VRedOp::FMin => "vfredmin",
                VRedOp::FMax => "vfredmax",
            };
            write!(f, "{n}.vs {vd}, {vs2}, {vs1}")?;
            write_mask(f, masked)
        }
        Instr::VPopc { rd, vs2 } => write!(f, "vcpop.m {rd}, {vs2}"),
        Instr::VFirst { rd, vs2 } => write!(f, "vfirst.m {rd}, {vs2}"),
        Instr::VMask { op, vd, vs1, vs2 } => {
            let n = match op {
                VMaskOp::And => "vmand",
                VMaskOp::Or => "vmor",
                VMaskOp::Xor => "vmxor",
                VMaskOp::AndNot => "vmandn",
                VMaskOp::Not => "vmnot",
            };
            write!(f, "{n}.mm {vd}, {vs1}, {vs2}")
        }
        Instr::VRgather { vd, vs2, vs1 } => write!(f, "vrgather.vv {vd}, {vs2}, {vs1}"),
        Instr::VSlideUp { vd, vs2, amt } => write!(f, "vslideup.vx {vd}, {vs2}, {amt}"),
        Instr::VSlideDown { vd, vs2, amt } => write!(f, "vslidedown.vx {vd}, {vs2}, {amt}"),
        Instr::VMvVX { vd, rs1 } => write!(f, "vmv.v.x {vd}, {rs1}"),
        Instr::VFMvVF { vd, fs1 } => write!(f, "vfmv.v.f {vd}, {fs1}"),
        Instr::VMvVV { vd, vs2 } => write!(f, "vmv.v.v {vd}, {vs2}"),
        Instr::VMvXS { rd, vs2 } => write!(f, "vmv.x.s {rd}, {vs2}"),
        Instr::VFMvFS { rd, vs2 } => write!(f, "vfmv.f.s {rd}, {vs2}"),
        Instr::VMvSX { vd, rs1 } => write!(f, "vmv.s.x {vd}, {rs1}"),
        Instr::VId { vd, masked } => {
            write!(f, "vid.v {vd}")?;
            write_mask(f, masked)
        }
        Instr::VmFence => write!(f, "vmfence"),
        Instr::Halt => write!(f, "halt"),
        Instr::Nop => write!(f, "nop"),
    }
}

fn write_mask(f: &mut fmt::Formatter<'_>, masked: bool) -> fmt::Result {
    if masked {
        write!(f, ", v0.t")
    } else {
        Ok(())
    }
}

fn write_vsrc(f: &mut fmt::Formatter<'_>, src: VSrc) -> fmt::Result {
    match src {
        VSrc::V(v) => write!(f, "{v}"),
        VSrc::X(x) => write!(f, "{x}"),
        VSrc::F(r) => write!(f, "{r}"),
        VSrc::I(i) => write!(f, "{i}"),
    }
}

fn vsrc_suffix(src: VSrc) -> &'static str {
    match src {
        VSrc::V(_) => "vv",
        VSrc::X(_) => "vx",
        VSrc::F(_) => "vf",
        VSrc::I(_) => "vi",
    }
}

fn write_vmem(
    f: &mut fmt::Formatter<'_>,
    prefix: &str,
    vreg: usize,
    base: XReg,
    mode: VMemMode,
    masked: bool,
) -> fmt::Result {
    match mode {
        VMemMode::Unit => write!(f, "{prefix}e.v v{vreg}, ({base})")?,
        VMemMode::Strided(s) => write!(f, "{prefix}se.v v{vreg}, ({base}), {s}")?,
        VMemMode::Indexed(v) => write!(f, "{prefix}uxei.v v{vreg}, ({base}), {v}")?,
    }
    write_mask(f, masked)
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
    }
}

fn varith_name(op: VArithOp) -> &'static str {
    use VArithOp::*;
    match op {
        Add => "vadd",
        Sub => "vsub",
        Mul => "vmul",
        Div => "vdiv",
        Divu => "vdivu",
        Rem => "vrem",
        Min => "vmin",
        Max => "vmax",
        And => "vand",
        Or => "vor",
        Xor => "vxor",
        Sll => "vsll",
        Srl => "vsrl",
        Sra => "vsra",
        FAdd => "vfadd",
        FSub => "vfsub",
        FMul => "vfmul",
        FDiv => "vfdiv",
        FMin => "vfmin",
        FMax => "vfmax",
        FSqrt => "vfsqrt",
        FMacc => "vfmacc",
        FNeg => "vfneg",
        FAbs => "vfabs",
        Merge => "vmerge",
    }
}

fn fp_name(op: FpOp) -> &'static str {
    match op {
        FpOp::Add => "add",
        FpOp::Sub => "sub",
        FpOp::Mul => "mul",
        FpOp::Div => "div",
        FpOp::Min => "min",
        FpOp::Max => "max",
        FpOp::Sqrt => "sqrt",
        FpOp::Sgnj => "sgnj",
        FpOp::Sgnjn => "sgnjn",
        FpOp::Sgnjx => "sgnjx",
    }
}

fn prec_name(prec: FpPrec) -> &'static str {
    match prec {
        FpPrec::S => "s",
        FpPrec::D => "d",
    }
}

fn fp_mem_suffix(prec: FpPrec) -> &'static str {
    match prec {
        FpPrec::S => "w",
        FpPrec::D => "d",
    }
}

fn width_name(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B => "b",
        MemWidth::H => "h",
        MemWidth::W => "w",
        MemWidth::D => "d",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(i: Instr, pc: u32) {
        let w = encode(&i, pc).unwrap();
        let back = decode(w, pc).unwrap();
        assert_eq!(i, back, "word {w:#010x}");
    }

    #[test]
    fn scalar_round_trips() {
        rt(
            Instr::Op {
                op: AluOp::Mul,
                rd: XReg::new(3),
                rs1: XReg::new(4),
                rs2: XReg::new(5),
            },
            0,
        );
        rt(
            Instr::OpImm {
                op: AluOp::Add,
                rd: XReg::new(1),
                rs1: XReg::new(2),
                imm: -42,
            },
            0,
        );
        rt(
            Instr::OpImm {
                op: AluOp::Sra,
                rd: XReg::new(1),
                rs1: XReg::new(2),
                imm: 17,
            },
            0,
        );
        rt(
            Instr::Load {
                rd: XReg::new(7),
                rs1: XReg::new(8),
                imm: 12,
                width: MemWidth::W,
                signed: false,
            },
            0,
        );
        rt(
            Instr::Store {
                rs2: XReg::new(9),
                rs1: XReg::new(10),
                imm: -8,
                width: MemWidth::D,
            },
            0,
        );
        rt(
            Instr::Branch {
                op: BranchOp::Ltu,
                rs1: XReg::new(1),
                rs2: XReg::new(2),
                target: 5,
            },
            20,
        );
        rt(
            Instr::Jal {
                rd: XReg::RA,
                target: 100,
            },
            3,
        );
        rt(Instr::Nop, 0);
        rt(Instr::Halt, 0);
        rt(Instr::VmFence, 0);
    }

    #[test]
    fn fp_round_trips() {
        rt(
            Instr::FpOp {
                op: FpOp::Sgnjx,
                prec: FpPrec::S,
                rd: FReg::new(1),
                rs1: FReg::new(2),
                rs2: FReg::new(2),
            },
            0,
        );
        rt(
            Instr::FpFma {
                prec: FpPrec::D,
                rd: FReg::new(1),
                rs1: FReg::new(2),
                rs2: FReg::new(3),
                rs3: FReg::new(4),
            },
            0,
        );
        rt(
            Instr::FpCmp {
                op: FpCmpOp::Lt,
                prec: FpPrec::S,
                rd: XReg::new(5),
                rs1: FReg::new(6),
                rs2: FReg::new(7),
            },
            0,
        );
        rt(
            Instr::FpLoad {
                rd: FReg::new(1),
                rs1: XReg::new(2),
                imm: 16,
                prec: FpPrec::S,
            },
            0,
        );
        rt(
            Instr::FpStore {
                rs2: FReg::new(1),
                rs1: XReg::new(2),
                imm: -4,
                prec: FpPrec::D,
            },
            0,
        );
    }

    #[test]
    fn vector_round_trips() {
        rt(
            Instr::VSetVl {
                rd: XReg::new(1),
                avl: AvlSrc::Reg(XReg::new(2)),
                sew: Sew::E32,
            },
            0,
        );
        rt(
            Instr::VSetVl {
                rd: XReg::new(1),
                avl: AvlSrc::Imm(16),
                sew: Sew::E64,
            },
            0,
        );
        rt(
            Instr::VLoad {
                vd: VReg::new(3),
                base: XReg::new(4),
                mode: VMemMode::Indexed(VReg::new(5)),
                masked: true,
            },
            0,
        );
        rt(
            Instr::VStore {
                vs3: VReg::new(3),
                base: XReg::new(4),
                mode: VMemMode::Strided(XReg::new(6)),
                masked: false,
            },
            0,
        );
        rt(
            Instr::VArith {
                op: VArithOp::FMacc,
                vd: VReg::new(1),
                src1: VSrc::F(FReg::new(2)),
                vs2: VReg::new(3),
                masked: false,
            },
            0,
        );
        rt(
            Instr::VArith {
                op: VArithOp::Sll,
                vd: VReg::new(1),
                src1: VSrc::I(-3),
                vs2: VReg::new(3),
                masked: true,
            },
            0,
        );
        rt(
            Instr::VCmp {
                op: VCmpOp::FLt,
                vd: VReg::MASK,
                vs2: VReg::new(2),
                src1: VSrc::V(VReg::new(3)),
                masked: false,
            },
            0,
        );
        rt(
            Instr::VRed {
                op: VRedOp::FSum,
                vd: VReg::new(1),
                vs2: VReg::new(2),
                vs1: VReg::new(3),
                masked: true,
            },
            0,
        );
        rt(
            Instr::VPopc {
                rd: XReg::new(1),
                vs2: VReg::MASK,
            },
            0,
        );
        rt(
            Instr::VRgather {
                vd: VReg::new(1),
                vs2: VReg::new(2),
                vs1: VReg::new(3),
            },
            0,
        );
        rt(
            Instr::VId {
                vd: VReg::new(9),
                masked: true,
            },
            0,
        );
    }

    #[test]
    fn imm_out_of_range_errors() {
        let i = Instr::OpImm {
            op: AluOp::Add,
            rd: XReg::new(1),
            rs1: XReg::new(2),
            imm: 40_000,
        };
        assert!(matches!(
            encode(&i, 0),
            Err(EncodeError::ImmOutOfRange { bits: 12, .. })
        ));
    }

    #[test]
    fn unrecognized_word_errors() {
        assert!(decode(0xFFFF_FFFF, 0).is_err());
    }

    #[test]
    fn disasm_smoke() {
        let i = Instr::VArith {
            op: VArithOp::FMacc,
            vd: VReg::new(1),
            src1: VSrc::V(VReg::new(2)),
            vs2: VReg::new(3),
            masked: false,
        };
        assert_eq!(i.to_string(), "vfmacc.vv v1, v3, v2");
        let i = Instr::Load {
            rd: XReg::new(1),
            rs1: XReg::new(2),
            imm: 8,
            width: MemWidth::W,
            signed: true,
        };
        assert_eq!(i.to_string(), "lw x1, 8(x2)");
    }
}
