//! A label-resolving program builder.
//!
//! The workload crates emit instruction streams through [`Assembler`] the
//! way a compiler with RVV intrinsics would: mnemonic-shaped methods append
//! instructions, string labels name positions, and [`Assembler::assemble`]
//! resolves every forward/backward reference into a [`Program`].
//!
//! ```
//! use bvl_isa::asm::Assembler;
//! use bvl_isa::reg::XReg;
//!
//! let (t0, t1) = (XReg::new(5), XReg::new(6));
//! let mut a = Assembler::new();
//! a.li(t0, 0);
//! a.li(t1, 10);
//! a.label("loop");
//! a.addi(t0, t0, 1);
//! a.bne(t0, t1, "loop");
//! a.halt();
//! let prog = a.assemble()?;
//! assert_eq!(prog.len(), 5);
//! # Ok::<(), bvl_isa::asm::AsmError>(())
//! ```

use crate::instr::{
    AluOp, AvlSrc, BranchOp, FpCmpOp, FpOp, FpPrec, Instr, MemWidth, VArithOp, VCmpOp, VMaskOp,
    VMemMode, VRedOp, VSrc,
};
use crate::predecode::PreDecoded;
use crate::reg::{FReg, VReg, XReg};
use crate::vcfg::Sew;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An assembled program: resolved instructions plus its label table.
///
/// Equality and hashing ignore the lazily-built predecode cache.
#[derive(Clone, Debug, Default)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: HashMap<String, u32>,
    /// Per-PC timing metadata, built on first use and shared by every
    /// core executing this program.
    pre: OnceLock<Arc<PreDecoded>>,
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.instrs == other.instrs && self.labels == other.labels
    }
}

impl Program {
    /// The resolved instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Instr> {
        self.instrs.get(idx)
    }

    /// Resolved index of a label, if defined.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// The predecoded per-PC metadata table, built once on first use.
    pub fn predecoded(&self) -> Arc<PreDecoded> {
        self.pre
            .get_or_init(|| Arc::new(PreDecoded::of(self)))
            .clone()
    }
}

impl std::ops::Index<usize> for Program {
    type Output = Instr;

    fn index(&self, idx: usize) -> &Instr {
        &self.instrs[idx]
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instr;
    type IntoIter = std::slice::Iter<'a, Instr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

/// Error produced by [`Assembler::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A pending instruction: either fully resolved or waiting on a label.
#[derive(Clone, Debug)]
enum Pending {
    Done(Instr),
    Branch {
        op: BranchOp,
        rs1: XReg,
        rs2: XReg,
        label: String,
    },
    Jal {
        rd: XReg,
        label: String,
    },
}

/// Builds a [`Program`] incrementally with label resolution.
#[derive(Clone, Debug, Default)]
pub struct Assembler {
    pending: Vec<Pending>,
    labels: HashMap<String, u32>,
    duplicate: Option<String>,
    unique_counter: u64,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Appends an already-resolved instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.pending.push(Pending::Done(instr));
        self
    }

    /// Defines `name` at the current position.
    ///
    /// Duplicate definitions are reported by [`Assembler::assemble`].
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let here = self.pending.len() as u32;
        if self.labels.insert(name.clone(), here).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name);
        }
        self
    }

    /// Returns a fresh label name derived from `stem`, guaranteed unique
    /// within this assembler. Useful for helper functions that emit the same
    /// loop shape repeatedly.
    pub fn unique_label(&mut self, stem: &str) -> String {
        self.unique_counter += 1;
        format!("{stem}${}", self.unique_counter)
    }

    /// Resolves all label references and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a branch target was never
    /// defined, or [`AsmError::DuplicateLabel`] if a label was bound twice.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if let Some(d) = &self.duplicate {
            return Err(AsmError::DuplicateLabel(d.clone()));
        }
        let mut instrs = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            let instr = match p {
                Pending::Done(i) => *i,
                Pending::Branch {
                    op,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    Instr::Branch {
                        op: *op,
                        rs1: *rs1,
                        rs2: *rs2,
                        target,
                    }
                }
                Pending::Jal { rd, label } => {
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    Instr::Jal { rd: *rd, target }
                }
            };
            instrs.push(instr);
        }
        Ok(Program {
            instrs,
            labels: self.labels.clone(),
            pre: OnceLock::new(),
        })
    }

    // ----- scalar integer -----

    /// `rd = rs1 op rs2` for a register-register ALU operation.
    pub fn op(&mut self, op: AluOp, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.push(Instr::Op { op, rd, rs1, rs2 })
    }

    /// `rd = rs1 op imm` for a register-immediate ALU operation.
    pub fn op_imm(&mut self, op: AluOp, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.push(Instr::OpImm { op, rd, rs1, imm })
    }

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Add, rd, rs1, rs2)
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.op_imm(AluOp::Add, rd, rs1, imm)
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Sub, rd, rs1, rs2)
    }

    /// `rd = rs1 * rs2` (low 64 bits).
    pub fn mul(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Mul, rd, rs1, rs2)
    }

    /// `rd = rs1 / rs2` (signed).
    pub fn div(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Div, rd, rs1, rs2)
    }

    /// `rd = rs1 % rs2` (signed).
    pub fn rem(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Rem, rd, rs1, rs2)
    }

    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.op_imm(AluOp::Sll, rd, rs1, imm)
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.op_imm(AluOp::Srl, rd, rs1, imm)
    }

    /// `rd = rs1 >> imm` (arithmetic).
    pub fn srai(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.op_imm(AluOp::Sra, rd, rs1, imm)
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.op_imm(AluOp::And, rd, rs1, imm)
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::And, rd, rs1, rs2)
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Or, rd, rs1, rs2)
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Xor, rd, rs1, rs2)
    }

    /// `rd = (rs1 < rs2) ? 1 : 0` (signed).
    pub fn slt(&mut self, rd: XReg, rs1: XReg, rs2: XReg) -> &mut Self {
        self.op(AluOp::Slt, rd, rs1, rs2)
    }

    /// `rd = imm` (pseudo; counted as one instruction — see crate docs).
    pub fn li(&mut self, rd: XReg, imm: i64) -> &mut Self {
        self.op_imm(AluOp::Add, rd, XReg::ZERO, imm)
    }

    /// `rd = rs1` (pseudo for `addi rd, rs1, 0`).
    pub fn mv(&mut self, rd: XReg, rs1: XReg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }

    /// Scalar load (signed widths use sign extension).
    pub fn load(
        &mut self,
        rd: XReg,
        rs1: XReg,
        imm: i64,
        width: MemWidth,
        signed: bool,
    ) -> &mut Self {
        self.push(Instr::Load {
            rd,
            rs1,
            imm,
            width,
            signed,
        })
    }

    /// `lw rd, imm(rs1)`.
    pub fn lw(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.load(rd, rs1, imm, MemWidth::W, true)
    }

    /// `ld rd, imm(rs1)`.
    pub fn ld(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.load(rd, rs1, imm, MemWidth::D, true)
    }

    /// `lbu rd, imm(rs1)`.
    pub fn lbu(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.load(rd, rs1, imm, MemWidth::B, false)
    }

    /// Scalar store.
    pub fn store(&mut self, rs2: XReg, rs1: XReg, imm: i64, width: MemWidth) -> &mut Self {
        self.push(Instr::Store {
            rs2,
            rs1,
            imm,
            width,
        })
    }

    /// `sw rs2, imm(rs1)`.
    pub fn sw(&mut self, rs2: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.store(rs2, rs1, imm, MemWidth::W)
    }

    /// `sd rs2, imm(rs1)`.
    pub fn sd(&mut self, rs2: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.store(rs2, rs1, imm, MemWidth::D)
    }

    /// `sb rs2, imm(rs1)`.
    pub fn sb(&mut self, rs2: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.store(rs2, rs1, imm, MemWidth::B)
    }

    // ----- branches & jumps -----

    /// Conditional branch to `label`.
    pub fn branch(
        &mut self,
        op: BranchOp,
        rs1: XReg,
        rs2: XReg,
        label: impl Into<String>,
    ) -> &mut Self {
        self.pending.push(Pending::Branch {
            op,
            rs1,
            rs2,
            label: label.into(),
        });
        self
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Eq, rs1, rs2, label)
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Ne, rs1, rs2, label)
    }

    /// `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Lt, rs1, rs2, label)
    }

    /// `bge rs1, rs2, label` (signed).
    pub fn bge(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Ge, rs1, rs2, label)
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Ltu, rs1, rs2, label)
    }

    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: XReg, rs2: XReg, label: impl Into<String>) -> &mut Self {
        self.branch(BranchOp::Geu, rs1, rs2, label)
    }

    /// Unconditional jump to `label` (no link).
    pub fn j(&mut self, label: impl Into<String>) -> &mut Self {
        self.pending.push(Pending::Jal {
            rd: XReg::ZERO,
            label: label.into(),
        });
        self
    }

    /// Jump-and-link to `label`.
    pub fn jal(&mut self, rd: XReg, label: impl Into<String>) -> &mut Self {
        self.pending.push(Pending::Jal {
            rd,
            label: label.into(),
        });
        self
    }

    /// Indirect jump `pc = rs1 + imm` (instruction-index arithmetic).
    pub fn jalr(&mut self, rd: XReg, rs1: XReg, imm: i64) -> &mut Self {
        self.push(Instr::Jalr { rd, rs1, imm })
    }

    // ----- scalar floating point (single precision helpers) -----

    /// FP computational op at the given precision.
    pub fn fp_op(&mut self, op: FpOp, prec: FpPrec, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.push(Instr::FpOp {
            op,
            prec,
            rd,
            rs1,
            rs2,
        })
    }

    /// `fadd.s rd, rs1, rs2`.
    pub fn fadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOp::Add, FpPrec::S, rd, rs1, rs2)
    }

    /// `fsub.s rd, rs1, rs2`.
    pub fn fsub_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOp::Sub, FpPrec::S, rd, rs1, rs2)
    }

    /// `fmul.s rd, rs1, rs2`.
    pub fn fmul_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOp::Mul, FpPrec::S, rd, rs1, rs2)
    }

    /// `fdiv.s rd, rs1, rs2`.
    pub fn fdiv_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOp::Div, FpPrec::S, rd, rs1, rs2)
    }

    /// `fsqrt.s rd, rs1`.
    pub fn fsqrt_s(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fp_op(FpOp::Sqrt, FpPrec::S, rd, rs1, rs1)
    }

    /// `fmin.s rd, rs1, rs2`.
    pub fn fmin_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOp::Min, FpPrec::S, rd, rs1, rs2)
    }

    /// `fmax.s rd, rs1, rs2`.
    pub fn fmax_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_op(FpOp::Max, FpPrec::S, rd, rs1, rs2)
    }

    /// `fneg.s rd, rs1` (pseudo for `fsgnjn.s rd, rs1, rs1`).
    pub fn fneg_s(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fp_op(FpOp::Sgnjn, FpPrec::S, rd, rs1, rs1)
    }

    /// `fabs.s rd, rs1` (pseudo for `fsgnjx.s rd, rs1, rs1`).
    pub fn fabs_s(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fp_op(FpOp::Sgnjx, FpPrec::S, rd, rs1, rs1)
    }

    /// `fmv.s rd, rs1` (pseudo for `fsgnj.s rd, rs1, rs1`).
    pub fn fmv_s(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
        self.fp_op(FpOp::Sgnj, FpPrec::S, rd, rs1, rs1)
    }

    /// `fmadd.s rd, rs1, rs2, rs3` (`rd = rs1 * rs2 + rs3`).
    pub fn fmadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) -> &mut Self {
        self.push(Instr::FpFma {
            prec: FpPrec::S,
            rd,
            rs1,
            rs2,
            rs3,
        })
    }

    /// FP comparison writing 0/1 into an integer register.
    pub fn fp_cmp(&mut self, op: FpCmpOp, rd: XReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.push(Instr::FpCmp {
            op,
            prec: FpPrec::S,
            rd,
            rs1,
            rs2,
        })
    }

    /// `flt.s rd, rs1, rs2`.
    pub fn flt_s(&mut self, rd: XReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_cmp(FpCmpOp::Lt, rd, rs1, rs2)
    }

    /// `fle.s rd, rs1, rs2`.
    pub fn fle_s(&mut self, rd: XReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.fp_cmp(FpCmpOp::Le, rd, rs1, rs2)
    }

    /// `flw rd, imm(rs1)`.
    pub fn flw(&mut self, rd: FReg, rs1: XReg, imm: i64) -> &mut Self {
        self.push(Instr::FpLoad {
            rd,
            rs1,
            imm,
            prec: FpPrec::S,
        })
    }

    /// `fsw rs2, imm(rs1)`.
    pub fn fsw(&mut self, rs2: FReg, rs1: XReg, imm: i64) -> &mut Self {
        self.push(Instr::FpStore {
            rs2,
            rs1,
            imm,
            prec: FpPrec::S,
        })
    }

    /// `fcvt.s.w rd, rs1` (signed int -> f32).
    pub fn fcvt_s_w(&mut self, rd: FReg, rs1: XReg) -> &mut Self {
        self.push(Instr::FpCvtFromInt {
            prec: FpPrec::S,
            rd,
            rs1,
        })
    }

    /// `fcvt.w.s rd, rs1` (f32 -> signed int, truncating).
    pub fn fcvt_w_s(&mut self, rd: XReg, rs1: FReg) -> &mut Self {
        self.push(Instr::FpCvtToInt {
            prec: FpPrec::S,
            rd,
            rs1,
        })
    }

    /// `fmv.w.x rd, rs1` (raw bit move int -> fp).
    pub fn fmv_w_x(&mut self, rd: FReg, rs1: XReg) -> &mut Self {
        self.push(Instr::FpMvFromInt {
            prec: FpPrec::S,
            rd,
            rs1,
        })
    }

    /// `fmv.x.w rd, rs1` (raw bit move fp -> int).
    pub fn fmv_x_w(&mut self, rd: XReg, rs1: FReg) -> &mut Self {
        self.push(Instr::FpMvToInt {
            prec: FpPrec::S,
            rd,
            rs1,
        })
    }

    // ----- vector -----

    /// `vsetvli rd, rs1, sew` — request AVL from a register.
    pub fn vsetvli(&mut self, rd: XReg, avl: XReg, sew: Sew) -> &mut Self {
        self.push(Instr::VSetVl {
            rd,
            avl: AvlSrc::Reg(avl),
            sew,
        })
    }

    /// `vsetivli rd, imm, sew` — request an immediate AVL.
    pub fn vsetivli(&mut self, rd: XReg, avl: u32, sew: Sew) -> &mut Self {
        self.push(Instr::VSetVl {
            rd,
            avl: AvlSrc::Imm(avl),
            sew,
        })
    }

    /// Unit-stride vector load (`vle<sew>.v vd, (base)`).
    pub fn vle(&mut self, vd: VReg, base: XReg) -> &mut Self {
        self.push(Instr::VLoad {
            vd,
            base,
            mode: VMemMode::Unit,
            masked: false,
        })
    }

    /// Masked unit-stride vector load.
    pub fn vle_m(&mut self, vd: VReg, base: XReg) -> &mut Self {
        self.push(Instr::VLoad {
            vd,
            base,
            mode: VMemMode::Unit,
            masked: true,
        })
    }

    /// Constant-stride vector load (`vlse.v vd, (base), stride`).
    pub fn vlse(&mut self, vd: VReg, base: XReg, stride: XReg) -> &mut Self {
        self.push(Instr::VLoad {
            vd,
            base,
            mode: VMemMode::Strided(stride),
            masked: false,
        })
    }

    /// Indexed-gather vector load (`vluxei.v vd, (base), vidx`).
    pub fn vluxei(&mut self, vd: VReg, base: XReg, vidx: VReg) -> &mut Self {
        self.push(Instr::VLoad {
            vd,
            base,
            mode: VMemMode::Indexed(vidx),
            masked: false,
        })
    }

    /// Masked indexed-gather vector load.
    pub fn vluxei_m(&mut self, vd: VReg, base: XReg, vidx: VReg) -> &mut Self {
        self.push(Instr::VLoad {
            vd,
            base,
            mode: VMemMode::Indexed(vidx),
            masked: true,
        })
    }

    /// Unit-stride vector store (`vse.v vs3, (base)`).
    pub fn vse(&mut self, vs3: VReg, base: XReg) -> &mut Self {
        self.push(Instr::VStore {
            vs3,
            base,
            mode: VMemMode::Unit,
            masked: false,
        })
    }

    /// Masked unit-stride vector store.
    pub fn vse_m(&mut self, vs3: VReg, base: XReg) -> &mut Self {
        self.push(Instr::VStore {
            vs3,
            base,
            mode: VMemMode::Unit,
            masked: true,
        })
    }

    /// Constant-stride vector store.
    pub fn vsse(&mut self, vs3: VReg, base: XReg, stride: XReg) -> &mut Self {
        self.push(Instr::VStore {
            vs3,
            base,
            mode: VMemMode::Strided(stride),
            masked: false,
        })
    }

    /// Indexed-scatter vector store.
    pub fn vsuxei(&mut self, vs3: VReg, base: XReg, vidx: VReg) -> &mut Self {
        self.push(Instr::VStore {
            vs3,
            base,
            mode: VMemMode::Indexed(vidx),
            masked: false,
        })
    }

    /// Masked indexed-scatter vector store.
    pub fn vsuxei_m(&mut self, vs3: VReg, base: XReg, vidx: VReg) -> &mut Self {
        self.push(Instr::VStore {
            vs3,
            base,
            mode: VMemMode::Indexed(vidx),
            masked: true,
        })
    }

    /// Generic element-wise vector arithmetic.
    pub fn varith(
        &mut self,
        op: VArithOp,
        vd: VReg,
        src1: VSrc,
        vs2: VReg,
        masked: bool,
    ) -> &mut Self {
        self.push(Instr::VArith {
            op,
            vd,
            src1,
            vs2,
            masked,
        })
    }

    /// `vadd.vv vd, vs2, vs1`.
    pub fn vadd_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::Add, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vadd.vx vd, vs2, rs1`.
    pub fn vadd_vx(&mut self, vd: VReg, vs2: VReg, rs1: XReg) -> &mut Self {
        self.varith(VArithOp::Add, vd, VSrc::X(rs1), vs2, false)
    }

    /// `vsub.vv vd, vs2, vs1` (`vd = vs2 - vs1`).
    pub fn vsub_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::Sub, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vmul.vv vd, vs2, vs1`.
    pub fn vmul_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::Mul, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vsll.vi vd, vs2, imm`.
    pub fn vsll_vi(&mut self, vd: VReg, vs2: VReg, imm: i64) -> &mut Self {
        self.varith(VArithOp::Sll, vd, VSrc::I(imm), vs2, false)
    }

    /// `vand.vv vd, vs2, vs1`.
    pub fn vand_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::And, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vmin.vv vd, vs2, vs1` (signed).
    pub fn vmin_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::Min, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vmax.vv vd, vs2, vs1` (signed).
    pub fn vmax_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::Max, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vmax.vx vd, vs2, rs1`.
    pub fn vmax_vx(&mut self, vd: VReg, vs2: VReg, rs1: XReg) -> &mut Self {
        self.varith(VArithOp::Max, vd, VSrc::X(rs1), vs2, false)
    }

    /// `vfadd.vv vd, vs2, vs1`.
    pub fn vfadd_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::FAdd, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vfsub.vv vd, vs2, vs1` (`vd = vs2 - vs1`).
    pub fn vfsub_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::FSub, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vfmul.vv vd, vs2, vs1`.
    pub fn vfmul_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::FMul, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vfmul.vf vd, vs2, fs1`.
    pub fn vfmul_vf(&mut self, vd: VReg, vs2: VReg, fs1: FReg) -> &mut Self {
        self.varith(VArithOp::FMul, vd, VSrc::F(fs1), vs2, false)
    }

    /// `vfdiv.vv vd, vs2, vs1`.
    pub fn vfdiv_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::FDiv, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vfsqrt.v vd, vs2`.
    pub fn vfsqrt_v(&mut self, vd: VReg, vs2: VReg) -> &mut Self {
        self.varith(VArithOp::FSqrt, vd, VSrc::V(vs2), vs2, false)
    }

    /// `vfmacc.vv vd, vs1, vs2` (`vd += vs1 * vs2`).
    pub fn vfmacc_vv(&mut self, vd: VReg, vs1: VReg, vs2: VReg) -> &mut Self {
        self.varith(VArithOp::FMacc, vd, VSrc::V(vs1), vs2, false)
    }

    /// `vfmacc.vf vd, fs1, vs2` (`vd += fs1 * vs2`).
    pub fn vfmacc_vf(&mut self, vd: VReg, fs1: FReg, vs2: VReg) -> &mut Self {
        self.varith(VArithOp::FMacc, vd, VSrc::F(fs1), vs2, false)
    }

    /// `vmerge.vvm vd, vs2, vs1, v0` (`vd[i] = v0[i] ? vs1[i] : vs2[i]`).
    pub fn vmerge_vvm(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.varith(VArithOp::Merge, vd, VSrc::V(vs1), vs2, true)
    }

    /// Generic vector comparison into a mask register.
    pub fn vcmp(&mut self, op: VCmpOp, vd: VReg, vs2: VReg, src1: VSrc) -> &mut Self {
        self.push(Instr::VCmp {
            op,
            vd,
            vs2,
            src1,
            masked: false,
        })
    }

    /// `vmseq.vx vd, vs2, rs1`.
    pub fn vmseq_vx(&mut self, vd: VReg, vs2: VReg, rs1: XReg) -> &mut Self {
        self.vcmp(VCmpOp::Eq, vd, vs2, VSrc::X(rs1))
    }

    /// `vmslt.vv vd, vs2, vs1` (`vd[i] = vs2[i] < vs1[i]`).
    pub fn vmslt_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.vcmp(VCmpOp::Lt, vd, vs2, VSrc::V(vs1))
    }

    /// `vmflt.vv vd, vs2, vs1` (FP less-than).
    pub fn vmflt_vv(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.vcmp(VCmpOp::FLt, vd, vs2, VSrc::V(vs1))
    }

    /// `vmflt.vf vd, vs2, fs1`.
    pub fn vmflt_vf(&mut self, vd: VReg, vs2: VReg, fs1: FReg) -> &mut Self {
        self.vcmp(VCmpOp::FLt, vd, vs2, VSrc::F(fs1))
    }

    /// `vredsum.vs vd, vs2, vs1`.
    pub fn vredsum(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.push(Instr::VRed {
            op: VRedOp::Sum,
            vd,
            vs2,
            vs1,
            masked: false,
        })
    }

    /// `vredmax.vs vd, vs2, vs1` (signed).
    pub fn vredmax(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.push(Instr::VRed {
            op: VRedOp::Max,
            vd,
            vs2,
            vs1,
            masked: false,
        })
    }

    /// `vredmin.vs vd, vs2, vs1` (signed).
    pub fn vredmin(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.push(Instr::VRed {
            op: VRedOp::Min,
            vd,
            vs2,
            vs1,
            masked: false,
        })
    }

    /// `vfredosum.vs vd, vs2, vs1` (ordered FP sum).
    pub fn vfredosum(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.push(Instr::VRed {
            op: VRedOp::FSum,
            vd,
            vs2,
            vs1,
            masked: false,
        })
    }

    /// `vfredmax.vs vd, vs2, vs1`.
    pub fn vfredmax(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.push(Instr::VRed {
            op: VRedOp::FMax,
            vd,
            vs2,
            vs1,
            masked: false,
        })
    }

    /// `vcpop.m rd, vs2` — mask population count.
    pub fn vpopc(&mut self, rd: XReg, vs2: VReg) -> &mut Self {
        self.push(Instr::VPopc { rd, vs2 })
    }

    /// `vfirst.m rd, vs2` — index of first set bit or -1.
    pub fn vfirst(&mut self, rd: XReg, vs2: VReg) -> &mut Self {
        self.push(Instr::VFirst { rd, vs2 })
    }

    /// Mask logical op.
    pub fn vmask(&mut self, op: VMaskOp, vd: VReg, vs1: VReg, vs2: VReg) -> &mut Self {
        self.push(Instr::VMask { op, vd, vs1, vs2 })
    }

    /// `vrgather.vv vd, vs2, vs1`.
    pub fn vrgather(&mut self, vd: VReg, vs2: VReg, vs1: VReg) -> &mut Self {
        self.push(Instr::VRgather { vd, vs2, vs1 })
    }

    /// `vslideup.vx vd, vs2, rs1`.
    pub fn vslideup(&mut self, vd: VReg, vs2: VReg, amt: XReg) -> &mut Self {
        self.push(Instr::VSlideUp { vd, vs2, amt })
    }

    /// `vslidedown.vx vd, vs2, rs1`.
    pub fn vslidedown(&mut self, vd: VReg, vs2: VReg, amt: XReg) -> &mut Self {
        self.push(Instr::VSlideDown { vd, vs2, amt })
    }

    /// `vmv.v.x vd, rs1` — splat scalar.
    pub fn vmv_v_x(&mut self, vd: VReg, rs1: XReg) -> &mut Self {
        self.push(Instr::VMvVX { vd, rs1 })
    }

    /// `vfmv.v.f vd, fs1` — splat scalar float.
    pub fn vfmv_v_f(&mut self, vd: VReg, fs1: FReg) -> &mut Self {
        self.push(Instr::VFMvVF { vd, fs1 })
    }

    /// `vmv.v.v vd, vs2` — vector copy.
    pub fn vmv_v_v(&mut self, vd: VReg, vs2: VReg) -> &mut Self {
        self.push(Instr::VMvVV { vd, vs2 })
    }

    /// `vmv.x.s rd, vs2` — element 0 to scalar.
    pub fn vmv_x_s(&mut self, rd: XReg, vs2: VReg) -> &mut Self {
        self.push(Instr::VMvXS { rd, vs2 })
    }

    /// `vfmv.f.s rd, vs2` — element 0 to scalar float.
    pub fn vfmv_f_s(&mut self, rd: FReg, vs2: VReg) -> &mut Self {
        self.push(Instr::VFMvFS { rd, vs2 })
    }

    /// `vmv.s.x vd, rs1` — scalar to element 0.
    pub fn vmv_s_x(&mut self, vd: VReg, rs1: XReg) -> &mut Self {
        self.push(Instr::VMvSX { vd, rs1 })
    }

    /// `vid.v vd` — element indices.
    pub fn vid(&mut self, vd: VReg) -> &mut Self {
        self.push(Instr::VId { vd, masked: false })
    }

    /// `vmfence` — vector/scalar memory fence (paper section III-B).
    pub fn vmfence(&mut self) -> &mut Self {
        self.push(Instr::VmFence)
    }

    /// `halt` — end of program.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.j("end"); // forward
        a.label("loop");
        a.nop();
        a.bne(XReg::new(1), XReg::new(2), "loop"); // backward
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(
            p[0],
            Instr::Jal {
                rd: XReg::ZERO,
                target: 3
            }
        );
        match p[2] {
            Instr::Branch { target, .. } => assert_eq!(target, 1),
            ref other => panic!("expected branch, got {other:?}"),
        }
        assert_eq!(p.label("end"), Some(3));
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Assembler::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn unique_labels_are_unique() {
        let mut a = Assembler::new();
        let l1 = a.unique_label("loop");
        let l2 = a.unique_label("loop");
        assert_ne!(l1, l2);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            AsmError::UndefinedLabel("foo".into()).to_string(),
            "undefined label `foo`"
        );
    }
}
