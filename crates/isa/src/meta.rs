//! Static per-instruction timing metadata shared by all timing models.
//!
//! Functional-unit classes and execution latencies live here so the little
//! core, the big core, the VLITTLE engine and the baseline vector machines
//! all price the *same operation* identically — performance differences
//! between systems then come only from their microarchitectural structure
//! (issue width, decoupling, bandwidth), as in the paper's methodology.

use crate::instr::{AluOp, FpOp, Instr, VArithOp, VRedOp};

/// Functional-unit class an instruction occupies while executing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    /// Single-cycle integer ALU.
    Alu,
    /// Integer multiply/divide unit (long latency).
    MulDiv,
    /// Floating-point unit (long latency).
    Fpu,
    /// Memory port (latency comes from the cache model).
    Mem,
    /// Branch/jump resolution.
    Branch,
    /// Vector instruction (priced by the owning vector engine).
    Vector,
    /// No functional unit (nop, fences handled structurally).
    None,
}

/// Execution latency (cycles) and FU class for a scalar instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScalarMeta {
    /// Functional unit occupied.
    pub fu: FuClass,
    /// Result-ready latency in cycles (memory ops report the *non-memory*
    /// portion; the cache adds the rest).
    pub latency: u32,
}

/// Latency of an integer ALU op.
pub const LAT_ALU: u32 = 1;
/// Latency of an integer multiply.
pub const LAT_MUL: u32 = 4;
/// Latency of an integer divide/remainder.
pub const LAT_DIV: u32 = 12;
/// Latency of simple FP ops (add/sub/min/max/sign/convert/move).
pub const LAT_FP_SIMPLE: u32 = 4;
/// Latency of an FP multiply.
pub const LAT_FP_MUL: u32 = 4;
/// Latency of an FP fused multiply-add.
pub const LAT_FP_FMA: u32 = 5;
/// Latency of an FP divide.
pub const LAT_FP_DIV: u32 = 12;
/// Latency of an FP square root.
pub const LAT_FP_SQRT: u32 = 16;
/// Address-generation + issue latency of a memory op (cache adds the rest).
pub const LAT_MEM_ISSUE: u32 = 1;

/// Returns the FU class and latency of a scalar instruction.
///
/// Vector instructions report [`FuClass::Vector`] with zero latency — the
/// owning vector engine prices them.
pub fn scalar_meta(instr: &Instr) -> ScalarMeta {
    if instr.is_vector() {
        return ScalarMeta {
            fu: FuClass::Vector,
            latency: 0,
        };
    }
    match instr {
        Instr::Op { op, .. } | Instr::OpImm { op, .. } => {
            if op.is_muldiv() {
                ScalarMeta {
                    fu: FuClass::MulDiv,
                    latency: match op {
                        AluOp::Mul => LAT_MUL,
                        _ => LAT_DIV,
                    },
                }
            } else {
                ScalarMeta {
                    fu: FuClass::Alu,
                    latency: LAT_ALU,
                }
            }
        }
        Instr::Lui { .. } => ScalarMeta {
            fu: FuClass::Alu,
            latency: LAT_ALU,
        },
        Instr::Load { .. } | Instr::Store { .. } | Instr::FpLoad { .. } | Instr::FpStore { .. } => {
            ScalarMeta {
                fu: FuClass::Mem,
                latency: LAT_MEM_ISSUE,
            }
        }
        Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } => ScalarMeta {
            fu: FuClass::Branch,
            latency: LAT_ALU,
        },
        Instr::FpOp { op, .. } => ScalarMeta {
            fu: FuClass::Fpu,
            latency: match op {
                FpOp::Mul => LAT_FP_MUL,
                FpOp::Div => LAT_FP_DIV,
                FpOp::Sqrt => LAT_FP_SQRT,
                _ => LAT_FP_SIMPLE,
            },
        },
        Instr::FpFma { .. } => ScalarMeta {
            fu: FuClass::Fpu,
            latency: LAT_FP_FMA,
        },
        Instr::FpCmp { .. }
        | Instr::FpCvtFromInt { .. }
        | Instr::FpCvtToInt { .. }
        | Instr::FpMvFromInt { .. }
        | Instr::FpMvToInt { .. } => ScalarMeta {
            fu: FuClass::Fpu,
            latency: LAT_FP_SIMPLE,
        },
        // vsetvl computes min(avl, VLMAX): one ALU cycle in the scalar
        // core (see `Instr::is_vector`).
        Instr::VSetVl { .. } => ScalarMeta {
            fu: FuClass::Alu,
            latency: LAT_ALU,
        },
        Instr::Nop => ScalarMeta {
            fu: FuClass::None,
            latency: LAT_ALU,
        },
        Instr::Halt | Instr::VmFence => ScalarMeta {
            fu: FuClass::None,
            latency: LAT_ALU,
        },
        // Vector variants are handled by the early return.
        _ => ScalarMeta {
            fu: FuClass::Vector,
            latency: 0,
        },
    }
}

/// Per-element execution latency of a vector arithmetic op in an execution
/// lane (shared by the VLITTLE engine and the baseline vector machines).
pub fn vector_op_latency(op: VArithOp) -> u32 {
    use VArithOp::*;
    match op {
        Add | Sub | Min | Max | And | Or | Xor | Sll | Srl | Sra | Merge => LAT_ALU,
        Mul => LAT_MUL,
        Div | Divu | Rem => LAT_DIV,
        FAdd | FSub | FMin | FMax | FNeg | FAbs => LAT_FP_SIMPLE,
        FMul => LAT_FP_MUL,
        FMacc => LAT_FP_FMA,
        FDiv => LAT_FP_DIV,
        FSqrt => LAT_FP_SQRT,
    }
}

/// Per-element latency of a reduction step.
pub fn reduction_step_latency(op: VRedOp) -> u32 {
    if op.is_fp() {
        LAT_FP_SIMPLE
    } else {
        LAT_ALU
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{VReg, XReg};

    #[test]
    fn alu_is_single_cycle() {
        let i = Instr::Op {
            op: AluOp::Add,
            rd: XReg::new(1),
            rs1: XReg::new(2),
            rs2: XReg::new(3),
        };
        let m = scalar_meta(&i);
        assert_eq!(m.fu, FuClass::Alu);
        assert_eq!(m.latency, 1);
    }

    #[test]
    fn div_is_long_latency() {
        let i = Instr::Op {
            op: AluOp::Div,
            rd: XReg::new(1),
            rs1: XReg::new(2),
            rs2: XReg::new(3),
        };
        let m = scalar_meta(&i);
        assert_eq!(m.fu, FuClass::MulDiv);
        assert_eq!(m.latency, LAT_DIV);
    }

    #[test]
    fn vector_ops_defer_to_engine() {
        let i = Instr::VPopc {
            rd: XReg::new(1),
            vs2: VReg::MASK,
        };
        assert_eq!(scalar_meta(&i).fu, FuClass::Vector);
    }

    #[test]
    fn fp_latency_ordering() {
        assert!(vector_op_latency(VArithOp::FDiv) > vector_op_latency(VArithOp::FMul));
        assert!(vector_op_latency(VArithOp::FMul) > vector_op_latency(VArithOp::Add));
    }
}
