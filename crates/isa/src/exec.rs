//! The golden functional executor.
//!
//! [`Machine`] interprets a [`Program`] against architectural state: 32
//! integer registers, 32 FP registers, 32 vector registers of a configurable
//! hardware vector length, and a [`Memory`]. It is *purely functional* (no
//! timing): the timing models in `bvl-core`/`bvl-vengine` call
//! [`Machine::step`] as their semantic oracle and consume the returned
//! [`StepInfo`] (effective addresses, branch outcomes) to drive their
//! pipelines, so a timing bug can never corrupt program results.
//!
//! Masks are modeled one element per mask-register slot (LSB significant)
//! rather than bit-packed; this is semantically equivalent for the modeled
//! subset and keeps the element-to-core mapping in the VLITTLE engine
//! uniform.

use crate::asm::Program;
use crate::instr::{
    AluOp, AvlSrc, BranchOp, FpCmpOp, FpOp, FpPrec, Instr, VArithOp, VCmpOp, VMaskOp, VMemMode,
    VRedOp, VSrc,
};
use crate::mem::Memory;
use crate::reg::{FReg, VReg, XReg, NUM_REGS};
use crate::vcfg::{Sew, VectorConfig};
use bvl_snap::Snap;
use std::fmt;

/// One memory access performed by an instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores.
    pub is_store: bool,
}

/// Everything a timing model needs to know about one executed instruction.
#[derive(Clone, Debug)]
pub struct StepInfo {
    /// Index of the executed instruction.
    pub pc: u32,
    /// The instruction itself.
    pub instr: Instr,
    /// Redirect target if control flow left fall-through.
    pub taken: Option<u32>,
    /// Memory accesses performed (one per element for gathers/scatters).
    pub mem: Vec<MemAccess>,
    /// Vector length in effect (vector instructions only; 0 otherwise).
    pub vl: u32,
    /// Element width in effect.
    pub sew: Sew,
    /// True once the hart has halted.
    pub halted: bool,
}

/// Dynamic-count statistics accumulated by the executor, used for the
/// workload-characterization tables (paper Tables IV and V).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Total dynamic instructions.
    pub instrs: u64,
    /// Dynamic vector instructions.
    pub vector_instrs: u64,
    /// Vector *element* operations (sum of vl over vector instructions).
    pub vector_elem_ops: u64,
    /// Scalar memory accesses.
    pub scalar_mem_ops: u64,
    /// Vector memory instructions.
    pub vector_mem_instrs: u64,
    /// Floating-point operations (scalar + per-element vector).
    pub fp_ops: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches taken.
    pub branches_taken: u64,
}

impl ExecCounters {
    /// Fraction of dynamic work performed by vector instructions, counting
    /// each vector instruction as `vl` element operations (the paper's
    /// "VOp" metric).
    pub fn vectorized_fraction(&self) -> f64 {
        let scalar = (self.instrs - self.vector_instrs) as f64;
        let velems = self.vector_elem_ops as f64;
        if scalar + velems == 0.0 {
            0.0
        } else {
            velems / (scalar + velems)
        }
    }
}

/// Error returned by [`Machine::run`] and [`Machine::step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the program without reaching `halt`.
    PcOutOfRange(u32),
    /// The step limit was exhausted before `halt`.
    StepLimit(u64),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "pc {pc} left the program without halting"),
            ExecError::StepLimit(n) => write!(f, "step limit of {n} instructions exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A comparable snapshot of a machine's complete architectural state.
///
/// Captured by [`Machine::snapshot`] after a run; two machines that
/// executed the same instruction stream from the same initial state must
/// produce *identical* snapshots regardless of the timing model driving
/// them — the invariant the differential-test harness checks across every
/// system configuration.
///
/// Equality covers every architecturally visible bit: the integer and FP
/// register files, all 32 vector registers element by element, the vector
/// configuration (`vl`/`sew`), the PC, the halt flag, and the dynamic
/// execution counters. Snapshots taken at different hardware vector
/// lengths compare unequal (`vlen_bits` differs and the vector containers
/// have different shapes) — compare like against like.
#[derive(Clone, PartialEq, Eq)]
pub struct ArchSnapshot {
    /// Hardware vector length the machine was built with.
    pub vlen_bits: u32,
    /// Final program counter (instruction index).
    pub pc: u32,
    /// Whether `halt` executed.
    pub halted: bool,
    /// Granted vector length in effect.
    pub vl: u32,
    /// Selected element width in effect.
    pub sew: Sew,
    /// Integer register file (`x0` always 0).
    pub xregs: [u64; NUM_REGS],
    /// FP register file (raw bits).
    pub fregs: [u64; NUM_REGS],
    /// Vector register file, one container word per element slot.
    pub vregs: Vec<Vec<u64>>,
    /// Dynamic instruction counters accumulated during execution.
    pub counters: ExecCounters,
}

impl fmt::Debug for ArchSnapshot {
    /// Compact rendering: scalar state plus only the *non-zero* registers,
    /// so assertion failures stay readable (a full dump would be 32 vector
    /// registers of up to 256 elements each).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ArchSnapshot {{ vlen={} pc={} halted={} vl={} sew={}",
            self.vlen_bits, self.pc, self.halted, self.vl, self.sew
        )?;
        for (i, v) in self.xregs.iter().enumerate() {
            if *v != 0 {
                writeln!(f, "  x{i} = {v:#x}")?;
            }
        }
        for (i, v) in self.fregs.iter().enumerate() {
            if *v != 0 {
                writeln!(f, "  f{i} = {v:#x}")?;
            }
        }
        for (i, v) in self.vregs.iter().enumerate() {
            if v.iter().any(|e| *e != 0) {
                writeln!(f, "  v{i} = {v:x?}")?;
            }
        }
        write!(f, "  counters: {:?} }}", self.counters)
    }
}

/// The architectural machine state and functional interpreter.
///
/// Generic over [`Memory`] so it can execute against the plain test memory
/// or the simulator's shared memory image.
#[derive(Clone, Debug)]
pub struct Machine<M> {
    xregs: [u64; NUM_REGS],
    fregs: [u64; NUM_REGS],
    vregs: Vec<Vec<u64>>,
    vcfg: VectorConfig,
    vlen_bits: u32,
    pc: u32,
    halted: bool,
    counters: ExecCounters,
    mem: M,
}

impl<M: Memory> Machine<M> {
    /// Creates a machine with the given memory and hardware vector length.
    ///
    /// # Panics
    ///
    /// Panics if `vlen_bits` is not a positive multiple of 64.
    pub fn new(mem: M, vlen_bits: u32) -> Self {
        assert!(
            vlen_bits >= 64 && vlen_bits.is_multiple_of(64),
            "vlen must be a positive multiple of 64 bits"
        );
        let max_elems = (vlen_bits / 8) as usize; // VLMAX at e8
        Machine {
            xregs: [0; NUM_REGS],
            fregs: [0; NUM_REGS],
            vregs: vec![vec![0; max_elems]; NUM_REGS],
            vcfg: VectorConfig::default(),
            vlen_bits,
            pc: 0,
            halted: false,
            counters: ExecCounters::default(),
            mem,
        }
    }

    /// Hardware vector length in bits.
    pub fn vlen_bits(&self) -> u32 {
        self.vlen_bits
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (e.g. to start a task at a label).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
        self.halted = false;
    }

    /// True once `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current vector configuration.
    pub fn vector_config(&self) -> VectorConfig {
        self.vcfg
    }

    /// Accumulated dynamic counters.
    pub fn counters(&self) -> ExecCounters {
        self.counters
    }

    /// Resets the dynamic counters to zero.
    pub fn reset_counters(&mut self) {
        self.counters = ExecCounters::default();
    }

    /// Reads an integer register.
    pub fn xreg(&self, r: XReg) -> u64 {
        if r.index() == 0 {
            0
        } else {
            self.xregs[r.index()]
        }
    }

    /// Writes an integer register (`x0` writes are ignored).
    pub fn set_xreg(&mut self, r: XReg, v: u64) {
        if r.index() != 0 {
            self.xregs[r.index()] = v;
        }
    }

    /// Reads an FP register's raw bits.
    pub fn freg(&self, r: FReg) -> u64 {
        self.fregs[r.index()]
    }

    /// Writes an FP register's raw bits.
    pub fn set_freg(&mut self, r: FReg, v: u64) {
        self.fregs[r.index()] = v;
    }

    /// Reads element `i` of a vector register (raw container bits).
    pub fn vreg_elem(&self, r: VReg, i: usize) -> u64 {
        self.vregs[r.index()][i]
    }

    /// Writes element `i` of a vector register.
    pub fn set_vreg_elem(&mut self, r: VReg, i: usize, v: u64) {
        self.vregs[r.index()][i] = v;
    }

    /// Borrow of the backing memory.
    pub fn mem(&self) -> &M {
        &self.mem
    }

    /// Mutable borrow of the backing memory.
    pub fn mem_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    /// Consumes the machine and returns the memory.
    pub fn into_mem(self) -> M {
        self.mem
    }

    /// Captures the complete architectural state for differential
    /// comparison (see [`ArchSnapshot`]).
    pub fn snapshot(&self) -> ArchSnapshot {
        ArchSnapshot {
            vlen_bits: self.vlen_bits,
            pc: self.pc,
            halted: self.halted,
            vl: self.vcfg.vl,
            sew: self.vcfg.sew,
            xregs: self.xregs,
            fregs: self.fregs,
            vregs: self.vregs.clone(),
            counters: self.counters,
        }
    }

    /// Appends the architectural state (registers, vector config, PC, halt
    /// flag, counters — *not* the backing memory, which the simulator
    /// checkpoints once, globally) to a checkpoint.
    pub fn save_state(&self, w: &mut bvl_snap::SnapWriter) {
        w.u32(self.vlen_bits);
        self.xregs.save(w);
        self.fregs.save(w);
        self.vregs.save(w);
        self.vcfg.save(w);
        w.u32(self.pc);
        w.bool(self.halted);
        self.counters.save(w);
    }

    /// Restores state written by [`Machine::save_state`], keeping the
    /// backing memory.
    ///
    /// # Errors
    ///
    /// Fails with [`bvl_snap::SnapError::Corrupt`] if the checkpoint was
    /// taken at a different hardware vector length or the vector register
    /// file has the wrong shape.
    pub fn restore_state(
        &mut self,
        r: &mut bvl_snap::SnapReader<'_>,
    ) -> Result<(), bvl_snap::SnapError> {
        let vlen_bits = r.u32()?;
        if vlen_bits != self.vlen_bits {
            return Err(bvl_snap::SnapError::Corrupt {
                what: format!(
                    "machine vlen {} does not match checkpoint vlen {vlen_bits}",
                    self.vlen_bits
                ),
            });
        }
        let xregs: [u64; NUM_REGS] = Snap::load(r)?;
        let fregs: [u64; NUM_REGS] = Snap::load(r)?;
        let vregs: Vec<Vec<u64>> = Snap::load(r)?;
        let max_elems = (self.vlen_bits / 8) as usize;
        if vregs.len() != NUM_REGS || vregs.iter().any(|v| v.len() != max_elems) {
            return Err(bvl_snap::SnapError::Corrupt {
                what: "vector register file has the wrong shape".into(),
            });
        }
        self.xregs = xregs;
        self.fregs = fregs;
        self.vregs = vregs;
        self.vcfg = Snap::load(r)?;
        self.pc = r.u32()?;
        self.halted = r.bool()?;
        self.counters = Snap::load(r)?;
        Ok(())
    }

    /// Runs until `halt`, returning the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Fails with [`ExecError::StepLimit`] after `max_steps` instructions or
    /// [`ExecError::PcOutOfRange`] if the PC escapes the program.
    pub fn run(&mut self, prog: &Program, max_steps: u64) -> Result<u64, ExecError> {
        let mut steps = 0;
        while !self.halted {
            if steps >= max_steps {
                return Err(ExecError::StepLimit(max_steps));
            }
            self.step(prog)?;
            steps += 1;
        }
        Ok(steps)
    }

    /// Executes one instruction and reports its effects.
    ///
    /// # Errors
    ///
    /// Fails with [`ExecError::PcOutOfRange`] if the PC is outside the
    /// program (including after the last instruction without a `halt`).
    pub fn step(&mut self, prog: &Program) -> Result<StepInfo, ExecError> {
        let pc = self.pc;
        let instr = *prog.get(pc as usize).ok_or(ExecError::PcOutOfRange(pc))?;
        let mut info = StepInfo {
            pc,
            instr,
            taken: None,
            mem: Vec::new(),
            vl: if instr.is_vector() { self.vcfg.vl } else { 0 },
            sew: self.vcfg.sew,
            halted: false,
        };
        self.pc = pc + 1;

        self.counters.instrs += 1;
        if instr.is_vector() {
            self.counters.vector_instrs += 1;
            self.counters.vector_elem_ops += u64::from(self.vcfg.vl);
        }

        self.execute(instr, &mut info);

        self.counters.scalar_mem_ops +=
            info.mem.iter().filter(|_| instr.is_scalar_mem()).count() as u64;
        if instr.is_vector_mem() {
            self.counters.vector_mem_instrs += 1;
        }
        if let Some(t) = info.taken {
            self.pc = t;
        }
        info.halted = self.halted;
        Ok(info)
    }

    fn execute(&mut self, instr: Instr, info: &mut StepInfo) {
        match instr {
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = alu(op, self.xreg(rs1), self.xreg(rs2));
                self.set_xreg(rd, v);
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = alu(op, self.xreg(rs1), imm as u64);
                self.set_xreg(rd, v);
            }
            Instr::Lui { rd, imm } => self.set_xreg(rd, (imm << 12) as u64),
            Instr::Load {
                rd,
                rs1,
                imm,
                width,
                signed,
            } => {
                let addr = self.xreg(rs1).wrapping_add(imm as u64);
                let raw = self.mem.read_uint(addr, width.bytes());
                let v = if signed {
                    match width {
                        crate::instr::MemWidth::B => raw as u8 as i8 as i64 as u64,
                        crate::instr::MemWidth::H => raw as u16 as i16 as i64 as u64,
                        crate::instr::MemWidth::W => raw as u32 as i32 as i64 as u64,
                        crate::instr::MemWidth::D => raw,
                    }
                } else {
                    raw
                };
                self.set_xreg(rd, v);
                info.mem.push(MemAccess {
                    addr,
                    size: width.bytes(),
                    is_store: false,
                });
            }
            Instr::Store {
                rs2,
                rs1,
                imm,
                width,
            } => {
                let addr = self.xreg(rs1).wrapping_add(imm as u64);
                self.mem.write_uint(addr, width.bytes(), self.xreg(rs2));
                info.mem.push(MemAccess {
                    addr,
                    size: width.bytes(),
                    is_store: true,
                });
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                self.counters.branches += 1;
                let (a, b) = (self.xreg(rs1), self.xreg(rs2));
                let t = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i64) < (b as i64),
                    BranchOp::Ge => (a as i64) >= (b as i64),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if t {
                    self.counters.branches_taken += 1;
                    info.taken = Some(target);
                }
            }
            Instr::Jal { rd, target } => {
                self.set_xreg(rd, u64::from(info.pc) + 1);
                info.taken = Some(target);
            }
            Instr::Jalr { rd, rs1, imm } => {
                let target = self.xreg(rs1).wrapping_add(imm as u64) as u32;
                self.set_xreg(rd, u64::from(info.pc) + 1);
                info.taken = Some(target);
            }

            Instr::FpOp {
                op,
                prec,
                rd,
                rs1,
                rs2,
            } => {
                self.counters.fp_ops += 1;
                let v = fp_op(op, prec, self.freg(rs1), self.freg(rs2));
                self.set_freg(rd, v);
            }
            Instr::FpFma {
                prec,
                rd,
                rs1,
                rs2,
                rs3,
            } => {
                self.counters.fp_ops += 1;
                let v = match prec {
                    FpPrec::S => {
                        let (a, b, c) = (
                            f32::from_bits(self.freg(rs1) as u32),
                            f32::from_bits(self.freg(rs2) as u32),
                            f32::from_bits(self.freg(rs3) as u32),
                        );
                        u64::from((a.mul_add(b, c)).to_bits())
                    }
                    FpPrec::D => {
                        let (a, b, c) = (
                            f64::from_bits(self.freg(rs1)),
                            f64::from_bits(self.freg(rs2)),
                            f64::from_bits(self.freg(rs3)),
                        );
                        a.mul_add(b, c).to_bits()
                    }
                };
                self.set_freg(rd, v);
            }
            Instr::FpCmp {
                op,
                prec,
                rd,
                rs1,
                rs2,
            } => {
                self.counters.fp_ops += 1;
                let r = match prec {
                    FpPrec::S => {
                        let (a, b) = (
                            f32::from_bits(self.freg(rs1) as u32),
                            f32::from_bits(self.freg(rs2) as u32),
                        );
                        fp_cmp(op, a as f64, b as f64)
                    }
                    FpPrec::D => fp_cmp(
                        op,
                        f64::from_bits(self.freg(rs1)),
                        f64::from_bits(self.freg(rs2)),
                    ),
                };
                self.set_xreg(rd, u64::from(r));
            }
            Instr::FpLoad { rd, rs1, imm, prec } => {
                let addr = self.xreg(rs1).wrapping_add(imm as u64);
                let size = prec_bytes(prec);
                self.set_freg(rd, self.mem.read_uint(addr, size));
                info.mem.push(MemAccess {
                    addr,
                    size,
                    is_store: false,
                });
            }
            Instr::FpStore {
                rs2,
                rs1,
                imm,
                prec,
            } => {
                let addr = self.xreg(rs1).wrapping_add(imm as u64);
                let size = prec_bytes(prec);
                self.mem.write_uint(addr, size, self.freg(rs2));
                info.mem.push(MemAccess {
                    addr,
                    size,
                    is_store: true,
                });
            }
            Instr::FpCvtFromInt { prec, rd, rs1 } => {
                let i = self.xreg(rs1) as i64;
                let v = match prec {
                    FpPrec::S => u64::from((i as f32).to_bits()),
                    FpPrec::D => (i as f64).to_bits(),
                };
                self.set_freg(rd, v);
            }
            Instr::FpCvtToInt { prec, rd, rs1 } => {
                let v = match prec {
                    FpPrec::S => f32::from_bits(self.freg(rs1) as u32) as i64,
                    FpPrec::D => f64::from_bits(self.freg(rs1)) as i64,
                };
                self.set_xreg(rd, v as u64);
            }
            Instr::FpMvFromInt { prec, rd, rs1 } => {
                let v = match prec {
                    FpPrec::S => self.xreg(rs1) & 0xFFFF_FFFF,
                    FpPrec::D => self.xreg(rs1),
                };
                self.set_freg(rd, v);
            }
            Instr::FpMvToInt { prec, rd, rs1 } => {
                let v = match prec {
                    FpPrec::S => Sew::E32.sign_extend(self.freg(rs1) & 0xFFFF_FFFF),
                    FpPrec::D => self.freg(rs1),
                };
                self.set_xreg(rd, v);
            }

            Instr::VSetVl { rd, avl, sew } => {
                let avl = match avl {
                    AvlSrc::Reg(r) => self.xreg(r),
                    AvlSrc::Imm(i) => u64::from(i),
                };
                self.vcfg = VectorConfig::grant(avl, sew, self.vlen_bits);
                info.vl = self.vcfg.vl;
                info.sew = sew;
                self.set_xreg(rd, u64::from(self.vcfg.vl));
            }
            Instr::VLoad {
                vd,
                base,
                mode,
                masked,
            } => self.v_load(vd, base, mode, masked, info),
            Instr::VStore {
                vs3,
                base,
                mode,
                masked,
            } => self.v_store(vs3, base, mode, masked, info),
            Instr::VArith {
                op,
                vd,
                src1,
                vs2,
                masked,
            } => self.v_arith(op, vd, src1, vs2, masked),
            Instr::VCmp {
                op,
                vd,
                vs2,
                src1,
                masked,
            } => self.v_cmp(op, vd, vs2, src1, masked),
            Instr::VRed {
                op,
                vd,
                vs2,
                vs1,
                masked,
            } => self.v_red(op, vd, vs2, vs1, masked),
            Instr::VPopc { rd, vs2 } => {
                let n = (0..self.vcfg.vl as usize)
                    .filter(|&i| self.vregs[vs2.index()][i] & 1 == 1)
                    .count();
                self.set_xreg(rd, n as u64);
            }
            Instr::VFirst { rd, vs2 } => {
                let idx = (0..self.vcfg.vl as usize)
                    .find(|&i| self.vregs[vs2.index()][i] & 1 == 1)
                    .map(|i| i as i64)
                    .unwrap_or(-1);
                self.set_xreg(rd, idx as u64);
            }
            Instr::VMask { op, vd, vs1, vs2 } => {
                for i in 0..self.vcfg.vl as usize {
                    let a = self.vregs[vs1.index()][i] & 1;
                    let b = self.vregs[vs2.index()][i] & 1;
                    let r = match op {
                        VMaskOp::And => a & b,
                        VMaskOp::Or => a | b,
                        VMaskOp::Xor => a ^ b,
                        VMaskOp::AndNot => a & (b ^ 1),
                        VMaskOp::Not => a ^ 1,
                    };
                    self.vregs[vd.index()][i] = r;
                }
            }
            Instr::VRgather { vd, vs2, vs1 } => {
                let vl = self.vcfg.vl as usize;
                let mut out = vec![0u64; vl];
                for (i, o) in out.iter_mut().enumerate() {
                    let idx = self.vregs[vs1.index()][i] as usize;
                    *o = if idx < vl {
                        self.vregs[vs2.index()][idx]
                    } else {
                        0
                    };
                }
                self.vregs[vd.index()][..vl].copy_from_slice(&out);
            }
            Instr::VSlideUp { vd, vs2, amt } => {
                let vl = self.vcfg.vl as usize;
                let amt = self.xreg(amt) as usize;
                // Walk downward so vd == vs2 behaves like the spec
                // (elements below `amt` are untouched).
                for i in (amt..vl).rev() {
                    self.vregs[vd.index()][i] = self.vregs[vs2.index()][i - amt];
                }
            }
            Instr::VSlideDown { vd, vs2, amt } => {
                let vl = self.vcfg.vl as usize;
                let amt = self.xreg(amt) as usize;
                for i in 0..vl {
                    self.vregs[vd.index()][i] = if i + amt < vl {
                        self.vregs[vs2.index()][i + amt]
                    } else {
                        0
                    };
                }
            }
            Instr::VMvVX { vd, rs1 } => {
                let v = self.xreg(rs1) & self.vcfg.sew.mask();
                for i in 0..self.vcfg.vl as usize {
                    self.vregs[vd.index()][i] = v;
                }
            }
            Instr::VFMvVF { vd, fs1 } => {
                let v = self.freg(fs1) & self.vcfg.sew.mask();
                for i in 0..self.vcfg.vl as usize {
                    self.vregs[vd.index()][i] = v;
                }
            }
            Instr::VMvVV { vd, vs2 } => {
                for i in 0..self.vcfg.vl as usize {
                    self.vregs[vd.index()][i] = self.vregs[vs2.index()][i];
                }
            }
            Instr::VMvXS { rd, vs2 } => {
                let v = self.vcfg.sew.sign_extend(self.vregs[vs2.index()][0]);
                self.set_xreg(rd, v);
            }
            Instr::VFMvFS { rd, vs2 } => {
                self.set_freg(rd, self.vregs[vs2.index()][0]);
            }
            Instr::VMvSX { vd, rs1 } => {
                self.vregs[vd.index()][0] = self.xreg(rs1) & self.vcfg.sew.mask();
            }
            Instr::VId { vd, masked } => {
                for i in 0..self.vcfg.vl as usize {
                    if masked && !self.mask_bit(i) {
                        continue;
                    }
                    self.vregs[vd.index()][i] = i as u64;
                }
            }

            Instr::VmFence | Instr::Nop => {}
            Instr::Halt => self.halted = true,
        }
    }

    fn mask_bit(&self, i: usize) -> bool {
        self.vregs[VReg::MASK.index()][i] & 1 == 1
    }

    fn v_load(&mut self, vd: VReg, base: XReg, mode: VMemMode, masked: bool, info: &mut StepInfo) {
        let vl = self.vcfg.vl as usize;
        let sew = self.vcfg.sew;
        let base = self.xreg(base);
        for i in 0..vl {
            if masked && !self.mask_bit(i) {
                continue;
            }
            let addr = self.v_elem_addr(base, mode, i, sew);
            let v = self.mem.read_uint(addr, sew.bytes());
            self.vregs[vd.index()][i] = v;
            info.mem.push(MemAccess {
                addr,
                size: sew.bytes(),
                is_store: false,
            });
        }
    }

    fn v_store(
        &mut self,
        vs3: VReg,
        base: XReg,
        mode: VMemMode,
        masked: bool,
        info: &mut StepInfo,
    ) {
        let vl = self.vcfg.vl as usize;
        let sew = self.vcfg.sew;
        let base = self.xreg(base);
        for i in 0..vl {
            if masked && !self.mask_bit(i) {
                continue;
            }
            let addr = self.v_elem_addr(base, mode, i, sew);
            let v = self.vregs[vs3.index()][i] & sew.mask();
            self.mem.write_uint(addr, sew.bytes(), v);
            info.mem.push(MemAccess {
                addr,
                size: sew.bytes(),
                is_store: true,
            });
        }
    }

    fn v_elem_addr(&self, base: u64, mode: VMemMode, i: usize, sew: Sew) -> u64 {
        match mode {
            VMemMode::Unit => base + i as u64 * sew.bytes(),
            VMemMode::Strided(s) => base.wrapping_add((self.xreg(s) as i64 * i as i64) as u64),
            VMemMode::Indexed(vidx) => base.wrapping_add(self.vregs[vidx.index()][i]),
        }
    }

    fn v_src1(&self, src1: VSrc, i: usize) -> u64 {
        let sew = self.vcfg.sew;
        match src1 {
            VSrc::V(v) => self.vregs[v.index()][i],
            VSrc::X(x) => self.xreg(x) & sew.mask(),
            VSrc::F(f) => self.freg(f) & sew.mask(),
            VSrc::I(imm) => (imm as u64) & sew.mask(),
        }
    }

    fn v_arith(&mut self, op: VArithOp, vd: VReg, src1: VSrc, vs2: VReg, masked: bool) {
        let vl = self.vcfg.vl as usize;
        let sew = self.vcfg.sew;
        if op.is_fp() {
            self.counters.fp_ops += vl as u64;
        }
        for i in 0..vl {
            let active = if op == VArithOp::Merge {
                true // merge consumes the mask itself
            } else {
                !masked || self.mask_bit(i)
            };
            if !active {
                continue;
            }
            let a = self.v_src1(src1, i);
            let b = self.vregs[vs2.index()][i];
            let d = self.vregs[vd.index()][i];
            let r = if op == VArithOp::Merge {
                if self.mask_bit(i) {
                    a
                } else {
                    b
                }
            } else {
                v_elem_op(op, sew, a, b, d)
            };
            self.vregs[vd.index()][i] = r & sew.mask();
        }
    }

    fn v_cmp(&mut self, op: VCmpOp, vd: VReg, vs2: VReg, src1: VSrc, masked: bool) {
        let vl = self.vcfg.vl as usize;
        let sew = self.vcfg.sew;
        for i in 0..vl {
            if masked && !self.mask_bit(i) {
                continue;
            }
            let a = self.vregs[vs2.index()][i];
            let b = self.v_src1(src1, i);
            let (sa, sb) = (sew.sign_extend(a) as i64, sew.sign_extend(b) as i64);
            let r = match op {
                VCmpOp::Eq => a == b,
                VCmpOp::Ne => a != b,
                VCmpOp::Lt => sa < sb,
                VCmpOp::Le => sa <= sb,
                VCmpOp::Gt => sa > sb,
                VCmpOp::FEq => v_f(sew, a) == v_f(sew, b),
                VCmpOp::FLt => v_f(sew, a) < v_f(sew, b),
                VCmpOp::FLe => v_f(sew, a) <= v_f(sew, b),
            };
            self.vregs[vd.index()][i] = u64::from(r);
        }
    }

    fn v_red(&mut self, op: VRedOp, vd: VReg, vs2: VReg, vs1: VReg, masked: bool) {
        let vl = self.vcfg.vl as usize;
        let sew = self.vcfg.sew;
        if op.is_fp() {
            self.counters.fp_ops += vl as u64;
        }
        let mut acc = self.vregs[vs1.index()][0];
        for i in 0..vl {
            if masked && !self.mask_bit(i) {
                continue;
            }
            let e = self.vregs[vs2.index()][i];
            acc = v_reduce_step(op, sew, acc, e);
        }
        self.vregs[vd.index()][0] = acc & sew.mask();
    }
}

fn prec_bytes(prec: FpPrec) -> u64 {
    match prec {
        FpPrec::S => 4,
        FpPrec::D => 8,
    }
}

/// Scalar ALU semantics (shared with the vector element path for int ops).
fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
        AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Slt => u64::from((a as i64) < (b as i64)),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn fp_op(op: FpOp, prec: FpPrec, a_bits: u64, b_bits: u64) -> u64 {
    match prec {
        FpPrec::S => {
            let (a, b) = (f32::from_bits(a_bits as u32), f32::from_bits(b_bits as u32));
            let r = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
                FpOp::Min => a.min(b),
                FpOp::Max => a.max(b),
                FpOp::Sqrt => a.sqrt(),
                FpOp::Sgnj => a.copysign(b),
                FpOp::Sgnjn => a.copysign(-b),
                FpOp::Sgnjx => f32::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000)),
            };
            u64::from(r.to_bits())
        }
        FpPrec::D => {
            let (a, b) = (f64::from_bits(a_bits), f64::from_bits(b_bits));
            let r = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
                FpOp::Min => a.min(b),
                FpOp::Max => a.max(b),
                FpOp::Sqrt => a.sqrt(),
                FpOp::Sgnj => a.copysign(b),
                FpOp::Sgnjn => a.copysign(-b),
                FpOp::Sgnjx => f64::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000_0000_0000)),
            };
            r.to_bits()
        }
    }
}

fn fp_cmp(op: FpCmpOp, a: f64, b: f64) -> bool {
    match op {
        FpCmpOp::Eq => a == b,
        FpCmpOp::Lt => a < b,
        FpCmpOp::Le => a <= b,
    }
}

/// Interprets element bits as a float at the active width (E32 => f32
/// widened to f64 for comparison, E64 => f64). Narrower widths have no FP
/// interpretation in the modeled subset and compare as zero-extended ints.
fn v_f(sew: Sew, bits: u64) -> f64 {
    match sew {
        Sew::E32 => f64::from(f32::from_bits(bits as u32)),
        Sew::E64 => f64::from_bits(bits),
        _ => bits as f64,
    }
}

fn v_f_store(sew: Sew, v: f64) -> u64 {
    match sew {
        Sew::E32 => u64::from((v as f32).to_bits()),
        Sew::E64 => v.to_bits(),
        _ => v as u64,
    }
}

/// Element-wise vector arithmetic semantics. `d` is the old destination
/// value (accumulator for `FMacc`).
fn v_elem_op(op: VArithOp, sew: Sew, a: u64, b: u64, d: u64) -> u64 {
    use VArithOp::*;
    match op {
        Add | Sub | Mul | And | Or | Xor | Sll | Srl => {
            let alu_op = match op {
                Add => AluOp::Add,
                Sub => AluOp::Sub,
                Mul => AluOp::Mul,
                And => AluOp::And,
                Or => AluOp::Or,
                Xor => AluOp::Xor,
                Sll => AluOp::Sll,
                Srl => AluOp::Srl,
                _ => unreachable!(),
            };
            // RVV `.vv/.vx` operand order: vs2 (b) is the first operand.
            alu(alu_op, b, a)
        }
        Sra => (sew.sign_extend(b) as i64).wrapping_shr((a & 63) as u32) as u64,
        Div => {
            let (sb, sa) = (sew.sign_extend(b) as i64, sew.sign_extend(a) as i64);
            if sa == 0 {
                u64::MAX
            } else {
                sb.wrapping_div(sa) as u64
            }
        }
        Divu => b.checked_div(a).unwrap_or(u64::MAX),
        Rem => {
            let (sb, sa) = (sew.sign_extend(b) as i64, sew.sign_extend(a) as i64);
            if sa == 0 {
                b
            } else {
                sb.wrapping_rem(sa) as u64
            }
        }
        Min => {
            let (sb, sa) = (sew.sign_extend(b) as i64, sew.sign_extend(a) as i64);
            sb.min(sa) as u64
        }
        Max => {
            let (sb, sa) = (sew.sign_extend(b) as i64, sew.sign_extend(a) as i64);
            sb.max(sa) as u64
        }
        FAdd => v_f_store(sew, v_f(sew, b) + v_f(sew, a)),
        FSub => v_f_store(sew, v_f(sew, b) - v_f(sew, a)),
        FMul => v_f_store(sew, v_f(sew, b) * v_f(sew, a)),
        FDiv => v_f_store(sew, v_f(sew, b) / v_f(sew, a)),
        FMin => v_f_store(sew, v_f(sew, b).min(v_f(sew, a))),
        FMax => v_f_store(sew, v_f(sew, b).max(v_f(sew, a))),
        FSqrt => v_f_store(sew, v_f(sew, b).sqrt()),
        FMacc => match sew {
            // f32 FMA must round once at f32 precision.
            Sew::E32 => {
                let (x, y, acc) = (
                    f32::from_bits(a as u32),
                    f32::from_bits(b as u32),
                    f32::from_bits(d as u32),
                );
                u64::from(x.mul_add(y, acc).to_bits())
            }
            _ => v_f_store(sew, v_f(sew, a).mul_add(v_f(sew, b), v_f(sew, d))),
        },
        FNeg => v_f_store(sew, -v_f(sew, b)),
        FAbs => v_f_store(sew, v_f(sew, b).abs()),
        Merge => unreachable!("merge handled by caller"),
    }
}

fn v_reduce_step(op: VRedOp, sew: Sew, acc: u64, e: u64) -> u64 {
    match op {
        VRedOp::Sum => acc.wrapping_add(e) & sew.mask(),
        VRedOp::Min => (sew.sign_extend(acc) as i64).min(sew.sign_extend(e) as i64) as u64,
        VRedOp::Max => (sew.sign_extend(acc) as i64).max(sew.sign_extend(e) as i64) as u64,
        VRedOp::FSum => v_f_store(sew, v_f(sew, acc) + v_f(sew, e)),
        VRedOp::FMin => v_f_store(sew, v_f(sew, acc).min(v_f(sew, e))),
        VRedOp::FMax => v_f_store(sew, v_f(sew, acc).max(v_f(sew, e))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::mem::VecMemory;

    fn x(i: u8) -> XReg {
        XReg::new(i)
    }
    fn v(i: u8) -> VReg {
        VReg::new(i)
    }
    fn f(i: u8) -> FReg {
        FReg::new(i)
    }

    fn run(a: &Assembler) -> Machine<VecMemory> {
        let p = a.assemble().unwrap();
        let mut m = Machine::new(VecMemory::new(1 << 20), 512);
        m.run(&p, 1_000_000).unwrap();
        m
    }

    #[test]
    fn scalar_loop_counts_to_ten() {
        let mut a = Assembler::new();
        a.li(x(5), 0);
        a.li(x(6), 10);
        a.label("loop");
        a.addi(x(5), x(5), 1);
        a.bne(x(5), x(6), "loop");
        a.halt();
        let m = run(&a);
        assert_eq!(m.xreg(x(5)), 10);
        assert_eq!(m.counters().branches, 10);
        assert_eq!(m.counters().branches_taken, 9);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut a = Assembler::new();
        a.li(XReg::ZERO, 99);
        a.add(x(1), XReg::ZERO, XReg::ZERO);
        a.halt();
        let m = run(&a);
        assert_eq!(m.xreg(XReg::ZERO), 0);
        assert_eq!(m.xreg(x(1)), 0);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut a = Assembler::new();
        a.li(x(1), 0x100);
        a.li(x(2), -7i64);
        a.sw(x(2), x(1), 0);
        a.lw(x(3), x(1), 0); // sign-extended
        a.load(x(4), x(1), 0, crate::instr::MemWidth::W, false); // zero-extended
        a.halt();
        let m = run(&a);
        assert_eq!(m.xreg(x(3)) as i64, -7);
        assert_eq!(m.xreg(x(4)), 0xFFFF_FFF9);
    }

    #[test]
    fn division_by_zero_riscv_semantics() {
        let mut a = Assembler::new();
        a.li(x(1), 42);
        a.li(x(2), 0);
        a.div(x(3), x(1), x(2));
        a.rem(x(4), x(1), x(2));
        a.halt();
        let m = run(&a);
        assert_eq!(m.xreg(x(3)), u64::MAX);
        assert_eq!(m.xreg(x(4)), 42);
    }

    #[test]
    fn fp_add_and_fma() {
        let mut a = Assembler::new();
        a.li(x(1), 0x100);
        let mut mem = VecMemory::new(1 << 12);
        mem.write_f32(0x100, 1.5);
        mem.write_f32(0x104, 2.25);
        a.flw(f(1), x(1), 0);
        a.flw(f(2), x(1), 4);
        a.fadd_s(f(3), f(1), f(2));
        a.fmadd_s(f(4), f(1), f(2), f(3));
        a.fsw(f(4), x(1), 8);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(mem, 512);
        m.run(&p, 100).unwrap();
        assert_eq!(m.mem().read_f32(0x108), 1.5 * 2.25 + 3.75);
    }

    #[test]
    fn vsetvl_grants_min() {
        let mut a = Assembler::new();
        a.li(x(1), 100);
        a.vsetvli(x(2), x(1), Sew::E32);
        a.halt();
        let m = run(&a); // vlen = 512 -> vlmax = 16
        assert_eq!(m.xreg(x(2)), 16);
    }

    #[test]
    fn vector_unit_load_add_store() {
        let mut a = Assembler::new();
        let mut mem = VecMemory::new(1 << 12);
        for i in 0..8u64 {
            mem.write_uint(0x200 + i * 4, 4, i + 1);
            mem.write_uint(0x300 + i * 4, 4, 10 * (i + 1));
        }
        a.vsetivli(x(1), 8, Sew::E32);
        a.li(x(2), 0x200);
        a.li(x(3), 0x300);
        a.li(x(4), 0x400);
        a.vle(v(1), x(2));
        a.vle(v(2), x(3));
        a.vadd_vv(v(3), v(1), v(2));
        a.vse(v(3), x(4));
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(mem, 512);
        m.run(&p, 100).unwrap();
        for i in 0..8u64 {
            assert_eq!(m.mem().read_uint(0x400 + i * 4, 4), 11 * (i + 1));
        }
    }

    #[test]
    fn vector_indexed_gather() {
        let mut a = Assembler::new();
        let mut mem = VecMemory::new(1 << 12);
        for i in 0..4u64 {
            mem.write_uint(0x200 + i * 4, 4, 100 + i);
        }
        // Byte-offset indices gathering in reverse.
        for (i, off) in [12u64, 8, 4, 0].iter().enumerate() {
            mem.write_uint(0x300 + i as u64 * 4, 4, *off);
        }
        a.vsetivli(x(1), 4, Sew::E32);
        a.li(x(2), 0x300);
        a.vle(v(1), x(2)); // indices
        a.li(x(3), 0x200);
        a.vluxei(v(2), x(3), v(1));
        a.li(x(4), 0x400);
        a.vse(v(2), x(4));
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(mem, 512);
        m.run(&p, 100).unwrap();
        for i in 0..4u64 {
            assert_eq!(m.mem().read_uint(0x400 + i * 4, 4), 103 - i);
        }
    }

    #[test]
    fn masked_add_leaves_inactive_untouched() {
        let mut a = Assembler::new();
        a.vsetivli(x(1), 4, Sew::E32);
        a.li(x(2), 5);
        a.vmv_v_x(v(1), x(2)); // v1 = [5,5,5,5]
        a.li(x(3), 2);
        a.vmv_v_x(v(2), x(3)); // v2 = [2,2,2,2]
        a.vid(v(3));
        a.li(x(4), 2);
        a.vmseq_vx(VReg::MASK, v(3), x(4)); // mask = [0,0,1,0]
        a.varith(VArithOp::Add, v(1), VSrc::V(v(2)), v(1), true);
        a.halt();
        let m = run(&a);
        assert_eq!(m.vreg_elem(v(1), 0), 5);
        assert_eq!(m.vreg_elem(v(1), 1), 5);
        assert_eq!(m.vreg_elem(v(1), 2), 7);
        assert_eq!(m.vreg_elem(v(1), 3), 5);
    }

    #[test]
    fn reduction_sum() {
        let mut a = Assembler::new();
        a.vsetivli(x(1), 8, Sew::E32);
        a.vid(v(1)); // 0..7
        a.li(x(2), 100);
        a.vmv_s_x(v(2), x(2)); // init = 100
        a.vredsum(v(3), v(1), v(2));
        a.vmv_x_s(x(3), v(3));
        a.halt();
        let m = run(&a);
        assert_eq!(m.xreg(x(3)), 100 + 28);
    }

    #[test]
    fn vrgather_reverses() {
        let mut a = Assembler::new();
        a.vsetivli(x(1), 4, Sew::E32);
        a.vid(v(1));
        a.li(x(2), 3);
        a.vmv_v_x(v(2), x(2));
        a.vsub_vv(v(3), v(2), v(1)); // idx = [3,2,1,0]
        a.li(x(4), 10);
        a.vmv_v_x(v(4), x(4));
        a.vadd_vv(v(5), v(4), v(1)); // data = [10,11,12,13]
        a.vrgather(v(6), v(5), v(3));
        a.halt();
        let m = run(&a);
        for i in 0..4 {
            assert_eq!(m.vreg_elem(v(6), i), 13 - i as u64);
        }
    }

    #[test]
    fn slide_up_down() {
        let mut a = Assembler::new();
        a.vsetivli(x(1), 4, Sew::E32);
        a.vid(v(1)); // [0,1,2,3]
        a.li(x(2), 1);
        a.vmv_v_x(v(3), x(2)); // v3=[1,1,1,1] placeholder values
        a.vslideup(v(3), v(1), x(2)); // v3 = [1, 0,1,2]
        a.vslidedown(v(4), v(1), x(2)); // v4 = [1,2,3,0]
        a.halt();
        let m = run(&a);
        assert_eq!(m.vreg_elem(v(3), 0), 1);
        assert_eq!(m.vreg_elem(v(3), 1), 0);
        assert_eq!(m.vreg_elem(v(3), 3), 2);
        assert_eq!(m.vreg_elem(v(4), 0), 1);
        assert_eq!(m.vreg_elem(v(4), 3), 0);
    }

    #[test]
    fn vpopc_and_vfirst() {
        let mut a = Assembler::new();
        a.vsetivli(x(1), 8, Sew::E32);
        a.vid(v(1));
        a.li(x(2), 5);
        a.vmv_v_x(v(2), x(2));
        a.vmslt_vv(v(3), v(2), v(1)); // v3[i] = 5 < i -> i in {6,7}
        a.vpopc(x(3), v(3));
        a.vfirst(x(4), v(3));
        a.halt();
        let m = run(&a);
        assert_eq!(m.xreg(x(3)), 2);
        assert_eq!(m.xreg(x(4)), 6);
    }

    #[test]
    fn step_limit_error() {
        let mut a = Assembler::new();
        a.label("spin");
        a.j("spin");
        let p = a.assemble().unwrap();
        let mut m = Machine::new(VecMemory::new(64), 512);
        assert_eq!(m.run(&p, 10), Err(ExecError::StepLimit(10)));
    }

    #[test]
    fn pc_out_of_range_error() {
        let mut a = Assembler::new();
        a.nop();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(VecMemory::new(64), 512);
        assert!(matches!(m.run(&p, 10), Err(ExecError::PcOutOfRange(1))));
    }

    #[test]
    fn counters_track_vector_work() {
        let mut a = Assembler::new();
        a.vsetivli(x(1), 8, Sew::E32);
        a.vid(v(1));
        a.vadd_vv(v(2), v(1), v(1));
        a.halt();
        let m = run(&a);
        let c = m.counters();
        assert_eq!(c.instrs, 4);
        // vsetvl executes in the scalar core; vid and vadd are vector.
        assert_eq!(c.vector_instrs, 2);
        assert_eq!(c.vector_elem_ops, 16);
        assert!(c.vectorized_fraction() > 0.8);
    }

    #[test]
    fn fmacc_accumulates() {
        let mut a = Assembler::new();
        a.vsetivli(x(1), 4, Sew::E32);
        a.li(x(2), 2);
        a.fcvt_s_w(f(1), x(2)); // f1 = 2.0
        a.vfmv_v_f(v(1), f(1)); // v1 = 2.0
        a.vfmv_v_f(v(2), f(1)); // v2 = 2.0
        a.vfmv_v_f(v(3), f(1)); // v3 = 2.0 (accumulator)
        a.vfmacc_vv(v(3), v(1), v(2)); // v3 = 2 + 2*2 = 6
        a.halt();
        let m = run(&a);
        assert_eq!(f32::from_bits(m.vreg_elem(v(3), 0) as u32), 6.0);
    }
}
