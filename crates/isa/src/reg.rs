//! Architectural register newtypes.
//!
//! The simulator manipulates three architectural register files: 32 scalar
//! integer registers (`x0`–`x31`, with `x0` hard-wired to zero), 32 scalar
//! floating-point registers (`f0`–`f31`), and 32 vector registers
//! (`v0`–`v31`, with `v0` doubling as the mask register per RVV 1.0).
//! Newtypes keep the three spaces statically distinct (C-NEWTYPE).

use std::fmt;

/// Number of architectural registers in each register file.
pub const NUM_REGS: usize = 32;

macro_rules! define_reg {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(u8);

        impl $name {
            /// Creates a register from its architectural index.
            ///
            /// # Panics
            ///
            /// Panics if `index >= 32`.
            pub const fn new(index: u8) -> Self {
                assert!(index < NUM_REGS as u8, "register index out of range");
                Self(index)
            }

            /// Returns the architectural index (0–31).
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Iterates over all 32 architectural registers.
            pub fn all() -> impl Iterator<Item = Self> {
                (0..NUM_REGS as u8).map(Self)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(r: $name) -> usize {
                r.index()
            }
        }
    };
}

define_reg!(
    /// A scalar integer register `x0`–`x31`. `x0` reads as zero and ignores
    /// writes.
    XReg,
    "x"
);
define_reg!(
    /// A scalar floating-point register `f0`–`f31`.
    FReg,
    "f"
);
define_reg!(
    /// A vector register `v0`–`v31`. `v0` holds the mask for masked
    /// operations (RVV 1.0).
    VReg,
    "v"
);

impl XReg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: XReg = XReg(0);
    /// Conventional return-address register `x1`.
    pub const RA: XReg = XReg(1);
    /// Conventional stack-pointer register `x2`.
    pub const SP: XReg = XReg(2);
}

impl VReg {
    /// The mask register `v0`.
    pub const MASK: VReg = VReg(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for i in 0..32u8 {
            assert_eq!(XReg::new(i).index(), i as usize);
            assert_eq!(FReg::new(i).index(), i as usize);
            assert_eq!(VReg::new(i).index(), i as usize);
        }
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn out_of_range_panics() {
        let _ = XReg::new(32);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(XReg::new(5).to_string(), "x5");
        assert_eq!(FReg::new(31).to_string(), "f31");
        assert_eq!(VReg::MASK.to_string(), "v0");
    }

    #[test]
    fn all_yields_32_distinct() {
        let v: Vec<XReg> = XReg::all().collect();
        assert_eq!(v.len(), 32);
        assert_eq!(v[0], XReg::ZERO);
    }
}
