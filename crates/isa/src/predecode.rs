//! Per-program predecoded timing metadata.
//!
//! The timing cores repeatedly ask the same questions about the same
//! instruction slot: which FU does it occupy, which scalar registers does
//! it read and write, is it a vector instruction. Answering those with
//! per-issue `match`es over [`Instr`] (and a heap-allocated source list)
//! on every cycle an instruction sits stalled is pure overhead, so each
//! [`Program`](crate::asm::Program) is predecoded once into a dense
//! per-PC table of [`InstrMeta`] that the cores index directly.

use crate::instr::{AvlSrc, Instr, VMemMode};
use crate::meta::{scalar_meta, ScalarMeta};
use crate::reg::{FReg, XReg};

/// A predecoded source operand: the register file and index a timing model
/// consults for RAW scheduling. Reads of `x0` are dropped at predecode
/// time (the zero register is always ready).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SrcReg {
    /// Integer register.
    X(u8),
    /// Floating-point register.
    F(u8),
}

/// A predecoded scalar destination register.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DestReg {
    /// Integer register.
    X(u8),
    /// Floating-point register.
    F(u8),
    /// No scalar destination.
    #[default]
    None,
}

/// Predecoded metadata of one instruction slot.
#[derive(Clone, Copy, Debug)]
pub struct InstrMeta {
    /// FU class and latency, as [`scalar_meta`] reports.
    pub meta: ScalarMeta,
    /// Scalar destination in the *renaming* view: includes scalar writes
    /// performed by vector instructions (`vsetvl`, `vpopc`, ...), which
    /// the big core's rename map must track.
    pub dest: DestReg,
    /// Scalar destination in the in-order *scoreboard* view: scalar
    /// writes by vector instructions are excluded, matching the little
    /// core's model (its scoreboard prices scalar FUs only).
    pub scoreboard_dest: DestReg,
    srcs: [SrcReg; 3],
    n_srcs: u8,
    /// Cached [`Instr::is_vector`].
    pub is_vector: bool,
    /// Cached [`Instr::is_control`].
    pub is_control: bool,
}

impl InstrMeta {
    /// Predecodes one instruction.
    pub fn of(instr: &Instr) -> Self {
        let mut srcs = [SrcReg::X(0); 3];
        let mut n = 0usize;
        collect_srcs(instr, &mut |s| {
            if !matches!(s, SrcReg::X(0)) {
                srcs[n] = s;
                n += 1;
            }
        });
        let (dest, scoreboard_dest) = dests(instr);
        InstrMeta {
            meta: scalar_meta(instr),
            dest,
            scoreboard_dest,
            srcs,
            n_srcs: n as u8,
            is_vector: instr.is_vector(),
            is_control: instr.is_control(),
        }
    }

    /// The scalar source registers this instruction reads (`x0` elided).
    pub fn srcs(&self) -> &[SrcReg] {
        &self.srcs[..self.n_srcs as usize]
    }
}

/// A predecoded program: one [`InstrMeta`] per instruction index.
#[derive(Debug)]
pub struct PreDecoded {
    metas: Vec<InstrMeta>,
}

impl PreDecoded {
    /// Predecodes every instruction of `prog`.
    pub fn of(prog: &crate::asm::Program) -> Self {
        PreDecoded {
            metas: prog.iter().map(InstrMeta::of).collect(),
        }
    }

    /// The metadata of the instruction at index `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range (the cores only look up PCs the
    /// golden machine has already executed).
    pub fn at(&self, pc: u32) -> &InstrMeta {
        &self.metas[pc as usize]
    }

    /// Number of predecoded slots.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }
}

/// Enumerates the scalar registers `instr` reads, in operand order.
fn collect_srcs(instr: &Instr, push: &mut impl FnMut(SrcReg)) {
    use Instr::*;
    let x = |r: XReg| SrcReg::X(r.index() as u8);
    let f = |r: FReg| SrcReg::F(r.index() as u8);
    match *instr {
        Op { rs1, rs2, .. } | Store { rs2, rs1, .. } | Branch { rs1, rs2, .. } => {
            push(x(rs1));
            push(x(rs2));
        }
        OpImm { rs1, .. }
        | Load { rs1, .. }
        | FpLoad { rs1, .. }
        | Jalr { rs1, .. }
        | FpCvtFromInt { rs1, .. }
        | FpMvFromInt { rs1, .. } => push(x(rs1)),
        FpStore { rs1, rs2, .. } => {
            push(x(rs1));
            push(f(rs2));
        }
        FpOp { rs1, rs2, .. } | FpCmp { rs1, rs2, .. } => {
            push(f(rs1));
            push(f(rs2));
        }
        FpFma { rs1, rs2, rs3, .. } => {
            push(f(rs1));
            push(f(rs2));
            push(f(rs3));
        }
        FpCvtToInt { rs1, .. } | FpMvToInt { rs1, .. } => push(f(rs1)),
        // Vector instructions: scalar sources carried into the engine.
        VSetVl {
            avl: AvlSrc::Reg(r),
            ..
        } => push(x(r)),
        VLoad { base, mode, .. } | VStore { base, mode, .. } => {
            push(x(base));
            if let VMemMode::Strided(s) = mode {
                push(x(s));
            }
        }
        VArith { src1, .. } | VCmp { src1, .. } => {
            if let Some(r) = src1.xreg() {
                push(x(r));
            }
            if let Some(r) = src1.freg() {
                push(f(r));
            }
        }
        VSlideUp { amt, .. } | VSlideDown { amt, .. } => push(x(amt)),
        VMvVX { rs1, .. } | VMvSX { rs1, .. } => push(x(rs1)),
        VFMvVF { fs1, .. } => push(f(fs1)),
        _ => {}
    }
}

/// The (rename-view, scoreboard-view) scalar destinations of `instr`.
fn dests(instr: &Instr) -> (DestReg, DestReg) {
    use Instr::*;
    let scoreboard = match *instr {
        Op { rd, .. }
        | OpImm { rd, .. }
        | Lui { rd, .. }
        | Load { rd, .. }
        | Jal { rd, .. }
        | Jalr { rd, .. }
        | FpCmp { rd, .. }
        | FpCvtToInt { rd, .. }
        | FpMvToInt { rd, .. } => DestReg::X(rd.index() as u8),
        FpOp { rd, .. }
        | FpFma { rd, .. }
        | FpLoad { rd, .. }
        | FpCvtFromInt { rd, .. }
        | FpMvFromInt { rd, .. } => DestReg::F(rd.index() as u8),
        _ => DestReg::None,
    };
    let rename = match *instr {
        // Vector instructions writing scalars.
        VSetVl { rd, .. } | VPopc { rd, .. } | VFirst { rd, .. } | VMvXS { rd, .. } => {
            DestReg::X(rd.index() as u8)
        }
        VFMvFS { rd, .. } => DestReg::F(rd.index() as u8),
        _ => scoreboard,
    };
    (rename, scoreboard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::meta::FuClass;
    use crate::reg::{FReg, VReg, XReg};
    use crate::vcfg::Sew;

    #[test]
    fn fma_reads_three_fp_sources() {
        let i = Instr::FpFma {
            prec: crate::instr::FpPrec::S,
            rd: FReg::new(1),
            rs1: FReg::new(2),
            rs2: FReg::new(3),
            rs3: FReg::new(4),
        };
        let m = InstrMeta::of(&i);
        assert_eq!(m.srcs(), &[SrcReg::F(2), SrcReg::F(3), SrcReg::F(4)]);
        assert_eq!(m.dest, DestReg::F(1));
        assert_eq!(m.scoreboard_dest, DestReg::F(1));
        assert_eq!(m.meta.fu, FuClass::Fpu);
    }

    #[test]
    fn x0_sources_are_elided() {
        let i = Instr::Op {
            op: crate::instr::AluOp::Add,
            rd: XReg::new(5),
            rs1: XReg::new(0),
            rs2: XReg::new(7),
        };
        let m = InstrMeta::of(&i);
        assert_eq!(m.srcs(), &[SrcReg::X(7)]);
    }

    #[test]
    fn vsetvl_dest_differs_between_views() {
        // The big core renames vsetvl's rd; the little core's scoreboard
        // does not track it. Both views must be preserved exactly.
        let i = Instr::VSetVl {
            rd: XReg::new(3),
            avl: AvlSrc::Reg(XReg::new(4)),
            sew: Sew::E32,
        };
        let m = InstrMeta::of(&i);
        assert_eq!(m.dest, DestReg::X(3));
        assert_eq!(m.scoreboard_dest, DestReg::None);
        assert_eq!(m.srcs(), &[SrcReg::X(4)]);
        assert!(!m.is_vector, "vsetvl executes in the scalar core");
    }

    #[test]
    fn strided_vload_reads_base_and_stride() {
        let i = Instr::VLoad {
            vd: VReg::new(1),
            base: XReg::new(10),
            mode: VMemMode::Strided(XReg::new(11)),
            masked: false,
        };
        let m = InstrMeta::of(&i);
        assert_eq!(m.srcs(), &[SrcReg::X(10), SrcReg::X(11)]);
        assert!(m.is_vector);
    }

    #[test]
    fn table_is_per_pc_and_cached() {
        let mut a = Assembler::new();
        a.li(XReg::new(1), 7);
        a.add(XReg::new(2), XReg::new(1), XReg::new(1));
        a.halt();
        let prog = a.assemble().unwrap();
        let pre = prog.predecoded();
        assert_eq!(pre.len(), prog.len());
        let add_pc = prog.len() as u32 - 2; // the add before halt
        assert_eq!(pre.at(add_pc).srcs(), &[SrcReg::X(1), SrcReg::X(1)]);
        // Second call returns the same shared table.
        assert!(std::sync::Arc::ptr_eq(&pre, &prog.predecoded()));
    }
}
