//! Vector-configuration state (RVV 1.0 `vtype`/`vl` subset).
//!
//! Next-generation vector ISAs are *vector-length agnostic*: software asks
//! for an application vector length with `vsetvl` and the hardware grants
//! `min(requested, VLMAX)` where `VLMAX = VLEN / SEW` for the machine's
//! hardware vector length `VLEN`. The same binary therefore runs on the
//! 128-bit integrated unit, the 512-bit VLITTLE engine and the 2048-bit
//! decoupled engine — exactly the property the paper leans on.

use std::fmt;

/// Selected element width (the RVV `vsew` field).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Sew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements (the width used by all of the paper's workloads).
    #[default]
    E32,
    /// 64-bit elements.
    E64,
}

impl Sew {
    /// Element width in bits.
    pub const fn bits(self) -> u32 {
        match self {
            Sew::E8 => 8,
            Sew::E16 => 16,
            Sew::E32 => 32,
            Sew::E64 => 64,
        }
    }

    /// Element width in bytes.
    pub const fn bytes(self) -> u64 {
        (self.bits() / 8) as u64
    }

    /// A bit mask covering one element (`u64::MAX` for [`Sew::E64`]).
    pub const fn mask(self) -> u64 {
        match self {
            Sew::E64 => u64::MAX,
            _ => (1u64 << self.bits()) - 1,
        }
    }

    /// Sign-extends an element-sized value to 64 bits.
    pub const fn sign_extend(self, v: u64) -> u64 {
        match self {
            Sew::E8 => v as u8 as i8 as i64 as u64,
            Sew::E16 => v as u16 as i16 as i64 as u64,
            Sew::E32 => v as u32 as i32 as i64 as u64,
            Sew::E64 => v,
        }
    }

    /// All supported element widths, narrowest first.
    pub const ALL: [Sew; 4] = [Sew::E8, Sew::E16, Sew::E32, Sew::E64];
}

impl fmt::Display for Sew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.bits())
    }
}

/// The dynamic vector-configuration state of a hart: granted `vl` and the
/// active element width.
///
/// Constructed by executing a `vsetvl`; queried by every subsequent vector
/// instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct VectorConfig {
    /// Granted vector length in elements.
    pub vl: u32,
    /// Active element width.
    pub sew: Sew,
}

impl VectorConfig {
    /// Computes the configuration granted by `vsetvl avl, sew` on a machine
    /// with hardware vector length `vlen_bits`.
    ///
    /// Returns `vl = min(avl, VLMAX)` with `VLMAX = vlen_bits / sew`.
    pub fn grant(avl: u64, sew: Sew, vlen_bits: u32) -> Self {
        let vlmax = (vlen_bits / sew.bits()) as u64;
        VectorConfig {
            vl: avl.min(vlmax) as u32,
            sew,
        }
    }

    /// `VLMAX` for a machine with the given hardware vector length at this
    /// configuration's element width.
    pub fn vlmax(vlen_bits: u32, sew: Sew) -> u32 {
        vlen_bits / sew.bits()
    }
}

impl fmt::Display for VectorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vl={} {}", self.vl, self.sew)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlmax_matches_paper_configs() {
        // 128-bit integrated unit: 4 x 32-bit elements.
        assert_eq!(VectorConfig::vlmax(128, Sew::E32), 4);
        // 512-bit VLITTLE engine: 16 x 32-bit elements.
        assert_eq!(VectorConfig::vlmax(512, Sew::E32), 16);
        // 2048-bit decoupled engine: 64 x 32-bit elements.
        assert_eq!(VectorConfig::vlmax(2048, Sew::E32), 64);
    }

    #[test]
    fn grant_clamps_to_vlmax() {
        let cfg = VectorConfig::grant(1000, Sew::E32, 512);
        assert_eq!(cfg.vl, 16);
        let cfg = VectorConfig::grant(3, Sew::E32, 512);
        assert_eq!(cfg.vl, 3);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(Sew::E8.sign_extend(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(Sew::E32.sign_extend(0x7FFF_FFFF), 0x7FFF_FFFF);
        assert_eq!(Sew::E32.sign_extend(0x8000_0000), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn masks() {
        assert_eq!(Sew::E8.mask(), 0xFF);
        assert_eq!(Sew::E32.mask(), 0xFFFF_FFFF);
        assert_eq!(Sew::E64.mask(), u64::MAX);
    }
}
