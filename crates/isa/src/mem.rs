//! Byte-addressable memory abstraction used by the golden executor.
//!
//! The functional executor is generic over [`Memory`] so it can run against
//! the cycle-level simulated DRAM in `bvl-mem` as well as the plain
//! [`VecMemory`] used by unit tests and workload characterization.

/// A little-endian byte-addressable memory.
///
/// Reads of unwritten locations return zero bytes; implementations decide
/// how to back the address space (flat vector, sparse pages, ...).
pub trait Memory {
    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the range is outside the backed address
    /// space.
    fn read(&self, addr: u64, buf: &mut [u8]);

    /// Writes `buf` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the range is outside the backed address
    /// space.
    fn write(&mut self, addr: u64, buf: &[u8]);

    /// Reads an unsigned little-endian value of `size` bytes (1, 2, 4 or 8).
    fn read_uint(&self, addr: u64, size: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..size as usize]);
        u64::from_le_bytes(buf)
    }

    /// Writes the low `size` bytes of `value` little-endian.
    fn write_uint(&mut self, addr: u64, size: u64, value: u64) {
        let bytes = value.to_le_bytes();
        self.write(addr, &bytes[..size as usize]);
    }

    /// Reads an `f32` stored at `addr`.
    fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_uint(addr, 4) as u32)
    }

    /// Writes an `f32` at `addr`.
    fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_uint(addr, 4, v.to_bits() as u64);
    }

    /// Reads an `f64` stored at `addr`.
    fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_uint(addr, 8))
    }

    /// Writes an `f64` at `addr`.
    fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_uint(addr, 8, v.to_bits());
    }
}

/// A flat, eagerly-allocated memory for tests and functional runs.
#[derive(Clone, Debug, Default)]
pub struct VecMemory {
    bytes: Vec<u8>,
}

impl VecMemory {
    /// Creates a zero-initialized memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        VecMemory {
            bytes: vec![0; size],
        }
    }

    /// Total backed size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory backs zero bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Grows the backed space to at least `size` bytes.
    pub fn grow_to(&mut self, size: usize) {
        if size > self.bytes.len() {
            self.bytes.resize(size, 0);
        }
    }
}

impl Memory for VecMemory {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
    }

    fn write(&mut self, addr: u64, buf: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + buf.len()].copy_from_slice(buf);
    }
}

/// Blanket impl so `&mut M` can be used wherever `M: Memory` is expected
/// (mirrors `std::io::Read` for `&mut R`).
impl<M: Memory + ?Sized> Memory for &mut M {
    fn read(&self, addr: u64, buf: &mut [u8]) {
        (**self).read(addr, buf);
    }

    fn write(&mut self, addr: u64, buf: &[u8]) {
        (**self).write(addr, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_round_trip() {
        let mut m = VecMemory::new(64);
        m.write_uint(8, 4, 0xDEAD_BEEF);
        assert_eq!(m.read_uint(8, 4), 0xDEAD_BEEF);
        assert_eq!(m.read_uint(8, 8), 0xDEAD_BEEF); // high bytes still zero
        m.write_uint(16, 8, u64::MAX);
        assert_eq!(m.read_uint(16, 8), u64::MAX);
    }

    #[test]
    fn float_round_trip() {
        let mut m = VecMemory::new(64);
        m.write_f32(0, 3.5);
        assert_eq!(m.read_f32(0), 3.5);
        m.write_f64(8, -1.25e100);
        assert_eq!(m.read_f64(8), -1.25e100);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = VecMemory::new(16);
        m.write_uint(0, 4, 0x0102_0304);
        let mut b = [0u8; 4];
        m.read(0, &mut b);
        assert_eq!(b, [0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn unwritten_reads_zero() {
        let m = VecMemory::new(32);
        assert_eq!(m.read_uint(24, 8), 0);
    }

    #[test]
    fn grow_preserves_contents() {
        let mut m = VecMemory::new(8);
        m.write_uint(0, 8, 42);
        m.grow_to(1024);
        assert_eq!(m.read_uint(0, 8), 42);
        assert_eq!(m.len(), 1024);
    }
}
