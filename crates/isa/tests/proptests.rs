//! Property-based tests for the ISA crate: encode/decode round-trips,
//! executor invariants, and assembler behaviour under random programs.

use bvl_isa::asm::Assembler;
use bvl_isa::encode::{decode, encode};
use bvl_isa::exec::Machine;
use bvl_isa::instr::{
    AluOp, AvlSrc, BranchOp, Instr, MemWidth, VArithOp, VCmpOp, VMaskOp, VMemMode, VRedOp, VSrc,
};
use bvl_isa::mem::{Memory, VecMemory};
use bvl_isa::reg::{FReg, VReg, XReg};
use bvl_isa::vcfg::Sew;
use proptest::prelude::*;

fn xreg() -> impl Strategy<Value = XReg> {
    (0u8..32).prop_map(XReg::new)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn vreg() -> impl Strategy<Value = VReg> {
    (0u8..32).prop_map(VReg::new)
}

fn sew() -> impl Strategy<Value = Sew> {
    prop_oneof![
        Just(Sew::E8),
        Just(Sew::E16),
        Just(Sew::E32),
        Just(Sew::E64)
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn varith_op() -> impl Strategy<Value = VArithOp> {
    prop_oneof![
        Just(VArithOp::Add),
        Just(VArithOp::Sub),
        Just(VArithOp::Mul),
        Just(VArithOp::Div),
        Just(VArithOp::Min),
        Just(VArithOp::Max),
        Just(VArithOp::And),
        Just(VArithOp::Or),
        Just(VArithOp::Xor),
        Just(VArithOp::FAdd),
        Just(VArithOp::FMul),
        Just(VArithOp::FMacc),
    ]
}

fn vsrc() -> impl Strategy<Value = VSrc> {
    prop_oneof![
        vreg().prop_map(VSrc::V),
        xreg().prop_map(VSrc::X),
        freg().prop_map(VSrc::F),
        (-16i64..16).prop_map(VSrc::I),
    ]
}

/// Encodable instructions (immediates constrained to their field widths).
fn encodable_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (alu_op(), xreg(), xreg(), xreg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (xreg(), xreg(), -2048i64..2048).prop_map(|(rd, rs1, imm)| Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        (xreg(), xreg(), -2048i64..2048, any::<bool>()).prop_map(|(rd, rs1, imm, s)| {
            Instr::Load {
                rd,
                rs1,
                imm,
                width: MemWidth::W,
                signed: s,
            }
        }),
        (xreg(), xreg(), -2048i64..2048).prop_map(|(rs2, rs1, imm)| Instr::Store {
            rs2,
            rs1,
            imm,
            width: MemWidth::D
        }),
        (xreg(), xreg(), 0u32..64).prop_map(|(rs1, rs2, target)| Instr::Branch {
            op: BranchOp::Ne,
            rs1,
            rs2,
            target
        }),
        (xreg(), 0u32..64).prop_map(|(rd, target)| Instr::Jal { rd, target }),
        (varith_op(), vreg(), vsrc(), vreg(), any::<bool>()).prop_map(
            |(op, vd, src1, vs2, masked)| Instr::VArith {
                op,
                vd,
                src1,
                vs2,
                masked
            }
        ),
        (vreg(), vreg(), vsrc()).prop_map(|(vd, vs2, src1)| Instr::VCmp {
            op: VCmpOp::Lt,
            vd,
            vs2,
            src1,
            masked: false
        }),
        (vreg(), vreg(), vreg(), any::<bool>()).prop_map(|(vd, vs2, vs1, masked)| Instr::VRed {
            op: VRedOp::Sum,
            vd,
            vs2,
            vs1,
            masked
        }),
        (vreg(), vreg(), vreg()).prop_map(|(vd, vs1, vs2)| Instr::VMask {
            op: VMaskOp::Xor,
            vd,
            vs1,
            vs2
        }),
        (vreg(), xreg(), any::<bool>()).prop_map(|(vd, base, masked)| Instr::VLoad {
            vd,
            base,
            mode: VMemMode::Unit,
            masked
        }),
        (vreg(), xreg(), vreg(), any::<bool>()).prop_map(|(vs3, base, vidx, masked)| {
            Instr::VStore {
                vs3,
                base,
                mode: VMemMode::Indexed(vidx),
                masked,
            }
        }),
        (xreg(), xreg(), sew()).prop_map(|(rd, avl, sew)| Instr::VSetVl {
            rd,
            avl: AvlSrc::Reg(avl),
            sew
        }),
        (xreg(), 0u32..32, sew()).prop_map(|(rd, avl, sew)| Instr::VSetVl {
            rd,
            avl: AvlSrc::Imm(avl),
            sew
        }),
        Just(Instr::VmFence),
        Just(Instr::Halt),
        Just(Instr::Nop),
    ]
}

proptest! {
    /// `decode(encode(i)) == i` for every encodable instruction.
    #[test]
    fn encode_decode_round_trip(instr in encodable_instr(), pc in 0u32..64) {
        let word = encode(&instr, pc).unwrap();
        let back = decode(word, pc).unwrap();
        prop_assert_eq!(instr, back);
    }

    /// The disassembly of any encodable instruction is non-empty
    /// (C-DEBUG-NONEMPTY analogue for `Display`).
    #[test]
    fn disasm_never_empty(instr in encodable_instr()) {
        prop_assert!(!instr.to_string().is_empty());
    }

    /// Memory uint round-trips at every width and alignment.
    #[test]
    fn memory_uint_round_trip(addr in 0u64..1000, v: u64, size in prop_oneof![Just(1u64), Just(2), Just(4), Just(8)]) {
        let mut m = VecMemory::new(2048);
        let masked = if size == 8 { v } else { v & ((1 << (size * 8)) - 1) };
        m.write_uint(addr, size, v);
        prop_assert_eq!(m.read_uint(addr, size), masked);
    }

    /// x0 stays zero no matter what executes.
    #[test]
    fn x0_invariant(vals in proptest::collection::vec(-100i64..100, 1..20)) {
        let mut a = Assembler::new();
        for v in &vals {
            a.li(XReg::ZERO, *v);
            a.addi(XReg::ZERO, XReg::ZERO, *v);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(VecMemory::new(64), 512);
        m.run(&p, 10_000).unwrap();
        prop_assert_eq!(m.xreg(XReg::ZERO), 0);
    }

    /// vsetvl never grants more than VLMAX and never more than requested.
    #[test]
    fn vsetvl_grant_bounds(avl in 0u32..10_000, vlen_pow in 7u32..12) {
        let vlen = 1 << vlen_pow; // 128..2048
        let mut a = Assembler::new();
        a.li(XReg::new(1), i64::from(avl));
        a.vsetvli(XReg::new(2), XReg::new(1), Sew::E32);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(VecMemory::new(64), vlen);
        m.run(&p, 100).unwrap();
        let granted = m.xreg(XReg::new(2)) as u32;
        prop_assert!(granted <= avl);
        prop_assert!(granted <= vlen / 32);
        if avl >= vlen / 32 {
            prop_assert_eq!(granted, vlen / 32);
        } else {
            prop_assert_eq!(granted, avl);
        }
    }

    /// A vectorized add produces the same memory image as the scalar loop,
    /// element for element, for arbitrary inputs and lengths.
    #[test]
    fn vector_add_matches_scalar(
        xs in proptest::collection::vec(any::<i32>(), 1..64),
        ys_seed in any::<u32>(),
    ) {
        let n = xs.len();
        let a_base = 0x1000u64;
        let b_base = a_base + (n as u64) * 4;
        let c_vec_base = b_base + (n as u64) * 4;
        let c_sca_base = c_vec_base + (n as u64) * 4;

        let mut mem = VecMemory::new(1 << 16);
        for (i, &x) in xs.iter().enumerate() {
            let y = ys_seed.wrapping_add((i as u32).wrapping_mul(2_654_435_761)) as i32;
            mem.write_uint(a_base + i as u64 * 4, 4, x as u32 as u64);
            mem.write_uint(b_base + i as u64 * 4, 4, y as u32 as u64);
        }

        // Vector version (strip-mined).
        let (x_n, x_a, x_b, x_c, x_vl) = (
            XReg::new(10),
            XReg::new(11),
            XReg::new(12),
            XReg::new(13),
            XReg::new(14),
        );
        let mut a = Assembler::new();
        a.li(x_n, n as i64);
        a.li(x_a, a_base as i64);
        a.li(x_b, b_base as i64);
        a.li(x_c, c_vec_base as i64);
        a.label("strip");
        a.vsetvli(x_vl, x_n, Sew::E32);
        a.vle(VReg::new(1), x_a);
        a.vle(VReg::new(2), x_b);
        a.vadd_vv(VReg::new(3), VReg::new(1), VReg::new(2));
        a.vse(VReg::new(3), x_c);
        let x_bytes = XReg::new(15);
        a.slli(x_bytes, x_vl, 2);
        a.add(x_a, x_a, x_bytes);
        a.add(x_b, x_b, x_bytes);
        a.add(x_c, x_c, x_bytes);
        a.sub(x_n, x_n, x_vl);
        a.bne(x_n, XReg::ZERO, "strip");
        a.halt();
        let pv = a.assemble().unwrap();
        let mut mv = Machine::new(mem.clone(), 512);
        mv.run(&pv, 1_000_000).unwrap();

        // Scalar version.
        let mut a = Assembler::new();
        let (t0, t1) = (XReg::new(20), XReg::new(21));
        a.li(x_n, n as i64);
        a.li(x_a, a_base as i64);
        a.li(x_b, b_base as i64);
        a.li(x_c, c_sca_base as i64);
        a.label("loop");
        a.lw(t0, x_a, 0);
        a.lw(t1, x_b, 0);
        a.add(t0, t0, t1);
        a.sw(t0, x_c, 0);
        a.addi(x_a, x_a, 4);
        a.addi(x_b, x_b, 4);
        a.addi(x_c, x_c, 4);
        a.addi(x_n, x_n, -1);
        a.bne(x_n, XReg::ZERO, "loop");
        a.halt();
        let ps = a.assemble().unwrap();
        let mut ms = Machine::new(mem, 512);
        ms.run(&ps, 1_000_000).unwrap();

        for i in 0..n as u64 {
            prop_assert_eq!(
                mv.mem().read_uint(c_vec_base + i * 4, 4),
                ms.mem().read_uint(c_sca_base + i * 4, 4),
                "element {}", i
            );
        }
    }

    /// vrgather with the identity index vector is a copy; with a reversal
    /// permutation applied twice it is also a copy.
    #[test]
    fn rgather_permutation_involution(vals in proptest::collection::vec(0u32..1000, 2..16)) {
        let n = vals.len();
        let mut a = Assembler::new();
        a.vsetivli(XReg::new(1), n as u32, Sew::E32);
        // v1 = data
        let mut mem = VecMemory::new(1 << 12);
        for (i, v) in vals.iter().enumerate() {
            mem.write_uint(0x100 + i as u64 * 4, 4, u64::from(*v));
        }
        a.li(XReg::new(2), 0x100);
        a.vle(VReg::new(1), XReg::new(2));
        // v2 = reversal indices: (n-1) - vid
        a.vid(VReg::new(3));
        a.li(XReg::new(3), n as i64 - 1);
        a.vmv_v_x(VReg::new(4), XReg::new(3));
        a.vsub_vv(VReg::new(2), VReg::new(4), VReg::new(3)); // v2 = v4 - v3
        // reverse twice
        a.vrgather(VReg::new(5), VReg::new(1), VReg::new(2));
        a.vrgather(VReg::new(6), VReg::new(5), VReg::new(2));
        a.li(XReg::new(4), 0x200);
        a.vse(VReg::new(6), XReg::new(4));
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(mem, 2048);
        m.run(&p, 10_000).unwrap();
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(m.mem().read_uint(0x200 + i as u64 * 4, 4), u64::from(*v));
        }
    }

    /// Integer sum reduction equals the wrapping scalar sum.
    #[test]
    fn redsum_matches_scalar_sum(vals in proptest::collection::vec(any::<u32>(), 1..16)) {
        let n = vals.len();
        let mut mem = VecMemory::new(1 << 12);
        for (i, v) in vals.iter().enumerate() {
            mem.write_uint(0x100 + i as u64 * 4, 4, u64::from(*v));
        }
        let mut a = Assembler::new();
        a.vsetivli(XReg::new(1), n as u32, Sew::E32);
        a.li(XReg::new(2), 0x100);
        a.vle(VReg::new(1), XReg::new(2));
        a.vmv_s_x(VReg::new(2), XReg::ZERO);
        a.vredsum(VReg::new(3), VReg::new(1), VReg::new(2));
        a.vmv_x_s(XReg::new(3), VReg::new(3));
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(mem, 2048);
        m.run(&p, 1_000).unwrap();
        let expect = vals.iter().fold(0u32, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(m.xreg(XReg::new(3)) as u32, expect);
    }
}
