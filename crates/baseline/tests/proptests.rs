//! Property-based tests for the baseline vector machines: command
//! conservation (every dispatched command eventually drains) and gate
//! correctness under random dependency patterns.

use bvl_baseline::{dve_params, ivu_params, SimpleVecMachine};
use bvl_core::types::{VecCmd, VectorEngine};
use bvl_isa::exec::MemAccess;
use bvl_isa::instr::{Instr, VArithOp, VMemMode, VSrc};
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::{HierConfig, MemHierarchy};
use proptest::prelude::*;

fn load(seq: u64, vd: u8, base: u64, n: u32) -> VecCmd {
    VecCmd {
        seq,
        instr: Instr::VLoad {
            vd: VReg::new(vd),
            base: XReg::new(1),
            mode: VMemMode::Unit,
            masked: false,
        },
        vl: n,
        sew: Sew::E32,
        mem: (0..n)
            .map(|i| MemAccess {
                addr: base + u64::from(i) * 4,
                size: 4,
                is_store: false,
            })
            .collect(),
        needs_scalar_response: false,
    }
}

fn store(seq: u64, vs: u8, base: u64, n: u32) -> VecCmd {
    VecCmd {
        seq,
        instr: Instr::VStore {
            vs3: VReg::new(vs),
            base: XReg::new(1),
            mode: VMemMode::Unit,
            masked: false,
        },
        vl: n,
        sew: Sew::E32,
        mem: (0..n)
            .map(|i| MemAccess {
                addr: base + u64::from(i) * 4,
                size: 4,
                is_store: true,
            })
            .collect(),
        needs_scalar_response: false,
    }
}

fn compute(seq: u64, vd: u8, vs: u8, n: u32) -> VecCmd {
    VecCmd {
        seq,
        instr: Instr::VArith {
            op: VArithOp::FMul,
            vd: VReg::new(vd),
            src1: VSrc::V(VReg::new(vs)),
            vs2: VReg::new(vs),
            masked: false,
        },
        vl: n,
        sew: Sew::E32,
        mem: Vec::new(),
        needs_scalar_response: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random load→compute→store chains over random registers always
    /// drain on both baseline machines (no gate deadlocks, including WAR
    /// reuse of destination registers across strips).
    #[test]
    fn random_strips_always_drain(
        strips in proptest::collection::vec((1u8..8, 0u64..64), 1..12),
        use_dve in any::<bool>(),
    ) {
        let mut cfg = HierConfig::with_little(0);
        cfg.has_dve = true;
        let mut hier = MemHierarchy::new(cfg);
        let params = if use_dve { dve_params() } else { ivu_params() };
        let mut m = SimpleVecMachine::new(params, hier.line_bytes());
        let vl = (params.vlen_bits / 32).min(16);
        let mut seq = 0;
        let mut pending: Vec<VecCmd> = Vec::new();
        for (reg, line) in strips {
            let base = 0x1000 + line * 64;
            seq += 3;
            // Deliberately reuse registers across strips (WAR/WAW).
            pending.push(load(seq, reg, base, vl));
            pending.push(compute(seq + 1, reg, reg, vl));
            pending.push(store(seq + 2, reg, base + 0x8000, vl));
        }
        let mut it = pending.into_iter();
        let mut next = it.next();
        for t in 0..2_000_000u64 {
            hier.tick(t);
            m.tick(t, &mut hier);
            if next.is_some() && m.can_accept() {
                m.dispatch(next.take().expect("checked"));
                next = it.next();
            }
            if next.is_none() && m.idle() {
                prop_assert!(m.mem_drained());
                return Ok(());
            }
        }
        prop_assert!(false, "machine did not drain");
    }
}
