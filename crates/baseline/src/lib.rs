#![warn(missing_docs)]
//! # bvl-baseline — baseline vector machines
//!
//! The two comparison points of the paper's evaluation (Table III):
//!
//! * [`ivu`] — a modest **integrated vector unit** (`1bIV` systems):
//!   128-bit hardware vector length, sharing two of the big core's
//!   execution pipelines and the big core's L1D port. Cheap in area,
//!   modest in performance.
//! * [`dve`] — an aggressive **decoupled vector engine** (`1bDV`, Figure
//!   3): 2048-bit hardware vector length, sixteen 32-bit lanes, deep
//!   command/data buffering and a high-bandwidth L2 port — Tarantula-class
//!   performance at Tarantula-class area cost.
//!
//! Both are expressed as one parameterized decoupled machine model
//! ([`machine::SimpleVecMachine`]) behind the same
//! [`bvl_core::VectorEngine`] interface as the VLITTLE engine, so the
//! systems differ *only* in the resources the paper says they differ in
//! (vector length, compute throughput, memory path, buffering).

pub mod dve;
pub mod ivu;
pub mod machine;

pub use dve::dve_params;
pub use ivu::ivu_params;
pub use machine::{MemPath, SimpleVecMachine, SimpleVecParams};
