//! A parameterized decoupled vector machine used for both baselines.
//!
//! The machine holds a single in-order command queue; memory commands are
//! forwarded to a decoupled memory pipeline as soon as they arrive
//! (bounded by the machine's buffering), while compute commands execute in
//! order against a vector-register scoreboard. Throughput is set by the
//! number of parallel 32-bit operations per cycle; long-latency operations
//! are pipelined at the same rate with their latency added on top.

use bvl_core::types::{Quiescence, VecCmd, VectorEngine};
use bvl_isa::instr::{Instr, VMemMode};
use bvl_isa::meta::{vector_op_latency, LAT_ALU};
use bvl_mem::{AccessKind, IdMap, MemHierarchy, MemReq, PortId};
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Which memory path the machine uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemPath {
    /// Through the big core's L1D (the integrated unit shares the port).
    SharedL1,
    /// Directly into the shared L2 over a wide port (the decoupled
    /// engine's high-bandwidth connection).
    DirectL2,
}

/// Machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimpleVecParams {
    /// Hardware vector length in bits.
    pub vlen_bits: u32,
    /// Parallel 32-bit simple integer operations per cycle.
    pub simple_throughput: u32,
    /// Parallel 32-bit long-latency (FP/mul/div) operations per cycle.
    pub complex_throughput: u32,
    /// Command-queue depth (decoupling depth).
    pub cmdq_depth: usize,
    /// Memory path.
    pub mem_path: MemPath,
    /// Line requests issued per cycle.
    pub line_reqs_per_cycle: u32,
    /// Maximum line requests in flight (data buffering).
    pub max_inflight_lines: usize,
    /// Scalar-response latency (result bus back to the big core).
    pub resp_latency: u64,
}

/// Machine statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimpleVecStats {
    /// Vector instructions processed.
    pub cmds: u64,
    /// Compute micro-passes executed.
    pub compute_passes: u64,
    /// Line requests issued.
    pub line_reqs: u64,
}

impl SimpleVecStats {
    /// Registers every counter under `scope` (conventionally
    /// `sys.engine`).
    pub fn register(&self, scope: &mut bvl_obs::Scope<'_>) {
        scope.set("cmds", self.cmds);
        scope.set("compute_passes", self.compute_passes);
        scope.set("line_reqs", self.line_reqs);
    }
}

#[derive(Clone, Debug)]
struct MemTx {
    /// Remaining line addresses to issue.
    to_issue: VecDeque<u64>,
    /// Responses still outstanding.
    outstanding: usize,
    is_store: bool,
    /// Registers whose readiness gates issue (store data / gather index),
    /// snapshotted with the register's write *epoch* at command arrival —
    /// a younger write to the same register (WAR) must not re-gate an
    /// older command.
    gates: Vec<(u8, u64)>,
    /// Destination register made ready when the last line arrives.
    dest_reg: Option<u8>,
}

snap_struct!(SimpleVecStats {
    cmds,
    compute_passes,
    line_reqs,
});

snap_struct!(MemTx {
    to_issue,
    outstanding,
    is_store,
    gates,
    dest_reg,
});

/// The parameterized baseline vector machine.
#[derive(Debug)]
pub struct SimpleVecMachine {
    params: SimpleVecParams,
    line_bytes: u64,
    cmdq: VecDeque<VecCmd>,
    /// In-order compute pipeline occupancy.
    compute_busy_until: u64,
    /// Vector-register ready times (current epoch).
    vreg_ready: [u64; 32],
    /// Write epoch per vector register (bumped on each new producer).
    vreg_epoch: [u64; 32],
    /// Memory transactions in program order.
    mem_q: VecDeque<u64>, // mem tx ids, issue order
    mem_txs: IdMap<MemTx>,
    next_tx: u64,
    inflight_lines: usize,
    req_to_tx: IdMap<u64>,
    next_req_id: u64,
    /// Un-issued store line addresses (load ordering check).
    pending_store_lines: Vec<u64>,
    scalar_done: VecDeque<(u64, u64)>, // (ready_at, seq)
    stats: SimpleVecStats,
    now: u64,
}

impl SimpleVecMachine {
    /// Creates a machine over caches with `line_bytes` lines.
    pub fn new(params: SimpleVecParams, line_bytes: u64) -> Self {
        SimpleVecMachine {
            params,
            line_bytes,
            cmdq: VecDeque::new(),
            compute_busy_until: 0,
            vreg_ready: [0; 32],
            vreg_epoch: [0; 32],
            mem_q: VecDeque::new(),
            mem_txs: IdMap::starting_at(1),
            next_tx: 0,
            inflight_lines: 0,
            req_to_tx: IdMap::starting_at(1),
            next_req_id: 0,
            pending_store_lines: Vec::new(),
            scalar_done: VecDeque::new(),
            stats: SimpleVecStats::default(),
            now: 0,
        }
    }

    /// The configuration.
    pub fn params(&self) -> &SimpleVecParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimpleVecStats {
        &self.stats
    }

    /// Certifies that no in-flight engine activity can still affect
    /// architectural state: the command queue, memory transactions,
    /// scalar-done handoffs and compute pipeline are all drained.
    ///
    /// The engine is timing-only (architectural state lives in the issuing
    /// core's golden machine), so this is the precondition under which a
    /// final-state snapshot of that machine is well defined — the oracle
    /// contract checked by the differential-test harness.
    pub fn arch_drained(&self) -> bool {
        VectorEngine::idle(self)
    }

    /// The hierarchy port this machine's requests and responses use
    /// (skip logic gates on `response_pending` for it).
    pub fn port(&self) -> PortId {
        match self.params.mem_path {
            MemPath::SharedL1 => PortId::Ivu,
            MemPath::DirectL2 => PortId::DveL2,
        }
    }

    /// Registers a memory command's lines and gating.
    fn start_mem(&mut self, cmd: &VecCmd) {
        let mut lines: Vec<u64> = Vec::new();
        for a in &cmd.mem {
            let l = a.addr & !(self.line_bytes - 1);
            if lines.last() != Some(&l) {
                lines.push(l);
            }
        }
        if lines.is_empty() {
            // Fully masked-off (or vl=0) access: no memory traffic at
            // all. Retire immediately — a transaction with no lines to
            // issue would otherwise wait forever for a response that
            // never comes. The destination register keeps its old value
            // (and readiness): a masked load writes no elements.
            return;
        }
        let snap = |r: u8, epochs: &[u64; 32]| (r, epochs[r as usize]);
        let (is_store, gates, dest_reg) = match cmd.instr {
            Instr::VLoad { vd, mode, .. } => {
                let gates = match mode {
                    VMemMode::Indexed(v) => {
                        vec![snap(v.index() as u8, &self.vreg_epoch)]
                    }
                    _ => Vec::new(),
                };
                (false, gates, Some(vd.index() as u8))
            }
            Instr::VStore { vs3, mode, .. } => {
                let mut gates = vec![snap(vs3.index() as u8, &self.vreg_epoch)];
                if let VMemMode::Indexed(v) = mode {
                    gates.push(snap(v.index() as u8, &self.vreg_epoch));
                }
                (true, gates, None)
            }
            _ => unreachable!("not a memory instruction"),
        };
        if is_store {
            self.pending_store_lines.extend(&lines);
        }
        self.next_tx += 1;
        self.mem_txs.insert(
            self.next_tx,
            MemTx {
                to_issue: lines.into(),
                outstanding: 0,
                is_store,
                gates,
                dest_reg,
            },
        );
        self.mem_q.push_back(self.next_tx);
        if let Some(d) = dest_reg {
            // Destination becomes ready when the load completes; mark it
            // far-future until then and open a new write epoch.
            self.vreg_ready[d as usize] = u64::MAX;
            self.vreg_epoch[d as usize] += 1;
        }
    }

    fn mem_tick(&mut self, now: u64, hier: &mut MemHierarchy) {
        // Collect responses.
        while let Some(resp) = hier.pop_response(self.port()) {
            let Some(tx_id) = self.req_to_tx.remove(resp.id) else {
                continue;
            };
            self.inflight_lines = self.inflight_lines.saturating_sub(1);
            let done = {
                let tx = self.mem_txs.get_mut(tx_id).expect("live tx");
                tx.outstanding -= 1;
                tx.outstanding == 0 && tx.to_issue.is_empty()
            };
            if done {
                let tx = self.mem_txs.remove(tx_id).expect("live tx");
                if let Some(d) = tx.dest_reg {
                    self.vreg_ready[d as usize] = now + 1;
                }
            }
        }

        // Issue line requests: walk transactions in order; loads may run
        // ahead of un-ready stores unless they touch a pending store line.
        let port = self.port();
        let mut budget = self.params.line_reqs_per_cycle;
        for qi in 0..self.mem_q.len() {
            let tx_id = self.mem_q[qi];
            if budget == 0 || self.inflight_lines >= self.params.max_inflight_lines {
                break;
            }
            let Some(tx) = self.mem_txs.get(tx_id) else {
                continue;
            };
            // A gate holds only while its snapshotted epoch is current; a
            // younger overwrite means the needed value was already
            // produced in program order.
            let gated = tx.gates.iter().any(|&(g, ep)| {
                self.vreg_epoch[g as usize] == ep && self.vreg_ready[g as usize] > now
            });
            if gated {
                continue; // loads behind may still bypass
            }
            let is_store = tx.is_store;
            while budget > 0 && self.inflight_lines < self.params.max_inflight_lines {
                let Some(tx) = self.mem_txs.get_mut(tx_id) else {
                    break;
                };
                let Some(&line) = tx.to_issue.front() else {
                    break;
                };
                if !is_store && self.pending_store_lines.contains(&line) {
                    break; // RAW through memory: wait for the store
                }
                self.next_req_id += 1;
                let req = MemReq {
                    id: self.next_req_id,
                    addr: line,
                    size: self.line_bytes,
                    is_store,
                    kind: AccessKind::Data,
                    port,
                };
                if !hier.request(req) {
                    budget = 0;
                    break;
                }
                tx.to_issue.pop_front();
                tx.outstanding += 1;
                self.stats.line_reqs += 1;
                self.req_to_tx.insert(self.next_req_id, tx_id);
                self.inflight_lines += 1;
                budget -= 1;
                if is_store {
                    if let Some(p) = self.pending_store_lines.iter().position(|&l| l == line) {
                        self.pending_store_lines.remove(p);
                    }
                }
            }
        }
        // Drop fully-issued store transactions from the order queue once
        // complete (loads are dropped on completion above).
        self.mem_q.retain(|&id| self.mem_txs.contains(id));
    }

    /// Execution cost of a compute command, in (occupancy, extra latency).
    fn compute_cost(&self, cmd: &VecCmd) -> (u64, u64) {
        let vl = u64::from(cmd.vl.max(1));
        match cmd.instr {
            Instr::VArith { op, .. } => {
                let lat = vector_op_latency(op);
                let tput = if lat > LAT_ALU {
                    self.params.complex_throughput
                } else {
                    self.params.simple_throughput
                };
                (vl.div_ceil(u64::from(tput.max(1))), u64::from(lat))
            }
            Instr::VRed { .. } => {
                // Tree reduction across the lanes plus pipeline latency.
                let lanes = u64::from(self.params.simple_throughput.max(2));
                let tree = (64 - u64::from(cmd.vl.max(2) - 1).leading_zeros()) as u64;
                (vl.div_ceil(lanes) + tree, 4)
            }
            Instr::VRgather { .. } | Instr::VSlideUp { .. } | Instr::VSlideDown { .. } => {
                // Crossbar-style permutation: one pass through the lanes.
                (
                    vl.div_ceil(u64::from(self.params.simple_throughput.max(1))) + 2,
                    2,
                )
            }
            _ => (
                vl.div_ceil(u64::from(self.params.simple_throughput.max(1)))
                    .max(1),
                1,
            ),
        }
    }

    fn compute_srcs(&self, cmd: &VecCmd) -> Vec<u8> {
        use Instr::*;
        match cmd.instr {
            VArith {
                src1, vs2, vd, op, ..
            } => {
                let mut v = vec![vs2.index() as u8];
                if let bvl_isa::instr::VSrc::V(r) = src1 {
                    v.push(r.index() as u8);
                }
                if op == bvl_isa::instr::VArithOp::FMacc {
                    v.push(vd.index() as u8);
                }
                v
            }
            VCmp { vs2, src1, .. } => {
                let mut v = vec![vs2.index() as u8];
                if let bvl_isa::instr::VSrc::V(r) = src1 {
                    v.push(r.index() as u8);
                }
                v
            }
            VRed { vs2, vs1, .. } => vec![vs2.index() as u8, vs1.index() as u8],
            VMask { vs1, vs2, .. } => vec![vs1.index() as u8, vs2.index() as u8],
            VRgather { vs2, vs1, .. } => vec![vs2.index() as u8, vs1.index() as u8],
            VSlideUp { vs2, .. } | VSlideDown { vs2, .. } => vec![vs2.index() as u8],
            VMvVV { vs2, .. } | VMvXS { vs2, .. } | VFMvFS { vs2, .. } => vec![vs2.index() as u8],
            VPopc { vs2, .. } | VFirst { vs2, .. } => vec![vs2.index() as u8],
            _ => Vec::new(),
        }
    }

    /// The machine's self-assessment for the tick-skip engine.
    ///
    /// `Active` means a tick at `now` may change state (or a scalar
    /// response is deliverable, so the big core must keep stepping).
    /// `Idle` means every tick strictly before `until` — absent memory
    /// responses on [`SimpleVecMachine::port`] and new dispatches — is a
    /// pure no-op; the machine accounts nothing per cycle, so `account`
    /// is always `None`.
    pub fn quiescence(&self, now: u64) -> Quiescence {
        let mut until: Option<u64> = None;
        let mut fold = |t: u64| until = Some(until.map_or(t, |u| u.min(t)));

        // A deliverable (or maturing) scalar response: the big core
        // polls, so force naive stepping while one is ready.
        if let Some(&(at, _)) = self.scalar_done.front() {
            if at <= now {
                return Quiescence::Active;
            }
            fold(at);
        }

        // Memory pipeline: would any transaction issue a line this cycle?
        if self.inflight_lines < self.params.max_inflight_lines {
            for &tx_id in &self.mem_q {
                let Some(tx) = self.mem_txs.get(tx_id) else {
                    continue;
                };
                // Mirror `mem_tick`'s gate: only a current-epoch,
                // not-yet-ready register holds the transaction.
                let mut gate_at: Option<u64> = None;
                for &(g, ep) in &tx.gates {
                    if self.vreg_epoch[g as usize] == ep && self.vreg_ready[g as usize] > now {
                        let r = self.vreg_ready[g as usize];
                        gate_at = Some(gate_at.map_or(r, |a: u64| a.max(r)));
                    }
                }
                if let Some(at) = gate_at {
                    // Gated. A load-fed gate (u64::MAX) resolves via a
                    // memory response, which the caller watches.
                    if at != u64::MAX {
                        fold(at);
                    }
                    continue;
                }
                match tx.to_issue.front() {
                    Some(&line) if !tx.is_store && self.pending_store_lines.contains(&line) => {
                        // RAW through memory: unblocks when the blocking
                        // store issues — a state change covered by that
                        // store's own Active/fold above (stores precede
                        // their blocked loads in `mem_q`).
                    }
                    Some(_) => return Quiescence::Active,
                    None => {} // fully issued: waits on responses
                }
            }
        }

        // Front end: would the head command process this cycle?
        if let Some(cmd) = self.cmdq.front() {
            match cmd.instr {
                Instr::VSetVl { .. }
                | Instr::VLoad { .. }
                | Instr::VStore { .. }
                | Instr::VmFence => return Quiescence::Active,
                _ => {
                    let mut at = self.compute_busy_until;
                    let mut load_fed = false;
                    for &s in &self.compute_srcs(cmd) {
                        let r = self.vreg_ready[s as usize];
                        if r == u64::MAX {
                            load_fed = true;
                        } else {
                            at = at.max(r);
                        }
                    }
                    if at <= now && !load_fed {
                        return Quiescence::Active;
                    }
                    if at > now {
                        fold(at);
                    }
                }
            }
        }

        Quiescence::Idle {
            until,
            account: None,
        }
    }

    /// Batch-applies `cycles` skipped quiescent ticks: the machine
    /// accounts nothing per cycle, so only its internal clock (which
    /// gates [`VectorEngine::pop_scalar_done`]) advances.
    pub fn skip_idle(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Appends the machine's mutable state to a checkpoint (`params` and
    /// `line_bytes` are configuration and not written).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.cmdq.save(w);
        self.compute_busy_until.save(w);
        self.vreg_ready.save(w);
        self.vreg_epoch.save(w);
        self.mem_q.save(w);
        self.mem_txs.save(w);
        self.next_tx.save(w);
        self.inflight_lines.save(w);
        self.req_to_tx.save(w);
        self.next_req_id.save(w);
        self.pending_store_lines.save(w);
        self.scalar_done.save(w);
        self.stats.save(w);
        self.now.save(w);
    }

    /// Restores state written by [`SimpleVecMachine::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`SnapError`] on malformed input or a command queue
    /// deeper than this machine's configuration allows.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cmdq: VecDeque<VecCmd> = Snap::load(r)?;
        if cmdq.len() > self.params.cmdq_depth {
            return Err(SnapError::Corrupt {
                what: format!(
                    "checkpoint command queue holds {} entries, machine takes {}",
                    cmdq.len(),
                    self.params.cmdq_depth
                ),
            });
        }
        self.cmdq = cmdq;
        self.compute_busy_until = Snap::load(r)?;
        self.vreg_ready = Snap::load(r)?;
        self.vreg_epoch = Snap::load(r)?;
        self.mem_q = Snap::load(r)?;
        self.mem_txs = Snap::load(r)?;
        self.next_tx = Snap::load(r)?;
        self.inflight_lines = Snap::load(r)?;
        self.req_to_tx = Snap::load(r)?;
        self.next_req_id = Snap::load(r)?;
        self.pending_store_lines = Snap::load(r)?;
        self.scalar_done = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.now = Snap::load(r)?;
        Ok(())
    }

    fn compute_dest(&self, cmd: &VecCmd) -> Option<u8> {
        use Instr::*;
        match cmd.instr {
            VArith { vd, .. }
            | VCmp { vd, .. }
            | VRed { vd, .. }
            | VMask { vd, .. }
            | VRgather { vd, .. }
            | VSlideUp { vd, .. }
            | VSlideDown { vd, .. }
            | VMvVX { vd, .. }
            | VFMvVF { vd, .. }
            | VMvVV { vd, .. }
            | VMvSX { vd, .. }
            | VId { vd, .. } => Some(vd.index() as u8),
            _ => None,
        }
    }
}

impl VectorEngine for SimpleVecMachine {
    fn can_accept(&self) -> bool {
        self.cmdq.len() < self.params.cmdq_depth
    }

    fn dispatch(&mut self, cmd: VecCmd) {
        assert!(self.can_accept(), "vector command queue overflow");
        bvl_obs::trace::emit(self.now, "svec", 0, "cmd", cmd.seq);
        self.stats.cmds += 1;
        self.cmdq.push_back(cmd);
    }

    fn pop_scalar_done(&mut self) -> Option<u64> {
        if self
            .scalar_done
            .front()
            .is_some_and(|&(at, _)| at <= self.now)
        {
            self.scalar_done.pop_front().map(|(_, seq)| seq)
        } else {
            None
        }
    }

    fn mem_drained(&self) -> bool {
        self.mem_txs.is_empty() && !self.cmdq.iter().any(|c| c.instr.is_vector_mem())
    }

    fn idle(&self) -> bool {
        self.cmdq.is_empty()
            && self.mem_txs.is_empty()
            && self.scalar_done.is_empty()
            && self.now >= self.compute_busy_until
    }

    fn tick(&mut self, now: u64, hier: &mut MemHierarchy) {
        self.now = now;
        self.mem_tick(now, hier);

        // Process the head command (in-order front end, 1/cycle).
        let Some(cmd) = self.cmdq.front() else {
            return;
        };
        match cmd.instr {
            Instr::VSetVl { .. } => {
                let seq = cmd.seq;
                self.scalar_done
                    .push_back((now + self.params.resp_latency, seq));
                self.cmdq.pop_front();
            }
            Instr::VLoad { .. } | Instr::VStore { .. } => {
                let cmd = self.cmdq.pop_front().expect("front exists");
                self.start_mem(&cmd);
            }
            Instr::VmFence => {
                self.cmdq.pop_front();
            }
            _ => {
                // Compute: wait for the pipe and for sources.
                if now < self.compute_busy_until {
                    return;
                }
                let srcs = self.compute_srcs(cmd);
                if srcs.iter().any(|&s| self.vreg_ready[s as usize] > now) {
                    return;
                }
                let (occ, lat) = self.compute_cost(cmd);
                let needs_resp = cmd.instr.vector_writes_scalar();
                let seq = cmd.seq;
                let dest = self.compute_dest(cmd);
                self.compute_busy_until = now + occ;
                self.stats.compute_passes += 1;
                if let Some(d) = dest {
                    self.vreg_ready[d as usize] = now + occ + lat;
                    self.vreg_epoch[d as usize] += 1;
                }
                if needs_resp {
                    self.scalar_done
                        .push_back((now + occ + lat + self.params.resp_latency, seq));
                }
                self.cmdq.pop_front();
            }
        }
    }

    fn vlen_bits(&self) -> u32 {
        self.params.vlen_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_isa::exec::MemAccess;
    use bvl_isa::reg::{VReg, XReg};
    use bvl_isa::vcfg::Sew;
    use bvl_mem::HierConfig;

    fn load_cmd(seq: u64, vd: u8, base: u64, n: u32) -> VecCmd {
        VecCmd {
            seq,
            instr: Instr::VLoad {
                vd: VReg::new(vd),
                base: XReg::new(1),
                mode: VMemMode::Unit,
                masked: false,
            },
            vl: n,
            sew: Sew::E32,
            mem: (0..n)
                .map(|i| MemAccess {
                    addr: base + u64::from(i) * 4,
                    size: 4,
                    is_store: false,
                })
                .collect(),
            needs_scalar_response: false,
        }
    }

    fn add_cmd(seq: u64, vd: u8, vs1: u8, vs2: u8, n: u32) -> VecCmd {
        VecCmd {
            seq,
            instr: Instr::VArith {
                op: bvl_isa::instr::VArithOp::Add,
                vd: VReg::new(vd),
                src1: bvl_isa::instr::VSrc::V(VReg::new(vs1)),
                vs2: VReg::new(vs2),
                masked: false,
            },
            vl: n,
            sew: Sew::E32,
            mem: Vec::new(),
            needs_scalar_response: false,
        }
    }

    fn dve_like() -> SimpleVecParams {
        SimpleVecParams {
            vlen_bits: 2048,
            simple_throughput: 16,
            complex_throughput: 16,
            cmdq_depth: 64,
            mem_path: MemPath::DirectL2,
            line_reqs_per_cycle: 4,
            max_inflight_lines: 64,
            resp_latency: 2,
        }
    }

    #[test]
    fn load_then_dependent_add_completes() {
        let mut cfg = HierConfig::with_little(0);
        cfg.has_dve = true;
        let mut hier = MemHierarchy::new(cfg);
        let mut m = SimpleVecMachine::new(dve_like(), hier.line_bytes());
        m.dispatch(load_cmd(1, 1, 0x1000, 64));
        m.dispatch(add_cmd(2, 3, 1, 1, 64));
        for t in 0..100_000 {
            hier.tick(t);
            m.tick(t, &mut hier);
            if m.idle() {
                assert!(m.stats().line_reqs >= 4); // 64 x 4B = 4 lines
                assert_eq!(m.stats().compute_passes, 1);
                return;
            }
        }
        panic!("machine did not drain");
    }

    #[test]
    fn loads_run_ahead_of_unready_stores() {
        let mut cfg = HierConfig::with_little(0);
        cfg.has_dve = true;
        let mut hier = MemHierarchy::new(cfg);
        let mut m = SimpleVecMachine::new(dve_like(), hier.line_bytes());
        // Store of v9 (never written -> ready at 0 actually). Make the
        // store gate on a register that becomes ready late by marking it.
        m.vreg_ready[9] = 50;
        let mut st = load_cmd(1, 0, 0x2000, 16);
        st.instr = Instr::VStore {
            vs3: VReg::new(9),
            base: XReg::new(1),
            mode: VMemMode::Unit,
            masked: false,
        };
        for a in &mut st.mem {
            a.is_store = true;
        }
        m.dispatch(st);
        m.dispatch(load_cmd(2, 1, 0x8000, 16)); // different line
        let mut load_done_at = None;
        for t in 0..100_000 {
            hier.tick(t);
            m.tick(t, &mut hier);
            if load_done_at.is_none() && m.vreg_ready[1] != u64::MAX && m.vreg_ready[1] > 0 {
                load_done_at = Some(t);
            }
            if m.idle() {
                let ld = load_done_at.expect("load completed");
                assert!(ld < 50 + 100, "load waited for the store: {ld}");
                return;
            }
        }
        panic!("did not drain");
    }

    #[test]
    fn scalar_response_for_vsetvl() {
        let mut cfg = HierConfig::with_little(0);
        cfg.has_dve = true;
        let mut hier = MemHierarchy::new(cfg);
        let mut m = SimpleVecMachine::new(dve_like(), hier.line_bytes());
        m.dispatch(VecCmd {
            seq: 42,
            instr: Instr::VSetVl {
                rd: XReg::new(1),
                avl: bvl_isa::instr::AvlSrc::Imm(8),
                sew: Sew::E32,
            },
            vl: 8,
            sew: Sew::E32,
            mem: Vec::new(),
            needs_scalar_response: true,
        });
        let mut got = None;
        for t in 0..100 {
            hier.tick(t);
            m.tick(t, &mut hier);
            if let Some(seq) = m.pop_scalar_done() {
                got = Some((t, seq));
                break;
            }
        }
        let (_, seq) = got.expect("scalar response");
        assert_eq!(seq, 42);
    }

    /// Oracle for the tick-skip contract: whenever `quiescence` reports
    /// `Idle` and no external wake (hierarchy event or pending response)
    /// exists, the naive tick must leave every observable — stats,
    /// scoreboard, queues, pipeline occupancy — untouched.
    #[test]
    fn quiescence_predicts_naive_ticks() {
        fn snapshot(m: &SimpleVecMachine) -> String {
            format!(
                "{:?} {:?} {:?} cq{} mq{} tx{} if{} {:?} cb{} ps{:?} nt{} nr{}",
                m.stats,
                m.vreg_ready,
                m.vreg_epoch,
                m.cmdq.len(),
                m.mem_q.len(),
                m.mem_txs.len(),
                m.inflight_lines,
                m.scalar_done,
                m.compute_busy_until,
                m.pending_store_lines,
                m.next_tx,
                m.next_req_id,
            )
        }

        let mut cfg = HierConfig::with_little(0);
        cfg.has_dve = true;
        let mut hier = MemHierarchy::new(cfg);
        let mut m = SimpleVecMachine::new(dve_like(), hier.line_bytes());
        // Load, dependent compute, dependent store: exercises response
        // waits, scoreboard waits and pipe occupancy.
        m.dispatch(load_cmd(1, 1, 0x1000, 64));
        m.dispatch(add_cmd(2, 3, 1, 1, 64));
        let mut st = load_cmd(3, 0, 0x2000, 64);
        st.instr = Instr::VStore {
            vs3: VReg::new(3),
            base: XReg::new(1),
            mode: VMemMode::Unit,
            masked: false,
        };
        for a in &mut st.mem {
            a.is_store = true;
        }
        m.dispatch(st);

        let mut idle_checked = 0u64;
        for t in 0..100_000 {
            let q = m.quiescence(t);
            let external =
                hier.next_event(t).is_some_and(|e| e <= t) || hier.response_pending(m.port());
            let before = if matches!(q, Quiescence::Idle { .. }) && !external {
                Some(snapshot(&m))
            } else {
                None
            };
            hier.tick(t);
            m.tick(t, &mut hier);
            if let Some(before) = before {
                idle_checked += 1;
                assert_eq!(snapshot(&m), before, "idle tick changed state at t={t}");
            }
            while m.pop_scalar_done().is_some() {}
            if m.idle() {
                assert!(idle_checked > 0, "run never exercised an idle window");
                return;
            }
        }
        panic!("machine did not drain");
    }

    #[test]
    fn wider_machine_finishes_compute_faster() {
        let run = |tput: u32| {
            let mut cfg = HierConfig::with_little(0);
            cfg.has_dve = true;
            let mut hier = MemHierarchy::new(cfg);
            let mut p = dve_like();
            p.simple_throughput = tput;
            let mut m = SimpleVecMachine::new(p, hier.line_bytes());
            for s in 0..16 {
                m.dispatch(add_cmd(s, (s % 8) as u8 + 1, 10, 11, 64));
            }
            for t in 0..100_000 {
                hier.tick(t);
                m.tick(t, &mut hier);
                if m.idle() {
                    return t;
                }
            }
            panic!("did not drain");
        };
        let wide = run(16);
        let narrow = run(4);
        assert!(wide < narrow, "wide {wide} !< narrow {narrow}");
    }
}
