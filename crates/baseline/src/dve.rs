//! The decoupled vector engine (`1bDV`, paper Figure 3).
//!
//! An aggressive Tarantula-class machine: 2048-bit hardware vector length,
//! sixteen 32-bit execution lanes (fully pipelined, including FP), deep
//! command and data buffering for aggressive access/execute decoupling,
//! and a high-bandwidth connection straight into the shared L2 that
//! sustains several cache-line requests per cycle.

use crate::machine::{MemPath, SimpleVecParams};

/// Parameters of the paper's decoupled vector engine.
pub fn dve_params() -> SimpleVecParams {
    SimpleVecParams {
        vlen_bits: 2048,
        simple_throughput: 16,
        complex_throughput: 16,
        cmdq_depth: 64,
        mem_path: MemPath::DirectL2,
        line_reqs_per_cycle: 4,
        max_inflight_lines: 64,
        resp_latency: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivu_params;

    #[test]
    fn dve_matches_figure_3() {
        let p = dve_params();
        assert_eq!(p.vlen_bits, 2048);
        assert_eq!(p.simple_throughput, 16);
        assert_eq!(p.mem_path, MemPath::DirectL2);
    }

    #[test]
    fn dve_dominates_ivu_in_every_resource() {
        let d = dve_params();
        let i = ivu_params();
        assert!(d.vlen_bits > i.vlen_bits);
        assert!(d.simple_throughput > i.simple_throughput);
        assert!(d.complex_throughput > i.complex_throughput);
        assert!(d.cmdq_depth > i.cmdq_depth);
        assert!(d.max_inflight_lines > i.max_inflight_lines);
    }
}
