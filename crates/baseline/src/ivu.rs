//! The integrated vector unit (`1bIV` systems).
//!
//! Paper Table III: a 128-bit unit exemplifying a modest next-generation
//! vector implementation — comparable to an Arm NEON-class SIMD datapath.
//! It reuses two of the big core's execution pipelines (four 32-bit simple
//! operations per cycle, two long-latency per cycle) and shares the big
//! core's L1D port, so its memory bandwidth is an L1 port's.

use crate::machine::{MemPath, SimpleVecParams};

/// Parameters of the paper's integrated vector unit.
pub fn ivu_params() -> SimpleVecParams {
    SimpleVecParams {
        vlen_bits: 128,
        simple_throughput: 4,
        complex_throughput: 2,
        cmdq_depth: 4,
        mem_path: MemPath::SharedL1,
        line_reqs_per_cycle: 1,
        max_inflight_lines: 4,
        resp_latency: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivu_matches_table_iii() {
        let p = ivu_params();
        assert_eq!(p.vlen_bits, 128);
        assert_eq!(p.simple_throughput, 4);
        assert_eq!(p.mem_path, MemPath::SharedL1);
        // Shallow buffering: an integrated unit barely decouples.
        assert!(p.cmdq_depth <= 8);
    }
}
