//! The differential harness: one program, every system, one oracle.
//!
//! [`check_program`] runs a [`DtProgram`] through the functional
//! [`Machine`] executor (the architectural oracle) and through
//! [`bvl_sim::simulate_with_state`] on **every** [`SystemKind`], then
//! compares final memory images, scalar/FP register files and vector
//! registers element-by-element. The contract it enforces is written up
//! in `DESIGN.md` §4.9: because the simulator executes architectural
//! state at dispatch on the same [`Machine`], any divergence is a bug in
//! state extraction, termination detection or instruction sequencing —
//! not a modelling approximation.

use crate::text::DtProgram;
use bvl_isa::asm::Program;
use bvl_isa::exec::{ArchSnapshot, ExecError, Machine};
use bvl_mem::{MemImage, SimMemory};
use bvl_runtime::Task;
use bvl_sim::{simulate_with_state, ExecMode, FinalState, SimParams, SystemKind};
use bvl_workloads::{Phase, Workload, WorkloadClass};
use std::collections::HashMap;
use std::fmt;

/// Simulated memory size for difftest workloads. Generated programs only
/// touch the four 4 KiB buffers, so 1 MiB leaves a wide safety margin.
const MEM_SIZE: usize = 1 << 20;

/// Instruction budget for one oracle section run. Generated programs are
/// a few hundred dynamic instructions; hitting this limit means the
/// generator produced a non-terminating program (an [`DiffResult::Invalid`]
/// outcome, not a divergence).
const ORACLE_STEP_LIMIT: u64 = 2_000_000;

/// Simulated-cycle budget per system run, far above anything a generated
/// program needs but small enough that a livelocked run fails fast.
pub(crate) const MAX_UNCORE_CYCLES: u64 = 20_000_000;

/// Every hardware vector length a core in [`SystemKind::ALL`] can run an
/// entry at: little cores and engine-less big cores (64), the integrated
/// vector unit (128), the VLITTLE engine (512) and the decoupled engine
/// (2048). Used to pre-flight the oracle; an unexpected VLEN still works
/// via the lazy path, it just skips the pre-flight.
const PREFLIGHT_VLENS: [u32; 4] = [64, 128, 512, 2048];

/// One detected divergence between a system and the oracle.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The system that disagreed with the oracle.
    pub system: SystemKind,
    /// The entry label that ran (`"serial"` or `"vector"`).
    pub entry: &'static str,
    /// Hardware vector length (bits) of the core that ran the entry.
    pub vlen_bits: u32,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (entry `{}`, VLEN {}): {}",
            self.system.label(),
            self.entry,
            self.vlen_bits,
            self.detail
        )
    }
}

/// Outcome of differentially testing one program.
#[derive(Clone, Debug)]
pub enum DiffResult {
    /// Every system matched the oracle.
    Pass,
    /// The program could not be tested (assembly error, oracle fault,
    /// missing entry label). A generator bug, not a simulator bug.
    Invalid(String),
    /// A system's final architectural state disagreed with the oracle.
    Diverged(Divergence),
}

impl DiffResult {
    /// True for [`DiffResult::Diverged`].
    pub fn is_divergence(&self) -> bool {
        matches!(self, DiffResult::Diverged(_))
    }
}

/// Runs `dt` through the oracle and every system, returning the first
/// divergence found (systems are visited in [`SystemKind::ALL`] order).
pub fn check_program(dt: &DtProgram) -> DiffResult {
    let program = match dt.assemble() {
        Ok(p) => p,
        Err(e) => return DiffResult::Invalid(format!("assembly failed: {e}")),
    };
    let (serial, vector) = match (program.label("serial"), program.label("vector")) {
        (Some(s), Some(v)) => (s, v),
        _ => return DiffResult::Invalid("missing `serial`/`vector` entry label".to_string()),
    };

    let workload = difftest_workload(&program, serial, vector);
    let params = SimParams {
        max_uncore_cycles: MAX_UNCORE_CYCLES,
        ..SimParams::default()
    };
    // The oracle's final state depends only on (entry, VLEN), so one run
    // serves every system that resolves to the same pair.
    let mut oracle = OracleCache::new(&workload.mem, &program);

    // Pre-flight both entries at every hardware VLEN the seven systems
    // can run them at. This catches non-terminating or PC-escaping
    // programs (shrink candidates routinely produce them) in a few
    // thousand oracle steps, before any system burns its full simulated
    // cycle budget — and it classifies them as Invalid, not Diverged.
    for vlen in PREFLIGHT_VLENS {
        for entry in [serial, vector] {
            oracle.run(entry, vlen);
            if let Some(e) = oracle.error.take() {
                return DiffResult::Invalid(e);
            }
        }
    }
    // The serial entry runs on cores without a vector engine (1L, 1b and
    // the task systems' littles), which cannot execute vector
    // instructions at all. Shrink candidates routinely splice vector code
    // into the serial path (e.g. by deleting its `halt`); classify those
    // as untestable before any system panics on them.
    if let Err(e) = serial_scalar_only(&program, serial) {
        return DiffResult::Invalid(e);
    }

    for kind in SystemKind::ALL {
        let fs = match simulate_with_state(kind, &workload, &params) {
            Ok((_, _, fs)) => fs,
            Err(e) => {
                return DiffResult::Diverged(Divergence {
                    system: kind,
                    entry: "?",
                    vlen_bits: 0,
                    detail: format!("simulation failed: {e}"),
                })
            }
        };
        let entry = match fs.mode {
            ExecMode::Vector => "vector",
            ExecMode::Serial | ExecMode::Tasks => "serial",
        };
        let entry_pc = if entry == "vector" { vector } else { serial };
        if let Err(detail) = compare_against_oracle(&fs, entry_pc, &mut oracle) {
            let vlen_bits = active_snapshot(&fs).map_or(0, |s| s.vlen_bits);
            return DiffResult::Diverged(Divergence {
                system: kind,
                entry,
                vlen_bits,
                detail,
            });
        }
    }
    match oracle.error.take() {
        Some(e) => DiffResult::Invalid(e),
        None => DiffResult::Pass,
    }
}

/// Wraps an assembled difftest program as a [`Workload`].
///
/// The single scalar-only task (`vector_pc: None`) makes the
/// work-stealing systems run the `serial` entry on whichever worker wins
/// the steal; the `DataParallelKernel` class routes every vector-capable
/// single-engine system to the `vector` entry (see `pick_mode`).
///
/// Public so other suites can replay corpus programs through the full
/// simulator (the golden-trace regression test in `bvl-obs` does).
pub fn difftest_workload(program: &Program, serial: u32, vector: u32) -> Workload {
    Workload {
        name: "difftest",
        class: WorkloadClass::DataParallelKernel,
        program: std::sync::Arc::new(program.clone()),
        mem: SimMemory::new(MEM_SIZE),
        serial_entry: serial,
        vector_entry: Some(vector),
        phases: vec![Phase::new(vec![Task {
            scalar_pc: serial,
            vector_pc: None,
            args: vec![],
        }])],
        // The oracle comparison *is* the check; the workload's own
        // checker accepts anything.
        check: Box::new(|_| Ok(())),
    }
}

/// Oracle runs memoized per `(entry, vlen)`.
struct OracleCache<'a> {
    init_mem: &'a SimMemory,
    program: &'a Program,
    runs: HashMap<(u32, u32), (ArchSnapshot, MemImage)>,
    /// First oracle execution error, if any (poisons the whole program
    /// as [`DiffResult::Invalid`]).
    error: Option<String>,
}

impl<'a> OracleCache<'a> {
    fn new(init_mem: &'a SimMemory, program: &'a Program) -> Self {
        OracleCache {
            init_mem,
            program,
            runs: HashMap::new(),
            error: None,
        }
    }

    fn run(&mut self, entry: u32, vlen_bits: u32) -> Option<&(ArchSnapshot, MemImage)> {
        if !self.runs.contains_key(&(entry, vlen_bits)) {
            let mut m = Machine::new(self.init_mem.fork(), vlen_bits);
            m.set_pc(entry);
            match m.run(self.program, ORACLE_STEP_LIMIT) {
                Ok(_) => {
                    let snap = m.snapshot();
                    let mem = MemImage::capture(m.mem());
                    self.runs.insert((entry, vlen_bits), (snap, mem));
                }
                Err(e @ (ExecError::PcOutOfRange(_) | ExecError::StepLimit(_))) => {
                    self.error.get_or_insert_with(|| {
                        format!("oracle fault at entry {entry} (VLEN {vlen_bits}): {e}")
                    });
                    return None;
                }
            }
        }
        self.runs.get(&(entry, vlen_bits))
    }
}

/// Verifies the serial entry never executes a vector instruction
/// (`vsetvli` is scalar — see `Instr::is_vector`), by stepping the
/// functional machine down the actual dynamic path.
fn serial_scalar_only(program: &Program, serial: u32) -> Result<(), String> {
    let mut m = Machine::new(SimMemory::new(MEM_SIZE), 64);
    m.set_pc(serial);
    for _ in 0..ORACLE_STEP_LIMIT {
        if m.halted() {
            return Ok(());
        }
        let info = m
            .step(program)
            .map_err(|e| format!("serial entry fault: {e}"))?;
        if info.instr.is_vector() {
            return Err(format!(
                "serial entry executes a vector instruction at pc {}",
                info.pc
            ));
        }
    }
    Err("serial entry step limit exhausted".to_string())
}

/// The snapshot of the core that actually executed an entry: exactly one
/// core per run reaches `halt` (parked workers never start).
fn active_snapshot(fs: &FinalState) -> Option<&ArchSnapshot> {
    fs.big.iter().chain(fs.littles.iter()).find(|s| s.halted)
}

fn compare_against_oracle(
    fs: &FinalState,
    entry_pc: u32,
    oracle: &mut OracleCache<'_>,
) -> Result<(), String> {
    if !fs.engine_drained {
        return Err("vector engine not drained at end of run".to_string());
    }
    let halted: Vec<&ArchSnapshot> = fs
        .big
        .iter()
        .chain(fs.littles.iter())
        .filter(|s| s.halted)
        .collect();
    let snap = match halted.as_slice() {
        [one] => *one,
        [] => return Err("no core reached halt".to_string()),
        many => return Err(format!("{} cores reached halt, expected 1", many.len())),
    };
    let Some((want_snap, want_mem)) = oracle.run(entry_pc, snap.vlen_bits) else {
        // Oracle fault: reported as Invalid by the caller, not as a
        // divergence of this system.
        return Ok(());
    };
    if snap != want_snap {
        return Err(describe_snapshot_diff(snap, want_snap));
    }
    if &fs.mem != want_mem {
        let at = fs
            .mem
            .first_difference(want_mem)
            .map_or("length".to_string(), |a| format!("{a:#x}"));
        return Err(format!("memory image differs at {at}"));
    }
    Ok(())
}

/// Pinpoints the first differing architectural field for the report.
fn describe_snapshot_diff(got: &ArchSnapshot, want: &ArchSnapshot) -> String {
    if got.pc != want.pc {
        return format!("final pc {} != oracle {}", got.pc, want.pc);
    }
    if (got.vl, got.sew) != (want.vl, want.sew) {
        return format!(
            "vector config vl={} {} != oracle vl={} {}",
            got.vl, got.sew, want.vl, want.sew
        );
    }
    for i in 0..got.xregs.len() {
        if got.xregs[i] != want.xregs[i] {
            return format!("x{i} = {:#x} != oracle {:#x}", got.xregs[i], want.xregs[i]);
        }
    }
    for i in 0..got.fregs.len() {
        if got.fregs[i] != want.fregs[i] {
            return format!("f{i} = {:#x} != oracle {:#x}", got.fregs[i], want.fregs[i]);
        }
    }
    for (r, (gv, wv)) in got.vregs.iter().zip(&want.vregs).enumerate() {
        for (e, (g, w)) in gv.iter().zip(wv).enumerate() {
            if g != w {
                return format!("v{r}[{e}] = {g:#x} != oracle {w:#x}");
            }
        }
    }
    if got.counters != want.counters {
        return format!(
            "exec counters differ: {:?} != oracle {:?}",
            got.counters, want.counters
        );
    }
    "snapshots differ".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn trivial_program_passes_everywhere() {
        let dt = DtProgram::parse(
            "serial:\n  li x5, 3\n  halt\nvector:\n  li x27, 8\n  vsetvli x5, x27, e32\n  halt\n",
        )
        .unwrap();
        let r = check_program(&dt);
        assert!(matches!(r, DiffResult::Pass), "{r:?}");
    }

    #[test]
    fn generated_programs_pass() {
        for seed in 0..3 {
            let dt = generate(seed);
            let r = check_program(&dt);
            assert!(
                matches!(r, DiffResult::Pass),
                "seed {seed}: {r:?}\n{}",
                dt.render()
            );
        }
    }

    #[test]
    fn missing_entry_is_invalid() {
        let dt = DtProgram::parse("serial:\n  halt\n").unwrap();
        assert!(matches!(check_program(&dt), DiffResult::Invalid(_)));
    }

    #[test]
    fn serial_fallthrough_into_vector_code_is_invalid() {
        // Shrinking can delete `serial`'s halt so it falls through into
        // the vector section. Engine-less systems would panic on the
        // first vector instruction — the scalar-only guard must reject
        // the program before any simulation runs.
        let dt = DtProgram::parse(
            "serial:\n  li x5, 1\nvector:\n  li x27, 8\n  vsetvli x5, x27, e32\n  vid.v v3\n  halt\n",
        )
        .unwrap();
        let r = check_program(&dt);
        assert!(matches!(r, DiffResult::Invalid(_)), "{r:?}");
    }

    #[test]
    fn non_terminating_section_is_invalid() {
        // `serial` falls through into `vector`, which loops forever.
        let dt = DtProgram::parse("serial:\n  halt\nvector:\nspin:\n  j spin\n").unwrap();
        let r = check_program(&dt);
        assert!(matches!(r, DiffResult::Invalid(_)), "{r:?}");
    }
}
