//! The restricted assembly format differential-test programs live in.
//!
//! A [`DtProgram`] is a flat list of [`DtOp`] lines covering exactly the
//! vocabulary the random generator emits: a scalar RV64 subset, forward
//! branches and label-bounded loops, and the RVV 1.0 subset the timing
//! models implement (unit/strided/indexed memory, masked ops, `vsetvli`,
//! arithmetic, reductions, permutations).
//!
//! The format round-trips: [`DtProgram::render`] produces RVV-style
//! assembly text, [`DtProgram::parse`] reads the same grammar back, and
//! [`DtProgram::assemble`] lowers to a [`Program`] via the workspace
//! assembler. Regression-corpus files under `corpus/*.s` are stored in
//! this format, so a shrunken divergence can be committed verbatim and
//! replayed as an ordinary test.

use bvl_isa::asm::{AsmError, Assembler, Program};
use bvl_isa::instr::{AluOp, BranchOp, FpOp, FpPrec};
use bvl_isa::reg::{FReg, VReg, XReg};
use bvl_isa::vcfg::Sew;
use std::fmt;

/// Scalar register-register ALU mnemonics and their ops.
const ALU_RR: &[(&str, AluOp)] = &[
    ("add", AluOp::Add),
    ("sub", AluOp::Sub),
    ("mul", AluOp::Mul),
    ("div", AluOp::Div),
    ("divu", AluOp::Divu),
    ("rem", AluOp::Rem),
    ("remu", AluOp::Remu),
    ("and", AluOp::And),
    ("or", AluOp::Or),
    ("xor", AluOp::Xor),
    ("slt", AluOp::Slt),
    ("sltu", AluOp::Sltu),
];

/// Scalar register-immediate ALU mnemonics and their ops.
const ALU_RI: &[(&str, AluOp)] = &[
    ("addi", AluOp::Add),
    ("andi", AluOp::And),
    ("slli", AluOp::Sll),
    ("srli", AluOp::Srl),
    ("srai", AluOp::Sra),
];

/// Scalar FP three-operand mnemonics and their ops (single precision).
const FP_RRR: &[(&str, FpOp)] = &[
    ("fadd.s", FpOp::Add),
    ("fsub.s", FpOp::Sub),
    ("fmul.s", FpOp::Mul),
    ("fmin.s", FpOp::Min),
    ("fmax.s", FpOp::Max),
];

/// Branch mnemonics and their conditions.
const BRANCHES: &[(&str, BranchOp)] = &[
    ("beq", BranchOp::Eq),
    ("bne", BranchOp::Ne),
    ("blt", BranchOp::Lt),
    ("bge", BranchOp::Ge),
    ("bltu", BranchOp::Ltu),
    ("bgeu", BranchOp::Geu),
];

/// Scalar load mnemonics.
const LOADS: &[&str] = &["lw", "ld", "lbu"];
/// Scalar store mnemonics.
const STORES: &[&str] = &["sw", "sd", "sb"];

/// `v*.vv`-shaped mnemonics: `mn vd, vs2, vs1` in text order (the
/// assembler helpers take operands in the same order as the text, so
/// emission is uniform; this includes the `.vs` reductions and
/// `vfmacc.vv`, whose text order is `vd, vs1, vs2`).
const VVV: &[&str] = &[
    "vadd.vv",
    "vsub.vv",
    "vmul.vv",
    "vand.vv",
    "vmin.vv",
    "vmax.vv",
    "vfadd.vv",
    "vfsub.vv",
    "vfmul.vv",
    "vfmacc.vv",
    "vmslt.vv",
    "vmflt.vv",
    "vredsum.vs",
    "vredmax.vs",
    "vredmin.vs",
    "vfredosum.vs",
    "vrgather.vv",
];

/// `v*.vx`-shaped mnemonics: `mn vd, vs2, rs1`.
const VVX: &[&str] = &[
    "vadd.vx",
    "vmax.vx",
    "vmseq.vx",
    "vslideup.vx",
    "vslidedown.vx",
];

/// One line of a differential-test program.
#[derive(Clone, Debug, PartialEq)]
pub enum DtOp {
    /// A label definition (`name:`).
    Label(String),
    /// `li rd, imm`.
    Li(XReg, i64),
    /// Register-register ALU op (`add rd, rs1, rs2`, ...).
    Alu(&'static str, XReg, XReg, XReg),
    /// Register-immediate ALU op (`addi rd, rs1, imm`, ...).
    AluImm(&'static str, XReg, XReg, i64),
    /// Scalar load (`lw rd, off(base)`, ...).
    Load(&'static str, XReg, i64, XReg),
    /// Scalar store (`sw src, off(base)`, ...).
    Store(&'static str, XReg, i64, XReg),
    /// Conditional branch to a label (`beq rs1, rs2, target`, ...).
    Branch(&'static str, XReg, XReg, String),
    /// Unconditional jump (`j target`).
    Jump(String),
    /// Scalar FP op (`fadd.s rd, rs1, rs2`, ...).
    Fp(&'static str, FReg, FReg, FReg),
    /// `fmv.w.x rd, rs1` — move integer bits into an FP register.
    FmvWX(FReg, XReg),
    /// `flw rd, off(base)`.
    Flw(FReg, i64, XReg),
    /// `fsw src, off(base)`.
    Fsw(FReg, i64, XReg),
    /// `vsetvli rd, avl, sew`.
    Vsetvli(XReg, XReg, Sew),
    /// Unit-stride vector load/store (`vle.v`/`vse.v`), optionally masked.
    VMemUnit {
        /// True for `vse.v`.
        store: bool,
        /// Data register.
        vreg: VReg,
        /// Base address register.
        base: XReg,
        /// Executes under `v0.t` when set.
        masked: bool,
    },
    /// Strided vector load/store (`vlse.v`/`vsse.v`).
    VMemStrided {
        /// True for `vsse.v`.
        store: bool,
        /// Data register.
        vreg: VReg,
        /// Base address register.
        base: XReg,
        /// Byte-stride register.
        stride: XReg,
    },
    /// Indexed vector load/store (`vluxei.v`/`vsuxei.v`), optionally
    /// masked.
    VMemIndexed {
        /// True for `vsuxei.v`.
        store: bool,
        /// Data register.
        vreg: VReg,
        /// Base address register.
        base: XReg,
        /// Per-element byte-offset vector.
        index: VReg,
        /// Executes under `v0.t` when set.
        masked: bool,
    },
    /// Three-vector-operand op (see [`VVV`] for text operand order).
    Vvv(&'static str, VReg, VReg, VReg),
    /// Vector-scalar op (`mn vd, vs2, rs1`; see [`VVX`]).
    Vvx(&'static str, VReg, VReg, XReg),
    /// `vsll.vi vd, vs2, imm`.
    VsllVi(VReg, VReg, i64),
    /// `vmerge.vvm vd, vs2, vs1, v0`.
    VmergeVvm(VReg, VReg, VReg),
    /// `vmv.v.x vd, rs1`.
    VmvVX(VReg, XReg),
    /// `vmv.x.s rd, vs2`.
    VmvXS(XReg, VReg),
    /// `vid.v vd`.
    Vid(VReg),
    /// `vpopc.m rd, vs2`.
    Vpopc(XReg, VReg),
    /// Stop the hart.
    Halt,
    /// No operation.
    Nop,
}

impl DtOp {
    fn emit(&self, a: &mut Assembler) {
        match self {
            DtOp::Label(l) => {
                a.label(l.clone());
            }
            DtOp::Li(rd, imm) => {
                a.li(*rd, *imm);
            }
            DtOp::Alu(mn, rd, rs1, rs2) => {
                let op = lookup(ALU_RR, mn);
                a.op(op, *rd, *rs1, *rs2);
            }
            DtOp::AluImm(mn, rd, rs1, imm) => {
                let op = lookup(ALU_RI, mn);
                a.op_imm(op, *rd, *rs1, *imm);
            }
            DtOp::Load(mn, rd, off, base) => {
                match *mn {
                    "lw" => a.lw(*rd, *base, *off),
                    "ld" => a.ld(*rd, *base, *off),
                    "lbu" => a.lbu(*rd, *base, *off),
                    other => unreachable!("load mnemonic {other}"),
                };
            }
            DtOp::Store(mn, src, off, base) => {
                match *mn {
                    "sw" => a.sw(*src, *base, *off),
                    "sd" => a.sd(*src, *base, *off),
                    "sb" => a.sb(*src, *base, *off),
                    other => unreachable!("store mnemonic {other}"),
                };
            }
            DtOp::Branch(mn, rs1, rs2, target) => {
                let op = lookup(BRANCHES, mn);
                a.branch(op, *rs1, *rs2, target.clone());
            }
            DtOp::Jump(target) => {
                a.j(target.clone());
            }
            DtOp::Fp(mn, rd, rs1, rs2) => {
                let op = lookup(FP_RRR, mn);
                a.fp_op(op, FpPrec::S, *rd, *rs1, *rs2);
            }
            DtOp::FmvWX(rd, rs1) => {
                a.fmv_w_x(*rd, *rs1);
            }
            DtOp::Flw(rd, off, base) => {
                a.flw(*rd, *base, *off);
            }
            DtOp::Fsw(src, off, base) => {
                a.fsw(*src, *base, *off);
            }
            DtOp::Vsetvli(rd, avl, sew) => {
                a.vsetvli(*rd, *avl, *sew);
            }
            DtOp::VMemUnit {
                store,
                vreg,
                base,
                masked,
            } => {
                match (store, masked) {
                    (false, false) => a.vle(*vreg, *base),
                    (false, true) => a.vle_m(*vreg, *base),
                    (true, false) => a.vse(*vreg, *base),
                    (true, true) => a.vse_m(*vreg, *base),
                };
            }
            DtOp::VMemStrided {
                store,
                vreg,
                base,
                stride,
            } => {
                if *store {
                    a.vsse(*vreg, *base, *stride);
                } else {
                    a.vlse(*vreg, *base, *stride);
                }
            }
            DtOp::VMemIndexed {
                store,
                vreg,
                base,
                index,
                masked,
            } => {
                match (store, masked) {
                    (false, false) => a.vluxei(*vreg, *base, *index),
                    (false, true) => a.vluxei_m(*vreg, *base, *index),
                    (true, false) => a.vsuxei(*vreg, *base, *index),
                    (true, true) => a.vsuxei_m(*vreg, *base, *index),
                };
            }
            DtOp::Vvv(mn, vd, x, y) => {
                let (vd, x, y) = (*vd, *x, *y);
                match *mn {
                    "vadd.vv" => a.vadd_vv(vd, x, y),
                    "vsub.vv" => a.vsub_vv(vd, x, y),
                    "vmul.vv" => a.vmul_vv(vd, x, y),
                    "vand.vv" => a.vand_vv(vd, x, y),
                    "vmin.vv" => a.vmin_vv(vd, x, y),
                    "vmax.vv" => a.vmax_vv(vd, x, y),
                    "vfadd.vv" => a.vfadd_vv(vd, x, y),
                    "vfsub.vv" => a.vfsub_vv(vd, x, y),
                    "vfmul.vv" => a.vfmul_vv(vd, x, y),
                    "vfmacc.vv" => a.vfmacc_vv(vd, x, y),
                    "vmslt.vv" => a.vmslt_vv(vd, x, y),
                    "vmflt.vv" => a.vmflt_vv(vd, x, y),
                    "vredsum.vs" => a.vredsum(vd, x, y),
                    "vredmax.vs" => a.vredmax(vd, x, y),
                    "vredmin.vs" => a.vredmin(vd, x, y),
                    "vfredosum.vs" => a.vfredosum(vd, x, y),
                    "vrgather.vv" => a.vrgather(vd, x, y),
                    other => unreachable!("vvv mnemonic {other}"),
                };
            }
            DtOp::Vvx(mn, vd, vs2, rs1) => {
                let (vd, vs2, rs1) = (*vd, *vs2, *rs1);
                match *mn {
                    "vadd.vx" => a.vadd_vx(vd, vs2, rs1),
                    "vmax.vx" => a.vmax_vx(vd, vs2, rs1),
                    "vmseq.vx" => a.vmseq_vx(vd, vs2, rs1),
                    "vslideup.vx" => a.vslideup(vd, vs2, rs1),
                    "vslidedown.vx" => a.vslidedown(vd, vs2, rs1),
                    other => unreachable!("vvx mnemonic {other}"),
                };
            }
            DtOp::VsllVi(vd, vs2, imm) => {
                a.vsll_vi(*vd, *vs2, *imm);
            }
            DtOp::VmergeVvm(vd, vs2, vs1) => {
                a.vmerge_vvm(*vd, *vs2, *vs1);
            }
            DtOp::VmvVX(vd, rs1) => {
                a.vmv_v_x(*vd, *rs1);
            }
            DtOp::VmvXS(rd, vs2) => {
                a.vmv_x_s(*rd, *vs2);
            }
            DtOp::Vid(vd) => {
                a.vid(*vd);
            }
            DtOp::Vpopc(rd, vs2) => {
                a.vpopc(*rd, *vs2);
            }
            DtOp::Halt => {
                a.halt();
            }
            DtOp::Nop => {
                a.nop();
            }
        }
    }
}

fn lookup<T: Copy>(table: &[(&str, T)], mn: &str) -> T {
    table
        .iter()
        .find(|(m, _)| *m == mn)
        .map(|(_, op)| *op)
        .unwrap_or_else(|| unreachable!("unknown mnemonic {mn}"))
}

/// Resolves a parsed mnemonic to its canonical `&'static str`.
fn canonical(tables: &[&[&'static str]], mn: &str) -> Option<&'static str> {
    tables
        .iter()
        .flat_map(|t| t.iter())
        .find(|m| **m == mn)
        .copied()
}

impl fmt::Display for DtOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mask = |m: bool| if m { ", v0.t" } else { "" };
        match self {
            DtOp::Label(l) => write!(f, "{l}:"),
            DtOp::Li(rd, imm) => write!(f, "  li {rd}, {imm}"),
            DtOp::Alu(mn, rd, rs1, rs2) => write!(f, "  {mn} {rd}, {rs1}, {rs2}"),
            DtOp::AluImm(mn, rd, rs1, imm) => write!(f, "  {mn} {rd}, {rs1}, {imm}"),
            DtOp::Load(mn, rd, off, base) => write!(f, "  {mn} {rd}, {off}({base})"),
            DtOp::Store(mn, src, off, base) => write!(f, "  {mn} {src}, {off}({base})"),
            DtOp::Branch(mn, rs1, rs2, target) => write!(f, "  {mn} {rs1}, {rs2}, {target}"),
            DtOp::Jump(target) => write!(f, "  j {target}"),
            DtOp::Fp(mn, rd, rs1, rs2) => write!(f, "  {mn} {rd}, {rs1}, {rs2}"),
            DtOp::FmvWX(rd, rs1) => write!(f, "  fmv.w.x {rd}, {rs1}"),
            DtOp::Flw(rd, off, base) => write!(f, "  flw {rd}, {off}({base})"),
            DtOp::Fsw(src, off, base) => write!(f, "  fsw {src}, {off}({base})"),
            DtOp::Vsetvli(rd, avl, sew) => write!(f, "  vsetvli {rd}, {avl}, {sew}"),
            DtOp::VMemUnit {
                store,
                vreg,
                base,
                masked,
            } => {
                let mn = if *store { "vse.v" } else { "vle.v" };
                write!(f, "  {mn} {vreg}, ({base}){}", mask(*masked))
            }
            DtOp::VMemStrided {
                store,
                vreg,
                base,
                stride,
            } => {
                let mn = if *store { "vsse.v" } else { "vlse.v" };
                write!(f, "  {mn} {vreg}, ({base}), {stride}")
            }
            DtOp::VMemIndexed {
                store,
                vreg,
                base,
                index,
                masked,
            } => {
                let mn = if *store { "vsuxei.v" } else { "vluxei.v" };
                write!(f, "  {mn} {vreg}, ({base}), {index}{}", mask(*masked))
            }
            DtOp::Vvv(mn, vd, x, y) => write!(f, "  {mn} {vd}, {x}, {y}"),
            DtOp::Vvx(mn, vd, vs2, rs1) => write!(f, "  {mn} {vd}, {vs2}, {rs1}"),
            DtOp::VsllVi(vd, vs2, imm) => write!(f, "  vsll.vi {vd}, {vs2}, {imm}"),
            DtOp::VmergeVvm(vd, vs2, vs1) => write!(f, "  vmerge.vvm {vd}, {vs2}, {vs1}, v0"),
            DtOp::VmvVX(vd, rs1) => write!(f, "  vmv.v.x {vd}, {rs1}"),
            DtOp::VmvXS(rd, vs2) => write!(f, "  vmv.x.s {rd}, {vs2}"),
            DtOp::Vid(vd) => write!(f, "  vid.v {vd}"),
            DtOp::Vpopc(rd, vs2) => write!(f, "  vpopc.m {rd}, {vs2}"),
            DtOp::Halt => write!(f, "  halt"),
            DtOp::Nop => write!(f, "  nop"),
        }
    }
}

/// A differential-test program: a flat line list that renders to text,
/// parses back, and assembles to a runnable [`Program`].
///
/// By convention a complete program defines two self-contained sections,
/// `serial:` (scalar-only) and `vector:` (mixed scalar/vector), each
/// ending in `halt` — the two entry points the harness feeds to the
/// systems under test.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct DtProgram {
    /// The program lines, in order.
    pub lines: Vec<DtOp>,
}

impl DtProgram {
    /// Renders the program as assembly text (the corpus file format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(&line.to_string());
            out.push('\n');
        }
        out
    }

    /// Lowers to an executable [`Program`].
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (duplicate or undefined labels).
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let mut a = Assembler::new();
        for line in &self.lines {
            line.emit(&mut a);
        }
        a.assemble()
    }

    /// Parses the text format produced by [`DtProgram::render`].
    ///
    /// # Errors
    ///
    /// Reports the first malformed line with its 1-based line number.
    pub fn parse(text: &str) -> Result<DtProgram, String> {
        let mut lines = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            lines.push(parse_line(line).map_err(|e| format!("line {}: {e}: `{line}`", n + 1))?);
        }
        Ok(DtProgram { lines })
    }
}

fn xreg(tok: &str) -> Result<XReg, String> {
    parse_reg(tok, 'x').map(XReg::new)
}

fn freg(tok: &str) -> Result<FReg, String> {
    parse_reg(tok, 'f').map(FReg::new)
}

fn vreg(tok: &str) -> Result<VReg, String> {
    parse_reg(tok, 'v').map(VReg::new)
}

fn parse_reg(tok: &str, prefix: char) -> Result<u8, String> {
    tok.strip_prefix(prefix)
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 32)
        .ok_or_else(|| format!("expected {prefix}-register, got `{tok}`"))
}

fn imm(tok: &str) -> Result<i64, String> {
    tok.parse::<i64>()
        .map_err(|_| format!("expected immediate, got `{tok}`"))
}

fn sew(tok: &str) -> Result<Sew, String> {
    match tok {
        "e8" => Ok(Sew::E8),
        "e16" => Ok(Sew::E16),
        "e32" => Ok(Sew::E32),
        "e64" => Ok(Sew::E64),
        other => Err(format!("expected element width, got `{other}`")),
    }
}

/// Splits `off(base)` into the offset and base register.
fn mem_operand(tok: &str) -> Result<(i64, XReg), String> {
    let (off, rest) = tok
        .split_once('(')
        .ok_or_else(|| format!("expected off(base), got `{tok}`"))?;
    let base = rest
        .strip_suffix(')')
        .ok_or_else(|| format!("expected off(base), got `{tok}`"))?;
    let off = if off.is_empty() { 0 } else { imm(off)? };
    Ok((off, xreg(base)?))
}

/// Strips the parentheses from a bare `(base)` operand.
fn paren_base(tok: &str) -> Result<XReg, String> {
    let inner = tok
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| format!("expected (base), got `{tok}`"))?;
    xreg(inner)
}

fn parse_line(line: &str) -> Result<DtOp, String> {
    if let Some(label) = line.strip_suffix(':') {
        if label.is_empty() || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label `{label}`"));
        }
        return Ok(DtOp::Label(label.to_string()));
    }
    let (mn, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let ops: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();
    let argc = |want: usize| -> Result<(), String> {
        if ops.len() == want {
            Ok(())
        } else {
            Err(format!("expected {want} operands, got {}", ops.len()))
        }
    };
    // Trailing `v0.t` marks a masked vector memory op.
    let masked = ops.last() == Some(&"v0.t");
    let vops: Vec<&str> = if masked {
        ops[..ops.len() - 1].to_vec()
    } else {
        ops.clone()
    };

    if let Some(canon) = canonical(&[VVV], mn) {
        argc(3)?;
        return Ok(DtOp::Vvv(
            canon,
            vreg(ops[0])?,
            vreg(ops[1])?,
            vreg(ops[2])?,
        ));
    }
    if let Some(canon) = canonical(&[VVX], mn) {
        argc(3)?;
        return Ok(DtOp::Vvx(
            canon,
            vreg(ops[0])?,
            vreg(ops[1])?,
            xreg(ops[2])?,
        ));
    }
    if let Some((canon, _)) = ALU_RR.iter().find(|(m, _)| *m == mn) {
        argc(3)?;
        return Ok(DtOp::Alu(
            canon,
            xreg(ops[0])?,
            xreg(ops[1])?,
            xreg(ops[2])?,
        ));
    }
    if let Some((canon, _)) = ALU_RI.iter().find(|(m, _)| *m == mn) {
        argc(3)?;
        return Ok(DtOp::AluImm(
            canon,
            xreg(ops[0])?,
            xreg(ops[1])?,
            imm(ops[2])?,
        ));
    }
    if let Some((canon, _)) = FP_RRR.iter().find(|(m, _)| *m == mn) {
        argc(3)?;
        return Ok(DtOp::Fp(canon, freg(ops[0])?, freg(ops[1])?, freg(ops[2])?));
    }
    if let Some((canon, _)) = BRANCHES.iter().find(|(m, _)| *m == mn) {
        argc(3)?;
        return Ok(DtOp::Branch(
            canon,
            xreg(ops[0])?,
            xreg(ops[1])?,
            ops[2].to_string(),
        ));
    }
    if let Some(canon) = LOADS.iter().find(|m| **m == mn) {
        argc(2)?;
        let (off, base) = mem_operand(ops[1])?;
        return Ok(DtOp::Load(canon, xreg(ops[0])?, off, base));
    }
    if let Some(canon) = STORES.iter().find(|m| **m == mn) {
        argc(2)?;
        let (off, base) = mem_operand(ops[1])?;
        return Ok(DtOp::Store(canon, xreg(ops[0])?, off, base));
    }
    match mn {
        "li" => {
            argc(2)?;
            Ok(DtOp::Li(xreg(ops[0])?, imm(ops[1])?))
        }
        "j" => {
            argc(1)?;
            Ok(DtOp::Jump(ops[0].to_string()))
        }
        "fmv.w.x" => {
            argc(2)?;
            Ok(DtOp::FmvWX(freg(ops[0])?, xreg(ops[1])?))
        }
        "flw" => {
            argc(2)?;
            let (off, base) = mem_operand(ops[1])?;
            Ok(DtOp::Flw(freg(ops[0])?, off, base))
        }
        "fsw" => {
            argc(2)?;
            let (off, base) = mem_operand(ops[1])?;
            Ok(DtOp::Fsw(freg(ops[0])?, off, base))
        }
        "vsetvli" => {
            argc(3)?;
            Ok(DtOp::Vsetvli(xreg(ops[0])?, xreg(ops[1])?, sew(ops[2])?))
        }
        "vle.v" | "vse.v" => {
            if vops.len() != 2 {
                return Err(format!("expected 2 operands, got {}", vops.len()));
            }
            Ok(DtOp::VMemUnit {
                store: mn == "vse.v",
                vreg: vreg(vops[0])?,
                base: paren_base(vops[1])?,
                masked,
            })
        }
        "vlse.v" | "vsse.v" => {
            argc(3)?;
            Ok(DtOp::VMemStrided {
                store: mn == "vsse.v",
                vreg: vreg(ops[0])?,
                base: paren_base(ops[1])?,
                stride: xreg(ops[2])?,
            })
        }
        "vluxei.v" | "vsuxei.v" => {
            if vops.len() != 3 {
                return Err(format!("expected 3 operands, got {}", vops.len()));
            }
            Ok(DtOp::VMemIndexed {
                store: mn == "vsuxei.v",
                vreg: vreg(vops[0])?,
                base: paren_base(vops[1])?,
                index: vreg(vops[2])?,
                masked,
            })
        }
        "vsll.vi" => {
            argc(3)?;
            Ok(DtOp::VsllVi(vreg(ops[0])?, vreg(ops[1])?, imm(ops[2])?))
        }
        "vmerge.vvm" => {
            argc(4)?;
            if ops[3] != "v0" {
                return Err("vmerge.vvm mask operand must be v0".to_string());
            }
            Ok(DtOp::VmergeVvm(vreg(ops[0])?, vreg(ops[1])?, vreg(ops[2])?))
        }
        "vmv.v.x" => {
            argc(2)?;
            Ok(DtOp::VmvVX(vreg(ops[0])?, xreg(ops[1])?))
        }
        "vmv.x.s" => {
            argc(2)?;
            Ok(DtOp::VmvXS(xreg(ops[0])?, vreg(ops[1])?))
        }
        "vid.v" => {
            argc(1)?;
            Ok(DtOp::Vid(vreg(ops[0])?))
        }
        "vpopc.m" => {
            argc(2)?;
            Ok(DtOp::Vpopc(xreg(ops[0])?, vreg(ops[1])?))
        }
        "halt" => {
            argc(0)?;
            Ok(DtOp::Halt)
        }
        "nop" => {
            argc(0)?;
            Ok(DtOp::Nop)
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
serial:
  li x5, -7          # init
  add x6, x5, x5
  addi x7, x6, 12
  sw x7, 8(x20)
  lw x8, 8(x20)
  beq x8, x7, done
  div x9, x8, x5
done:
  fmv.w.x f1, x5
  fadd.s f2, f1, f1
  halt
vector:
  li x27, 17
  vsetvli x14, x27, e32
  vid.v v7
  vsll.vi v7, v7, 2
  vle.v v1, (x20)
  vluxei.v v2, (x21), v7, v0.t
  vlse.v v3, (x22), x26
  vadd.vv v4, v1, v2
  vredsum.vs v5, v4, v1
  vmerge.vvm v6, v1, v2, v0
  vse.v v4, (x23)
  vmv.x.s x5, v5
  halt
";

    #[test]
    fn parse_render_round_trips() {
        let p = DtProgram::parse(SAMPLE).expect("parse");
        let rendered = p.render();
        let p2 = DtProgram::parse(&rendered).expect("reparse");
        assert_eq!(p, p2);
        // Rendering is canonical: render(parse(render(x))) == render(x).
        assert_eq!(p2.render(), rendered);
    }

    #[test]
    fn sample_assembles_with_both_entries() {
        let p = DtProgram::parse(SAMPLE).expect("parse");
        let prog = p.assemble().expect("assemble");
        assert!(prog.label("serial").is_some());
        assert!(prog.label("vector").is_some());
    }

    #[test]
    fn masked_and_unmasked_forms_are_distinct() {
        let m = DtProgram::parse("  vle.v v1, (x20), v0.t").unwrap();
        let u = DtProgram::parse("  vle.v v1, (x20)").unwrap();
        assert_ne!(m, u);
        assert!(m.render().contains("v0.t"));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = DtProgram::parse("  nop\n  bogus x1, x2\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = DtProgram::parse("  lw x5, x6\n").unwrap_err();
        assert!(err.contains("off(base)"), "{err}");
    }
}
