#![warn(missing_docs)]
//! # bvl-difftest — differential fuzzing against an architectural oracle
//!
//! Randomized RVV-1.0 programs, cross-checked on **every** system of the
//! paper's Table III against the functional [`bvl_isa::exec::Machine`]
//! executor. The pipeline:
//!
//! 1. [`gen::generate`] derives a random program from a 64-bit seed — a
//!    scalar `serial:` section and a mixed scalar/vector `vector:`
//!    section with strided/indexed/masked memory ops, `vsetvli`
//!    reconfiguration and bounded loops, constrained so it runs
//!    in-bounds and terminates at every hardware VLEN.
//! 2. [`harness::check_program`] executes it through
//!    [`bvl_sim::simulate_with_state`] on all seven [`bvl_sim::SystemKind`]s
//!    and compares each run's [`bvl_sim::FinalState`] — memory image,
//!    scalar/FP register files and vector registers element-by-element —
//!    against a per-`(entry, VLEN)` oracle run.
//! 3. On divergence, [`shrink::shrink`] delta-debugs the program to a
//!    1-minimal reproducer, which can be committed verbatim under
//!    `corpus/*.s` (the [`text::DtProgram`] format round-trips) and is
//!    replayed by the corpus test on every CI run.
//!
//! Because the simulator executes architectural state at dispatch on the
//! same functional executor the oracle uses, divergences should be
//! impossible by construction; this crate is the regression net that
//! keeps state extraction, termination detection and task sequencing
//! honest as the timing models evolve. The exact comparison contract is
//! documented in `DESIGN.md` §4.9.

pub mod gen;
pub mod harness;
pub mod replay;
pub mod shrink;
pub mod text;

pub use gen::generate;
pub use harness::{check_program, difftest_workload, DiffResult, Divergence};
pub use replay::{replay_divergence_tail, ReplayCache, TailReplay};
pub use shrink::shrink;
pub use text::{DtOp, DtProgram};

/// Derives the per-run seed for run `i` of a campaign keyed by `seed`.
///
/// SplitMix64-style mixing: consecutive `i` yield decorrelated streams,
/// and the mapping is stable so `--runs N --seed S` always re-tests the
/// same N programs (the property the CI difftest step relies on).
pub fn mix_seed(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_stable_and_spreads() {
        assert_eq!(mix_seed(0, 0), mix_seed(0, 0));
        assert_ne!(mix_seed(0, 0), mix_seed(0, 1));
        assert_ne!(mix_seed(0, 1), mix_seed(1, 0));
    }
}
