//! Checkpoint-accelerated replay for the shrink loop.
//!
//! Delta-debugging re-checks hundreds of candidate programs, and before
//! this module every check re-simulated all seven systems from cycle 0.
//! Two accelerations are sound and live here:
//!
//! 1. **Candidate memoization** ([`ReplayCache`]). `ddmin` revisits
//!    identical candidates as it re-partitions (the complement of a
//!    removed range at granularity `n` reappears at granularity `2n`),
//!    so keying [`check_program`] results by a digest of the rendered
//!    program turns those revisits into hash lookups.
//! 2. **Tail replay** ([`replay_divergence_tail`]). For a reproducer in
//!    hand, the diverging system is re-run once with a checkpoint
//!    cadence, and the *last* checkpoint before completion is kept.
//!    Resuming from it reproduces the byte-identical divergent final
//!    state while simulating only the tail — the checkpoint blob plus
//!    the `.s` file is a self-contained, fast-to-replay bug report.
//!
//! A third idea — sharing a checkpoint across shrink candidates at their
//! last common program prefix — is deliberately **not** implemented:
//! removing a line shifts the PC of every subsequent instruction, so a
//! checkpoint taken under one candidate (whose machine state embeds
//! concrete PCs and in-flight fetches) is not valid under another, even
//! when their executed-instruction prefixes agree textually. The digest
//! memoization above captures the sound fraction of that win.

use crate::harness::{check_program, difftest_workload, MAX_UNCORE_CYCLES};
use crate::text::DtProgram;
use bvl_sim::{simulate_resumable, simulate_with_state, SimParams, SysState, SystemKind};
use bvl_snap::fnv1a;
use std::collections::HashMap;

/// Memoizes [`check_program`] verdicts across shrink candidates.
///
/// Keyed by an FNV-1a digest of the rendered program text, which is the
/// candidate's full identity (assembly is a pure function of the text).
#[derive(Default)]
pub struct ReplayCache {
    verdicts: HashMap<u64, bool>,
    /// Candidates answered from the cache without simulating.
    pub hits: u64,
    /// Candidates that had to run the full seven-system check.
    pub misses: u64,
}

impl ReplayCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized `check_program(dt).is_divergence()` — the shrink
    /// predicate, minus the redundant re-simulations.
    pub fn still_diverges(&mut self, dt: &DtProgram) -> bool {
        let key = fnv1a(dt.render().as_bytes());
        if let Some(&verdict) = self.verdicts.get(&key) {
            self.hits += 1;
            return verdict;
        }
        self.misses += 1;
        let verdict = check_program(dt).is_divergence();
        self.verdicts.insert(key, verdict);
        verdict
    }
}

/// Proof artifact of a successful tail replay: the checkpoint plus the
/// cycle split showing how much of the run it skips.
pub struct TailReplay {
    /// The last checkpoint before completion on the diverging system.
    /// Serialize with [`SysState::to_bytes`] to attach to a bug report.
    pub checkpoint: SysState,
    /// Uncore cycles of the full straight-through run.
    pub total_cycles: u64,
    /// Uncore cycles actually re-simulated when resuming from the
    /// checkpoint (the divergent tail).
    pub replayed_cycles: u64,
}

/// Re-runs `dt` on `system` with a checkpoint cadence, keeps the last
/// checkpoint, then proves that resuming from it reproduces the
/// byte-identical final state of the straight-through run.
///
/// Works for any program that simulates to completion (the equivalence
/// law is unconditional); divergences of the "simulation failed" flavor
/// have no final state to checkpoint and return a descriptive error.
pub fn replay_divergence_tail(dt: &DtProgram, system: SystemKind) -> Result<TailReplay, String> {
    let program = dt.assemble().map_err(|e| format!("assembly failed: {e}"))?;
    let (serial, vector) = match (program.label("serial"), program.label("vector")) {
        (Some(s), Some(v)) => (s, v),
        _ => return Err("missing `serial`/`vector` entry label".to_string()),
    };
    let workload = difftest_workload(&program, serial, vector);
    let params = SimParams {
        max_uncore_cycles: MAX_UNCORE_CYCLES,
        ..SimParams::default()
    };
    let (base_r, base_s, base_f) = simulate_with_state(system, &workload, &params)
        .map_err(|e| format!("straight run failed (nothing to checkpoint): {e}"))?;

    // A cadence of total/8 puts the last checkpoint in the final eighth
    // of the run; the floor keeps very short runs from checkpointing
    // every cycle.
    let total = base_r.uncore_cycles;
    let mut cadenced = params.clone();
    cadenced.checkpoint_every = (total / 8).max(16);
    let mut last: Option<SysState> = None;
    simulate_resumable(system, &workload, &cadenced, None, &mut |s| {
        last = Some(s.clone());
    })
    .map_err(|e| format!("checkpointed run failed: {e}"))?;
    let checkpoint =
        last.ok_or_else(|| format!("run finished in {total} cycles, before the first checkpoint"))?;

    let (r, s, f) = simulate_resumable(system, &workload, &params, Some(&checkpoint), &mut |_| {})
        .map_err(|e| {
            format!(
                "resume from cycle {} failed: {e}",
                checkpoint.uncore_cycle()
            )
        })?;
    if r != base_r || s != base_s || f != base_f {
        return Err(format!(
            "tail replay from cycle {} did not reproduce the straight-through run on {system}",
            checkpoint.uncore_cycle()
        ));
    }
    Ok(TailReplay {
        total_cycles: total,
        replayed_cycles: total - checkpoint.uncore_cycle(),
        checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn cache_memoizes_identical_candidates() {
        let prog = generate(3);
        let mut cache = ReplayCache::new();
        let first = cache.still_diverges(&prog);
        let second = cache.still_diverges(&prog);
        assert_eq!(first, second);
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn tail_replay_reproduces_the_run() {
        // The equivalence law is unconditional, so a passing program
        // exercises the full path without needing a planted bug.
        let prog = generate(7);
        let tr = replay_divergence_tail(&prog, SystemKind::B4Vl).expect("tail replay");
        assert!(tr.checkpoint.uncore_cycle() > 0);
        assert!(
            tr.replayed_cycles < tr.total_cycles,
            "tail ({}) should be a strict fraction of the run ({})",
            tr.replayed_cycles,
            tr.total_cycles
        );
    }
}
