//! Seeded random program generation.
//!
//! [`generate`] produces a self-contained [`DtProgram`] from a 64-bit
//! seed: a scalar-only `serial:` section and a mixed scalar/vector
//! `vector:` section, each initializing every register it reads and
//! ending in `halt`. The two sections are the entry points the harness
//! hands to [`bvl_sim::simulate_with_state`] (serial/task systems run
//! `serial`, vector-capable systems run `vector`).
//!
//! # Determinism and safety invariants
//!
//! Programs must execute identically on the functional oracle and on
//! every system's core machines, at every hardware vector length (64 to
//! 2048 bits), without faulting. The generator enforces this by
//! construction:
//!
//! - **Memory discipline.** All loads and stores go through four base
//!   registers (`x20`–`x23`) pinned to disjoint 4 KiB buffers. Scalar
//!   offsets stay below 4 KiB minus the access width. Vector AVL is
//!   capped at [`MAX_AVL`] elements, strides at 8 bytes, and index
//!   vectors are regenerated (`vid.v` + `vsll.vi`) at the current SEW
//!   immediately before every indexed access, so no element address can
//!   leave its buffer at any VLEN.
//! - **Register discipline.** Random ops write only scratch registers
//!   (`x5`–`x15`, `f1`–`f6`, `v1`–`v6`); the buffer bases, the stride
//!   register `x26`, the AVL register `x27`, and the loop counter `x28`
//!   are never random destinations. `v0` is written only by the mask
//!   idiom and `v7` only by the index idiom. Registers start zeroed in
//!   both the oracle and the simulated cores, so reading a
//!   never-written register is still deterministic.
//! - **Control discipline.** Loops use the dedicated counter `x28` with
//!   a bounded trip count and a straight-line body; forward branches
//!   jump over a short run of instructions to a label that is always
//!   emitted. Every generated program therefore terminates.

use crate::text::{DtOp, DtProgram};
use bvl_isa::reg::{FReg, VReg, XReg};
use bvl_isa::vcfg::Sew;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Byte size of each data buffer.
pub const BUF_SIZE: u64 = 4096;
/// Base addresses of the four data buffers (held in `x20`–`x23`).
pub const BUF_BASES: [u64; 4] = [0x2000, 0x3000, 0x4000, 0x5000];
/// Maximum application vector length requested by `vsetvli`. Together
/// with the 8-byte stride/element-width cap this bounds every vector
/// access span to under [`BUF_SIZE`] bytes.
pub const MAX_AVL: i64 = 200;

/// First scratch scalar register (`x5`).
const X_SCRATCH_LO: u8 = 5;
/// Last scratch scalar register (`x15`).
const X_SCRATCH_HI: u8 = 15;
/// Scratch FP registers are `f1..=f6`.
const F_SCRATCH_HI: u8 = 6;
/// Scratch vector registers are `v1..=v6`.
const V_SCRATCH_HI: u8 = 6;

/// First buffer base register (`x20`).
const X_BUF: u8 = 20;
/// Stride register (`x26`).
const X_STRIDE: u8 = 26;
/// AVL register (`x27`).
const X_AVL: u8 = 27;
/// Loop counter register (`x28`).
const X_LOOP: u8 = 28;
/// Index vector register (`v7`).
const V_INDEX: u8 = 7;

/// Generates a random differential-test program from `seed`.
///
/// The same seed always yields the same program.
pub fn generate(seed: u64) -> DtProgram {
    let mut g = Gen {
        rng: SmallRng::seed_from_u64(seed),
        lines: Vec::new(),
        label_counter: 0,
        mask_ready: false,
    };
    g.section("serial", false);
    g.section("vector", true);
    DtProgram { lines: g.lines }
}

struct Gen {
    rng: SmallRng,
    lines: Vec<DtOp>,
    label_counter: u32,
    /// True once the current section has initialized `v0` via the mask
    /// idiom under the current SEW.
    mask_ready: bool,
}

impl Gen {
    fn section(&mut self, name: &str, vector: bool) {
        self.mask_ready = false;
        self.lines.push(DtOp::Label(name.to_string()));
        // Pin the buffer bases; every memory access goes through them.
        for (i, base) in BUF_BASES.iter().enumerate() {
            self.lines
                .push(DtOp::Li(XReg::new(X_BUF + i as u8), *base as i64));
        }
        if vector {
            let stride = [1i64, 2, 4, 8][self.rng.gen_range(0..4usize)];
            self.lines.push(DtOp::Li(XReg::new(X_STRIDE), stride));
            self.emit_vsetvli();
        }
        let blocks = self.rng.gen_range(4..=8u32);
        for _ in 0..blocks {
            match self.rng.gen_range(0..10u32) {
                0 | 1 => self.emit_loop(vector),
                2 => self.emit_forward_branch(vector),
                _ => {
                    let n = self.rng.gen_range(2..=6u32);
                    self.emit_straight(vector, n);
                }
            }
        }
        self.lines.push(DtOp::Halt);
    }

    fn fresh_label(&mut self) -> String {
        self.label_counter += 1;
        format!("L{}", self.label_counter)
    }

    fn xs(&mut self) -> XReg {
        XReg::new(self.rng.gen_range(X_SCRATCH_LO..=X_SCRATCH_HI))
    }

    fn fs(&mut self) -> FReg {
        FReg::new(self.rng.gen_range(1..=F_SCRATCH_HI))
    }

    fn vs(&mut self) -> VReg {
        VReg::new(self.rng.gen_range(1..=V_SCRATCH_HI))
    }

    fn buf(&mut self) -> XReg {
        XReg::new(X_BUF + self.rng.gen_range(0..4u8))
    }

    /// A `li x27, avl; vsetvli xs, x27, sew` pair. Resets the mask: its
    /// layout depends on SEW and VL, so it must be rebuilt before the
    /// next masked op.
    fn emit_vsetvli(&mut self) {
        let avl = self.rng.gen_range(1..=MAX_AVL);
        let sew = [Sew::E8, Sew::E16, Sew::E32, Sew::E64][self.rng.gen_range(0..4usize)];
        self.lines.push(DtOp::Li(XReg::new(X_AVL), avl));
        let rd = self.xs();
        self.lines.push(DtOp::Vsetvli(rd, XReg::new(X_AVL), sew));
        self.mask_ready = false;
    }

    /// Initializes `v0` for masked ops: `v0[i] = (i < c)` for a random
    /// cutoff `c`, built from scratch registers under the current SEW.
    fn emit_mask_idiom(&mut self) {
        let vid = self.vs();
        let splat = self.vs();
        let cutoff = self.xs();
        self.lines.push(DtOp::Vid(vid));
        self.lines
            .push(DtOp::Li(cutoff, self.rng.gen_range(0..=MAX_AVL)));
        self.lines.push(DtOp::VmvVX(splat, cutoff));
        self.lines
            .push(DtOp::Vvv("vmslt.vv", VReg::new(0), vid, splat));
        self.mask_ready = true;
    }

    /// Rebuilds the index vector `v7 = vid << k` under the current SEW,
    /// immediately before an indexed access. Element offsets are bounded
    /// by `(MAX_AVL - 1) << 3` (or the SEW mask, whichever is smaller),
    /// keeping every indexed address inside its 4 KiB buffer.
    fn emit_index_idiom(&mut self) {
        let shift = self.rng.gen_range(0..=3i64);
        self.lines.push(DtOp::Vid(VReg::new(V_INDEX)));
        self.lines
            .push(DtOp::VsllVi(VReg::new(V_INDEX), VReg::new(V_INDEX), shift));
    }

    fn emit_straight(&mut self, vector: bool, count: u32) {
        for _ in 0..count {
            if vector && self.rng.gen_range(0..10u32) < 6 {
                self.emit_vector_op();
            } else {
                self.emit_scalar_op();
            }
        }
    }

    /// A bounded counted loop with a straight-line body.
    fn emit_loop(&mut self, vector: bool) {
        let label = self.fresh_label();
        let trips = self.rng.gen_range(1..=5i64);
        self.lines.push(DtOp::Li(XReg::new(X_LOOP), trips));
        self.lines.push(DtOp::Label(label.clone()));
        let body = self.rng.gen_range(2..=5u32);
        self.emit_straight(vector, body);
        self.lines.push(DtOp::AluImm(
            "addi",
            XReg::new(X_LOOP),
            XReg::new(X_LOOP),
            -1,
        ));
        self.lines
            .push(DtOp::Branch("bne", XReg::new(X_LOOP), XReg::new(0), label));
    }

    /// A data-dependent forward branch over a short instruction run.
    fn emit_forward_branch(&mut self, vector: bool) {
        let mn = ["beq", "bne", "blt", "bge", "bltu", "bgeu"][self.rng.gen_range(0..6usize)];
        let (a, b) = (self.xs(), self.xs());
        let label = self.fresh_label();
        self.lines.push(DtOp::Branch(mn, a, b, label.clone()));
        let skipped = self.rng.gen_range(1..=3u32);
        self.emit_straight(vector, skipped);
        self.lines.push(DtOp::Label(label));
    }

    fn emit_scalar_op(&mut self) {
        let op = match self.rng.gen_range(0..12u32) {
            0 => DtOp::Li(self.xs(), self.rng.gen_range(-4096..=4096i64)),
            1 | 2 => {
                let mn = [
                    "add", "sub", "mul", "div", "divu", "rem", "remu", "and", "or", "xor", "slt",
                    "sltu",
                ][self.rng.gen_range(0..12usize)];
                DtOp::Alu(mn, self.xs(), self.xs(), self.xs())
            }
            3 | 4 => {
                let (mn, imm) = match self.rng.gen_range(0..5u32) {
                    0 => ("addi", self.rng.gen_range(-2048..=2047i64)),
                    1 => ("andi", self.rng.gen_range(-2048..=2047i64)),
                    2 => ("slli", self.rng.gen_range(0..=63i64)),
                    3 => ("srli", self.rng.gen_range(0..=63i64)),
                    _ => ("srai", self.rng.gen_range(0..=63i64)),
                };
                DtOp::AluImm(mn, self.xs(), self.xs(), imm)
            }
            5 | 6 => {
                let (mn, off) = self.scalar_access();
                DtOp::Load(mn, self.xs(), off, self.buf())
            }
            7 | 8 => {
                let (mn, off) = self.scalar_access();
                let store = match mn {
                    "lw" => "sw",
                    "ld" => "sd",
                    _ => "sb",
                };
                DtOp::Store(store, self.xs(), off, self.buf())
            }
            9 => DtOp::FmvWX(self.fs(), self.xs()),
            10 => {
                let mn = ["fadd.s", "fsub.s", "fmul.s", "fmin.s", "fmax.s"]
                    [self.rng.gen_range(0..5usize)];
                DtOp::Fp(mn, self.fs(), self.fs(), self.fs())
            }
            _ => {
                let off = self.rng.gen_range(0..1023i64) * 4;
                if self.rng.gen() {
                    DtOp::Flw(self.fs(), off, self.buf())
                } else {
                    DtOp::Fsw(self.fs(), off, self.buf())
                }
            }
        };
        self.lines.push(op);
    }

    /// Picks a scalar load mnemonic and an in-bounds aligned offset.
    fn scalar_access(&mut self) -> (&'static str, i64) {
        match self.rng.gen_range(0..3u32) {
            0 => ("lw", self.rng.gen_range(0..1023i64) * 4),
            1 => ("ld", self.rng.gen_range(0..511i64) * 8),
            _ => ("lbu", self.rng.gen_range(0..4095i64)),
        }
    }

    fn emit_vector_op(&mut self) {
        match self.rng.gen_range(0..14u32) {
            0 => self.emit_vsetvli(),
            1 | 2 => {
                // Unit-stride load/store, sometimes masked.
                let store = self.rng.gen();
                let masked = self.rng.gen_range(0..3u32) == 0;
                if masked && !self.mask_ready {
                    self.emit_mask_idiom();
                }
                let (vreg, base) = (self.vs(), self.buf());
                self.lines.push(DtOp::VMemUnit {
                    store,
                    vreg,
                    base,
                    masked,
                });
            }
            3 => {
                let (vreg, base) = (self.vs(), self.buf());
                self.lines.push(DtOp::VMemStrided {
                    store: self.rng.gen(),
                    vreg,
                    base,
                    stride: XReg::new(X_STRIDE),
                });
            }
            4 => {
                let store = self.rng.gen();
                let masked = self.rng.gen_range(0..3u32) == 0;
                if masked && !self.mask_ready {
                    self.emit_mask_idiom();
                }
                self.emit_index_idiom();
                let (vreg, base) = (self.vs(), self.buf());
                self.lines.push(DtOp::VMemIndexed {
                    store,
                    vreg,
                    base,
                    index: VReg::new(V_INDEX),
                    masked,
                });
            }
            5..=8 => {
                let mn = [
                    "vadd.vv",
                    "vsub.vv",
                    "vmul.vv",
                    "vand.vv",
                    "vmin.vv",
                    "vmax.vv",
                    "vfadd.vv",
                    "vfsub.vv",
                    "vfmul.vv",
                    "vfmacc.vv",
                    "vrgather.vv",
                ][self.rng.gen_range(0..11usize)];
                let (vd, a, b) = (self.vs(), self.vs(), self.vs());
                self.lines.push(DtOp::Vvv(mn, vd, a, b));
            }
            9 => {
                let mn = ["vadd.vx", "vmax.vx", "vslideup.vx", "vslidedown.vx"]
                    [self.rng.gen_range(0..4usize)];
                let (vd, vs2, rs1) = (self.vs(), self.vs(), self.xs());
                self.lines.push(DtOp::Vvx(mn, vd, vs2, rs1));
            }
            10 => {
                // Comparisons write a scratch mask; vmslt into v0 via the
                // mask idiom is the only writer of the real mask register.
                let mn = ["vmslt.vv", "vmflt.vv"][self.rng.gen_range(0..2usize)];
                let (vd, a, b) = (self.vs(), self.vs(), self.vs());
                self.lines.push(DtOp::Vvv(mn, vd, a, b));
            }
            11 => {
                let mn = ["vredsum.vs", "vredmax.vs", "vredmin.vs", "vfredosum.vs"]
                    [self.rng.gen_range(0..4usize)];
                let (vd, a, b) = (self.vs(), self.vs(), self.vs());
                self.lines.push(DtOp::Vvv(mn, vd, a, b));
            }
            12 => {
                if !self.mask_ready {
                    self.emit_mask_idiom();
                }
                let (vd, a, b) = (self.vs(), self.vs(), self.vs());
                self.lines.push(DtOp::VmergeVvm(vd, a, b));
            }
            _ => {
                let op = match self.rng.gen_range(0..4u32) {
                    0 => DtOp::VmvVX(self.vs(), self.xs()),
                    1 => DtOp::VmvXS(self.xs(), self.vs()),
                    2 => DtOp::Vid(self.vs()),
                    _ => DtOp::Vpopc(self.xs(), self.vs()),
                };
                self.lines.push(op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(1234);
        let b = generate(1234);
        assert_eq!(a, b);
        assert_ne!(a, generate(1235));
    }

    #[test]
    fn programs_assemble_with_both_entries() {
        for seed in 0..50 {
            let p = generate(seed);
            let prog = p.assemble().unwrap_or_else(|e| {
                panic!("seed {seed}: {e}\n{}", p.render());
            });
            assert!(prog.label("serial").is_some());
            assert!(prog.label("vector").is_some());
        }
    }

    #[test]
    fn programs_round_trip_through_text() {
        for seed in 0..50 {
            let p = generate(seed);
            let reparsed = DtProgram::parse(&p.render()).expect("reparse");
            assert_eq!(p, reparsed);
        }
    }

    #[test]
    fn serial_section_is_scalar_only() {
        for seed in 0..50 {
            let p = generate(seed);
            for op in &p.lines {
                if matches!(op, DtOp::Label(l) if l == "vector") {
                    break;
                }
                assert!(
                    !matches!(
                        op,
                        DtOp::Vsetvli(..)
                            | DtOp::VMemUnit { .. }
                            | DtOp::VMemStrided { .. }
                            | DtOp::VMemIndexed { .. }
                            | DtOp::Vvv(..)
                            | DtOp::Vvx(..)
                            | DtOp::VsllVi(..)
                            | DtOp::VmergeVvm(..)
                            | DtOp::VmvVX(..)
                            | DtOp::VmvXS(..)
                            | DtOp::Vid(..)
                            | DtOp::Vpopc(..)
                    ),
                    "seed {seed}: vector op before vector label: {op:?}"
                );
            }
        }
    }
}
