//! Divergence minimization.
//!
//! The vendored `proptest` subset deliberately omits shrinking, so the
//! difftest crate ships its own: a delta-debugging (`ddmin`) pass over
//! program lines. [`shrink`] repeatedly deletes chunks of lines —
//! halving the chunk size down to single lines — and keeps any candidate
//! for which `still_failing` holds, looping until no single-line
//! deletion reproduces the failure. The result is 1-minimal: removing
//! any one remaining line makes the divergence disappear.
//!
//! Candidates that no longer assemble, terminate or define the entry
//! labels are simply rejected by the predicate (the harness classifies
//! them as `Invalid`, which is not a divergence), so the shrinker needs
//! no structural knowledge of the program beyond its line list.

use crate::text::DtProgram;

/// Minimizes `prog` while `still_failing` keeps returning true.
///
/// `still_failing(prog)` must be true on entry; the returned program
/// also satisfies it and no single line can be removed without losing
/// the failure.
pub fn shrink(prog: &DtProgram, still_failing: &dyn Fn(&DtProgram) -> bool) -> DtProgram {
    debug_assert!(still_failing(prog), "shrink called on a passing program");
    let mut best = prog.clone();
    let mut reduced = true;
    while reduced {
        reduced = false;
        let mut chunk = (best.lines.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.lines.len() {
                let end = (start + chunk).min(best.lines.len());
                let mut candidate = best.clone();
                candidate.lines.drain(start..end);
                if !candidate.lines.is_empty() && still_failing(&candidate) {
                    best = candidate;
                    reduced = true;
                    // Re-test the same position: the next chunk slid in.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::text::DtOp;

    /// Synthetic failure: "the program still contains a `mul`".
    fn has_mul(p: &DtProgram) -> bool {
        p.lines.iter().any(|l| matches!(l, DtOp::Alu("mul", ..)))
    }

    #[test]
    fn shrinks_to_the_single_guilty_line() {
        let mut p = DtProgram::default();
        for i in 0..20 {
            p.lines.push(DtOp::Li(
                bvl_isa::reg::XReg::new(5 + (i % 8) as u8),
                i as i64,
            ));
        }
        p.lines.insert(
            13,
            DtOp::Alu(
                "mul",
                bvl_isa::reg::XReg::new(6),
                bvl_isa::reg::XReg::new(7),
                bvl_isa::reg::XReg::new(8),
            ),
        );
        let small = shrink(&p, &has_mul);
        assert_eq!(small.lines.len(), 1, "{}", small.render());
        assert!(has_mul(&small));
    }

    #[test]
    fn shrink_of_generated_program_is_one_minimal() {
        // "Failure" = uses at least two distinct vector-memory lines.
        let vmem_count = |p: &DtProgram| {
            p.lines
                .iter()
                .filter(|l| {
                    matches!(
                        l,
                        DtOp::VMemUnit { .. } | DtOp::VMemStrided { .. } | DtOp::VMemIndexed { .. }
                    )
                })
                .count()
        };
        let pred = |p: &DtProgram| vmem_count(p) >= 2;
        // Find a seed whose program satisfies the predicate.
        let p = (0..100)
            .map(generate)
            .find(|p| pred(p))
            .expect("some seed emits two vector memory ops");
        let small = shrink(&p, &pred);
        assert_eq!(small.lines.len(), 2, "{}", small.render());
        // 1-minimality: removing either remaining line breaks it.
        for i in 0..small.lines.len() {
            let mut c = small.clone();
            c.lines.remove(i);
            assert!(!pred(&c));
        }
    }
}
