# seed 0x43e6aaed49082e36 — strided + masked memory ops, reductions,
# slides and vmerge across e64 reconfigurations.

serial:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  sub x8, x5, x9
  divu x7, x11, x5
  li x5, -1540
  flw f2, 1664(x22)
  li x10, -845
  flw f1, 3536(x22)
  sd x13, 112(x22)
  fmv.w.x f1, x7
  li x28, 2
L1:
  flw f2, 616(x21)
  lbu x12, 557(x21)
  addi x28, x28, -1
  bne x28, x0, L1
  li x28, 3
L2:
  slli x9, x10, 8
  fmv.w.x f2, x7
  fmul.s f3, f2, f4
  addi x28, x28, -1
  bne x28, x0, L2
  rem x8, x8, x9
  lw x10, 2380(x22)
  fsw f1, 532(x23)
  andi x14, x14, -1252
  xor x12, x11, x5
  fmv.w.x f4, x10
  remu x13, x13, x10
  halt
vector:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  li x26, 1
  li x27, 16
  vsetvli x9, x27, e64
  bltu x12, x11, L3
  vfsub.vv v6, v2, v2
  sb x10, 3775(x23)
  vfadd.vv v1, v2, v2
L3:
  vslideup.vx v5, v3, x14
  vid.v v3
  li x5, 125
  vmv.v.x v5, x5
  vmslt.vv v0, v3, v5
  vmerge.vvm v6, v5, v3, v0
  vmslt.vv v5, v4, v4
  vsse.v v6, (x21), x26
  addi x10, x14, 1668
  vmerge.vvm v6, v1, v3, v0
  vfadd.vv v5, v6, v4
  li x28, 5
L4:
  vle.v v2, (x20)
  or x15, x8, x7
  vfmacc.vv v4, v5, v4
  addi x28, x28, -1
  bne x28, x0, L4
  vand.vv v4, v1, v1
  vfmacc.vv v5, v3, v2
  vredmax.vs v5, v6, v6
  ld x14, 4056(x21)
  vid.v v5
  vse.v v4, (x22), v0.t
  fmax.s f5, f6, f2
  vsse.v v4, (x22), x26
  vmslt.vv v6, v2, v6
  vlse.v v5, (x21), x26
  vmul.vv v4, v1, v3
  li x27, 152
  vsetvli x14, x27, e16
  halt
