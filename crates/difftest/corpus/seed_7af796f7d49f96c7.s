# seed 0x7af796f7d49f96c7 — four vsetvli reconfigurations, masked ops and
# vmerge at e8, FP vector arithmetic.

serial:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  fmul.s f5, f6, f5
  andi x5, x14, -1852
  li x14, -487
  li x8, -1187
  flw f2, 3688(x22)
  li x11, 3564
  lw x7, 3572(x23)
  sb x6, 2731(x20)
  sw x6, 884(x23)
  sb x14, 2192(x22)
  slli x11, x5, 24
  fsub.s f5, f3, f6
  lbu x5, 2467(x23)
  li x13, 602
  fadd.s f3, f2, f5
  ld x12, 2608(x21)
  andi x12, x6, -475
  li x28, 1
L1:
  fmax.s f1, f3, f1
  sb x5, 3282(x21)
  addi x28, x28, -1
  bne x28, x0, L1
  sb x14, 1228(x20)
  sw x12, 3444(x21)
  flw f3, 3756(x21)
  li x28, 4
L2:
  slli x15, x9, 47
  li x12, 69
  sd x8, 1304(x20)
  addi x28, x28, -1
  bne x28, x0, L2
  bge x8, x9, L3
  ld x6, 3048(x20)
L3:
  halt
vector:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  li x26, 2
  li x27, 177
  vsetvli x5, x27, e16
  bgeu x15, x11, L4
  li x27, 2
  vsetvli x9, x27, e32
  vadd.vx v3, v6, x15
L4:
  bne x6, x8, L5
  vmv.v.x v3, x12
  remu x7, x10, x13
L5:
  li x27, 4
  vsetvli x9, x27, e32
  fadd.s f5, f6, f2
  divu x13, x7, x6
  or x12, x13, x14
  vsub.vv v4, v3, v2
  vsub.vv v6, v6, v3
  vfmacc.vv v2, v2, v1
  vle.v v6, (x20)
  vfmacc.vv v5, v6, v2
  blt x6, x6, L6
  sb x12, 2022(x21)
  ld x5, 1216(x22)
  vmflt.vv v3, v5, v1
L6:
  li x28, 5
L7:
  vid.v v2
  li x7, 17
  vmv.v.x v6, x7
  vmslt.vv v0, v2, v6
  vmerge.vvm v4, v4, v6, v0
  vse.v v3, (x22)
  sw x11, 3768(x20)
  li x27, 167
  vsetvli x8, x27, e8
  vfsub.vv v4, v6, v2
  addi x28, x28, -1
  bne x28, x0, L7
  blt x11, x15, L8
  li x9, -123
  vle.v v6, (x23)
L8:
  vsub.vv v3, v6, v6
  vid.v v4
  li x14, 177
  vmv.v.x v4, x14
  vmslt.vv v0, v4, v4
  vle.v v1, (x20), v0.t
  vfmul.vv v2, v4, v4
  halt
