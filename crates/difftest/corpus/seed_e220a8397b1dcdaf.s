# seed 0xe220a8397b1dcdaf — regression: masked vector load whose mask
# idiom collides registers (vmslt.vv with equal sources -> all-false
# mask). The zero-active-element access livelocked the decoupled-access
# baseline engine (1bIV/1bDV): an empty memory transaction waited
# forever for a response that never comes.

serial:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  sb x8, 3874(x22)
  andi x6, x5, 592
  sd x10, 2584(x20)
  div x11, x9, x10
  addi x9, x7, -1682
  li x13, -4015
  xor x12, x14, x10
  fmul.s f5, f6, f5
  li x28, 3
L1:
  fmax.s f6, f4, f3
  li x6, -1106
  sub x10, x5, x6
  addi x28, x28, -1
  bne x28, x0, L1
  rem x14, x13, x8
  lw x7, 372(x20)
  or x9, x7, x8
  ld x7, 1824(x22)
  lbu x13, 25(x21)
  lbu x14, 960(x22)
  halt
vector:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  li x26, 1
  li x27, 110
  vsetvli x14, x27, e8
  vmflt.vv v3, v3, v4
  li x27, 105
  vsetvli x10, x27, e16
  li x14, 3995
  sb x5, 3332(x23)
  li x27, 115
  vsetvli x15, x27, e8
  fmv.w.x f3, x11
  li x28, 4
L2:
  vrgather.vv v3, v6, v4
  fmin.s f6, f3, f6
  vlse.v v4, (x22), x26
  vid.v v2
  li x7, 32
  vmv.v.x v2, x7
  vmslt.vv v0, v2, v2
  vle.v v5, (x21), v0.t
  addi x28, x28, -1
  bne x28, x0, L2
  vfmacc.vv v6, v6, v3
  fmul.s f1, f5, f3
  li x27, 120
  vsetvli x11, x27, e32
  lw x13, 3664(x22)
  vadd.vv v5, v2, v3
  vfredosum.vs v3, v6, v3
  vmax.vx v5, v6, x9
  lbu x9, 1568(x22)
  sltu x13, x15, x7
  add x12, x5, x12
  vid.v v6
  li x8, 57
  vmv.v.x v5, x8
  vmslt.vv v0, v6, v5
  vmerge.vvm v4, v6, v2, v0
  srai x12, x10, 50
  andi x13, x9, 1902
  halt
