# seed 0x0ae89775f52a28c8 — scalar-heavy program with a single e8 vector
# section: loops, forward branches, FP moves, byte loads/stores.

serial:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  blt x8, x10, L1
  or x12, x6, x13
  li x12, -3269
L1:
  fmv.w.x f3, x10
  sd x7, 2192(x22)
  srai x5, x8, 60
  bge x9, x6, L2
  andi x7, x12, -1135
L2:
  li x28, 1
L3:
  fsw f6, 3932(x22)
  fsw f2, 328(x23)
  lbu x12, 2754(x22)
  addi x28, x28, -1
  bne x28, x0, L3
  li x28, 2
L4:
  divu x11, x6, x7
  remu x14, x14, x12
  addi x28, x28, -1
  bne x28, x0, L4
  bne x5, x10, L5
  andi x5, x15, 1412
  srai x8, x9, 48
L5:
  lbu x15, 2835(x23)
  divu x9, x7, x10
  ld x6, 904(x20)
  li x28, 2
L6:
  li x8, -2773
  addi x15, x5, 152
  addi x14, x5, -1593
  addi x28, x28, -1
  bne x28, x0, L6
  halt
vector:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  li x26, 4
  li x27, 113
  vsetvli x15, x27, e8
  lbu x5, 2135(x22)
  vadd.vv v4, v2, v6
  andi x14, x5, -323
  divu x14, x5, x13
  ld x6, 1488(x21)
  flw f1, 1360(x23)
  rem x15, x5, x14
  li x6, -1029
  vse.v v6, (x23)
  mul x15, x6, x15
  vpopc.m x5, v2
  fsw f3, 2844(x20)
  bne x9, x5, L7
  sd x13, 552(x22)
L7:
  bltu x8, x14, L8
  addi x14, x13, -1389
L8:
  halt
