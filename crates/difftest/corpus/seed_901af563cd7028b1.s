# seed 0x901af563cd7028b1 — masked *indexed* loads/stores (vluxei/vsuxei
# with v0.t) plus vrgather and slides at e8.

serial:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  bge x14, x5, L1
  flw f3, 1080(x23)
  slli x9, x14, 50
  slli x12, x12, 57
L1:
  ld x13, 320(x22)
  andi x10, x9, -70
  fadd.s f3, f4, f6
  addi x9, x6, -55
  andi x14, x8, 600
  fmv.w.x f4, x8
  sd x12, 400(x20)
  sw x9, 2460(x23)
  sltu x5, x6, x9
  andi x7, x11, -1424
  fsw f1, 3116(x22)
  sw x13, 2300(x23)
  sub x9, x14, x8
  li x6, -2026
  flw f4, 1736(x22)
  lbu x11, 3289(x22)
  halt
vector:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  li x26, 1
  li x27, 93
  vsetvli x8, x27, e8
  vsse.v v5, (x21), x26
  vid.v v4
  li x14, 77
  vmv.v.x v6, x14
  vmslt.vv v0, v4, v6
  vid.v v7
  vsll.vi v7, v7, 2
  vsuxei.v v5, (x20), v7, v0.t
  vid.v v2
  vrgather.vv v6, v6, v3
  vse.v v1, (x22), v0.t
  vfsub.vv v1, v3, v3
  lbu x14, 3378(x22)
  li x9, 3962
  vmv.x.s x14, v4
  fsw f5, 2656(x23)
  vmin.vv v5, v6, v6
  srli x15, x11, 25
  vfmul.vv v2, v6, v4
  li x15, 1162
  vmax.vx v5, v6, x12
  vid.v v7
  vsll.vi v7, v7, 2
  vsuxei.v v4, (x22), v7
  vadd.vx v2, v6, x10
  vslidedown.vx v2, v6, x6
  vmax.vx v2, v3, x12
  vmflt.vv v4, v2, v1
  lbu x14, 881(x20)
  li x9, -313
  vrgather.vv v2, v5, v1
  andi x10, x13, 373
  vid.v v7
  vsll.vi v7, v7, 3
  vsuxei.v v5, (x22), v7
  vfmacc.vv v1, v1, v6
  lw x12, 1324(x23)
  vid.v v7
  vsll.vi v7, v7, 1
  vluxei.v v1, (x20), v7, v0.t
  vslideup.vx v6, v5, x11
  vmin.vv v3, v1, v4
  vle.v v2, (x20), v0.t
  halt
