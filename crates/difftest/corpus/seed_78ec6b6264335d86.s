# seed 0x78ec6b6264335d86 — three vsetvli reconfigurations spanning both
# SEW extremes (e8 and e64) with strided + masked traffic in between.

serial:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  sw x5, 2680(x20)
  fmv.w.x f2, x5
  srai x15, x13, 37
  sd x9, 1456(x23)
  li x13, -3109
  ld x12, 240(x23)
  andi x10, x15, -153
  li x28, 3
L1:
  lbu x14, 2574(x23)
  lbu x7, 2891(x23)
  sd x7, 8(x22)
  addi x28, x28, -1
  bne x28, x0, L1
  halt
vector:
  li x20, 8192
  li x21, 12288
  li x22, 16384
  li x23, 20480
  li x26, 2
  li x27, 177
  vsetvli x13, x27, e64
  sb x8, 3294(x20)
  vid.v v4
  li x11, 6
  vmv.v.x v3, x11
  vmslt.vv v0, v4, v3
  vse.v v4, (x23), v0.t
  fmv.w.x f5, x7
  vmslt.vv v4, v5, v1
  vle.v v3, (x20)
  xor x13, x12, x8
  li x28, 2
L2:
  fadd.s f6, f6, f4
  sd x15, 3024(x20)
  li x27, 174
  vsetvli x5, x27, e64
  vmflt.vv v4, v1, v6
  vsse.v v5, (x20), x26
  addi x28, x28, -1
  bne x28, x0, L2
  vid.v v3
  li x5, 96
  vmv.v.x v3, x5
  vmslt.vv v0, v3, v3
  vmerge.vvm v6, v5, v6, v0
  sd x7, 1680(x22)
  vse.v v6, (x20)
  li x28, 1
L3:
  flw f4, 532(x21)
  vmerge.vvm v2, v1, v2, v0
  fmv.w.x f3, x8
  vadd.vv v1, v3, v5
  addi x28, x28, -1
  bne x28, x0, L3
  li x28, 5
L4:
  vmslt.vv v1, v5, v1
  sb x13, 2562(x22)
  li x27, 182
  vsetvli x5, x27, e8
  addi x28, x28, -1
  bne x28, x0, L4
  halt
