# Hand-minimal reproducer (shrunk by ddmin from seed 0xe220a8397b1dcdaf's
# 74-line program) of the zero-active-element livelocks. v0 is never
# written and no vsetvli runs, so the masked load has no active elements
# (vl = 0) and produces no memory traffic. Two engines hung on it:
#  * the decoupled-access baseline engine (1bIV/1bDV) built an empty
#    memory transaction and waited forever for its response;
#  * the VLITTLE engine (1b-4VL) expanded it to zero lane writeback
#    micro-ops, so the VMU's load command could never be retired by its
#    (nonexistent) consumers.
serial:
  halt
vector:
  vle.v v5, (x21), v0.t
  halt
