//! Property layer over the fuzzing pipeline: arbitrary seeds must yield
//! generated programs that pass the differential check on every system.
//!
//! This is a bounded in-tree slice of the campaign the `difftest` binary
//! runs at scale — a handful of cases keeps `cargo test` fast while still
//! exercising the full generate → oracle → simulate → compare path on
//! seeds the curated corpus never picked.

use bvl_difftest::{check_program, generate, shrink, DiffResult};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn arbitrary_seeds_pass_on_all_systems(seed in any::<u64>()) {
        let prog = generate(seed);
        match check_program(&prog) {
            DiffResult::Pass => {}
            DiffResult::Invalid(why) => {
                prop_assert!(false, "seed {seed:#x}: generator emitted an untestable program: {why}");
            }
            DiffResult::Diverged(d) => {
                let minimal = shrink(&prog, &|p| check_program(p).is_divergence());
                prop_assert!(
                    false,
                    "seed {seed:#x}: divergence on {d}\nminimal reproducer:\n{}",
                    minimal.render()
                );
            }
        }
    }
}
