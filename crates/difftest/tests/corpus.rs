//! Corpus replay: every committed `corpus/*.s` program must pass the
//! full differential check on all seven systems, forever.
//!
//! Programs land here in two ways: curated generator output covering a
//! feature (strided, indexed, masked, reductions, `vsetvli`
//! reconfiguration), and shrunken reproducers of fixed divergences. A
//! failure in this suite is a regression in a simulator timing model,
//! the functional executor, or the extraction hooks — never flaky.

use bvl_difftest::{check_program, DiffResult, DtProgram};
use std::fs;
use std::path::PathBuf;

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "s"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        !corpus_files().is_empty(),
        "the committed regression corpus vanished"
    );
}

#[test]
fn every_corpus_program_passes_on_all_systems() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).expect("read corpus program");
        let prog = DtProgram::parse(&text).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        match check_program(&prog) {
            DiffResult::Pass => {}
            DiffResult::Invalid(why) => panic!("{name}: became untestable: {why}"),
            DiffResult::Diverged(d) => panic!("{name}: regressed: {d}"),
        }
    }
}

#[test]
fn corpus_programs_round_trip_through_the_text_format() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).expect("read corpus program");
        let prog = DtProgram::parse(&text).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let rendered = prog.render();
        let back = DtProgram::parse(&rendered).unwrap_or_else(|e| panic!("{name}: reparse: {e}"));
        assert_eq!(
            prog.lines, back.lines,
            "{name}: render/parse round trip changed the program"
        );
    }
}
