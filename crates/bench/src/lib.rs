//! # bvl-bench — Criterion benchmark harness
//!
//! The benches (in `benches/`) exercise every reproduction path:
//!
//! * `figures` — one bench group per paper figure (4, 5/6, 7, 8, 9–11),
//!   each running the figure's core measurement at test scale.
//! * `tables` — the table artifacts (IV/V characterization, VI area,
//!   VII power levels).
//! * `components` — microbenchmarks of the substrate: golden-executor
//!   throughput, cache hit/miss paths, and the VLITTLE engine's strip
//!   loop.
//!
//! Run with `cargo bench`. The *paper-facing* numbers come from the
//! `bvl-experiments` binaries; these benches track simulator performance
//! and keep every path hot under CI.
