//! Sweep-harness throughput: points/sec for one figure-sized matrix at
//! `--jobs 1` versus all available cores, so the fan-out speedup is
//! tracked alongside the per-figure simulator benches.

use bvl_experiments::sweep::{default_jobs, run_sweep, SweepJob};
use bvl_experiments::ExpOpts;
use bvl_sim::{SimParams, SystemKind};
use bvl_workloads::kernels::{saxpy, vvadd};
use bvl_workloads::{Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::L1,
    SystemKind::B1,
    SystemKind::BDv,
    SystemKind::B4Vl,
];

fn matrix(workloads: &[Arc<Workload>]) -> Vec<SweepJob> {
    workloads
        .iter()
        .flat_map(|w| {
            SYSTEMS
                .into_iter()
                .map(|kind| SweepJob::new(kind, w, "tiny", SimParams::default()))
        })
        .collect()
}

fn sweep_throughput(c: &mut Criterion) {
    let workloads = vec![
        Arc::new(vvadd::build(Scale::tiny())),
        Arc::new(saxpy::build(Scale::tiny())),
    ];
    let jobs = matrix(&workloads);
    let mut g = c.benchmark_group("sweep_throughput");
    g.sample_size(10)
        .throughput(Throughput::Elements(jobs.len() as u64));
    let mut worker_counts = vec![1];
    if default_jobs() > 1 {
        worker_counts.push(default_jobs());
    }
    for workers in worker_counts {
        g.bench_function(format!("jobs{workers}"), |b| {
            b.iter(|| {
                // A fresh ExpOpts per iteration (empty memo, no disk
                // layer) so every point actually simulates.
                let opts = ExpOpts::for_scale("tiny", std::env::temp_dir()).with_jobs(workers);
                black_box(run_sweep(&jobs, &opts))
            });
        });
    }
    g.finish();
}

criterion_group!(sweep, sweep_throughput);
criterion_main!(sweep);
