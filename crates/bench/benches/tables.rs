//! Criterion benches for the table artifacts: workload characterization
//! (Tables IV & V), the area model (Table VI) and the power levels
//! (Table VII).

use bvl_area::{cluster_4l, cluster_4vl, vlittle_overhead, LittleCoreRtl};
use bvl_isa::exec::Machine;
use bvl_power::{pareto_frontier, PerfPowerPoint, SystemPower, BIG_LEVELS, LITTLE_LEVELS};
use bvl_workloads::{kernels::saxpy, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Tables IV & V: golden-machine characterization run.
fn tab45(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab45_characterization");
    g.sample_size(10);
    g.bench_function("saxpy_vector_entry", |b| {
        b.iter(|| {
            let w = saxpy::build(Scale::tiny());
            let mut m = Machine::new(w.mem.fork(), 512);
            m.set_pc(w.vector_entry.expect("vectorized"));
            m.run(&w.program, 1_000_000_000).expect("runs");
            black_box(m.counters())
        });
    });
    g.finish();
}

/// Table VI: the area composition.
fn tab06(c: &mut Criterion) {
    c.bench_function("tab06_area_model", |b| {
        b.iter(|| {
            for rtl in [LittleCoreRtl::Simple, LittleCoreRtl::Ariane] {
                black_box((
                    cluster_4l(rtl).total_kum2,
                    cluster_4vl(rtl).total_kum2,
                    vlittle_overhead(rtl),
                ));
            }
        });
    });
}

/// Table VII + the Pareto machinery of Figures 10/11.
fn tab07(c: &mut Criterion) {
    c.bench_function("tab07_power_pareto", |b| {
        b.iter(|| {
            let mut pts = Vec::new();
            for big in BIG_LEVELS {
                for little in LITTLE_LEVELS {
                    pts.push(PerfPowerPoint {
                        label: format!("{}-{}", big.name, little.name),
                        time: 1.0 / (big.ghz + little.ghz),
                        power: SystemPower::BigPlusLittles(4).watts(big, little),
                    });
                }
            }
            black_box(pareto_frontier(&pts))
        });
    });
}

criterion_group!(tables, tab45, tab06, tab07);
criterion_main!(tables);
