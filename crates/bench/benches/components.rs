//! Substrate microbenchmarks: golden-executor throughput, the cache
//! hit/miss paths and a full VLITTLE strip loop. These catch simulator
//! performance regressions independent of the figure-level runs.

use bvl_isa::asm::Assembler;
use bvl_isa::exec::Machine;
use bvl_isa::mem::VecMemory;
use bvl_isa::reg::XReg;
use bvl_sim::{simulate, SimParams, SystemKind};
use bvl_workloads::{kernels::mmult, Scale};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Golden-executor instructions per second on a tight ALU loop.
fn executor_throughput(c: &mut Criterion) {
    let mut a = Assembler::new();
    let (i, n, acc) = (XReg::new(5), XReg::new(6), XReg::new(7));
    a.li(i, 0);
    a.li(n, 10_000);
    a.label("loop");
    a.add(acc, acc, i);
    a.xor(acc, acc, n);
    a.addi(i, i, 1);
    a.bne(i, n, "loop");
    a.halt();
    let prog = a.assemble().expect("assembles");

    let mut g = c.benchmark_group("executor");
    g.throughput(Throughput::Elements(40_003));
    g.bench_function("alu_loop", |b| {
        b.iter(|| {
            let mut m = Machine::new(VecMemory::new(64), 512);
            black_box(m.run(&prog, 10_000_000).expect("runs"))
        });
    });
    g.finish();
}

/// Cache model: hit-path and miss-path costs.
fn cache_paths(c: &mut Criterion) {
    use bvl_mem::cache::{Cache, CacheParams};
    use bvl_mem::req::{AccessKind, MemReq, PortId};

    let mut g = c.benchmark_group("cache");
    g.bench_function("hit_path", |b| {
        let mut cache = Cache::new(CacheParams::little_l1());
        cache.tick(0);
        cache.access(
            0,
            MemReq {
                id: 0,
                addr: 0x100,
                size: 4,
                is_store: false,
                kind: AccessKind::Data,
                port: PortId::BigData,
            },
        );
        cache.fill(0, 0x100);
        let mut t = 1;
        b.iter(|| {
            cache.tick(t);
            let out = cache.access(
                t,
                MemReq {
                    id: t,
                    addr: 0x100,
                    size: 4,
                    is_store: false,
                    kind: AccessKind::Data,
                    port: PortId::BigData,
                },
            );
            t += 1;
            black_box(out)
        });
    });
    g.finish();
}

/// A full mmult run on the VLITTLE engine — the heaviest single-system
/// simulation path.
fn vlittle_mmult(c: &mut Criterion) {
    let w = mmult::build(Scale::tiny());
    let params = SimParams::default();
    let mut g = c.benchmark_group("vlittle");
    g.sample_size(10);
    g.bench_function("mmult_tiny", |b| {
        b.iter(|| black_box(simulate(SystemKind::B4Vl, &w, &params).expect("runs")));
    });
    g.finish();
}

criterion_group!(components, executor_throughput, cache_paths, vlittle_mmult);
criterion_main!(components);
