//! Criterion benches for the figure experiments: each bench executes the
//! core measurement behind one paper figure at test scale, routed through
//! the shared sweep runner (`bvl_experiments::sweep`), so `cargo bench`
//! exercises every reproduction path and tracks simulator throughput
//! regressions.

use bvl_experiments::sweep::{run_sweep, SweepJob};
use bvl_experiments::ExpOpts;
use bvl_sim::{SimParams, SystemKind};
use bvl_vengine::regmap::RegMap;
use bvl_workloads::{kernels::saxpy, kernels::vvadd, Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// Options for benching: cold (no memo reads/writes), serial, so each
/// iteration times exactly one fresh simulation.
fn bench_opts() -> ExpOpts {
    let mut opts = ExpOpts::for_scale("tiny", std::env::temp_dir()).with_jobs(1);
    opts.use_cache = false;
    opts
}

/// Times one (system, workload, params) point through the sweep runner.
fn bench_point(
    b: &mut criterion::Bencher,
    kind: SystemKind,
    w: &Arc<Workload>,
    params: &SimParams,
) {
    let opts = bench_opts();
    let jobs = [SweepJob::new(kind, w, "tiny", params.clone())];
    b.iter(|| black_box(run_sweep(&jobs, &opts)));
}

/// Figure 4: speedup measurement (one representative data-parallel kernel
/// per system class).
fn fig04(c: &mut Criterion) {
    let w = Arc::new(saxpy::build(Scale::tiny()));
    let params = SimParams::default();
    let mut g = c.benchmark_group("fig04_speedup");
    g.sample_size(10);
    for kind in [
        SystemKind::L1,
        SystemKind::BIv,
        SystemKind::BDv,
        SystemKind::B4Vl,
    ] {
        g.bench_function(kind.label(), |b| bench_point(b, kind, &w, &params));
    }
    g.finish();
}

/// Figures 5 & 6: traffic counting on the three comparison systems.
fn fig05_06(c: &mut Criterion) {
    let w = Arc::new(vvadd::build(Scale::tiny()));
    let params = SimParams::default();
    let mut g = c.benchmark_group("fig05_06_traffic");
    g.sample_size(10);
    for kind in [SystemKind::BIv4L, SystemKind::BDv, SystemKind::B4Vl] {
        g.bench_function(kind.label(), |b| {
            let opts = bench_opts();
            let jobs = [SweepJob::new(kind, &w, "tiny", params.clone())];
            b.iter(|| {
                let r = &run_sweep(&jobs, &opts)[0];
                black_box((r.stat("sys.fetch_groups"), r.stat("sys.mem.data_reqs")))
            });
        });
    }
    g.finish();
}

/// Figure 7: the three VLITTLE pipeline configurations.
fn fig07(c: &mut Criterion) {
    let w = Arc::new(saxpy::build(Scale::tiny()));
    let mut g = c.benchmark_group("fig07_breakdown");
    g.sample_size(10);
    for (name, chimes, packed) in [("1c", 1, false), ("1c+sw", 1, true), ("2c+sw", 2, true)] {
        let mut params = SimParams::default();
        params.engine.regmap = RegMap {
            cores: 4,
            chimes,
            packed,
        };
        g.bench_function(name, |b| bench_point(b, SystemKind::B4Vl, &w, &params));
    }
    g.finish();
}

/// Figure 8: the VMU data-queue sweep endpoints.
fn fig08(c: &mut Criterion) {
    let w = Arc::new(vvadd::build(Scale::tiny()));
    let mut g = c.benchmark_group("fig08_lsq");
    g.sample_size(10);
    for size in [4usize, 64] {
        let mut params = SimParams::default();
        params.engine.vmu.load_data_slots = size;
        params.engine.vmu.store_data_slots = size;
        g.bench_function(format!("{size}_lines"), |b| {
            bench_point(b, SystemKind::B4Vl, &w, &params)
        });
    }
    g.finish();
}

/// Figures 9–11: one corner of the V/F grid (full grids live in the
/// experiment binaries).
fn fig09_11(c: &mut Criterion) {
    let w = Arc::new(vvadd::build(Scale::tiny()));
    let mut g = c.benchmark_group("fig09_11_dvfs");
    g.sample_size(10);
    for (name, big, little) in [("b1_l2", 1.0, 1.0), ("b0_l3", 0.8, 1.2)] {
        let mut params = SimParams::default();
        params.clocks.big_ghz = big;
        params.clocks.little_ghz = little;
        g.bench_function(name, |b| bench_point(b, SystemKind::B4Vl, &w, &params));
    }
    g.finish();
}

criterion_group!(figures, fig04, fig05_06, fig07, fig08, fig09_11);
criterion_main!(figures);
