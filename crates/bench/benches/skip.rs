//! Quiescence-skip speedup: single-run `simulate` with the event-aware
//! tick-skip engine on versus the naive cycle-by-cycle loop (`no_skip`).
//!
//! One memory-bound workload (vvadd — long DRAM-latency windows the skip
//! engine batch-advances over) and one compute-bound workload (mmult —
//! dense per-cycle activity, the skip engine's worst case) on the two
//! vector-engine systems. The skip/naive pairs produce byte-identical
//! results (enforced by `crates/sim/tests/skip_equivalence.rs`); these
//! benches track how much wall time the batching buys.

use bvl_sim::{simulate, SimParams, SystemKind};
use bvl_workloads::kernels::{mmult, vvadd};
use bvl_workloads::{Scale, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pair(c: &mut Criterion, name: &str, kind: SystemKind, w: &Workload) {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    for (id, no_skip) in [("skip", false), ("naive", true)] {
        let params = SimParams {
            no_skip,
            ..SimParams::default()
        };
        g.bench_function(id, |b| {
            b.iter(|| black_box(simulate(kind, w, &params).expect("runs")));
        });
    }
    g.finish();
}

/// Memory-bound: streaming vvadd, dominated by DRAM round-trips.
fn skip_memory_bound(c: &mut Criterion) {
    let w = vvadd::build(Scale::tiny());
    bench_pair(c, "skip_vvadd_1bIV", SystemKind::BIv, &w);
    bench_pair(c, "skip_vvadd_1bDV", SystemKind::BDv, &w);
}

/// Compute-bound: blocked mmult with reuse, few idle windows.
fn skip_compute_bound(c: &mut Criterion) {
    let w = mmult::build(Scale::tiny());
    bench_pair(c, "skip_mmult_1bDV", SystemKind::BDv, &w);
}

criterion_group!(skip, skip_memory_bound, skip_compute_bound);
criterion_main!(skip);
