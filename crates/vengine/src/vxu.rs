//! The vector cross-element unit (VXU): a pipelined unidirectional ring.
//!
//! Paper section III-D: `vxread` micro-ops push source elements into the
//! ring; once all sources have arrived the VXU shifts every element one
//! hop per cycle, delivering requested elements to the lanes executing
//! `vxwrite`/`vxreduce`. Shifting all elements takes `N` cycles for `N`
//! source elements, plus the ring's pipeline depth. To avoid deadlock the
//! VXU processes **one cross-element instruction at a time**; the VCU
//! holds subsequent ones (lanes see `xelem` stalls).

/// VXU timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct VxuParams {
    /// Ring pipeline depth (entry + exit registers).
    pub pipeline: u64,
    /// Model an idealized crossbar instead of the unidirectional ring:
    /// all elements are delivered after the pipeline depth alone, with no
    /// per-element shifting (the paper's section III-D notes a crossbar
    /// as the lower-latency / higher-area alternative — this is the
    /// design-choice ablation).
    pub crossbar: bool,
}

impl Default for VxuParams {
    fn default() -> Self {
        VxuParams {
            pipeline: 2,
            crossbar: false,
        }
    }
}

/// VXU statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VxuStats {
    /// Cross-element transactions processed.
    pub transactions: u64,
    /// Total source elements shifted.
    pub elements: u64,
}

impl VxuStats {
    /// Registers every counter under `scope` (conventionally
    /// `sys.engine.vxu`).
    pub fn register(&self, scope: &mut bvl_obs::Scope<'_>) {
        scope.set("transactions", self.transactions);
        scope.set("elements", self.elements);
    }
}

#[derive(Clone, Copy, Debug)]
struct Tx {
    id: u64,
    total_elems: u32,
    reads_remaining: u32,
    all_reads_done_at: Option<u64>,
}

bvl_snap::snap_struct!(VxuStats {
    transactions,
    elements,
});

bvl_snap::snap_struct!(Tx {
    id,
    total_elems,
    reads_remaining,
    all_reads_done_at,
});

/// The cross-element ring model.
#[derive(Clone, Debug)]
pub struct Vxu {
    params: VxuParams,
    tx: Option<Tx>,
    stats: VxuStats,
}

impl Default for Vxu {
    fn default() -> Self {
        Vxu::new(VxuParams::default())
    }
}

impl Vxu {
    /// Creates a VXU.
    pub fn new(params: VxuParams) -> Self {
        Vxu {
            params,
            tx: None,
            stats: VxuStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &VxuStats {
        &self.stats
    }

    /// True while a transaction occupies the ring.
    pub fn busy(&self) -> bool {
        self.tx.is_some()
    }

    /// Reserves the ring for transaction `id` expecting `reads` per-lane
    /// `vxread` completions covering `total_elems` source elements.
    ///
    /// # Panics
    ///
    /// Panics if the ring is already occupied (the VCU must serialize).
    pub fn begin(&mut self, id: u64, reads: u32, total_elems: u32) {
        assert!(self.tx.is_none(), "VXU processes one transaction at a time");
        self.stats.transactions += 1;
        self.stats.elements += u64::from(total_elems);
        self.tx = Some(Tx {
            id,
            total_elems,
            reads_remaining: reads,
            all_reads_done_at: None,
        });
    }

    /// Records one `vxread` micro-op completing at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if no transaction with this id is active.
    pub fn read_done(&mut self, id: u64, now: u64) {
        let tx = self.tx.as_mut().expect("active transaction");
        assert_eq!(tx.id, id, "read for a different transaction");
        assert!(tx.reads_remaining > 0, "too many reads");
        tx.reads_remaining -= 1;
        if tx.reads_remaining == 0 {
            tx.all_reads_done_at = Some(now);
        }
    }

    /// True once shifted results for transaction `id` are deliverable at
    /// cycle `now` (all reads done + N-element shift + pipeline; an
    /// idealized crossbar skips the shift).
    pub fn ready(&self, id: u64, now: u64) -> bool {
        self.ready_at(id).is_some_and(|t| now >= t)
    }

    /// The cycle transaction `id` becomes deliverable, once every read is
    /// in (`None` before that — the readiness deadline is unknown until
    /// the last `vxread` lands).
    pub fn ready_at(&self, id: u64) -> Option<u64> {
        match self.tx {
            Some(tx) if tx.id == id => tx.all_reads_done_at.map(|done| {
                let shift = if self.params.crossbar {
                    0
                } else {
                    u64::from(tx.total_elems)
                };
                done + shift + self.params.pipeline
            }),
            _ => None,
        }
    }

    /// Releases the ring after the consuming micro-ops finish.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the active transaction.
    pub fn complete(&mut self, id: u64) {
        let tx = self.tx.take().expect("active transaction");
        assert_eq!(tx.id, id, "completing a different transaction");
    }

    /// Appends the VXU's mutable state to a checkpoint (`params` is
    /// configuration and not written).
    pub fn save_state(&self, w: &mut bvl_snap::SnapWriter) {
        use bvl_snap::Snap;
        self.tx.save(w);
        self.stats.save(w);
    }

    /// Restores state written by [`Vxu::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`bvl_snap::SnapError`] on malformed input.
    pub fn restore_state(
        &mut self,
        r: &mut bvl_snap::SnapReader<'_>,
    ) -> Result<(), bvl_snap::SnapError> {
        use bvl_snap::Snap;
        self.tx = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_transaction_lifecycle() {
        let mut v = Vxu::new(VxuParams::default());
        assert!(!v.busy());
        v.begin(1, 2, 8);
        assert!(v.busy());
        assert!(!v.ready(1, 100));
        v.read_done(1, 10);
        assert!(!v.ready(1, 100)); // one read still pending
        v.read_done(1, 12);
        // ready at 12 + 8 elements + 2 pipeline = 22.
        assert!(!v.ready(1, 21));
        assert!(v.ready(1, 22));
        v.complete(1);
        assert!(!v.busy());
        assert_eq!(v.stats().transactions, 1);
        assert_eq!(v.stats().elements, 8);
    }

    #[test]
    #[should_panic(expected = "one transaction at a time")]
    fn double_begin_panics() {
        let mut v = Vxu::new(VxuParams::default());
        v.begin(1, 1, 4);
        v.begin(2, 1, 4);
    }

    #[test]
    fn shift_time_scales_with_elements() {
        let mut v = Vxu::new(VxuParams::default());
        v.begin(3, 1, 16);
        v.read_done(3, 0);
        assert!(!v.ready(3, 17));
        assert!(v.ready(3, 18));
    }
}
