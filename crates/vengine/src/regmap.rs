//! Mapping vector-register elements onto little-core scalar registers.
//!
//! Paper section III-C and Figure 2: vector register `vN` (N ≥ 1) stores
//! its elements in scalar *physical* register `N` of each little core —
//! the integer file for the first element group (chime 0) and the
//! floating-point file for the second (chime 1). Consecutive elements are
//! packed two-per-64-bit-register when the element width allows, and
//! element groups are striped across cores:
//!
//! ```text
//! e32, 4 cores, packed, 2 chimes (VLEN = 512 b, VLMAX = 16):
//!   elem  0, 1 -> core0.x[N]      elem  2, 3 -> core1.x[N]   ...
//!   elem  8, 9 -> core0.f[N]      elem 10,11 -> core1.f[N]   ...
//! ```
//!
//! `v0` (the mask register) maps to the extra `x0*`/`f0*` registers added
//! per core so predicated instructions can read the mask without an extra
//! register-file read port.

use bvl_isa::vcfg::Sew;

/// Which per-core physical register file a chime uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegFile {
    /// Integer registers (chime 0).
    Int,
    /// Floating-point registers (chime 1).
    Fp,
    /// The extra mask register (`x0*`/`f0*`) holding `v0`.
    Mask,
}

/// Where one vector element lives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ElemLoc {
    /// Little-core index within the cluster.
    pub core: u8,
    /// Element group.
    pub chime: u8,
    /// Physical register file.
    pub file: RegFile,
    /// Register index within the file (equals the architectural vector
    /// register number).
    pub reg: u8,
    /// Packed sub-slot within the 64-bit register (0 when unpacked).
    pub subslot: u8,
}

/// The engine's register-mapping geometry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegMap {
    /// Number of little cores (lanes).
    pub cores: u8,
    /// Element groups (1 or 2; chime 1 uses the FP register file).
    pub chimes: u8,
    /// Pack multiple sub-word elements per 64-bit register.
    pub packed: bool,
}

impl RegMap {
    /// The paper's `1b-4VL` geometry: 4 cores, 2 chimes, packed.
    pub fn paper_default() -> Self {
        RegMap {
            cores: 4,
            chimes: 2,
            packed: true,
        }
    }

    /// Elements stored per 64-bit scalar register at `sew`.
    pub fn elems_per_reg(&self, sew: Sew) -> u32 {
        if self.packed {
            64 / sew.bits()
        } else {
            1
        }
    }

    /// Elements per chime across the whole cluster.
    pub fn elems_per_chime(&self, sew: Sew) -> u32 {
        u32::from(self.cores) * self.elems_per_reg(sew)
    }

    /// Hardware VLMAX at `sew`.
    pub fn vlmax(&self, sew: Sew) -> u32 {
        u32::from(self.chimes) * self.elems_per_chime(sew)
    }

    /// Hardware vector length in bits.
    ///
    /// With packing this is `chimes * cores * 64` independent of `sew`;
    /// without packing each register holds one element, so the bit length
    /// is quoted at the paper's 32-bit workload element width.
    pub fn vlen_bits(&self) -> u32 {
        let per_reg_bits = if self.packed { 64 } else { 32 };
        u32::from(self.chimes) * u32::from(self.cores) * per_reg_bits
    }

    /// Locates element `e` of a vector register `v` at `sew`.
    ///
    /// ```
    /// use bvl_vengine::regmap::{RegFile, RegMap};
    /// use bvl_isa::vcfg::Sew;
    ///
    /// // Figure 2's layout: elements 0 and 1 of v1 pack into core 0's
    /// // integer register 1; element 8 starts the FP-file chime.
    /// let map = RegMap::paper_default();
    /// let loc = map.locate(1, 1, Sew::E32);
    /// assert_eq!((loc.core, loc.file, loc.subslot), (0, RegFile::Int, 1));
    /// assert_eq!(map.locate(1, 8, Sew::E32).file, RegFile::Fp);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `e >= vlmax(sew)`.
    pub fn locate(&self, v: u8, e: u32, sew: Sew) -> ElemLoc {
        assert!(e < self.vlmax(sew), "element {e} out of range");
        let per_reg = self.elems_per_reg(sew);
        let per_chime = self.elems_per_chime(sew);
        let chime = (e / per_chime) as u8;
        let within = e % per_chime;
        let core = (within / per_reg) as u8;
        let subslot = (within % per_reg) as u8;
        let file = if v == 0 {
            RegFile::Mask
        } else if chime == 0 {
            RegFile::Int
        } else {
            RegFile::Fp
        };
        ElemLoc {
            core,
            chime,
            file,
            reg: v,
            subslot,
        }
    }

    /// Number of elements of a `vl`-element operation that land on `core`
    /// within `chime`.
    pub fn elems_on(&self, core: u8, chime: u8, vl: u32, sew: Sew) -> u32 {
        let per_reg = self.elems_per_reg(sew);
        let per_chime = self.elems_per_chime(sew);
        let chime_base = u32::from(chime) * per_chime;
        if vl <= chime_base {
            return 0;
        }
        let in_chime = (vl - chime_base).min(per_chime);
        let core_base = u32::from(core) * per_reg;
        if in_chime <= core_base {
            0
        } else {
            (in_chime - core_base).min(per_reg)
        }
    }

    /// Number of chimes a `vl`-element operation actually touches.
    pub fn chimes_for(&self, vl: u32, sew: Sew) -> u8 {
        if vl == 0 {
            return 0;
        }
        let per_chime = self.elems_per_chime(sew);
        (vl.div_ceil(per_chime)).min(u32::from(self.chimes)) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_geometry_is_512_bits() {
        let m = RegMap::paper_default();
        assert_eq!(m.vlen_bits(), 512);
        assert_eq!(m.vlmax(Sew::E32), 16);
        assert_eq!(m.vlmax(Sew::E64), 8);
    }

    #[test]
    fn figure2_layout() {
        // Figure 2: 32-bit elements, four cores, two chimes, packed.
        let m = RegMap::paper_default();
        // v1[0], v1[1] packed into core 0's integer register 1.
        let l0 = m.locate(1, 0, Sew::E32);
        let l1 = m.locate(1, 1, Sew::E32);
        assert_eq!(
            (l0.core, l0.file, l0.reg, l0.subslot),
            (0, RegFile::Int, 1, 0)
        );
        assert_eq!(
            (l1.core, l1.file, l1.reg, l1.subslot),
            (0, RegFile::Int, 1, 1)
        );
        // v1[2] starts core 1.
        let l2 = m.locate(1, 2, Sew::E32);
        assert_eq!((l2.core, l2.chime), (1, 0));
        // Second chime (elements 8..16) uses the FP file.
        let l8 = m.locate(1, 8, Sew::E32);
        assert_eq!((l8.core, l8.chime, l8.file), (0, 1, RegFile::Fp));
        // v0 maps to the extra mask registers.
        assert_eq!(m.locate(0, 3, Sew::E32).file, RegFile::Mask);
    }

    #[test]
    fn locate_is_injective_over_vlmax() {
        for &(chimes, packed) in &[(1u8, false), (1, true), (2, true), (2, false)] {
            let m = RegMap {
                cores: 4,
                chimes,
                packed,
            };
            let mut seen = HashSet::new();
            for e in 0..m.vlmax(Sew::E32) {
                let loc = m.locate(5, e, Sew::E32);
                assert!(
                    seen.insert((loc.core, loc.chime, loc.subslot)),
                    "collision at element {e} for {m:?}"
                );
            }
        }
    }

    #[test]
    fn elems_on_accounts_for_every_element() {
        let m = RegMap::paper_default();
        for vl in 0..=m.vlmax(Sew::E32) {
            let total: u32 = (0..m.cores)
                .flat_map(|c| (0..m.chimes).map(move |k| m.elems_on(c, k, vl, Sew::E32)))
                .sum();
            assert_eq!(total, vl, "vl = {vl}");
        }
    }

    #[test]
    fn partial_vl_fills_cores_in_order() {
        let m = RegMap::paper_default();
        // vl = 5 at e32: elements 0-1 on core0, 2-3 on core1, 4 on core2.
        assert_eq!(m.elems_on(0, 0, 5, Sew::E32), 2);
        assert_eq!(m.elems_on(1, 0, 5, Sew::E32), 2);
        assert_eq!(m.elems_on(2, 0, 5, Sew::E32), 1);
        assert_eq!(m.elems_on(3, 0, 5, Sew::E32), 0);
        assert_eq!(m.elems_on(0, 1, 5, Sew::E32), 0);
    }

    #[test]
    fn chimes_for_counts() {
        let m = RegMap::paper_default();
        assert_eq!(m.chimes_for(0, Sew::E32), 0);
        assert_eq!(m.chimes_for(8, Sew::E32), 1);
        assert_eq!(m.chimes_for(9, Sew::E32), 2);
        assert_eq!(m.chimes_for(16, Sew::E32), 2);
    }

    #[test]
    fn unpacked_single_chime_is_128_bits() {
        // The paper's `1c` ablation configuration.
        let m = RegMap {
            cores: 4,
            chimes: 1,
            packed: false,
        };
        assert_eq!(m.vlen_bits(), 128);
        assert_eq!(m.vlmax(Sew::E32), 4);
    }
}
