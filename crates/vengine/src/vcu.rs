//! The vector control unit (paper sections III-B/III-C).
//!
//! The VCU receives vector instructions from the big core over a
//! pipelined command bus, buffers them (UopQ + scalar DataQ), expands each
//! into per-chime micro-ops, and broadcasts one micro-op per cycle to all
//! lanes over a pipelined bus — *only when every lane can accept it*
//! (strict lock-step issue, which is what makes the design simple and
//! what the `simd` stall category measures).
//!
//! Memory instructions additionally produce a [`MemCmd`] pushed to the
//! VMIU *at expansion time*, ahead of the compute micro-ops — this is the
//! access/execute decoupling the paper leans on.

use crate::regmap::RegMap;
use crate::uop::{Uop, UopKind};
use crate::vmu::MemCmd;
use bvl_core::types::VecCmd;
use bvl_isa::instr::{Instr, VArithOp, VMemMode, VSrc};
use bvl_mem::queue::DelayQueue;
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// VCU configuration.
#[derive(Clone, Copy, Debug)]
pub struct VcuParams {
    /// Command-bus entries (instructions in flight from the big core).
    pub busq_depth: usize,
    /// Micro-op queue depth.
    pub uopq_depth: usize,
    /// Scalar data queue depth (shallower than the UopQ to save area,
    /// paper section III-B).
    pub dataq_depth: usize,
    /// Command-bus latency, cycles (pipelined for physical distance).
    pub cmd_bus_latency: u64,
}

impl Default for VcuParams {
    fn default() -> Self {
        VcuParams {
            busq_depth: 8,
            uopq_depth: 32,
            dataq_depth: 8,
            cmd_bus_latency: 1,
        }
    }
}

/// Who receives a broadcast micro-op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Target {
    /// All lanes (lock-step broadcast).
    All,
    /// A single lane (e.g. `vxreduce` to the first core).
    One(u8),
}

/// A micro-op waiting in the UopQ.
#[derive(Clone, Debug)]
pub struct QueuedUop {
    /// The micro-op.
    pub uop: Uop,
    /// Broadcast target.
    pub target: Target,
    /// Releases the instruction's scalar DataQ slot when broadcast.
    pub frees_data_slot: bool,
}

impl Snap for Target {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Target::All => w.u8(0),
            Target::One(c) => {
                w.u8(1);
                c.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Target::All,
            1 => Target::One(Snap::load(r)?),
            t => {
                return Err(SnapError::BadTag {
                    ty: "Target",
                    tag: u64::from(t),
                })
            }
        })
    }
}

snap_struct!(QueuedUop {
    uop,
    target,
    frees_data_slot,
});

/// A cross-element reservation produced by expansion.
#[derive(Clone, Copy, Debug)]
pub struct VxBegin {
    /// VXU transaction id.
    pub id: u64,
    /// Expected `vxread` completions (uops × lanes).
    pub reads: u32,
    /// Source elements shifted through the ring.
    pub total_elems: u32,
    /// Big-core seq to answer with a scalar once the ring output is ready
    /// (`vcpop`/`vfirst`/`vmv.x.s`/`vfmv.f.s`).
    pub scalar_seq: Option<u64>,
    /// Consumer micro-op completions (`VxConsumed` events) to wait for
    /// before releasing the ring.
    pub consumers: u32,
}

/// Memory-command bookkeeping produced by expansion.
#[derive(Clone, Copy, Debug)]
pub struct MemBegin {
    /// VMU transaction id.
    pub mem_id: u64,
    /// Expected `IdxSent` events before indices are ready (0 = none).
    pub idx_events: u32,
    /// Expected `StoreSent` events before store data is assembled.
    pub store_events: u32,
    /// Expected `LoadWbDone` events before the load command retires.
    pub loadwb_events: u32,
}

/// Everything one instruction expands into.
#[derive(Clone, Debug, Default)]
pub struct Expansion {
    /// Micro-ops for the UopQ, in issue order.
    pub uops: Vec<QueuedUop>,
    /// Memory command for the VMIU.
    pub mem: Option<(MemCmd, MemBegin)>,
    /// Cross-element reservation.
    pub vx: Option<VxBegin>,
    /// Scalar response produced by the VCU itself (`vsetvl`).
    pub immediate_scalar: Option<u64>,
    /// The instruction carries a scalar operand (occupies a DataQ slot).
    pub uses_data_slot: bool,
}

/// Expands one vector instruction into micro-ops and unit commands.
///
/// `lanes` is the cluster size (for expected event counts); `line_bytes`
/// and `coalesce` shape the memory command; `next_mem_id`/`next_vx_id`
/// are allocation counters advanced as needed.
pub fn expand(
    cmd: &VecCmd,
    regmap: &RegMap,
    lanes: u32,
    line_bytes: u64,
    coalesce: u32,
    next_mem_id: &mut u64,
    next_vx_id: &mut u64,
) -> Expansion {
    let mut ex = Expansion {
        uses_data_slot: cmd.instr.vector_scalar_source().is_some(),
        ..Expansion::default()
    };
    let chimes = regmap.chimes_for(cmd.vl, cmd.sew).max(
        // Scalar-writing cross-element reads must produce a response even
        // at vl == 0; give them one (empty) chime pass.
        u8::from(cmd.instr.vector_writes_scalar()),
    );
    let mk = |chime: u8, kind: UopKind, vl: u32| Uop {
        seq: cmd.seq,
        chime,
        vl,
        sew: cmd.sew,
        masked: instr_masked(&cmd.instr),
        kind,
    };
    let push_all = |ex: &mut Expansion, uop: Uop| {
        ex.uops.push(QueuedUop {
            uop,
            target: Target::All,
            frees_data_slot: false,
        });
    };

    match cmd.instr {
        Instr::VSetVl { .. } => {
            ex.immediate_scalar = Some(cmd.seq);
        }

        Instr::VArith {
            op, vd, src1, vs2, ..
        } => {
            let mut srcs = vec![vs2.index() as u8];
            if let VSrc::V(v) = src1 {
                srcs.push(v.index() as u8);
            }
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::Arith {
                            op,
                            srcs: srcs.clone(),
                            dst: vd.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
        }
        Instr::VCmp { vd, vs2, src1, .. } => {
            let mut srcs = vec![vs2.index() as u8];
            if let VSrc::V(v) = src1 {
                srcs.push(v.index() as u8);
            }
            for k in 0..chimes {
                // Compares are single-cycle element ops; priced as the
                // 1-cycle integer class.
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::Arith {
                            op: VArithOp::And,
                            srcs: srcs.clone(),
                            dst: vd.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
        }
        Instr::VMask { vd, vs1, vs2, .. } => {
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::Arith {
                            op: VArithOp::And,
                            srcs: vec![vs1.index() as u8, vs2.index() as u8],
                            dst: vd.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
        }
        Instr::VId { vd, .. } => {
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::Arith {
                            op: VArithOp::And,
                            srcs: vec![],
                            dst: vd.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
        }
        Instr::VMvVX { vd, .. } | Instr::VFMvVF { vd, .. } => {
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::Arith {
                            op: VArithOp::And,
                            srcs: vec![],
                            dst: vd.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
        }
        Instr::VMvVV { vd, vs2 } => {
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::Arith {
                            op: VArithOp::And,
                            srcs: vec![vs2.index() as u8],
                            dst: vd.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
        }
        Instr::VMvSX { vd, .. } => {
            // Writes element 0 only: a single-element chime-0 pass.
            push_all(
                &mut ex,
                mk(
                    0,
                    UopKind::Arith {
                        op: VArithOp::And,
                        srcs: vec![],
                        dst: vd.index() as u8,
                    },
                    1,
                ),
            );
        }

        Instr::VLoad { vd, mode, .. } => {
            *next_mem_id += 1;
            let mem_id = *next_mem_id;
            let indexed = mode.is_indexed();
            let mut idx_events = 0;
            if let VMemMode::Indexed(vidx) = mode {
                for k in 0..chimes {
                    push_all(
                        &mut ex,
                        mk(
                            k,
                            UopKind::IdxRd {
                                mem_id,
                                src: vidx.index() as u8,
                            },
                            cmd.vl,
                        ),
                    );
                    idx_events += lanes;
                }
            }
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::LoadWb {
                            mem_id,
                            dst: vd.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
            let mc = MemCmd::from_accesses(mem_id, false, indexed, &cmd.mem, line_bytes, coalesce);
            ex.mem = Some((
                mc,
                MemBegin {
                    mem_id,
                    idx_events,
                    store_events: 0,
                    loadwb_events: u32::from(chimes) * lanes,
                },
            ));
        }
        Instr::VStore { vs3, mode, .. } => {
            *next_mem_id += 1;
            let mem_id = *next_mem_id;
            let indexed = mode.is_indexed();
            let idx = match mode {
                VMemMode::Indexed(v) => Some(v.index() as u8),
                _ => None,
            };
            let mut store_events = 0;
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::StoreRd {
                            mem_id,
                            src: vs3.index() as u8,
                            idx,
                        },
                        cmd.vl,
                    ),
                );
                store_events += lanes;
            }
            let mc = MemCmd::from_accesses(mem_id, true, indexed, &cmd.mem, line_bytes, coalesce);
            ex.mem = Some((
                mc,
                MemBegin {
                    mem_id,
                    idx_events: 0,
                    store_events,
                    loadwb_events: 0,
                },
            ));
        }

        Instr::VRed { op, vd, vs2, .. } => {
            *next_vx_id += 1;
            let vx_id = *next_vx_id;
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::VxRead {
                            vx_id,
                            src: vs2.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
            ex.uops.push(QueuedUop {
                uop: mk(
                    0,
                    UopKind::VxReduce {
                        vx_id,
                        op,
                        dst: vd.index() as u8,
                    },
                    cmd.vl,
                ),
                target: Target::One(0),
                frees_data_slot: false,
            });
            ex.vx = Some(VxBegin {
                id: vx_id,
                reads: u32::from(chimes) * lanes,
                total_elems: cmd.vl,
                scalar_seq: None,
                consumers: 1,
            });
        }
        Instr::VRgather { vd, vs2, .. }
        | Instr::VSlideUp { vd, vs2, .. }
        | Instr::VSlideDown { vd, vs2, .. } => {
            *next_vx_id += 1;
            let vx_id = *next_vx_id;
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::VxRead {
                            vx_id,
                            src: vs2.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
            for k in 0..chimes {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::VxWrite {
                            vx_id,
                            dst: vd.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
            ex.vx = Some(VxBegin {
                id: vx_id,
                reads: u32::from(chimes) * lanes,
                total_elems: cmd.vl,
                scalar_seq: None,
                consumers: u32::from(chimes) * lanes,
            });
        }
        Instr::VPopc { vs2, .. } | Instr::VFirst { vs2, .. } => {
            *next_vx_id += 1;
            let vx_id = *next_vx_id;
            for k in 0..chimes.max(1) {
                push_all(
                    &mut ex,
                    mk(
                        k,
                        UopKind::VxRead {
                            vx_id,
                            src: vs2.index() as u8,
                        },
                        cmd.vl,
                    ),
                );
            }
            ex.vx = Some(VxBegin {
                id: vx_id,
                reads: u32::from(chimes.max(1)) * lanes,
                total_elems: cmd.vl.max(1),
                scalar_seq: Some(cmd.seq),
                consumers: 0,
            });
        }
        Instr::VMvXS { vs2, .. } | Instr::VFMvFS { vs2, .. } => {
            *next_vx_id += 1;
            let vx_id = *next_vx_id;
            // Element 0 only: a single-element read from lane 0.
            push_all(
                &mut ex,
                mk(
                    0,
                    UopKind::VxRead {
                        vx_id,
                        src: vs2.index() as u8,
                    },
                    1,
                ),
            );
            ex.vx = Some(VxBegin {
                id: vx_id,
                reads: lanes,
                total_elems: 1,
                scalar_seq: Some(cmd.seq),
                consumers: 0,
            });
        }

        Instr::VmFence => {
            // Handled entirely by the big core + drain queries.
        }
        ref other => unreachable!("not a vector instruction: {other:?}"),
    }
    if let Some(last) = ex.uops.last_mut() {
        last.frees_data_slot = ex.uses_data_slot;
    }
    ex
}

fn instr_masked(instr: &Instr) -> bool {
    match instr {
        Instr::VLoad { masked, .. }
        | Instr::VStore { masked, .. }
        | Instr::VArith { masked, .. }
        | Instr::VCmp { masked, .. }
        | Instr::VRed { masked, .. }
        | Instr::VId { masked, .. } => *masked,
        _ => false,
    }
}

/// The VCU's queues.
#[derive(Debug)]
pub struct Vcu {
    params: VcuParams,
    bus: DelayQueue<VecCmd>,
    uopq: VecDeque<QueuedUop>,
    dataq_used: usize,
    /// Scalar responses the VCU produces itself (vsetvl), delayed by the
    /// response-bus latency.
    resp: DelayQueue<u64>,
    /// Memory commands travelling on the bus, for drain accounting.
    mem_on_bus: usize,
}

impl Vcu {
    /// Creates a VCU.
    pub fn new(params: VcuParams) -> Self {
        Vcu {
            bus: DelayQueue::new(params.cmd_bus_latency),
            uopq: VecDeque::new(),
            dataq_used: 0,
            resp: DelayQueue::new(params.cmd_bus_latency),
            mem_on_bus: 0,
            params,
        }
    }

    /// The configuration.
    pub fn params(&self) -> &VcuParams {
        &self.params
    }

    /// True if the command bus can take another instruction.
    pub fn can_accept(&self) -> bool {
        self.bus.len() < self.params.busq_depth
    }

    /// Accepts an instruction from the big core at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the bus is full.
    pub fn dispatch(&mut self, now: u64, cmd: VecCmd) {
        assert!(self.can_accept(), "VCU command bus overflow");
        if cmd.instr.is_vector_mem() {
            self.mem_on_bus += 1;
        }
        self.bus.push(now, cmd);
    }

    /// Like [`Vcu::dispatch`], but with an extra transfer delay (the
    /// vector-region entry penalty is charged to the first instruction).
    ///
    /// # Panics
    ///
    /// Panics if the bus is full.
    pub fn dispatch_with_extra(&mut self, now: u64, extra: u64, cmd: VecCmd) {
        assert!(self.can_accept(), "VCU command bus overflow");
        if cmd.instr.is_vector_mem() {
            self.mem_on_bus += 1;
        }
        self.bus.push_with_extra(now, extra, cmd);
    }

    /// Pops the next instruction off the bus if its transfer completed and
    /// the UopQ/DataQ can absorb its expansion of `uops` micro-ops.
    pub fn pop_cmd_if(
        &mut self,
        now: u64,
        admit: impl FnOnce(&VecCmd) -> Option<Expansion>,
    ) -> Option<Expansion> {
        let cmd = self.bus.peek_ready(now)?;
        let needs_data = cmd.instr.vector_scalar_source().is_some();
        if needs_data && self.dataq_used >= self.params.dataq_depth {
            return None;
        }
        let ex = admit(cmd)?;
        if self.uopq.len() + ex.uops.len() > self.params.uopq_depth {
            return None;
        }
        let cmd = self.bus.pop_ready(now).expect("peeked ready");
        if cmd.instr.is_vector_mem() {
            self.mem_on_bus -= 1;
        }
        // The slot is held until the instruction's last micro-op is
        // broadcast; zero-uop instructions (vsetvl) consume their scalar
        // inside the VCU and never occupy a slot past this cycle.
        if ex.uses_data_slot && !ex.uops.is_empty() {
            self.dataq_used += 1;
        }
        for q in &ex.uops {
            self.uopq.push_back(q.clone());
        }
        Some(ex)
    }

    /// Peeks the micro-op at the head of the UopQ.
    pub fn head(&self) -> Option<&QueuedUop> {
        self.uopq.front()
    }

    /// Pops the head after a successful broadcast.
    pub fn pop_head(&mut self) -> Option<QueuedUop> {
        let q = self.uopq.pop_front()?;
        if q.frees_data_slot {
            self.dataq_used = self.dataq_used.saturating_sub(1);
        }
        Some(q)
    }

    /// Queues a VCU-produced scalar response (vsetvl).
    pub fn queue_scalar(&mut self, now: u64, seq: u64) {
        self.resp.push(now, seq);
    }

    /// Pops a ready scalar response.
    pub fn pop_scalar(&mut self, now: u64) -> Option<u64> {
        self.resp.pop_ready(now)
    }

    /// True while any work is buffered.
    pub fn busy(&self) -> bool {
        !self.uopq.is_empty() || !self.bus.is_empty()
    }

    /// Memory instructions still on the command bus (drain accounting).
    pub fn mem_on_bus(&self) -> usize {
        self.mem_on_bus
    }

    /// The cycle the command bus's oldest instruction finishes its
    /// transfer, if any is in flight (a tick-skip wake-up).
    pub fn bus_next_ready(&self) -> Option<u64> {
        self.bus.next_ready()
    }

    /// The cycle the oldest VCU-produced scalar response becomes
    /// poppable, if any is queued (a tick-skip wake-up).
    pub fn resp_next_ready(&self) -> Option<u64> {
        self.resp.next_ready()
    }

    /// Micro-ops currently queued.
    pub fn uopq_len(&self) -> usize {
        self.uopq.len()
    }

    /// Appends the VCU's mutable state to a checkpoint (`params` is
    /// configuration and not written).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.bus.save(w);
        self.uopq.save(w);
        self.dataq_used.save(w);
        self.resp.save(w);
        self.mem_on_bus.save(w);
    }

    /// Restores state written by [`Vcu::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`SnapError`] on malformed input or queue occupancies
    /// exceeding this VCU's configured depths.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let bus: DelayQueue<VecCmd> = Snap::load(r)?;
        let uopq: VecDeque<QueuedUop> = Snap::load(r)?;
        if bus.len() > self.params.busq_depth || uopq.len() > self.params.uopq_depth {
            return Err(SnapError::Corrupt {
                what: format!(
                    "checkpoint VCU queues ({} bus, {} uopq) exceed configured depths",
                    bus.len(),
                    uopq.len()
                ),
            });
        }
        self.bus = bus;
        self.uopq = uopq;
        self.dataq_used = Snap::load(r)?;
        self.resp = Snap::load(r)?;
        self.mem_on_bus = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_isa::exec::MemAccess;
    use bvl_isa::reg::{VReg, XReg};
    use bvl_isa::vcfg::Sew;

    fn vcmd(instr: Instr, vl: u32) -> VecCmd {
        VecCmd {
            seq: 7,
            instr,
            vl,
            sew: Sew::E32,
            mem: Vec::new(),
            needs_scalar_response: instr.vector_writes_scalar(),
        }
    }

    fn expand1(cmd: &VecCmd) -> Expansion {
        let map = RegMap::paper_default();
        let (mut m, mut v) = (0, 0);
        expand(cmd, &map, 4, 64, 4, &mut m, &mut v)
    }

    #[test]
    fn arith_expands_per_chime() {
        let cmd = vcmd(
            Instr::VArith {
                op: VArithOp::FAdd,
                vd: VReg::new(3),
                src1: VSrc::V(VReg::new(1)),
                vs2: VReg::new(2),
                masked: false,
            },
            16,
        );
        let ex = expand1(&cmd);
        assert_eq!(ex.uops.len(), 2); // two chimes at vl=16
        assert_eq!(ex.uops[0].uop.chime, 0);
        assert_eq!(ex.uops[1].uop.chime, 1);

        // Half-length vector touches one chime only.
        let ex = expand1(&vcmd(cmd.instr, 8));
        assert_eq!(ex.uops.len(), 1);
    }

    #[test]
    fn unit_load_expands_to_mem_cmd_plus_writebacks() {
        let mut cmd = vcmd(
            Instr::VLoad {
                vd: VReg::new(1),
                base: XReg::new(5),
                mode: VMemMode::Unit,
                masked: false,
            },
            16,
        );
        cmd.mem = (0..16)
            .map(|i| MemAccess {
                addr: 0x1000 + i * 4,
                size: 4,
                is_store: false,
            })
            .collect();
        let ex = expand1(&cmd);
        assert_eq!(ex.uops.len(), 2); // LoadWb per chime
        let (mc, mb) = ex.mem.expect("memory command");
        assert_eq!(mc.num_lines(), 1);
        assert_eq!(mb.idx_events, 0);
        assert!(ex.uses_data_slot); // base address travels in the DataQ
    }

    #[test]
    fn indexed_load_adds_index_read_uops() {
        let cmd = vcmd(
            Instr::VLoad {
                vd: VReg::new(1),
                base: XReg::new(5),
                mode: VMemMode::Indexed(VReg::new(9)),
                masked: false,
            },
            16,
        );
        let ex = expand1(&cmd);
        // 2 IdxRd + 2 LoadWb.
        assert_eq!(ex.uops.len(), 4);
        let (_, mb) = ex.mem.expect("memory command");
        assert_eq!(mb.idx_events, 8); // 2 chimes x 4 lanes
    }

    #[test]
    fn reduction_reserves_ring_with_lane0_consumer() {
        let cmd = vcmd(
            Instr::VRed {
                op: bvl_isa::instr::VRedOp::Sum,
                vd: VReg::new(1),
                vs2: VReg::new(2),
                vs1: VReg::new(3),
                masked: false,
            },
            16,
        );
        let ex = expand1(&cmd);
        let vx = ex.vx.expect("ring reservation");
        assert_eq!(vx.reads, 8);
        assert_eq!(vx.consumers, 1);
        assert_eq!(vx.total_elems, 16);
        assert_eq!(ex.uops.last().unwrap().target, Target::One(0));
    }

    #[test]
    fn vpopc_produces_scalar_reservation() {
        let cmd = vcmd(
            Instr::VPopc {
                rd: XReg::new(1),
                vs2: VReg::MASK,
            },
            16,
        );
        let ex = expand1(&cmd);
        let vx = ex.vx.expect("ring reservation");
        assert_eq!(vx.scalar_seq, Some(7));
        assert_eq!(vx.consumers, 0);
    }

    #[test]
    fn vsetvl_is_immediate() {
        let cmd = vcmd(
            Instr::VSetVl {
                rd: XReg::new(1),
                avl: bvl_isa::instr::AvlSrc::Imm(8),
                sew: Sew::E32,
            },
            8,
        );
        let ex = expand1(&cmd);
        assert!(ex.uops.is_empty());
        assert_eq!(ex.immediate_scalar, Some(7));
    }

    #[test]
    fn vcu_dataq_backpressure() {
        let mut vcu = Vcu::new(VcuParams {
            busq_depth: 8,
            uopq_depth: 32,
            dataq_depth: 1,
            cmd_bus_latency: 0,
        });
        let splat = |seq| {
            let mut c = vcmd(
                Instr::VMvVX {
                    vd: VReg::new(1),
                    rs1: XReg::new(2),
                },
                8,
            );
            c.seq = seq;
            c
        };
        vcu.dispatch(0, splat(1));
        vcu.dispatch(0, splat(2));
        let map = RegMap::paper_default();
        let admit = |c: &VecCmd| {
            let (mut m, mut v) = (0, 0);
            Some(expand(c, &map, 4, 64, 4, &mut m, &mut v))
        };
        assert!(vcu.pop_cmd_if(0, admit).is_some());
        // DataQ slot held until the splat's last uop is broadcast.
        assert!(vcu.pop_cmd_if(0, admit).is_none());
        while vcu.pop_head().is_some() {}
        assert!(vcu.pop_cmd_if(0, admit).is_some());
    }
}
