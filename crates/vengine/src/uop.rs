//! Micro-operations broadcast by the VCU to the vector lanes.
//!
//! Each vector instruction expands into one micro-op per element group
//! (*chime*) it touches, plus memory commands routed to the VMU (paper
//! section III-B/III-C). A micro-op carries enough information for a lane
//! to price it: the operation class, its source/destination vector
//! registers (scoreboard tracking is per `(chime, vreg)`), the vector
//! length and element width in effect, and identifiers linking it to VMU
//! or VXU transactions.

use bvl_isa::instr::{VArithOp, VRedOp};
use bvl_isa::vcfg::Sew;
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};

/// What a lane does with a micro-op.
#[derive(Clone, Debug, PartialEq)]
pub enum UopKind {
    /// Element-wise compute (arithmetic, compares, mask ops, splats,
    /// copies, `vid`): sources must be ready, occupies the lane's FU.
    Arith {
        /// Latency/serialization class.
        op: VArithOp,
        /// Source vector registers read (same chime).
        srcs: Vec<u8>,
        /// Destination vector register.
        dst: u8,
    },
    /// Write back load data delivered by the VLU into `dst`.
    LoadWb {
        /// VMU transaction id.
        mem_id: u64,
        /// Destination vector register.
        dst: u8,
    },
    /// Read store data from `src` and stream it to the VSU, one element
    /// per cycle. For indexed stores this also carries the per-element
    /// addresses (paper: cores execute them like scalar stores).
    StoreRd {
        /// VMU transaction id.
        mem_id: u64,
        /// Data source vector register.
        src: u8,
        /// Index source register for indexed stores (RAW-checked).
        idx: Option<u8>,
    },
    /// Read index values from `src` and stream them to the VMIU (indexed
    /// loads), one element per cycle.
    IdxRd {
        /// VMU transaction id.
        mem_id: u64,
        /// Index vector register.
        src: u8,
    },
    /// Send this lane's elements of `src` to the VXU ring.
    VxRead {
        /// VXU transaction id.
        vx_id: u64,
        /// Source vector register.
        src: u8,
    },
    /// Receive permuted elements from the VXU and write `dst`.
    VxWrite {
        /// VXU transaction id.
        vx_id: u64,
        /// Destination vector register.
        dst: u8,
    },
    /// Reduce elements arriving from the VXU (first lane only); writes
    /// element 0 of `dst`.
    VxReduce {
        /// VXU transaction id.
        vx_id: u64,
        /// Reduction operation (prices the per-element step).
        op: VRedOp,
        /// Destination vector register.
        dst: u8,
    },
}

/// One micro-op as received by a lane.
#[derive(Clone, Debug, PartialEq)]
pub struct Uop {
    /// Originating instruction's big-core sequence number.
    pub seq: u64,
    /// Element group this micro-op covers.
    pub chime: u8,
    /// Vector length of the instruction.
    pub vl: u32,
    /// Element width of the instruction.
    pub sew: Sew,
    /// Whether the instruction executes under mask `v0` (reads the extra
    /// mask register — no extra port needed, paper section III-C).
    pub masked: bool,
    /// The operation.
    pub kind: UopKind,
}

impl Uop {
    /// The destination vector register this micro-op writes, if any.
    pub fn dest(&self) -> Option<u8> {
        match &self.kind {
            UopKind::Arith { dst, .. }
            | UopKind::LoadWb { dst, .. }
            | UopKind::VxWrite { dst, .. }
            | UopKind::VxReduce { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The source vector registers this micro-op reads.
    pub fn sources(&self) -> Vec<u8> {
        match &self.kind {
            UopKind::Arith { srcs, dst, op } => {
                let mut s = srcs.clone();
                // FMacc also reads its destination (accumulator).
                if *op == VArithOp::FMacc {
                    s.push(*dst);
                }
                s
            }
            UopKind::StoreRd { src, idx, .. } => {
                let mut s = vec![*src];
                if let Some(i) = idx {
                    s.push(*i);
                }
                s
            }
            UopKind::IdxRd { src, .. } | UopKind::VxRead { src, .. } => vec![*src],
            UopKind::VxReduce { dst, .. } => vec![*dst],
            _ => Vec::new(),
        }
    }
}

impl Snap for UopKind {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            UopKind::Arith { op, srcs, dst } => {
                w.u8(0);
                op.save(w);
                srcs.save(w);
                dst.save(w);
            }
            UopKind::LoadWb { mem_id, dst } => {
                w.u8(1);
                mem_id.save(w);
                dst.save(w);
            }
            UopKind::StoreRd { mem_id, src, idx } => {
                w.u8(2);
                mem_id.save(w);
                src.save(w);
                idx.save(w);
            }
            UopKind::IdxRd { mem_id, src } => {
                w.u8(3);
                mem_id.save(w);
                src.save(w);
            }
            UopKind::VxRead { vx_id, src } => {
                w.u8(4);
                vx_id.save(w);
                src.save(w);
            }
            UopKind::VxWrite { vx_id, dst } => {
                w.u8(5);
                vx_id.save(w);
                dst.save(w);
            }
            UopKind::VxReduce { vx_id, op, dst } => {
                w.u8(6);
                vx_id.save(w);
                op.save(w);
                dst.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => UopKind::Arith {
                op: Snap::load(r)?,
                srcs: Snap::load(r)?,
                dst: Snap::load(r)?,
            },
            1 => UopKind::LoadWb {
                mem_id: Snap::load(r)?,
                dst: Snap::load(r)?,
            },
            2 => UopKind::StoreRd {
                mem_id: Snap::load(r)?,
                src: Snap::load(r)?,
                idx: Snap::load(r)?,
            },
            3 => UopKind::IdxRd {
                mem_id: Snap::load(r)?,
                src: Snap::load(r)?,
            },
            4 => UopKind::VxRead {
                vx_id: Snap::load(r)?,
                src: Snap::load(r)?,
            },
            5 => UopKind::VxWrite {
                vx_id: Snap::load(r)?,
                dst: Snap::load(r)?,
            },
            6 => UopKind::VxReduce {
                vx_id: Snap::load(r)?,
                op: Snap::load(r)?,
                dst: Snap::load(r)?,
            },
            t => {
                return Err(SnapError::BadTag {
                    ty: "UopKind",
                    tag: u64::from(t),
                })
            }
        })
    }
}

snap_struct!(Uop {
    seq,
    chime,
    vl,
    sew,
    masked,
    kind,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn uop(kind: UopKind) -> Uop {
        Uop {
            seq: 1,
            chime: 0,
            vl: 8,
            sew: Sew::E32,
            masked: false,
            kind,
        }
    }

    #[test]
    fn fmacc_reads_its_destination() {
        let u = uop(UopKind::Arith {
            op: VArithOp::FMacc,
            srcs: vec![2, 3],
            dst: 4,
        });
        assert_eq!(u.sources(), vec![2, 3, 4]);
        assert_eq!(u.dest(), Some(4));
    }

    #[test]
    fn store_reads_data_and_index() {
        let u = uop(UopKind::StoreRd {
            mem_id: 7,
            src: 5,
            idx: Some(6),
        });
        assert_eq!(u.sources(), vec![5, 6]);
        assert_eq!(u.dest(), None);
    }

    #[test]
    fn load_writeback_writes_only() {
        let u = uop(UopKind::LoadWb { mem_id: 1, dst: 9 });
        assert!(u.sources().is_empty());
        assert_eq!(u.dest(), Some(9));
    }
}
